package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// base returns the zero-flag configuration (defaults applied) with
// overrides from fn, so each table entry states only what it changes.
func base(fn func(*cliConfig)) cliConfig {
	cfg := cliConfig{addr: ":8080", metrics: true, logLevel: "info"}
	if fn != nil {
		fn(&cfg)
	}
	return cfg
}

// TestParseArgsCacheImplications pins the flag-validation satellite:
// -cachebytes and -cachedir must not be silently ignored — each implies
// -cache — and an explicitly empty -cachedir is a usage error.
func TestParseArgsCacheImplications(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr bool
		want    cliConfig
	}{
		{
			name: "defaults",
			args: nil,
			want: base(nil),
		},
		{
			name: "plain cache",
			args: []string{"-cache"},
			want: base(func(c *cliConfig) { c.cache = true }),
		},
		{
			name: "cachebytes implies cache",
			args: []string{"-cachebytes", "4096"},
			want: base(func(c *cliConfig) { c.cache = true; c.cacheBytes = 4096 }),
		},
		{
			name: "cachedir implies cache",
			args: []string{"-cachedir", "/tmp/spill"},
			want: base(func(c *cliConfig) { c.cache = true; c.cacheDir = "/tmp/spill" }),
		},
		{
			name: "all together",
			args: []string{"-addr", ":9999", "-workers", "2", "-cache", "-cachebytes", "1", "-cachedir", "d"},
			want: base(func(c *cliConfig) {
				c.addr = ":9999"
				c.workers = 2
				c.cache = true
				c.cacheBytes = 1
				c.cacheDir = "d"
			}),
		},
		{
			name: "querytimeout duration",
			args: []string{"-querytimeout", "500ms"},
			want: base(func(c *cliConfig) { c.queryTimeout = 500 * time.Millisecond }),
		},
		{
			name: "querytimeout zero means unbounded",
			args: []string{"-querytimeout", "0"},
			want: base(nil),
		},
		{
			name: "slowquery duration",
			args: []string{"-slowquery", "250ms"},
			want: base(func(c *cliConfig) { c.slowQuery = 250 * time.Millisecond }),
		},
		{
			name: "metrics disabled",
			args: []string{"-metrics=false"},
			want: base(func(c *cliConfig) { c.metrics = false }),
		},
		{
			name: "pprofaddr",
			args: []string{"-pprofaddr", "localhost:6060"},
			want: base(func(c *cliConfig) { c.pprofAddr = "localhost:6060" }),
		},
		{
			name: "loglevel debug",
			args: []string{"-loglevel", "debug"},
			want: base(func(c *cliConfig) { c.logLevel = "debug" }),
		},
		{
			name:    "negative slowquery is a usage error",
			args:    []string{"-slowquery", "-1s"},
			wantErr: true,
		},
		{
			name:    "malformed slowquery is a usage error",
			args:    []string{"-slowquery", "never"},
			wantErr: true,
		},
		{
			name:    "empty pprofaddr is a usage error",
			args:    []string{"-pprofaddr", ""},
			wantErr: true,
		},
		{
			name:    "unknown loglevel is a usage error",
			args:    []string{"-loglevel", "verbose"},
			wantErr: true,
		},
		{
			name:    "empty cachedir is a usage error",
			args:    []string{"-cachedir", ""},
			wantErr: true,
		},
		{
			name:    "negative querytimeout is a usage error",
			args:    []string{"-querytimeout", "-1s"},
			wantErr: true,
		},
		{
			name:    "malformed querytimeout is a usage error",
			args:    []string{"-querytimeout", "fast"},
			wantErr: true,
		},
		{
			name:    "unknown flag",
			args:    []string{"-bogus"},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var errOut bytes.Buffer
			cfg, err := parseArgs(tt.args, &errOut)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parseArgs(%q) accepted, config %+v", tt.args, cfg)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseArgs(%q): %v\n%s", tt.args, err, errOut.String())
			}
			if *cfg != tt.want {
				t.Errorf("parseArgs(%q) = %+v, want %+v", tt.args, *cfg, tt.want)
			}
		})
	}
}

// TestParseArgsEmptyCacheDirMessage pins that the usage error names the
// offending flag so the operator can tell it apart from a bad -addr.
func TestParseArgsEmptyCacheDirMessage(t *testing.T) {
	var errOut bytes.Buffer
	if _, err := parseArgs([]string{"-cachedir", ""}, &errOut); err == nil {
		t.Fatal("expected a usage error")
	}
	if !strings.Contains(errOut.String(), "cachedir") {
		t.Errorf("usage error does not name the flag: %s", errOut.String())
	}
}

// TestRunRejectsEmptyCacheDir pins the exit status: flag misuse is exit
// 2, matching the flag package's own convention.
func TestRunRejectsEmptyCacheDir(t *testing.T) {
	if code := run([]string{"-cachedir", ""}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestRunRejectsNegativeQueryTimeout pins the same convention for the
// deadline flag: a negative -querytimeout is flag misuse, exit 2.
func TestRunRejectsNegativeQueryTimeout(t *testing.T) {
	if code := run([]string{"-querytimeout", "-5s"}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestParseArgsNegativeQueryTimeoutMessage pins that the usage error
// names the offending flag.
func TestParseArgsNegativeQueryTimeoutMessage(t *testing.T) {
	var errOut bytes.Buffer
	if _, err := parseArgs([]string{"-querytimeout", "-1ms"}, &errOut); err == nil {
		t.Fatal("expected a usage error")
	}
	if !strings.Contains(errOut.String(), "querytimeout") {
		t.Errorf("usage error does not name the flag: %s", errOut.String())
	}
}

// TestRunRejectsNegativeSlowQuery pins exit 2 for the observability
// flags too, matching the -cachedir and -querytimeout conventions.
func TestRunRejectsNegativeSlowQuery(t *testing.T) {
	if code := run([]string{"-slowquery", "-1ms"}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestParseArgsObservabilityUsageMessages pins that each usage error
// names the offending flag so the operator can tell them apart.
func TestParseArgsObservabilityUsageMessages(t *testing.T) {
	tests := []struct {
		args []string
		want string
	}{
		{[]string{"-slowquery", "-1s"}, "slowquery"},
		{[]string{"-pprofaddr", ""}, "pprofaddr"},
		{[]string{"-loglevel", "chatty"}, "loglevel"},
	}
	for _, tt := range tests {
		var errOut bytes.Buffer
		if _, err := parseArgs(tt.args, &errOut); err == nil {
			t.Fatalf("parseArgs(%q) accepted", tt.args)
		}
		if !strings.Contains(errOut.String(), tt.want) {
			t.Errorf("usage error for %q does not name %q: %s", tt.args, tt.want, errOut.String())
		}
	}
}

// TestPprofMuxServesProfiles pins the dedicated profiling mux: the
// pprof index answers on its own handler, never on the API mux.
func TestPprofMuxServesProfiles(t *testing.T) {
	ts := httptest.NewServer(pprofMux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "goroutine") {
		t.Fatalf("pprof index does not list profiles:\n%s", b)
	}
}
