package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestParseArgsCacheImplications pins the flag-validation satellite:
// -cachebytes and -cachedir must not be silently ignored — each implies
// -cache — and an explicitly empty -cachedir is a usage error.
func TestParseArgsCacheImplications(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr bool
		want    cliConfig
	}{
		{
			name: "defaults",
			args: nil,
			want: cliConfig{addr: ":8080"},
		},
		{
			name: "plain cache",
			args: []string{"-cache"},
			want: cliConfig{addr: ":8080", cache: true},
		},
		{
			name: "cachebytes implies cache",
			args: []string{"-cachebytes", "4096"},
			want: cliConfig{addr: ":8080", cache: true, cacheBytes: 4096},
		},
		{
			name: "cachedir implies cache",
			args: []string{"-cachedir", "/tmp/spill"},
			want: cliConfig{addr: ":8080", cache: true, cacheDir: "/tmp/spill"},
		},
		{
			name: "all together",
			args: []string{"-addr", ":9999", "-workers", "2", "-cache", "-cachebytes", "1", "-cachedir", "d"},
			want: cliConfig{addr: ":9999", workers: 2, cache: true, cacheBytes: 1, cacheDir: "d"},
		},
		{
			name: "querytimeout duration",
			args: []string{"-querytimeout", "500ms"},
			want: cliConfig{addr: ":8080", queryTimeout: 500 * time.Millisecond},
		},
		{
			name: "querytimeout zero means unbounded",
			args: []string{"-querytimeout", "0"},
			want: cliConfig{addr: ":8080"},
		},
		{
			name:    "empty cachedir is a usage error",
			args:    []string{"-cachedir", ""},
			wantErr: true,
		},
		{
			name:    "negative querytimeout is a usage error",
			args:    []string{"-querytimeout", "-1s"},
			wantErr: true,
		},
		{
			name:    "malformed querytimeout is a usage error",
			args:    []string{"-querytimeout", "fast"},
			wantErr: true,
		},
		{
			name:    "unknown flag",
			args:    []string{"-bogus"},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var errOut bytes.Buffer
			cfg, err := parseArgs(tt.args, &errOut)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parseArgs(%q) accepted, config %+v", tt.args, cfg)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseArgs(%q): %v\n%s", tt.args, err, errOut.String())
			}
			if *cfg != tt.want {
				t.Errorf("parseArgs(%q) = %+v, want %+v", tt.args, *cfg, tt.want)
			}
		})
	}
}

// TestParseArgsEmptyCacheDirMessage pins that the usage error names the
// offending flag so the operator can tell it apart from a bad -addr.
func TestParseArgsEmptyCacheDirMessage(t *testing.T) {
	var errOut bytes.Buffer
	if _, err := parseArgs([]string{"-cachedir", ""}, &errOut); err == nil {
		t.Fatal("expected a usage error")
	}
	if !strings.Contains(errOut.String(), "cachedir") {
		t.Errorf("usage error does not name the flag: %s", errOut.String())
	}
}

// TestRunRejectsEmptyCacheDir pins the exit status: flag misuse is exit
// 2, matching the flag package's own convention.
func TestRunRejectsEmptyCacheDir(t *testing.T) {
	if code := run([]string{"-cachedir", ""}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestRunRejectsNegativeQueryTimeout pins the same convention for the
// deadline flag: a negative -querytimeout is flag misuse, exit 2.
func TestRunRejectsNegativeQueryTimeout(t *testing.T) {
	if code := run([]string{"-querytimeout", "-5s"}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestParseArgsNegativeQueryTimeoutMessage pins that the usage error
// names the offending flag.
func TestParseArgsNegativeQueryTimeoutMessage(t *testing.T) {
	var errOut bytes.Buffer
	if _, err := parseArgs([]string{"-querytimeout", "-1ms"}, &errOut); err == nil {
		t.Fatal("expected a usage error")
	}
	if !strings.Contains(errOut.String(), "querytimeout") {
		t.Errorf("usage error does not name the flag: %s", errOut.String())
	}
}
