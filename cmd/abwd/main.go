// Command abwd runs the admission-control daemon: an HTTP/JSON service
// that owns a multirate network, tracks admitted flows, and answers
// availability queries with the paper's exact model.
//
// Usage:
//
//	abwd -addr :8080
//
// Walkthrough:
//
//	abwtopo -nodes 30 -spec | jq '{nodes}' | curl -X PUT -d @- localhost:8080/v1/network
//	curl -X POST -d '{"src":2,"dst":8,"demandMbps":2}' localhost:8080/v1/flows
//	curl localhost:8080/v1/flows
//	curl -X DELETE localhost:8080/v1/flows/1
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"abw/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("abwd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "enumeration workers (0 = automatic, 1 = sequential)")
	cache := fs.Bool("cache", false, "enable the memo cache: set-family reuse, LP warm-starting, GET /v1/stats counters")
	cacheBytes := fs.Int64("cachebytes", 0, "retained-bytes budget for cached set families (0 = default; needs -cache)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abwd:", err)
		return 1
	}
	fmt.Printf("abwd listening on %s\n", ln.Addr())
	s := server.New()
	s.SetWorkers(*workers)
	if *cache {
		s.SetCacheBytes(*cacheBytes)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "abwd:", err)
		return 1
	}
	return 0
}
