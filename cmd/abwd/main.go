// Command abwd runs the admission-control daemon: an HTTP/JSON service
// that owns a multirate network, tracks admitted flows, and answers
// availability queries with the paper's exact model.
//
// Usage:
//
//	abwd -addr :8080
//
// Walkthrough:
//
//	abwtopo -nodes 30 -spec | jq '{nodes}' | curl -X PUT -d @- localhost:8080/v1/network
//	curl -X POST -d '{"src":2,"dst":8,"demandMbps":2}' localhost:8080/v1/flows
//	curl localhost:8080/v1/flows
//	curl -X DELETE localhost:8080/v1/flows/1
//
// Observability: /metrics serves the Prometheus exposition (disable
// with -metrics=false), /healthz and /readyz serve liveness and
// readiness probes, -slowquery logs queries whose computation exceeds
// the threshold with their per-stage trace, and -pprofaddr serves
// net/http/pprof on a separate listener so profiling never shares a
// port with the API. Structured JSON logs go to stderr; the startup
// line on stdout stays plain text for scripts.
//
// abwd shuts down gracefully on SIGINT or SIGTERM: the listener stops
// accepting, in-flight requests get drainTimeout to finish (their
// contexts are canceled past that), and the cache's on-disk spill is
// flushed and closed before the process exits — so every set family
// enumerated during the run survives to warm the next one. A second
// signal during the drain kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abw/internal/obs"
	"abw/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// drainTimeout bounds graceful shutdown: how long in-flight requests
// get to finish after SIGINT/SIGTERM before their connections are
// closed forcibly.
const drainTimeout = 10 * time.Second

// cliConfig is the parsed abwd command line.
type cliConfig struct {
	addr         string
	workers      int
	cache        bool
	cacheBytes   int64
	cacheDir     string
	queryTimeout time.Duration
	metrics      bool
	slowQuery    time.Duration
	pprofAddr    string
	logLevel     string
}

// parseArgs parses and validates flags. -cachebytes and -cachedir
// imply -cache (their help says so) rather than being silently
// ignored; an explicitly empty -cachedir, a negative -querytimeout, a
// negative -slowquery and an unknown -loglevel are usage errors.
func parseArgs(args []string, stderr io.Writer) (*cliConfig, error) {
	fs := flag.NewFlagSet("abwd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &cliConfig{}
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.workers, "workers", 0, "enumeration workers (0 = automatic, 1 = sequential)")
	fs.BoolVar(&cfg.cache, "cache", false, "enable the memo cache: set-family reuse, LP warm-starting, GET /v1/stats counters")
	fs.Int64Var(&cfg.cacheBytes, "cachebytes", 0, "retained-bytes budget for cached set families (0 = default; implies -cache)")
	fs.StringVar(&cfg.cacheDir, "cachedir", "", "directory for the crash-safe on-disk set-family spill, so a restarted abwd warms instantly (implies -cache)")
	fs.DurationVar(&cfg.queryTimeout, "querytimeout", 0, "per-request computation deadline, e.g. 500ms or 2s (0 = unbounded); requests past it answer 504")
	fs.BoolVar(&cfg.metrics, "metrics", true, "serve the Prometheus exposition on GET /metrics and merge the snapshot into GET /v1/stats")
	fs.DurationVar(&cfg.slowQuery, "slowquery", 0, "log queries whose computation exceeds this duration, with their per-stage trace (0 = disabled)")
	fs.StringVar(&cfg.pprofAddr, "pprofaddr", "", "listen address for net/http/pprof on a separate mux (empty = disabled), e.g. localhost:6060")
	fs.StringVar(&cfg.logLevel, "loglevel", "info", "structured log level: debug, info, warn or error")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["cachedir"] && cfg.cacheDir == "" {
		fmt.Fprintln(stderr, "abwd: -cachedir needs a non-empty directory")
		fs.Usage()
		return nil, flag.ErrHelp
	}
	if cfg.queryTimeout < 0 {
		fmt.Fprintln(stderr, "abwd: -querytimeout must be non-negative")
		fs.Usage()
		return nil, flag.ErrHelp
	}
	if cfg.slowQuery < 0 {
		fmt.Fprintln(stderr, "abwd: -slowquery must be non-negative")
		fs.Usage()
		return nil, flag.ErrHelp
	}
	if set["pprofaddr"] && cfg.pprofAddr == "" {
		fmt.Fprintln(stderr, "abwd: -pprofaddr needs a non-empty address")
		fs.Usage()
		return nil, flag.ErrHelp
	}
	switch cfg.logLevel {
	case "debug", "info", "warn", "error":
	default:
		fmt.Fprintln(stderr, "abwd: -loglevel must be debug, info, warn or error")
		fs.Usage()
		return nil, flag.ErrHelp
	}
	if set["cachebytes"] || set["cachedir"] {
		cfg.cache = true
	}
	return cfg, nil
}

// pprofMux builds a dedicated mux with the net/http/pprof handlers, so
// profiling is served from its own listener instead of riding the API
// mux (or the DefaultServeMux side effect of a blank pprof import).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(args []string) int {
	cfg, err := parseArgs(args, os.Stderr)
	if err != nil {
		return 2
	}
	logger := obs.NewLogger(os.Stderr, cfg.logLevel)
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		logger.Error("listen failed", "addr", cfg.addr, "err", err.Error())
		return 1
	}
	// The plain-text announcement on stdout is a stable interface:
	// scripts (scripts/e2e.sh among them) parse the resolved address
	// from it. Structured logs go to stderr.
	fmt.Printf("abwd listening on %s\n", ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String(),
		"metrics", cfg.metrics, "slowQuery", cfg.slowQuery.String(), "pprofAddr", cfg.pprofAddr)

	s := server.New()
	s.SetWorkers(cfg.workers)
	s.SetQueryTimeout(cfg.queryTimeout)
	s.SetLogger(logger)
	s.SetSlowQuery(cfg.slowQuery)
	if cfg.metrics {
		s.SetMetrics(obs.NewRegistry())
	}
	if cfg.cache {
		s.SetCacheBytes(cfg.cacheBytes)
	}
	if cfg.cacheDir != "" {
		if err := s.SetCacheDir(cfg.cacheDir); err != nil {
			logger.Error("cache dir", "dir", cfg.cacheDir, "err", err.Error())
			return 1
		}
	}

	// The profiler fails fast: a bad -pprofaddr is a startup error, not
	// a silent no-op discovered when someone needs a profile.
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			logger.Error("pprof listen failed", "addr", cfg.pprofAddr, "err", err.Error())
			return 1
		}
		defer pln.Close()
		logger.Info("pprof listening", "addr", pln.Addr().String())
		psrv := &http.Server{Handler: pprofMux(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Error("pprof server", "err", err.Error())
			}
		}()
	}

	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Shutdown ordering: stop accepting and drain in-flight requests
	// first (srv.Shutdown), THEN flush and close the cache spill — a
	// request finishing during the drain may still enqueue families,
	// and flushing before the drain would lose them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	exit := 0
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err.Error())
			exit = 1
		}
	case <-ctx.Done():
		stop() // a second signal now kills immediately (default handling)
		logger.Info("signal received, draining", "drainTimeout", drainTimeout.String())
		drain := obs.StartWatch()
		shCtx, cancelSh := context.WithTimeout(context.Background(), drainTimeout)
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Error("drain", "err", err.Error())
			exit = 1
		}
		cancelSh()
		<-serveErr // Serve has returned http.ErrServerClosed
		logger.Info("drained", "drainMs", drain.Elapsed().Milliseconds())
	}
	if err := s.Close(); err != nil {
		logger.Error("closing cache store", "err", err.Error())
		exit = 1
	}
	// The final counters are read after Close so DiskBytes reflects the
	// flushed spill, not a mid-flight snapshot.
	st := s.CacheStats()
	logger.Info("shutdown complete", "exit", exit,
		"cacheEntries", st.Entries, "cacheBytes", st.Bytes, "diskBytes", st.DiskBytes)
	return exit
}
