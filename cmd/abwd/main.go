// Command abwd runs the admission-control daemon: an HTTP/JSON service
// that owns a multirate network, tracks admitted flows, and answers
// availability queries with the paper's exact model.
//
// Usage:
//
//	abwd -addr :8080
//
// Walkthrough:
//
//	abwtopo -nodes 30 -spec | jq '{nodes}' | curl -X PUT -d @- localhost:8080/v1/network
//	curl -X POST -d '{"src":2,"dst":8,"demandMbps":2}' localhost:8080/v1/flows
//	curl localhost:8080/v1/flows
//	curl -X DELETE localhost:8080/v1/flows/1
//
// abwd shuts down gracefully on SIGINT or SIGTERM: the listener stops
// accepting, in-flight requests get drainTimeout to finish (their
// contexts are canceled past that), and the cache's on-disk spill is
// flushed and closed before the process exits — so every set family
// enumerated during the run survives to warm the next one. A second
// signal during the drain kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abw/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// drainTimeout bounds graceful shutdown: how long in-flight requests
// get to finish after SIGINT/SIGTERM before their connections are
// closed forcibly.
const drainTimeout = 10 * time.Second

// cliConfig is the parsed abwd command line.
type cliConfig struct {
	addr         string
	workers      int
	cache        bool
	cacheBytes   int64
	cacheDir     string
	queryTimeout time.Duration
}

// parseArgs parses and validates flags. -cachebytes and -cachedir
// imply -cache (their help says so) rather than being silently
// ignored; an explicitly empty -cachedir and a negative -querytimeout
// are usage errors.
func parseArgs(args []string, stderr io.Writer) (*cliConfig, error) {
	fs := flag.NewFlagSet("abwd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &cliConfig{}
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.workers, "workers", 0, "enumeration workers (0 = automatic, 1 = sequential)")
	fs.BoolVar(&cfg.cache, "cache", false, "enable the memo cache: set-family reuse, LP warm-starting, GET /v1/stats counters")
	fs.Int64Var(&cfg.cacheBytes, "cachebytes", 0, "retained-bytes budget for cached set families (0 = default; implies -cache)")
	fs.StringVar(&cfg.cacheDir, "cachedir", "", "directory for the crash-safe on-disk set-family spill, so a restarted abwd warms instantly (implies -cache)")
	fs.DurationVar(&cfg.queryTimeout, "querytimeout", 0, "per-request computation deadline, e.g. 500ms or 2s (0 = unbounded); requests past it answer 504")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["cachedir"] && cfg.cacheDir == "" {
		fmt.Fprintln(stderr, "abwd: -cachedir needs a non-empty directory")
		fs.Usage()
		return nil, flag.ErrHelp
	}
	if cfg.queryTimeout < 0 {
		fmt.Fprintln(stderr, "abwd: -querytimeout must be non-negative")
		fs.Usage()
		return nil, flag.ErrHelp
	}
	if set["cachebytes"] || set["cachedir"] {
		cfg.cache = true
	}
	return cfg, nil
}

func run(args []string) int {
	cfg, err := parseArgs(args, os.Stderr)
	if err != nil {
		return 2
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abwd:", err)
		return 1
	}
	fmt.Printf("abwd listening on %s\n", ln.Addr())
	s := server.New()
	s.SetWorkers(cfg.workers)
	s.SetQueryTimeout(cfg.queryTimeout)
	if cfg.cache {
		s.SetCacheBytes(cfg.cacheBytes)
	}
	if cfg.cacheDir != "" {
		if err := s.SetCacheDir(cfg.cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "abwd:", err)
			return 1
		}
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Shutdown ordering: stop accepting and drain in-flight requests
	// first (srv.Shutdown), THEN flush and close the cache spill — a
	// request finishing during the drain may still enqueue families,
	// and flushing before the drain would lose them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	exit := 0
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "abwd:", err)
			exit = 1
		}
	case <-ctx.Done():
		stop() // a second signal now kills immediately (default handling)
		fmt.Println("abwd: signal received, draining")
		shCtx, cancelSh := context.WithTimeout(context.Background(), drainTimeout)
		if err := srv.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "abwd: drain:", err)
			exit = 1
		}
		cancelSh()
		<-serveErr // Serve has returned http.ErrServerClosed
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "abwd: closing cache store:", err)
		exit = 1
	}
	return exit
}
