// Command abwd runs the admission-control daemon: an HTTP/JSON service
// that owns a multirate network, tracks admitted flows, and answers
// availability queries with the paper's exact model.
//
// Usage:
//
//	abwd -addr :8080
//
// Walkthrough:
//
//	abwtopo -nodes 30 -spec | jq '{nodes}' | curl -X PUT -d @- localhost:8080/v1/network
//	curl -X POST -d '{"src":2,"dst":8,"demandMbps":2}' localhost:8080/v1/flows
//	curl localhost:8080/v1/flows
//	curl -X DELETE localhost:8080/v1/flows/1
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"abw/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// cliConfig is the parsed abwd command line.
type cliConfig struct {
	addr       string
	workers    int
	cache      bool
	cacheBytes int64
	cacheDir   string
}

// parseArgs parses and validates flags. -cachebytes and -cachedir
// imply -cache (their help says so) rather than being silently
// ignored; an explicitly empty -cachedir is a usage error.
func parseArgs(args []string, stderr io.Writer) (*cliConfig, error) {
	fs := flag.NewFlagSet("abwd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &cliConfig{}
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.workers, "workers", 0, "enumeration workers (0 = automatic, 1 = sequential)")
	fs.BoolVar(&cfg.cache, "cache", false, "enable the memo cache: set-family reuse, LP warm-starting, GET /v1/stats counters")
	fs.Int64Var(&cfg.cacheBytes, "cachebytes", 0, "retained-bytes budget for cached set families (0 = default; implies -cache)")
	fs.StringVar(&cfg.cacheDir, "cachedir", "", "directory for the crash-safe on-disk set-family spill, so a restarted abwd warms instantly (implies -cache)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["cachedir"] && cfg.cacheDir == "" {
		fmt.Fprintln(stderr, "abwd: -cachedir needs a non-empty directory")
		fs.Usage()
		return nil, flag.ErrHelp
	}
	if set["cachebytes"] || set["cachedir"] {
		cfg.cache = true
	}
	return cfg, nil
}

func run(args []string) int {
	cfg, err := parseArgs(args, os.Stderr)
	if err != nil {
		return 2
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abwd:", err)
		return 1
	}
	fmt.Printf("abwd listening on %s\n", ln.Addr())
	s := server.New()
	s.SetWorkers(cfg.workers)
	if cfg.cache {
		s.SetCacheBytes(cfg.cacheBytes)
	}
	if cfg.cacheDir != "" {
		if err := s.SetCacheDir(cfg.cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "abwd:", err)
			return 1
		}
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	defer func() {
		if err := s.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "abwd: closing cache store:", err)
		}
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "abwd:", err)
		return 1
	}
	return 0
}
