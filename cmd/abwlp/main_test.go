package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const spec = `{
  "nodes": [{"x":0,"y":0},{"x":100,"y":0},{"x":200,"y":0}],
  "query": {"src":0,"dst":2}
}`

func TestRunStdinStdout(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(nil, strings.NewReader(spec), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var ans map[string]interface{}
	if err := json.Unmarshal(out.Bytes(), &ans); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	if ans["feasible"] != true {
		t.Errorf("answer = %v", ans)
	}
}

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.json")
	outPath := filepath.Join(dir, "out.json")
	if err := os.WriteFile(in, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-i", in, "-o", outPath}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "bandwidthMbps") {
		t.Errorf("output file content: %s", data)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, strings.NewReader("{not json"), &out, &errOut); code != 1 {
		t.Errorf("bad JSON exit = %d, want 1", code)
	}
	if code := run([]string{"-i", "/nonexistent/x.json"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Errorf("missing input exit = %d, want 1", code)
	}
	if code := run([]string{"-bogus"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	// Valid JSON, unsolvable query.
	bad := `{"nodes":[{"x":0,"y":0},{"x":1000,"y":0}],"query":{"src":0,"dst":1}}`
	if code := run(nil, strings.NewReader(bad), &out, &errOut); code != 1 {
		t.Errorf("unroutable query exit = %d, want 1", code)
	}
}

// TestCacheFlagImplications pins the CLI validation satellites:
// -cachebytes and -cachedir turn the cache on by themselves, and an
// explicitly empty -cachedir is a usage error.
func TestCacheFlagImplications(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-cachebytes", "1048576", "-cachestats"}, strings.NewReader(spec), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "cacheStats") {
		t.Errorf("-cachebytes alone did not enable the cache; answer: %s", out.String())
	}
	if !strings.Contains(errOut.String(), "cache:") {
		t.Errorf("-cachestats summary missing: %s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-cachedir", ""}, strings.NewReader(spec), &out, &errOut); code != 2 {
		t.Errorf("empty -cachedir exit = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(errOut.String(), "cachedir") {
		t.Errorf("usage error does not name the flag: %s", errOut.String())
	}
}

// TestCacheDirWarmsSecondRun pins the end-to-end warm restart through
// the CLI: two separate run() invocations (separate processes in real
// use) share families through -cachedir, so the second answers from
// disk without enumerating.
func TestCacheDirWarmsSecondRun(t *testing.T) {
	dir := t.TempDir()
	stats := func() map[string]interface{} {
		t.Helper()
		var out, errOut bytes.Buffer
		if code := run([]string{"-cachedir", dir}, strings.NewReader(spec), &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errOut.String())
		}
		var ans struct {
			CacheStats map[string]interface{} `json:"cacheStats"`
		}
		if err := json.Unmarshal(out.Bytes(), &ans); err != nil {
			t.Fatalf("output not JSON: %v\n%s", err, out.String())
		}
		if ans.CacheStats == nil {
			t.Fatalf("-cachedir did not enable the cache; answer: %s", out.String())
		}
		return ans.CacheStats
	}
	cold := stats()
	if cold["diskMisses"] == float64(0) || cold["misses"] == float64(0) {
		t.Fatalf("cold run should enumerate and miss the disk: %v", cold)
	}
	warm := stats()
	if hits, ok := warm["diskHits"].(float64); !ok || hits == 0 {
		t.Errorf("second run never hit the spill: %v", warm)
	}
	if misses, ok := warm["misses"].(float64); !ok || misses != 0 {
		t.Errorf("second run re-enumerated: %v", warm)
	}
}

// TestTraceFlag pins the -trace contract: the flag adds a "trace" block
// with per-stage records, and the numeric answer is identical to an
// untraced run.
func TestTraceFlag(t *testing.T) {
	var plain, traced, errOut bytes.Buffer
	if code := run(nil, strings.NewReader(spec), &plain, &errOut); code != 0 {
		t.Fatalf("plain run: exit %d, stderr: %s", code, errOut.String())
	}
	if code := run([]string{"-trace"}, strings.NewReader(spec), &traced, &errOut); code != 0 {
		t.Fatalf("traced run: exit %d, stderr: %s", code, errOut.String())
	}

	var p, tr map[string]interface{}
	if err := json.Unmarshal(plain.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(traced.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if _, present := p["trace"]; present {
		t.Fatalf("untraced answer has a trace block: %v", p)
	}
	trace, ok := tr["trace"].(map[string]interface{})
	if !ok {
		t.Fatalf("traced answer missing trace block: %v", tr)
	}
	if trace["totalNs"].(float64) <= 0 || len(trace["stages"].([]interface{})) == 0 {
		t.Fatalf("trace block empty: %v", trace)
	}
	// The numeric answer is unchanged by tracing.
	if p["bandwidthMbps"] != tr["bandwidthMbps"] || p["feasible"] != tr["feasible"] {
		t.Fatalf("traced answer differs: %v vs %v", p, tr)
	}
}
