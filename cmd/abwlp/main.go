// Command abwlp answers availability queries from a JSON network
// description: it builds the topology, solves the exact Eq. 6 LP for
// the queried path (routing it first if only endpoints are given), and
// reports the optimal schedule plus all five distributed estimates.
//
// Usage:
//
//	abwlp < network.json
//	abwlp -i network.json -o answer.json
//
// Input format (see internal/netjson):
//
//	{
//	  "nodes": [{"x":0,"y":0},{"x":100,"y":0}],
//	  "background": [{"path":[0,1],"demand":2}],
//	  "query": {"path":[0,1]}            // or {"src":0,"dst":1,"metric":"average-e2eD"}
//	}
package main

import (
	"fmt"
	"io"
	"os"

	"flag"

	"abw/internal/netjson"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("abwlp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("i", "", "input JSON file (default: stdin)")
		out        = fs.String("o", "", "output JSON file (default: stdout)")
		workers    = fs.Int("workers", 0, "enumeration workers (0 = automatic or the spec's \"workers\" field, 1 = sequential)")
		cache      = fs.Bool("cache", false, "enable the memo cache (set-family reuse across the solve; answers are identical)")
		cacheBytes = fs.Int64("cachebytes", 0, "retained-bytes budget for cached set families (0 = default; implies -cache)")
		cacheDir   = fs.String("cachedir", "", "directory for the crash-safe on-disk set-family spill, reused across runs (implies -cache)")
		cachestats = fs.Bool("cachestats", false, "print memo-cache counters to stderr (implies -cache)")
		trace      = fs.Bool("trace", false, "record a per-stage trace (routing, enumeration, memo, LP) into the answer's \"trace\" block; the numeric answer is identical")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cacheBytesSet, cacheDirSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "cachebytes":
			cacheBytesSet = true
		case "cachedir":
			cacheDirSet = true
		}
	})
	if cacheDirSet && *cacheDir == "" {
		fmt.Fprintln(stderr, "abwlp: -cachedir needs a non-empty directory")
		fs.Usage()
		return 2
	}

	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "abwlp:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "abwlp:", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "abwlp: closing output:", err)
			}
		}()
		w = f
	}

	spec, err := netjson.ParseSpec(r)
	if err != nil {
		fmt.Fprintln(stderr, "abwlp:", err)
		return 1
	}
	if *workers != 0 {
		spec.Workers = *workers
	}
	// -cachebytes and -cachedir imply -cache (netjson.Solve applies the
	// same rule to the spec fields) instead of being silently ignored.
	if *cache || *cachestats || cacheBytesSet || cacheDirSet {
		spec.Cache = true
	}
	if cacheBytesSet {
		spec.CacheBytes = *cacheBytes
	}
	if cacheDirSet {
		spec.CacheDir = *cacheDir
	}
	if *trace {
		spec.Trace = true
	}
	ans, err := netjson.Solve(spec)
	if err != nil {
		fmt.Fprintln(stderr, "abwlp:", err)
		return 1
	}
	if err := netjson.WriteAnswer(w, ans); err != nil {
		fmt.Fprintln(stderr, "abwlp:", err)
		return 1
	}
	if *cachestats && ans.CacheStats != nil {
		st := ans.CacheStats
		fmt.Fprintf(stderr, "abwlp: cache: %d hits, %d misses, %d entries, %d bytes retained\n",
			st.Hits, st.Misses, st.Entries, st.Bytes)
	}
	return 0
}
