// Command abwbench turns `go test -bench` output into committed JSON
// baselines and gates regressions against them, so CI can fail a pull
// request that slows the tier-1 benchmarks down. It is a dependency-free
// stand-in for benchstat: the comparison runs an exact Mann-Whitney U
// test over the per-run ns/op samples and only flags differences that
// are both large (beyond -threshold) and statistically significant
// (below -alpha).
//
// Usage:
//
//	go test -bench . -count 5 ./... | abwbench parse -o BENCH_20260806.json
//	abwbench compare -old BENCH_20260806.json -new fresh.json
//
// compare exits 1 when any benchmark regresses, 0 otherwise;
// improvements and insignificant noise are reported but never fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "abwbench: want a subcommand: parse | compare")
		return 2
	}
	switch args[0] {
	case "parse":
		return runParse(args[1:], stdin, stdout, stderr)
	case "compare":
		return runCompare(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "abwbench: unknown subcommand %q (want parse or compare)\n", args[0])
		return 2
	}
}

// Baseline is the committed benchmark snapshot.
type Baseline struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's samples, one entry per -count run.
type Benchmark struct {
	Name        string    `json:"name"`
	NsPerOp     []float64 `json:"nsPerOp"`
	AllocsPerOp []float64 `json:"allocsPerOp,omitempty"`
	BytesPerOp  []float64 `json:"bytesPerOp,omitempty"`
}

func runParse(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("abwbench parse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in   = fs.String("i", "", "benchmark output file (default: stdin)")
		out  = fs.String("o", "", "output JSON file (default: stdout)")
		date = fs.String("date", time.Now().UTC().Format("2006-01-02"), "date stamp for the baseline")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "abwbench:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	b, err := parseBenchOutput(r)
	if err != nil {
		fmt.Fprintln(stderr, "abwbench:", err)
		return 1
	}
	if len(b.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "abwbench: no benchmark lines in input")
		return 1
	}
	b.Date = *date
	b.GoVersion = runtime.Version()
	b.GOOS = runtime.GOOS
	b.GOARCH = runtime.GOARCH
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "abwbench:", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "abwbench: closing output:", err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		fmt.Fprintln(stderr, "abwbench:", err)
		return 1
	}
	return 0
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFoo-8   1000   123456 ns/op   96 B/op   2 allocs/op
//
// The -N suffix is GOMAXPROCS, not part of the benchmark's identity.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

func parseBenchOutput(r io.Reader) (*Baseline, error) {
	byName := make(map[string]*Benchmark)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name}
			byName[name] = b
			order = append(order, name)
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("abwbench: bad ns/op in %q: %w", sc.Text(), err)
		}
		b.NsPerOp = append(b.NsPerOp, ns)
		if m[3] != "" {
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("abwbench: bad B/op in %q: %w", sc.Text(), err)
			}
			b.BytesPerOp = append(b.BytesPerOp, v)
		}
		if m[4] != "" {
			v, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("abwbench: bad allocs/op in %q: %w", sc.Text(), err)
			}
			b.AllocsPerOp = append(b.AllocsPerOp, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("abwbench: reading input: %w", err)
	}
	out := &Baseline{}
	for _, name := range order {
		out.Benchmarks = append(out.Benchmarks, *byName[name])
	}
	return out, nil
}

func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("abwbench compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		oldPath   = fs.String("old", "", "baseline JSON (required)")
		newPath   = fs.String("new", "", "fresh JSON to judge (required)")
		threshold = fs.Float64("threshold", 0.15, "relative ns/op regression that fails the gate")
		alpha     = fs.Float64("alpha", 0.05, "significance level of the Mann-Whitney U test")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "abwbench: compare needs -old and -new")
		return 2
	}
	oldB, err := readBaseline(*oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "abwbench:", err)
		return 1
	}
	newB, err := readBaseline(*newPath)
	if err != nil {
		fmt.Fprintln(stderr, "abwbench:", err)
		return 1
	}
	oldByName := make(map[string]Benchmark, len(oldB.Benchmarks))
	for _, b := range oldB.Benchmarks {
		oldByName[b.Name] = b
	}
	fmt.Fprintf(stdout, "comparing against baseline %s (%s %s/%s)\n",
		oldB.Date, oldB.GoVersion, oldB.GOOS, oldB.GOARCH)
	fmt.Fprintf(stdout, "%-44s %12s %12s %8s %8s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "p", "verdict")
	failed := false
	for _, nb := range newB.Benchmarks {
		ob, ok := oldByName[nb.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-44s %12s %12.0f %8s %8s  new benchmark\n",
				nb.Name, "-", median(nb.NsPerOp), "-", "-")
			continue
		}
		res := judge(ob.NsPerOp, nb.NsPerOp, *threshold, *alpha)
		fmt.Fprintf(stdout, "%-44s %12.0f %12.0f %+7.1f%% %8.3f  %s\n",
			nb.Name, res.oldMedian, res.newMedian, 100*res.delta, res.p, res.verdict)
		if res.verdict == verdictRegression {
			failed = true
		}
	}
	for _, ob := range oldB.Benchmarks {
		if !hasBench(newB.Benchmarks, ob.Name) {
			fmt.Fprintf(stdout, "%-44s %12.0f %12s %8s %8s  MISSING from new run\n",
				ob.Name, median(ob.NsPerOp), "-", "-", "-")
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(stdout, "FAIL: benchmark regression gate")
		return 1
	}
	fmt.Fprintln(stdout, "ok: no significant regressions")
	return 0
}

func hasBench(bs []Benchmark, name string) bool {
	for _, b := range bs {
		if b.Name == name {
			return true
		}
	}
	return false
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return &b, nil
}

const (
	verdictRegression  = "REGRESSION"
	verdictImprovement = "improvement"
	verdictSame        = "~"
)

type judgement struct {
	oldMedian, newMedian float64
	delta                float64 // (new-old)/old on medians
	p                    float64 // two-sided exact Mann-Whitney p
	verdict              string
}

// judge compares two ns/op sample sets. A regression needs both a
// median slowdown beyond threshold and Mann-Whitney significance below
// alpha, so single-run noise on a loaded CI machine cannot fail the
// gate by itself.
func judge(oldNs, newNs []float64, threshold, alpha float64) judgement {
	j := judgement{
		oldMedian: median(oldNs),
		newMedian: median(newNs),
		p:         mannWhitney(oldNs, newNs),
		verdict:   verdictSame,
	}
	j.delta = (j.newMedian - j.oldMedian) / j.oldMedian
	if j.p < alpha {
		switch {
		case j.delta > threshold:
			j.verdict = verdictRegression
		case j.delta < 0:
			j.verdict = verdictImprovement
		}
	}
	return j
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mannWhitney returns the exact two-sided p-value of the Mann-Whitney U
// test for the two samples: the probability, over all C(n+m, n)
// relabelings of the pooled values, of a U statistic at least as far
// from its mean nm/2 as the observed one. Ties contribute 1/2 to U
// (mid-rank convention) and are handled exactly by the enumeration. The
// sample sizes here are -count runs (a handful), so full enumeration is
// cheap.
func mannWhitney(x, y []float64) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 1
	}
	pooled := make([]float64, 0, n+m)
	pooled = append(pooled, x...)
	pooled = append(pooled, y...)
	// U for a given labeling, doubled to stay integral under the
	// mid-rank tie convention.
	u2 := func(isX []bool) int {
		u := 0
		for i := range pooled {
			if !isX[i] {
				continue
			}
			for j := range pooled {
				if isX[j] {
					continue
				}
				switch {
				case pooled[i] < pooled[j]:
					u += 2
				case pooled[i] == pooled[j]:
					u++
				}
			}
		}
		return u
	}
	isX := make([]bool, n+m)
	for i := 0; i < n; i++ {
		isX[i] = true
	}
	obs := u2(isX)
	mean2 := n * m // 2 * nm/2
	dist := abs(obs - mean2)

	// Walk every n-subset of the pooled indices.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	total, extreme := 0, 0
	for {
		for i := range isX {
			isX[i] = false
		}
		for _, i := range idx {
			isX[i] = true
		}
		total++
		if abs(u2(isX)-mean2) >= dist {
			extreme++
		}
		// Next combination in lexicographic order.
		i := n - 1
		for i >= 0 && idx[i] == i+m {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for k := i + 1; k < n; k++ {
			idx[k] = idx[k-1] + 1
		}
	}
	return float64(extreme) / float64(total)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
