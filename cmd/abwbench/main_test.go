package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: abw
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAvailableBandwidthQuery-8   	     100	    100000 ns/op	   58216 B/op	     102 allocs/op
BenchmarkAvailableBandwidthQuery-8   	     100	    101000 ns/op	   58216 B/op	     102 allocs/op
BenchmarkEnumerateScenarioII         	    5000	      2000 ns/op
PASS
ok  	abw	1.2s
`

func TestParseBenchOutput(t *testing.T) {
	b, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(b.Benchmarks), b.Benchmarks)
	}
	q := b.Benchmarks[0]
	if q.Name != "BenchmarkAvailableBandwidthQuery" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", q.Name)
	}
	if len(q.NsPerOp) != 2 || q.NsPerOp[0] != 100000 || q.NsPerOp[1] != 101000 {
		t.Errorf("ns/op samples = %v", q.NsPerOp)
	}
	if len(q.AllocsPerOp) != 2 || q.AllocsPerOp[0] != 102 {
		t.Errorf("allocs/op samples = %v", q.AllocsPerOp)
	}
	e := b.Benchmarks[1]
	if e.Name != "BenchmarkEnumerateScenarioII" || len(e.NsPerOp) != 1 || e.NsPerOp[0] != 2000 {
		t.Errorf("second benchmark = %+v", e)
	}
	if len(e.AllocsPerOp) != 0 {
		t.Errorf("benchmark without -benchmem got allocs %v", e.AllocsPerOp)
	}
}

func TestMannWhitney(t *testing.T) {
	cases := []struct {
		x, y []float64
		want float64
	}{
		// Complete separation of 5 vs 5: only the two extreme labelings
		// are as extreme, p = 2/C(10,5) = 2/252.
		{[]float64{1, 2, 3, 4, 5}, []float64{6, 7, 8, 9, 10}, 2.0 / 252},
		{[]float64{6, 7, 8, 9, 10}, []float64{1, 2, 3, 4, 5}, 2.0 / 252},
		// Identical samples: every labeling ties the observed U.
		{[]float64{5, 5, 5}, []float64{5, 5, 5}, 1},
		// Interleaved samples are indistinguishable: p stays large.
		{[]float64{1, 3, 5, 7}, []float64{2, 4, 6, 8}, 0.5},
	}
	for _, c := range cases {
		got := mannWhitney(c.x, c.y)
		if math.Abs(got-c.want) > 1e-9 && !(c.want == 0.5 && got >= 0.4) {
			t.Errorf("mannWhitney(%v, %v) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

func TestJudge(t *testing.T) {
	old := []float64{100, 101, 102, 99, 100}
	cases := []struct {
		name    string
		newNs   []float64
		verdict string
	}{
		{"clear regression", []float64{130, 131, 129, 132, 130}, verdictRegression},
		{"small slowdown under threshold", []float64{108, 109, 107, 108, 109}, verdictSame},
		{"improvement", []float64{80, 81, 79, 82, 80}, verdictImprovement},
		{"noise", []float64{100, 102, 99, 101, 100}, verdictSame},
	}
	for _, c := range cases {
		j := judge(old, c.newNs, 0.15, 0.05)
		if j.verdict != c.verdict {
			t.Errorf("%s: verdict %q (delta %.2f, p %.3f), want %q",
				c.name, j.verdict, j.delta, j.p, c.verdict)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %g", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %g", m)
	}
}

// TestEndToEnd drives parse and compare through run: a fresh run with a
// big slowdown on one benchmark must fail the gate, and the baseline
// compared against itself must pass.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"parse", "-o", oldPath, "-date", "2026-08-06"},
		strings.NewReader(benchRuns(100000, 2000)), &stdout, &stderr); code != 0 {
		t.Fatalf("parse: exit %d: %s", code, stderr.String())
	}
	var b Baseline
	data, err := os.ReadFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Date != "2026-08-06" || len(b.Benchmarks) != 2 || len(b.Benchmarks[0].NsPerOp) != 5 {
		t.Fatalf("unexpected baseline: %+v", b)
	}

	stdout.Reset()
	if code := run([]string{"compare", "-old", oldPath, "-new", oldPath}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("self-compare: exit %d: %s%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "ok: no significant regressions") {
		t.Errorf("self-compare output: %s", stdout.String())
	}

	slowPath := filepath.Join(dir, "slow.json")
	if code := run([]string{"parse", "-o", slowPath},
		strings.NewReader(benchRuns(150000, 2000)), &stdout, &stderr); code != 0 {
		t.Fatalf("parse slow: exit %d: %s", code, stderr.String())
	}
	stdout.Reset()
	if code := run([]string{"compare", "-old", oldPath, "-new", slowPath}, nil, &stdout, &stderr); code != 1 {
		t.Fatalf("regression compare: exit %d, want 1: %s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), verdictRegression) {
		t.Errorf("regression not reported: %s", stdout.String())
	}
}

// benchRuns fabricates 5-count output for two benchmarks with mild
// run-to-run spread around the given ns/op centers.
func benchRuns(q, e int) string {
	var sb strings.Builder
	for i := 0; i < 5; i++ {
		jitter := (i - 2) * (q / 200)
		fmt.Fprintf(&sb, "BenchmarkAvailableBandwidthQuery-8 \t100\t%d ns/op\n", q+jitter)
		fmt.Fprintf(&sb, "BenchmarkEnumerateScenarioII-8 \t100\t%d ns/op\n", e+(i-2))
	}
	return sb.String()
}
