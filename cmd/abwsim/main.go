// Command abwsim regenerates the paper's evaluation: every table and
// figure (DESIGN.md Sec. 2) as plain-text tables.
//
// Usage:
//
//	abwsim            # run all experiments
//	abwsim -list      # list experiment IDs
//	abwsim -e E4      # run one experiment
//	abwsim -o out.txt # write to a file instead of stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"abw/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("abwsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list = fs.Bool("list", false, "list experiment IDs and exit")
		exp  = fs.String("e", "", "run a single experiment by ID (e.g. E4)")
		out  = fs.String("o", "", "write output to this file instead of stdout")
		md   = fs.Bool("md", false, "render tables as GitHub Markdown")
		par  = fs.Int("workers", 0, "concurrent experiments when running all (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "abwsim:", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "abwsim: closing output:", err)
			}
		}()
		w = f
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Fprintln(w, e.ID)
		}
		return 0
	}

	var tables []*experiments.Table
	if *exp != "" {
		tbl, err := experiments.Run(*exp)
		if err != nil {
			fmt.Fprintln(stderr, "abwsim:", err)
			return 1
		}
		tables = append(tables, tbl)
	} else {
		var err error
		tables, err = experiments.RunAllParallel(*par)
		if err != nil {
			fmt.Fprintln(stderr, "abwsim:", err)
			return 1
		}
	}
	render := (*experiments.Table).Render
	if *md {
		render = (*experiments.Table).RenderMarkdown
	}
	for _, tbl := range tables {
		if err := render(tbl, w); err != nil {
			fmt.Fprintln(stderr, "abwsim:", err)
			return 1
		}
	}
	return 0
}
