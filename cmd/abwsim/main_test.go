package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := strings.Fields(out.String())
	if len(got) != 17 || got[0] != "E1" || got[16] != "E17" {
		t.Errorf("list = %v", got)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-e", "E2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "16.2000") {
		t.Errorf("E2 output missing the 16.2 optimum:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-e", "E99"}, &out, &errOut); code == 0 {
		t.Error("unknown experiment should fail")
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

func TestRunOutputFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	var out, errOut bytes.Buffer
	if code := run([]string{"-e", "E1", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "37.80") {
		t.Errorf("output file missing E1 numbers:\n%s", data)
	}
	// Unwritable output path fails cleanly.
	if code := run([]string{"-e", "E1", "-o", filepath.Join(dir, "nope", "x.txt")}, &out, &errOut); code != 1 {
		t.Errorf("unwritable path exit = %d, want 1", code)
	}
}

func TestRunMarkdown(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-e", "E1", "-md"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "## E1 —") || !strings.Contains(s, "|---|") {
		t.Errorf("not Markdown output:\n%s", s)
	}
}
