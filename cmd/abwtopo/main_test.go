package main

import (
	"bytes"
	"strings"
	"testing"

	"abw/internal/netjson"
)

func TestRunSummary(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nodes", "10", "-seed", "3"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"nodes: 10", "link rate histogram", "degree"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestRunDot(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nodes", "5", "-dot"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.HasPrefix(s, "digraph abw {") || !strings.Contains(s, "pos=") {
		t.Errorf("not Graphviz output:\n%s", s)
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b, errOut bytes.Buffer
	if code := run([]string{"-seed", "9"}, &a, &errOut); code != 0 {
		t.Fatal(errOut.String())
	}
	if code := run([]string{"-seed", "9"}, &b, &errOut); code != 0 {
		t.Fatal(errOut.String())
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestRunBadArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nodes", "0"}, &out, &errOut); code != 1 {
		t.Errorf("zero nodes exit = %d, want 1", code)
	}
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

func TestRunSpecPipesIntoSolver(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nodes", "6", "-seed", "1", "-spec"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	spec, err := netjson.ParseSpec(&out)
	if err != nil {
		t.Fatalf("emitted spec does not parse: %v", err)
	}
	if len(spec.Nodes) != 6 {
		t.Errorf("spec has %d nodes, want 6", len(spec.Nodes))
	}
	if spec.Query.Src == nil || spec.Query.Dst == nil {
		t.Fatal("spec query missing endpoints")
	}
	// The emitted spec must be directly solvable (or fail only with "no
	// route" on an unlucky draw — seed 1 is connected).
	if _, err := netjson.Solve(spec); err != nil {
		t.Errorf("emitted spec not solvable: %v", err)
	}
}
