// Command abwtopo generates and inspects random multirate topologies
// under the paper's Sec. 5.2 radio profile (30 nodes in 400m x 600m by
// default).
//
// Usage:
//
//	abwtopo                     # paper defaults, summary + node table
//	abwtopo -nodes 50 -seed 7   # bigger network
//	abwtopo -dot                # Graphviz output of the link graph
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"abw/internal/geom"
	"abw/internal/graph"
	"abw/internal/netjson"
	"abw/internal/radio"
	"abw/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("abwtopo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes = fs.Int("nodes", 30, "number of nodes")
		w     = fs.Float64("w", 400, "area width in meters")
		h     = fs.Float64("h", 600, "area height in meters")
		seed  = fs.Int64("seed", 26, "placement seed")
		dot   = fs.Bool("dot", false, "emit Graphviz instead of the summary")
		spec  = fs.Bool("spec", false, "emit a netjson spec skeleton for abwlp instead of the summary")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	net, err := topology.Random(radio.NewProfile80211a(), geom.Rect{W: *w, H: *h}, *nodes, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "abwtopo:", err)
		return 1
	}
	switch {
	case *dot:
		writeDot(stdout, net)
	case *spec:
		if err := writeSpec(stdout, net); err != nil {
			fmt.Fprintln(stderr, "abwtopo:", err)
			return 1
		}
	default:
		writeSummary(stdout, net)
	}
	return 0
}

// writeSpec emits a netjson document with the generated node positions
// and a placeholder query, ready to edit and pipe into abwlp.
func writeSpec(out io.Writer, net *topology.Network) error {
	spec := netjson.Spec{}
	for _, n := range net.Nodes() {
		spec.Nodes = append(spec.Nodes, netjson.NodeSpec{X: n.Pos.X, Y: n.Pos.Y})
	}
	src, dst := 0, net.NumNodes()-1
	spec.Query = netjson.QuerySpec{Src: &src, Dst: &dst, Metric: "average-e2eD"}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&spec)
}

func writeSummary(out io.Writer, net *topology.Network) {
	fmt.Fprintf(out, "nodes: %d   directed links: %d   connected: %v\n",
		net.NumNodes(), net.NumLinks(), graph.Connected(net))
	hist := map[radio.Rate]int{}
	for _, l := range net.Links() {
		hist[l.MaxRate]++
	}
	fmt.Fprint(out, "link rate histogram:")
	for _, r := range net.Profile().Rates() {
		fmt.Fprintf(out, "  %v:%d", r, hist[r])
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "\nnode  x(m)    y(m)    degree")
	for _, n := range net.Nodes() {
		fmt.Fprintf(out, "%-5d %-7.1f %-7.1f %d\n", n.ID, n.Pos.X, n.Pos.Y, len(net.OutLinks(n.ID)))
	}
}

func writeDot(out io.Writer, net *topology.Network) {
	fmt.Fprintln(out, "digraph abw {")
	fmt.Fprintln(out, `  node [shape=circle];`)
	for _, n := range net.Nodes() {
		fmt.Fprintf(out, "  n%d [pos=\"%.1f,%.1f!\"];\n", n.ID, n.Pos.X, n.Pos.Y)
	}
	for _, l := range net.Links() {
		fmt.Fprintf(out, "  n%d -> n%d [label=\"%v\"];\n", l.Tx, l.Rx, l.MaxRate)
	}
	fmt.Fprintln(out, "}")
}
