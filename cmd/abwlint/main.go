// Command abwlint runs the repo-specific static analyzers of
// internal/lint over the module:
//
//	abwlint ./...            # human-readable findings, exit 1 if any
//	abwlint -json ./...      # machine-readable, sorted by file:line
//	abwlint -rules           # list the rules and what they guard
//
// Findings are suppressed case by case with
// `//lint:ignore abw/<rule> <reason>` on (or directly above) the
// flagged line; see internal/lint. Exit codes: 0 clean, 1 findings,
// 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"abw/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("abwlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	listRules := fs.Bool("rules", false, "list the analyzer rules and exit")
	dir := fs.String("C", "", "run as if launched from this directory")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: abwlint [-json] [-C dir] [patterns ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *listRules {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s\n    %s\n", a.ID(), a.Doc)
			if len(a.Packages) > 0 {
				fmt.Fprintf(stdout, "    scope: %v\n", a.Packages)
			}
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader()
	loader.Dir = *dir
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "abwlint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	relativize(diags, loader.ModuleRoot())

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "abwlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "abwlint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relativize rewrites absolute file names relative to the module root
// (forward slashes) so output is stable across checkouts. Relative
// paths share the root prefix, so the sorted order is preserved; the
// re-sort below only exists to keep the "always sorted" contract
// independent of that argument.
func relativize(diags []lint.Diagnostic, root string) {
	if root == "" {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !filepath.IsAbs(rel) {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
}
