// Command abwlint runs the repo-specific static analyzers of
// internal/lint over the module:
//
//	abwlint ./...                  # human-readable findings, exit 1 if any
//	abwlint -json ./...            # machine-readable, sorted by file:line
//	abwlint -list                  # list the rules and what they guard
//	abwlint -rules abw/errflow ./...  # run a subset of the rules
//	abwlint -tests=false ./...     # skip _test.go files (they lint by default)
//	abwlint -diff ./...            # print suggested fixes as a unified diff
//	abwlint -fix ./...             # apply suggested fixes, then re-lint
//
// Findings are suppressed case by case with
// `//lint:ignore abw/<rule> <reason>` on (or directly above) the
// flagged line; see internal/lint. Exit codes: 0 clean, 1 findings,
// 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"abw/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("abwlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	listRules := fs.Bool("list", false, "list the analyzer rules and exit")
	ruleFilter := fs.String("rules", "", "comma-separated rules to run (abw/name or name); default all")
	tests := fs.Bool("tests", true, "lint _test.go files too")
	fix := fs.Bool("fix", false, "apply suggested fixes in place, then re-lint")
	diff := fs.Bool("diff", false, "print suggested fixes as a unified diff without writing")
	dir := fs.String("C", "", "run as if launched from this directory")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: abwlint [-json] [-C dir] [-tests=bool] [-rules list] [-fix|-diff] [patterns ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *listRules {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s\n    %s\n", a.ID(), a.Doc)
			if len(a.Packages) > 0 {
				fmt.Fprintf(stdout, "    scope: %v\n", a.Packages)
			}
		}
		return 0
	}
	if *ruleFilter != "" {
		var err error
		analyzers, err = filterRules(analyzers, *ruleFilter)
		if err != nil {
			fmt.Fprintf(stderr, "abwlint: %v\n", err)
			return 2
		}
	}
	if *fix && *diff {
		fmt.Fprintf(stderr, "abwlint: -fix and -diff are mutually exclusive\n")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	lintOnce := func() ([]lint.Diagnostic, string, int) {
		loader := lint.NewLoader()
		loader.Dir = *dir
		loader.Tests = *tests
		pkgs, err := loader.Load(patterns...)
		if err != nil {
			fmt.Fprintf(stderr, "abwlint: %v\n", err)
			return nil, "", 2
		}
		return lint.Run(pkgs, analyzers), loader.ModuleRoot(), 0
	}
	diags, root, code := lintOnce()
	if code != 0 {
		return code
	}

	if *fix || *diff {
		results, err := lint.ApplyFixes(diags, *diff)
		if err != nil {
			fmt.Fprintf(stderr, "abwlint: %v\n", err)
			return 2
		}
		if *diff {
			for _, r := range results {
				writeDiff(stdout, relPath(r.File, root), r.Before, r.After)
			}
			return 0
		}
		applied, skipped := 0, 0
		for _, r := range results {
			applied += r.Applied
			skipped += r.Skipped
		}
		fmt.Fprintf(stderr, "abwlint: applied %d fix(es) in %d file(s)", applied, len(results))
		if skipped > 0 {
			fmt.Fprintf(stderr, ", %d skipped (overlapping; rerun -fix)", skipped)
		}
		fmt.Fprintln(stderr)
		// Re-lint so the exit code and output reflect the tree as fixed.
		if diags, root, code = lintOnce(); code != 0 {
			return code
		}
	}

	relativize(diags, root)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "abwlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "abwlint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// filterRules resolves a comma-separated rule list, accepting names
// with or without the abw/ prefix; unknown names are a usage error.
func filterRules(all []*lint.Analyzer, filter string) ([]*lint.Analyzer, error) {
	byID := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byID[a.ID()] = a
		byID[a.Name] = a
	}
	var out []*lint.Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byID[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (try -list)", name)
		}
		if !seen[a.ID()] {
			seen[a.ID()] = true
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rules selected no rules")
	}
	return out, nil
}

func relPath(file, root string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return file
}

// writeDiff emits a minimal unified diff between two versions of one
// file: a single hunk per contiguous run of changed lines, computed by
// trimming the common prefix and suffix — exact enough for the
// line-local rewrites the rules suggest, with no quadratic diff cost.
func writeDiff(w io.Writer, name string, before, after []byte) {
	a := strings.SplitAfter(string(before), "\n")
	b := strings.SplitAfter(string(after), "\n")
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	suf := 0
	for suf < len(a)-pre && suf < len(b)-pre && a[len(a)-1-suf] == b[len(b)-1-suf] {
		suf++
	}
	if pre == len(a) && pre == len(b) {
		return // identical
	}
	fmt.Fprintf(w, "--- %s\n+++ %s\n", name, name)
	fmt.Fprintf(w, "@@ -%d,%d +%d,%d @@\n", pre+1, len(a)-pre-suf, pre+1, len(b)-pre-suf)
	for _, line := range a[pre : len(a)-suf] {
		fmt.Fprintf(w, "-%s", ensureNL(line))
	}
	for _, line := range b[pre : len(b)-suf] {
		fmt.Fprintf(w, "+%s", ensureNL(line))
	}
}

func ensureNL(s string) string {
	if strings.HasSuffix(s, "\n") {
		return s
	}
	return s + "\n"
}

// relativize rewrites absolute file names relative to the module root
// (forward slashes) so output is stable across checkouts. Relative
// paths share the root prefix, so the sorted order is preserved; the
// re-sort below only exists to keep the "always sorted" contract
// independent of that argument.
func relativize(diags []lint.Diagnostic, root string) {
	if root == "" {
		return
	}
	for i := range diags {
		diags[i].File = relPath(diags[i].File, root)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
}
