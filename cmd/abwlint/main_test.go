package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// writeModule materializes files (path -> contents) as a throwaway
// module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtyPkg = `package dirty

import "math/rand"

func Roll() int  { return rand.Intn(6) }
func Flip() bool { return rand.Float64() < 0.5 }
`

func TestJSONShapeAndOrder(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":         "module fixturemod\n\ngo 1.22\n",
		"dirty/dirty.go": dirtyPkg,
		"b/b.go": `package b

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	var out, errw bytes.Buffer
	code := run([]string{"-C", dir, "-json", "./..."}, &out, &errw)
	if code != 1 {
		t.Fatalf("want exit 1 on findings, got %d (stderr: %s)", code, errw.String())
	}

	// The field-name contract for downstream tooling: exactly rule,
	// file, line, col, message.
	var shape []map[string]any
	if err := json.Unmarshal(out.Bytes(), &shape); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(shape) != 3 {
		t.Fatalf("want 3 findings (2 globalrand + 1 timenow), got %d:\n%s", len(shape), out.String())
	}
	wantKeys := []string{"col", "file", "line", "message", "rule"}
	for _, obj := range shape {
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if strings.Join(keys, ",") != strings.Join(wantKeys, ",") {
			t.Errorf("JSON field names %v, want %v", keys, wantKeys)
		}
	}

	// Sorted by file then line, with module-relative slash paths.
	type diag struct {
		Rule string `json:"rule"`
		File string `json:"file"`
		Line int    `json:"line"`
	}
	var diags []diag
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if filepath.IsAbs(d.File) || strings.Contains(d.File, `\`) {
			t.Errorf("file %q should be module-relative with forward slashes", d.File)
		}
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics not sorted by file:line: %v before %v", a, b)
		}
	}
	if diags[0].File != "b/b.go" || diags[0].Rule != "abw/timenow" {
		t.Errorf("first finding should be b/b.go timenow, got %+v", diags[0])
	}
	if diags[1].File != "dirty/dirty.go" || diags[1].Rule != "abw/globalrand" {
		t.Errorf("second finding should be dirty/dirty.go globalrand, got %+v", diags[1])
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module fixturemod\n\ngo 1.22\n",
		"ok/ok.go":   "package ok\n\nfunc Two() int { return 2 }\n",
		"ok2/ok2.go": "package ok2\n\nfunc Three() int { return 3 }\n",
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("want exit 0 on a clean module, got %d: %s%s", code, out.String(), errw.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output should be an empty array, got %q", got)
	}
}

func TestSuppressedFindingExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",
		"dirty/dirty.go": `package dirty

import "math/rand"

func Roll() int {
	//lint:ignore abw/globalrand demo module: determinism waived here on purpose
	return rand.Intn(6)
}
`,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &out, &errw); code != 0 {
		t.Fatalf("want exit 0 with suppression, got %d: %s%s", code, out.String(), errw.String())
	}
}

func TestTextOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":         "module fixturemod\n\ngo 1.22\n",
		"dirty/dirty.go": dirtyPkg,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &out, &errw); code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	if !strings.Contains(out.String(), "dirty/dirty.go:5:") || !strings.Contains(out.String(), "(abw/globalrand)") {
		t.Errorf("text output missing file:line or rule tag:\n%s", out.String())
	}
}

func TestRulesFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-rules"}, &out, &errw); code != 0 {
		t.Fatalf("-rules should exit 0, got %d", code)
	}
	for _, rule := range []string{"abw/atomicfield", "abw/floateq", "abw/globalrand", "abw/maporder", "abw/timenow"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-rules output missing %s:\n%s", rule, out.String())
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errw); code != 2 {
		t.Fatalf("want exit 2 on bad usage, got %d", code)
	}
}
