package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// writeModule materializes files (path -> contents) as a throwaway
// module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtyPkg = `package dirty

import "math/rand"

func Roll() int  { return rand.Intn(6) }
func Flip() bool { return rand.Float64() < 0.5 }
`

func TestJSONShapeAndOrder(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":         "module fixturemod\n\ngo 1.22\n",
		"dirty/dirty.go": dirtyPkg,
		"b/b.go": `package b

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	var out, errw bytes.Buffer
	code := run([]string{"-C", dir, "-json", "./..."}, &out, &errw)
	if code != 1 {
		t.Fatalf("want exit 1 on findings, got %d (stderr: %s)", code, errw.String())
	}

	// The field-name contract for downstream tooling: exactly rule,
	// file, line, col, message.
	var shape []map[string]any
	if err := json.Unmarshal(out.Bytes(), &shape); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(shape) != 3 {
		t.Fatalf("want 3 findings (2 globalrand + 1 timenow), got %d:\n%s", len(shape), out.String())
	}
	wantKeys := []string{"col", "file", "line", "message", "rule"}
	for _, obj := range shape {
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if strings.Join(keys, ",") != strings.Join(wantKeys, ",") {
			t.Errorf("JSON field names %v, want %v", keys, wantKeys)
		}
	}

	// Sorted by file then line, with module-relative slash paths.
	type diag struct {
		Rule string `json:"rule"`
		File string `json:"file"`
		Line int    `json:"line"`
	}
	var diags []diag
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if filepath.IsAbs(d.File) || strings.Contains(d.File, `\`) {
			t.Errorf("file %q should be module-relative with forward slashes", d.File)
		}
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics not sorted by file:line: %v before %v", a, b)
		}
	}
	if diags[0].File != "b/b.go" || diags[0].Rule != "abw/timenow" {
		t.Errorf("first finding should be b/b.go timenow, got %+v", diags[0])
	}
	if diags[1].File != "dirty/dirty.go" || diags[1].Rule != "abw/globalrand" {
		t.Errorf("second finding should be dirty/dirty.go globalrand, got %+v", diags[1])
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module fixturemod\n\ngo 1.22\n",
		"ok/ok.go":   "package ok\n\nfunc Two() int { return 2 }\n",
		"ok2/ok2.go": "package ok2\n\nfunc Three() int { return 3 }\n",
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("want exit 0 on a clean module, got %d: %s%s", code, out.String(), errw.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output should be an empty array, got %q", got)
	}
}

func TestSuppressedFindingExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",
		"dirty/dirty.go": `package dirty

import "math/rand"

func Roll() int {
	//lint:ignore abw/globalrand demo module: determinism waived here on purpose
	return rand.Intn(6)
}
`,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &out, &errw); code != 0 {
		t.Fatalf("want exit 0 with suppression, got %d: %s%s", code, out.String(), errw.String())
	}
}

func TestTextOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":         "module fixturemod\n\ngo 1.22\n",
		"dirty/dirty.go": dirtyPkg,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &out, &errw); code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	if !strings.Contains(out.String(), "dirty/dirty.go:5:") || !strings.Contains(out.String(), "(abw/globalrand)") {
		t.Errorf("text output missing file:line or rule tag:\n%s", out.String())
	}
}

func TestListFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list should exit 0, got %d", code)
	}
	for _, rule := range []string{
		"abw/atomicfield", "abw/ctxflow", "abw/errflow", "abw/floateq",
		"abw/globalrand", "abw/lockguard", "abw/maporder", "abw/timenow",
	} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, out.String())
		}
	}
}

func TestRulesFilter(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":         "module fixturemod\n\ngo 1.22\n",
		"dirty/dirty.go": dirtyPkg,
		"b/b.go": `package b

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "-rules", "abw/timenow", "-json", "./..."}, &out, &errw); code != 1 {
		t.Fatalf("want exit 1, got %d: %s", code, errw.String())
	}
	var diags []map[string]any
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0]["rule"] != "abw/timenow" {
		t.Errorf("-rules abw/timenow ran other rules: %v", diags)
	}

	// The bare name and a duplicate both resolve to the same rule.
	out.Reset()
	if code := run([]string{"-C", dir, "-rules", "timenow,abw/timenow", "-json", "./..."}, &out, &errw); code != 1 {
		t.Fatalf("bare-name filter: want exit 1, got %d", code)
	}

	// An unknown rule is a usage error.
	if code := run([]string{"-C", dir, "-rules", "abw/nope", "./..."}, &out, &errw); code != 2 {
		t.Fatalf("unknown rule: want exit 2, got %d", code)
	}
	if !strings.Contains(errw.String(), "unknown rule") {
		t.Errorf("stderr missing unknown-rule message: %s", errw.String())
	}
}

func TestTestsFlag(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc Two() int { return 2 }\n",
		"a/a_test.go": `package a

import "math/rand"

func roll() int { return rand.Intn(6) }
`,
	})
	var out, errw bytes.Buffer
	// Test files lint by default.
	if code := run([]string{"-C", dir, "./..."}, &out, &errw); code != 1 {
		t.Fatalf("default run should see the _test.go finding, got exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "a/a_test.go") {
		t.Errorf("finding not attributed to the test file:\n%s", out.String())
	}
	// -tests=false restores the production-only view.
	out.Reset()
	if code := run([]string{"-C", dir, "-tests=false", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("-tests=false should exit 0, got %d: %s", code, out.String())
	}
}

const fixableMod = `package e

import "io"

func IsEOF(err error) bool { return err == io.EOF }
`

func TestFixRoundTrip(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",
		"e/e.go": fixableMod,
	})
	var out, errw bytes.Buffer
	// -fix applies the rewrite and re-lints: the module is clean after,
	// so the exit code is 0.
	if code := run([]string{"-C", dir, "-fix", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("-fix round trip: want exit 0, got %d\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(errw.String(), "applied 1 fix(es)") {
		t.Errorf("stderr missing fix summary: %s", errw.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "e", "e.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "errors.Is(err, io.EOF)") || !strings.Contains(string(src), `"errors"`) {
		t.Errorf("fix not applied on disk:\n%s", src)
	}
	// A second run finds nothing fixable: zero findings, exit 0.
	out.Reset()
	errw.Reset()
	if code := run([]string{"-C", dir, "./..."}, &out, &errw); code != 0 {
		t.Fatalf("re-lint after -fix: want exit 0, got %d: %s", code, out.String())
	}
}

func TestDiffDoesNotWrite(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",
		"e/e.go": fixableMod,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "-diff", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("-diff: want exit 0, got %d: %s", code, errw.String())
	}
	for _, want := range []string{"--- e/e.go", "+++ e/e.go", "@@ ", "errors.Is(err, io.EOF)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-diff output missing %q:\n%s", want, out.String())
		}
	}
	src, err := os.ReadFile(filepath.Join(dir, "e", "e.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != fixableMod {
		t.Errorf("-diff modified the file:\n%s", src)
	}
}

func TestFixDiffExclusive(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-fix", "-diff"}, &out, &errw); code != 2 {
		t.Fatalf("-fix -diff together: want exit 2, got %d", code)
	}
}

// TestJSONFixField pins the fix field contract: present (with edits)
// on fixable findings, absent otherwise.
func TestJSONFixField(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":         "module fixturemod\n\ngo 1.22\n",
		"e/e.go":         fixableMod,
		"dirty/dirty.go": dirtyPkg,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &out, &errw); code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	var diags []map[string]any
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		_, hasFix := d["fix"]
		switch d["rule"] {
		case "abw/errflow":
			if !hasFix {
				t.Errorf("errflow finding missing fix field: %v", d)
			}
		case "abw/globalrand":
			if hasFix {
				t.Errorf("globalrand finding carries a fix field: %v", d)
			}
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errw); code != 2 {
		t.Fatalf("want exit 2 on bad usage, got %d", code)
	}
}
