package abw

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func lineSystem(t *testing.T, n int, spacing float64) *System {
	t.Helper()
	sys, err := NewSystem(Line(n, spacing))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemLayouts(t *testing.T) {
	tests := []struct {
		name   string
		layout Layout
		nodes  int
	}{
		{"line", Line(5, 50), 5},
		{"grid", Grid(9, 3, 50), 9},
		{"random", Random(30, 400, 600, 1), 30},
		{"positions", Positions(Point{X: 0}, Point{X: 50}), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sys, err := NewSystem(tt.layout)
			if err != nil {
				t.Fatal(err)
			}
			if sys.NumNodes() != tt.nodes {
				t.Errorf("NumNodes = %d, want %d", sys.NumNodes(), tt.nodes)
			}
			if sys.Network() == nil || sys.Model() == nil {
				t.Error("accessors returned nil")
			}
		})
	}
}

func TestNewSystemErrors(t *testing.T) {
	bad := []struct {
		name   string
		layout Layout
	}{
		{"nil", nil},
		{"empty positions", Positions()},
		{"bad random", Random(0, 400, 600, 1)},
		{"bad grid", Grid(0, 3, 50)},
		{"bad line", Line(3, 0)},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSystem(tt.layout); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPathCapacityChain(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.PathCapacity(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("chain capacity should be feasible")
	}
	// The 4-hop 100m chain supports exactly 54/11 Mbps (link adaptation
	// reuses hop 0 at 6 Mbps beside hop 3 at 18).
	if math.Abs(res.Bandwidth-54.0/11) > 1e-6 {
		t.Errorf("capacity = %.6f, want 54/11 = %.6f", res.Bandwidth, 54.0/11)
	}
	if err := res.Schedule.Validate(sys.Model()); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestAvailableBandwidthWithBackground(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	bg := []Flow{{Path: path, Demand: 2}}
	res, err := sys.AvailableBandwidth(bg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("2 Mbps background should be schedulable")
	}
	want := 54.0/11 - 2
	if math.Abs(res.Bandwidth-want) > 1e-6 {
		t.Errorf("available = %.6f, want %.6f", res.Bandwidth, want)
	}
	// Infeasible background.
	overload := []Flow{{Path: path, Demand: 100}}
	res, err = sys.AvailableBandwidth(overload, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("100 Mbps background should be infeasible")
	}
}

func TestUpperBoundDominatesExact(t *testing.T) {
	sys := lineSystem(t, 4, 100)
	path, err := sys.PathBetween(0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := sys.PathCapacity(path)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := sys.UpperBound(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if ub < exact.Bandwidth-1e-6 {
		t.Errorf("upper bound %.4f below exact %.4f", ub, exact.Bandwidth)
	}
}

func TestRouteMetrics(t *testing.T) {
	sys := lineSystem(t, 5, 50)
	for _, metric := range []RouteMetric{RouteHopCount, RouteE2ETD, RouteAvgE2ED} {
		path, err := sys.Route(metric, 0, 4, nil)
		if err != nil {
			t.Errorf("%v: %v", metric, err)
			continue
		}
		if err := sys.Network().ValidatePath(path); err != nil {
			t.Errorf("%v produced invalid path: %v", metric, err)
		}
	}
}

func TestAdmitSequence(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	reqs := []Request{
		{Src: 0, Dst: 4, Demand: 2},
		{Src: 0, Dst: 4, Demand: 2},
		{Src: 0, Dst: 4, Demand: 2},
	}
	decs, err := sys.Admit(RouteAvgE2ED, reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	if !decs[0].Admitted || !decs[1].Admitted {
		t.Error("first two 2 Mbps flows should fit in 54/11 Mbps")
	}
	if len(decs) != 3 || decs[2].Admitted {
		t.Errorf("third flow should fail (%.3f available)", decs[2].Available)
	}
}

// TestAdmitWithCacheMatchesUncached pins the facade contract of
// WithCache: same decisions and bandwidths as a cache-less system, with
// the counters proving the cache actually engaged.
func TestAdmitWithCacheMatchesUncached(t *testing.T) {
	plain := lineSystem(t, 5, 100)
	cached, err := NewSystem(Line(5, 100), WithCache(0))
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{Src: 0, Dst: 4, Demand: 2},
		{Src: 1, Dst: 3, Demand: 1},
		{Src: 0, Dst: 4, Demand: 2},
		{Src: 0, Dst: 4, Demand: 2},
	}
	want, err := plain.Admit(RouteAvgE2ED, reqs, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.Admit(RouteAvgE2ED, reqs, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d decisions cached, %d uncached", len(got), len(want))
	}
	for i := range want {
		if got[i].Admitted != want[i].Admitted {
			t.Errorf("decision %d: admitted %v cached, %v uncached", i, got[i].Admitted, want[i].Admitted)
		}
		if math.Abs(got[i].Available-want[i].Available) > 1e-7 {
			t.Errorf("decision %d: available %.12g cached, %.12g uncached",
				i, got[i].Available, want[i].Available)
		}
	}
	st := cached.CacheStats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Errorf("cache never engaged: %+v", st)
	}
	if zero := plain.CacheStats(); zero.Hits != 0 || zero.Misses != 0 {
		t.Errorf("cache-less system reports activity: %+v", zero)
	}
}

func TestEstimators(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	short, err := sys.PathBetween(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	bg := []Flow{{Path: short, Demand: 3}}
	all, err := sys.EstimateAll(bg, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("got %d estimates, want 5", len(all))
	}
	single, err := sys.Estimate(EstimateConservativeClique, bg, path)
	if err != nil {
		t.Fatal(err)
	}
	if single != all[EstimateConservativeClique] {
		t.Error("Estimate disagrees with EstimateAll")
	}
	// Dominance chain from the paper holds through the facade.
	if all[EstimateECTT] > all[EstimateConservativeClique]+1e-9 {
		t.Error("ECTT should not exceed conservative clique")
	}
	if all[EstimateMinOfBoth] > all[EstimateCliqueConstraint]+1e-9 ||
		all[EstimateMinOfBoth] > all[EstimateBottleneckNode]+1e-9 {
		t.Error("min-of-both should not exceed its components")
	}
}

func TestSimulateDeliversSchedule(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.PathCapacity(path)
	if err != nil {
		t.Fatal(err)
	}
	delivered, err := sys.Simulate(res.Schedule, []Flow{{Path: path, Demand: res.Bandwidth}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if delivered[0] < 0.85*res.Bandwidth {
		t.Errorf("simulated goodput %.3f far below scheduled %.3f", delivered[0], res.Bandwidth)
	}
}

func TestFeasibleDemandsAndScale(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ok, sched, err := sys.FeasibleDemands([]Flow{{Path: path, Demand: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("4 Mbps should be feasible on a 54/11 Mbps chain")
	}
	if err := sched.Validate(sys.Model()); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	theta, err := sys.MaxDemandScale(nil, []Flow{{Path: path, Demand: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(theta-54.0/11) > 1e-6 {
		t.Errorf("theta = %.6f, want 54/11", theta)
	}
}

func TestRouteByEstimate(t *testing.T) {
	sys, err := NewSystem(Grid(9, 3, 80))
	if err != nil {
		t.Fatal(err)
	}
	path, est, err := sys.RouteByEstimate(EstimateConservativeClique, 0, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Errorf("estimate = %g", est)
	}
	if err := sys.Network().ValidatePath(path); err != nil {
		t.Errorf("invalid path: %v", err)
	}
	// The returned estimate matches evaluating the estimator directly.
	direct, err := sys.Estimate(EstimateConservativeClique, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-direct) > 1e-9 {
		t.Errorf("router estimate %.4f != direct %.4f", est, direct)
	}
}

func TestDistributedRouteMatchesCentralized(t *testing.T) {
	sys, err := NewSystem(Grid(9, 3, 80))
	if err != nil {
		t.Fatal(err)
	}
	dvPath, stats, err := sys.DistributedRoute(RouteE2ETD, 0, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds <= 0 || stats.Messages <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	central, err := sys.Route(RouteE2ETD, 0, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both must achieve the same e2eTD cost (paths may tie).
	cost := func(p Path) float64 {
		total := 0.0
		for _, lid := range p {
			l, err := sys.Network().Link(lid)
			if err != nil {
				t.Fatal(err)
			}
			total += 1 / float64(l.MaxRate)
		}
		return total
	}
	if math.Abs(cost(dvPath)-cost(central)) > 1e-9 {
		t.Errorf("dv cost %.6f != centralized %.6f", cost(dvPath), cost(central))
	}
}

func TestMaxMinFairFacade(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	alloc, sched, err := sys.MaxMinFair([]Flow{{Path: path}, {Path: path}})
	if err != nil {
		t.Fatal(err)
	}
	// Two identical flows split the 54/11 chain capacity evenly.
	want := 54.0 / 11 / 2
	for j, a := range alloc {
		if math.Abs(a-want) > 1e-6 {
			t.Errorf("flow %d allocation = %.4f, want %.4f", j, a, want)
		}
	}
	if err := sched.Validate(sys.Model()); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestGreedyScheduleFacade(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	sched, ok, err := sys.GreedySchedule([]Flow{{Path: path, Demand: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("4 Mbps per hop should fit greedily")
	}
	if err := sched.Validate(sys.Model()); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	if _, _, err := sys.GreedySchedule([]Flow{{Path: path, Demand: 0}}); err == nil {
		t.Error("zero demand: expected error")
	}
}

func TestFixedRateCliqueBoundFacade(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := sys.FixedRateCliqueBound(path)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := sys.PathCapacity(path)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: the fixed-rate clique "bound" falls below the
	// multirate optimum here (4.5 < 54/11).
	if bound >= exact.Bandwidth {
		t.Errorf("fixed-rate bound %.4f should sit below the multirate optimum %.4f on this chain",
			bound, exact.Bandwidth)
	}
	if math.Abs(bound-4.5) > 1e-9 {
		t.Errorf("fixed-rate bound = %.4f, want 18/4 = 4.5", bound)
	}
}

func TestExplainFacade(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := sys.Explain(EstimateConservativeClique, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.Estimate(EstimateConservativeClique, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp.Value-direct) > 1e-9 {
		t.Errorf("explain %.4f != estimate %.4f", exp.Value, direct)
	}
	if exp.BindingClique.Len() == 0 {
		t.Error("expected a binding clique on a chain")
	}
}

func TestSystemOptions(t *testing.T) {
	// Larger CS factor: more nodes sense a transmitter.
	small, err := NewSystem(Line(4, 100), WithCSRangeFactor(1.0))
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewSystem(Line(4, 100), WithCSRangeFactor(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if small.Network().Profile().CSRange() >= big.Network().Profile().CSRange() {
		t.Error("CS range factor not applied")
	}
	// Noise margin: more headroom means concurrent sets survive more
	// interference, so capacity can only rise.
	quiet, err := NewSystem(Line(5, 100), WithNoiseMarginDB(10))
	if err != nil {
		t.Fatal(err)
	}
	loud := lineSystem(t, 5, 100)
	path := Path{}
	path, err = loud.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := quiet.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	loudCap, err := loud.PathCapacity(path)
	if err != nil {
		t.Fatal(err)
	}
	quietCap, err := quiet.PathCapacity(qp)
	if err != nil {
		t.Fatal(err)
	}
	if quietCap.Bandwidth < loudCap.Bandwidth-1e-9 {
		t.Errorf("lower noise (%.4f) should not reduce capacity vs default (%.4f)",
			quietCap.Bandwidth, loudCap.Bandwidth)
	}
}

// TestWithCacheDirWarmRestart pins the facade contract of WithCacheDir:
// a System spills its set families to the directory, and a second
// System opened on the same directory answers its first query from
// disk — no enumeration, identical bandwidth.
func TestWithCacheDirWarmRestart(t *testing.T) {
	dir := t.TempDir()
	first, err := NewSystem(Line(5, 100), WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	path, err := first.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := first.PathCapacity(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := first.CacheStats(); st.Misses == 0 || st.DiskMisses == 0 {
		t.Fatalf("cold system should miss memory and disk: %+v", st)
	}
	if err := first.Close(); err != nil { // flushes the spill to disk
		t.Fatal(err)
	}

	second, err := NewSystem(Line(5, 100), WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	got, err := second.PathCapacity(path)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Bandwidth-want.Bandwidth) > 1e-12 {
		t.Errorf("warm bandwidth %.12g, cold %.12g", got.Bandwidth, want.Bandwidth)
	}
	st := second.CacheStats()
	if st.DiskHits == 0 {
		t.Errorf("restarted system never hit the disk spill: %+v", st)
	}
	if st.Misses != 0 {
		t.Errorf("restarted system re-enumerated %d families: %+v", st.Misses, st)
	}
}

// TestWithCacheDirOpenError pins that an unusable cache directory fails
// System construction instead of being silently ignored.
func TestWithCacheDirOpenError(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(Line(4, 100), WithCacheDir(file)); err == nil {
		t.Error("NewSystem accepted a file as the cache directory")
	}
}

// TestCloseWithoutCache pins that Close is a safe no-op on systems
// built without any cache.
func TestCloseWithoutCache(t *testing.T) {
	sys := lineSystem(t, 4, 100)
	if err := sys.Close(); err != nil {
		t.Errorf("Close on cache-less system: %v", err)
	}
}

func TestWithTraceObservesQuery(t *testing.T) {
	sys := lineSystem(t, 5, 100)
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	bg := []Flow{{Path: path, Demand: 2}}
	plain, err := sys.AvailableBandwidth(bg, path)
	if err != nil {
		t.Fatal(err)
	}

	ctx, span := WithTrace(context.Background())
	traced, err := sys.AvailableBandwidthContext(ctx, bg, path)
	if err != nil {
		t.Fatal(err)
	}
	// Tracing only observes the computation.
	if math.Float64bits(traced.Bandwidth) != math.Float64bits(plain.Bandwidth) ||
		traced.Feasible != plain.Feasible {
		t.Fatalf("traced result differs: %+v vs %+v", traced, plain)
	}
	td := span.Trace()
	if td == nil || td.TotalNs <= 0 || len(td.Stages) == 0 {
		t.Fatalf("empty trace: %+v", td)
	}
	seen := map[string]bool{}
	var sets int64
	for _, st := range td.Stages {
		seen[string(st.Stage)] = true
		sets += st.Sets
	}
	if !seen["enumerate"] || !seen["lp_solve"] {
		t.Fatalf("trace stages: %v", seen)
	}
	if sets <= 0 {
		t.Fatalf("trace recorded no enumerated sets: %+v", td.Stages)
	}
}
