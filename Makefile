GO ?= go

# The tier-1 benchmarks the regression gate watches: the end-to-end
# query, the enumeration and LP hot paths, and the simulator kernels.
TIER1_BENCH = ^(BenchmarkAvailableBandwidthQuery|BenchmarkEnumerateScenarioII|BenchmarkSolveEq6Shape|BenchmarkRunScheduleScenarioII|BenchmarkRunFlowsScenarioII|BenchmarkCSMAScenarioI|BenchmarkAdmitSequenceCold|BenchmarkAdmitSequenceWarm|BenchmarkAdmitSequenceDelta)$$
BENCH_COUNT ?= 5
BENCH_JSON ?= BENCH_$(shell date -u +%Y-%m-%d).json

.PHONY: all build test vet lint lint-fix vuln hooks fuzz race bench bench-smoke bench-json bench-gate golden check e2e cover cover-gate

all: check

build:
	$(GO) build ./...

# go vet with its default analyzer set, which already includes the
# opt-in-sounding ones that matter here (-unsafeptr, -atomic, -copylocks
# all default to true); no -vettool extras are available stdlib-only.
vet:
	$(GO) vet ./...

# Repo-specific static analysis (internal/lint via cmd/abwlint): the
# DESIGN.md Sec. 8 determinism/numerics/concurrency invariants plus the
# interprocedural ctx/error/lock-guard rules of Sec. 13, over library
# and _test.go code alike. `abwlint -list` names the rules; `make
# lint-fix` applies the suggested fixes in place.
lint:
	$(GO) run ./cmd/abwlint ./...

lint-fix:
	$(GO) run ./cmd/abwlint -fix ./...

# Bounded native fuzzing of the LP solver, the netjson codec, and the
# memo cache (key fingerprint + on-disk family format); CI runs the
# same targets for 30s each.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzSimplex -fuzztime=$(FUZZTIME) ./internal/lp/
	$(GO) test -run='^$$' -fuzz=FuzzNetjson -fuzztime=$(FUZZTIME) ./internal/netjson/
	$(GO) test -run='^$$' -fuzz=FuzzCacheKey -fuzztime=$(FUZZTIME) ./internal/memo/
	$(GO) test -run='^$$' -fuzz=FuzzStoreRoundTrip -fuzztime=$(FUZZTIME) ./internal/memo/

test:
	$(GO) test ./...

# Known-CVE scan of the (stdlib-only) dependency surface, pinned so CI
# and local runs agree on the database client. Gating in CI.
GOVULNCHECK_VERSION ?= v1.1.4
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Install scripts/precommit.sh as the git pre-commit hook: gofmt + vet
# + abwlint over the packages the commit touches.
hooks:
	install -m 0755 scripts/precommit.sh .git/hooks/pre-commit
	@echo "installed .git/hooks/pre-commit"

race:
	$(GO) test -race ./...

# Full benchmark run with allocation stats.
bench:
	$(GO) test -bench=. -benchmem ./...

# Quick smoke pass over every benchmark: one iteration each, -short, so
# CI notices a benchmark that panics or regresses into an error path
# without paying for a full measurement run.
bench-smoke:
	$(GO) test -short -run=^$$ -bench=. -benchtime=1x ./...

# Run the tier-1 benchmarks BENCH_COUNT times each and snapshot the
# samples as $(BENCH_JSON) — commit the file to refresh the baseline.
bench-json:
	$(GO) test -run '^$$' -bench '$(TIER1_BENCH)' -benchmem -count $(BENCH_COUNT) ./... \
		| $(GO) run ./cmd/abwbench parse -o $(BENCH_JSON)
	@echo wrote $(BENCH_JSON)

# Fresh tier-1 run judged against the newest committed baseline: fails
# on a >15% median ns/op regression significant at p<0.05.
bench-gate:
	@base=$$(ls BENCH_*.json | sort | tail -1); \
	if [ -z "$$base" ]; then echo "bench-gate: no committed BENCH_*.json baseline" >&2; exit 1; fi; \
	echo "gating against $$base"; \
	$(GO) test -run '^$$' -bench '$(TIER1_BENCH)' -benchmem -count $(BENCH_COUNT) ./... \
		| $(GO) run ./cmd/abwbench parse -o /tmp/abw-bench-fresh.json && \
	$(GO) run ./cmd/abwbench compare -old $$base -new /tmp/abw-bench-fresh.json

# Regenerate the committed golden experiment tables in place; CI diffs
# the result against the tree to catch silent output drift.
golden:
	$(GO) test -run TestGoldenTables ./internal/experiments/ -update

# End-to-end daemon exercise: build abwd, boot it on a chain scenario
# with a cache spill and a query deadline, drive the HTTP API with
# curl, SIGTERM it, and assert a clean drain with a flushed cache dir.
e2e:
	./scripts/e2e.sh

# Statement coverage over every package, and the committed floor the
# cover-gate enforces. Raise the floor when coverage durably improves;
# never lower it to merge.
COVER_PROFILE ?= /tmp/abw-cover.out
COVER_FLOOR ?= 80.0

cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) ./...
	@$(GO) tool cover -func=$(COVER_PROFILE) | tail -1

cover-gate: cover
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	echo "cover-gate: total $$total% (floor $(COVER_FLOOR)%)"; \
	ok=$$(awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { print (t + 0 >= f + 0) ? "yes" : "no" }'); \
	if [ "$$ok" != yes ]; then \
		echo "cover-gate: coverage $$total% fell below the committed floor $(COVER_FLOOR)%" >&2; \
		exit 1; \
	fi

# The gate run in CI: vet + lint + build + race tests + benchmark smoke.
check: vet lint build race bench-smoke
