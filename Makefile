GO ?= go

.PHONY: all build test vet race bench bench-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run with allocation stats.
bench:
	$(GO) test -bench=. -benchmem ./...

# Quick smoke pass over every benchmark: one iteration each, -short, so
# CI notices a benchmark that panics or regresses into an error path
# without paying for a full measurement run.
bench-smoke:
	$(GO) test -short -run=^$$ -bench=. -benchtime=1x ./...

# The gate run in CI: vet + build + race tests + benchmark smoke.
check: vet build race bench-smoke
