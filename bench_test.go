package abw

import (
	"context"
	"testing"

	"abw/internal/core"
	"abw/internal/experiments"
	"abw/internal/indepset"
	"abw/internal/memo"
	"abw/internal/routing"
	"abw/internal/topology"
)

// One benchmark per paper artifact (DESIGN.md Sec. 2). Each bench
// regenerates its table/figure end to end — topology, routing,
// LP solves, estimation — so the reported time is the full cost of the
// reproduction, and `go test -bench=. -benchmem` doubles as a smoke run
// of every experiment.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced an empty table", id)
		}
	}
}

// BenchmarkScenarioI regenerates E1 (Fig. 1 left; the introduction's
// (1-lambda)r vs (1-2lambda)r example).
func BenchmarkScenarioI(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkScenarioII regenerates E2 (Fig. 1 right; Sec. 5.1's
// f = 16.2 Mbps counterexample with its clique bounds and violations).
func BenchmarkScenarioII(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkFig2Topology regenerates E3 (Fig. 2: the 30-node random
// topology and the average-e2eD vs e2eTD routes).
func BenchmarkFig2Topology(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkFig3Routing regenerates E4 (Fig. 3: available bandwidth per
// flow under hop count / e2eTD / average-e2eD with sequential
// admission).
func BenchmarkFig3Routing(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkFig4Estimation regenerates E5 (Fig. 4: the five distributed
// estimators against the exact Eq. 6 value as background accumulates).
func BenchmarkFig4Estimation(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkEq9UpperBound regenerates E6 (the Sec. 3.2 rate-coupled
// clique LP over all 16 Scenario II rate vectors).
func BenchmarkEq9UpperBound(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkLowerBounds regenerates E7 (Sec. 3.3 independent-set-subset
// lower bounds).
func BenchmarkLowerBounds(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkAdaptationAblation regenerates E8 (link adaptation on/off:
// all 16 fixed rate vectors vs multirate scheduling).
func BenchmarkAdaptationAblation(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkSimValidation regenerates E9 (TDMA frame simulator vs the
// analytic model).
func BenchmarkSimValidation(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkCSMAIdle regenerates E10 (slotted CSMA/CA idleness in
// Scenario I).
func BenchmarkCSMAIdle(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkAvailableBandwidthQuery measures the core primitive in
// isolation: one exact Eq. 6 availability query (enumeration + LP) on a
// 4-hop chain with background traffic.
func BenchmarkAvailableBandwidthQuery(b *testing.B) {
	sys, err := NewSystem(Line(5, 100))
	if err != nil {
		b.Fatal(err)
	}
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	bg := []Flow{{Path: path, Demand: 2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.AvailableBandwidth(bg, path)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("unexpected infeasibility")
		}
	}
}

// BenchmarkEstimateConservative measures one distributed conservative
// clique estimate (the paper's proposed metric) on the same query.
func BenchmarkEstimateConservative(b *testing.B) {
	sys, err := NewSystem(Line(5, 100))
	if err != nil {
		b.Fatal(err)
	}
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	short, err := sys.PathBetween(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	bg := []Flow{{Path: short, Demand: 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Estimate(EstimateConservativeClique, bg, path); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAdmitSequence is the repeat-query workload of the memo
// subsystem: E4-style sequential admission of 16 requests (the Sec. 5.2
// eight random pairs, twice, so later requests repeat earlier paths) on
// the 30-node random topology. With a cache the set families persist
// and the availability LPs warm-start across steps and iterations; cold
// re-derives everything. Decisions are identical either way (pinned by
// the routing/core property tests).
func benchAdmitSequence(b *testing.B, cache *memo.Cache) {
	b.Helper()
	net, m, reqs, err := experiments.Fig2Setup()
	if err != nil {
		b.Fatal(err)
	}
	reqs = append(reqs, reqs...) // repeated pairs: the daemon's steady state
	opts := routing.AdmissionOptions{Core: core.Options{Cache: cache}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decs, err := routing.SequentialAdmission(net, m, routing.MetricHopCount, reqs, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(decs) != len(reqs) {
			b.Fatalf("%d decisions for %d requests", len(decs), len(reqs))
		}
	}
}

// BenchmarkAdmitSequenceCold runs the admission sequence with the memo
// subsystem disabled: every step enumerates and solves from scratch.
func BenchmarkAdmitSequenceCold(b *testing.B) { benchAdmitSequence(b, nil) }

// BenchmarkAdmitSequenceWarm runs the same sequence with the cache and
// LP warm-starting enabled — the long-lived controller workload.
func BenchmarkAdmitSequenceWarm(b *testing.B) { benchAdmitSequence(b, memo.New(0)) }

// benchAdmitGrowth is the Sec. 5.2 install workload the delta path
// exists for: flows whose paths extend hop by hop down a chain, so each
// admission step grows the enumeration universe by one link and misses
// the exact-key cache. The setup runs the real admission once to
// capture the per-install-step universes (LinkUnion of the admitted
// background plus the candidate path, exactly what admitOne hands to
// the availability query); the timed loop then replays the per-step
// family derivation through the memo cache. A fresh cache per iteration
// keeps every step on the growth path (a shared cache would degenerate
// to pure hits after the first iteration). With delta on, each step
// warm-starts from the previous step's family via the survivor strip +
// new-link walk; with delta off, it re-enumerates the grown universe
// from scratch — the cost gap is the tentpole's per-install speedup.
// The LP and routing stages are identical either way (pinned by the
// routing property tests), so they stay out of the timed loop.
func benchAdmitGrowth(b *testing.B, delta bool) {
	b.Helper()
	sys, err := NewSystem(Line(27, 100))
	if err != nil {
		b.Fatal(err)
	}
	net, m := sys.Network(), sys.Model()
	reqs := make([]routing.Request, 0, 25)
	for dst := topology.NodeID(2); dst <= 26; dst++ {
		reqs = append(reqs, routing.Request{Src: 0, Dst: dst, Demand: 0.05})
	}
	decs, err := routing.SequentialAdmission(net, m, routing.MetricHopCount, reqs,
		routing.AdmissionOptions{Core: core.Options{Cache: memo.New(0)}})
	if err != nil {
		b.Fatal(err)
	}
	if len(decs) != len(reqs) {
		b.Fatalf("%d decisions for %d requests", len(decs), len(reqs))
	}
	universes := make([][]topology.LinkID, 0, len(decs))
	var admitted []topology.Path
	for _, dec := range decs {
		universes = append(universes, topology.LinkUnion(append(admitted[:len(admitted):len(admitted)], dec.Path)...))
		if dec.Admitted {
			admitted = append(admitted, dec.Path)
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := memo.New(0)
		cache.SetDeltaEnabled(delta)
		for _, u := range universes {
			if _, err := cache.EnumerateContext(ctx, m, u, indepset.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		if st := cache.Stats(); delta && st.DeltaHits == 0 {
			b.Fatalf("growth workload never took the delta path: %+v", st)
		}
	}
}

// BenchmarkAdmitSequenceDelta runs the growing-universe install
// sequence with delta enumeration on: each step's set family is grown
// from the previous step's by per-link warm-start walks.
func BenchmarkAdmitSequenceDelta(b *testing.B) { benchAdmitGrowth(b, true) }

// BenchmarkAdmitSequenceGrowthFull is the same install sequence with
// the delta path off — every step pays a full enumeration of the grown
// universe. The ratio to BenchmarkAdmitSequenceDelta is the per-install
// speedup the tier-1 gate protects.
func BenchmarkAdmitSequenceGrowthFull(b *testing.B) { benchAdmitGrowth(b, false) }

// BenchmarkDemandSweep regenerates E11 (the Fig. 4 estimator-error
// sweep across background demand levels).
func BenchmarkDemandSweep(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkRateDiversityAblation regenerates E12 (multirate vs
// single-rate profiles on the Sec. 5.2 deployment).
func BenchmarkRateDiversityAblation(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkEstimatorAdmission regenerates E13 (estimator-driven
// admission vs the exact oracle).
func BenchmarkEstimatorAdmission(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkGreedyVsOptimal regenerates E14 (greedy TDMA scheduler vs
// the LP optimum).
func BenchmarkGreedyVsOptimal(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkFairAllocation regenerates E15 (max-min fair allocation).
func BenchmarkFairAllocation(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkInterferenceModelAblation regenerates E16 (physical vs
// protocol interference model capacities).
func BenchmarkInterferenceModelAblation(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkCSRangeSensitivity regenerates E17 (carrier-sense range vs
// estimator accuracy).
func BenchmarkCSRangeSensitivity(b *testing.B) { benchExperiment(b, "E17") }
