// Package abw is the public API of the multirate available-bandwidth
// library — a from-scratch reproduction of "Available Bandwidth in
// Multirate and Multihop Wireless Sensor Networks" (Chen, Zhai, Fang;
// ICDCS 2009).
//
// The library answers one central question: given a multirate wireless
// network carrying background traffic, how much more throughput can a
// path support? It does so three ways, matching the paper:
//
//   - exactly, with a linear program over rate-coupled maximal
//     independent sets assuming globally optimal scheduling (Eq. 6);
//   - with bounds — the rate-coupled clique LP upper bound (Eq. 9),
//     classical fixed-rate clique bounds (Eq. 7, shown invalid under
//     link adaptation), and independent-set lower bounds (Sec. 3.3);
//   - distributedly, with the carrier-sensing estimators a real node
//     could compute (Eqs. 10-13, 15), among which the paper's
//     "conservative clique constraint" performs best.
//
// A System bundles a geometric network with the physical (SINR)
// interference model. Entry points:
//
//	sys, _ := abw.NewSystem(abw.Grid(9, 3, 50))
//	path, _ := sys.Route(abw.RouteAvgE2ED, src, dst, background)
//	res, _ := sys.AvailableBandwidth(background, path)
//
// Lower-level control (custom conflict models, table scenarios, the LP
// solver) lives in the internal packages; everything the paper's
// evaluation needs is reachable from here.
package abw

import (
	"context"
	"fmt"
	"math/rand"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/dv"
	"abw/internal/estimate"
	"abw/internal/geom"
	"abw/internal/lp"
	"abw/internal/memo"
	"abw/internal/obs"
	"abw/internal/radio"
	"abw/internal/routing"
	"abw/internal/schedule"
	"abw/internal/sim"
	"abw/internal/topology"
)

// Re-exported identity types. They alias the internal representations,
// so values flow freely between the facade and advanced internal use.
type (
	// NodeID identifies a node of a System's network.
	NodeID = topology.NodeID
	// LinkID identifies a directed link.
	LinkID = topology.LinkID
	// Path is a chain of links.
	Path = topology.Path
	// Rate is a channel rate in Mbps.
	Rate = radio.Rate
	// Flow is a routed demand in Mbps.
	Flow = core.Flow
	// Schedule is a collection of concurrent transmission sets with
	// time shares.
	Schedule = schedule.Schedule
	// Point is a node position in meters.
	Point = geom.Point
)

// RouteMetric selects a QoS routing metric (paper Sec. 4).
type RouteMetric = routing.Metric

// Routing metrics compared in the paper's Fig. 3.
const (
	RouteHopCount = routing.MetricHopCount
	RouteE2ETD    = routing.MetricE2ETD
	RouteAvgE2ED  = routing.MetricAvgE2ED
)

// EstimateMetric selects a distributed bandwidth estimator (Fig. 4).
type EstimateMetric = estimate.Metric

// The five estimators of the paper's Fig. 4.
const (
	EstimateCliqueConstraint   = estimate.MetricCliqueConstraint
	EstimateBottleneckNode     = estimate.MetricBottleneckNode
	EstimateMinOfBoth          = estimate.MetricMinOfBoth
	EstimateConservativeClique = estimate.MetricConservativeClique
	EstimateECTT               = estimate.MetricExpectedCliqueTime
)

// Layout produces node positions for NewSystem.
type Layout func() ([]Point, error)

// Positions uses explicit coordinates.
func Positions(pts ...Point) Layout {
	return func() ([]Point, error) {
		if len(pts) == 0 {
			return nil, fmt.Errorf("abw: no positions")
		}
		out := make([]Point, len(pts))
		copy(out, pts)
		return out, nil
	}
}

// Random places n nodes uniformly in a w x h meter rectangle,
// deterministically from seed — the paper's Sec. 5.2 uses 30 nodes in
// 400 x 600.
func Random(n int, w, h float64, seed int64) Layout {
	return func() ([]Point, error) {
		if n <= 0 || w <= 0 || h <= 0 {
			return nil, fmt.Errorf("abw: invalid random layout (n=%d, %gx%g)", n, w, h)
		}
		rng := rand.New(rand.NewSource(seed))
		return geom.UniformPoints(rng, geom.Rect{W: w, H: h}, n), nil
	}
}

// Grid places n nodes on a grid with the given columns and spacing.
func Grid(n, cols int, spacing float64) Layout {
	return func() ([]Point, error) {
		if n <= 0 || spacing <= 0 {
			return nil, fmt.Errorf("abw: invalid grid layout")
		}
		return geom.GridPoints(n, cols, spacing), nil
	}
}

// Line places n nodes on a line with the given spacing — the chain
// topologies of the paper's Fig. 1.
func Line(n int, spacing float64) Layout {
	return func() ([]Point, error) {
		if n <= 0 || spacing <= 0 {
			return nil, fmt.Errorf("abw: invalid line layout")
		}
		return geom.LinePoints(n, spacing), nil
	}
}

// Option configures a System.
type Option func(*config)

type config struct {
	radioOpts  []radio.Option
	workers    int
	cacheOn    bool
	cacheBytes int64
	cacheDir   string
}

// WithCSRangeFactor sets the carrier-sense range as a multiple of the
// longest rate range (default 1.5).
func WithCSRangeFactor(f float64) Option {
	return func(c *config) { c.radioOpts = append(c.radioOpts, radio.WithCSRangeFactor(f)) }
}

// WithNoiseMarginDB gives every rate extra SINR headroom at its boundary
// distance (default 0 dB).
func WithNoiseMarginDB(db float64) Option {
	return func(c *config) { c.radioOpts = append(c.radioOpts, radio.WithNoiseMarginDB(db)) }
}

// WithCache enables the query-plan cache for this system: enumerated
// set families are memoized by content fingerprint, repeated-structure
// availability LPs are warm-started across Admit steps, and the
// counters are readable through CacheStats. maxBytes bounds the bytes
// retained for cached set families (0 picks a default budget). Cached
// answers are bit-for-bit identical to fresh computation — the cache
// only changes speed, never results.
func WithCache(maxBytes int64) Option {
	return func(c *config) { c.cacheOn = true; c.cacheBytes = maxBytes }
}

// WithCacheDir additionally spills cached set families to dir as
// crash-safe fingerprint-named files, so a restarted process warms up
// instantly on an unchanged network: cache misses consult the
// directory before enumerating, and complete families are written
// behind the query path. It implies WithCache. Any IO problem (corrupt
// file, full disk) silently degrades to fresh enumeration and is
// counted in CacheStats; call Close when done with the System to flush
// pending spills.
func WithCacheDir(dir string) Option {
	return func(c *config) { c.cacheOn = true; c.cacheDir = dir }
}

// WithWorkers sets the number of concurrent workers independent-set
// enumeration uses for this system's queries: 0 (the default) picks
// automatically from GOMAXPROCS and the problem size, 1 or negative
// forces sequential, larger values force that many workers. Results are
// identical at every setting.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// System is a multirate wireless network under the paper's physical
// (cumulative SINR) interference model with the four-rate 802.11a
// profile of Sec. 5.2.
type System struct {
	net     *topology.Network
	model   *conflict.Physical
	workers int
	cache   *memo.Cache
}

// coreOptions returns the core options every query of this system uses.
func (s *System) coreOptions() core.Options {
	return core.Options{Workers: s.workers, Cache: s.cache}
}

// NewSystem builds a System from a layout.
func NewSystem(layout Layout, opts ...Option) (*System, error) {
	if layout == nil {
		return nil, fmt.Errorf("abw: nil layout")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	pts, err := layout()
	if err != nil {
		return nil, err
	}
	net, err := topology.New(radio.NewProfile80211a(cfg.radioOpts...), pts)
	if err != nil {
		return nil, fmt.Errorf("abw: %w", err)
	}
	sys := &System{net: net, model: conflict.NewPhysical(net), workers: cfg.workers}
	if cfg.cacheOn {
		sys.cache = memo.New(cfg.cacheBytes)
		if cfg.cacheDir != "" {
			store, err := memo.OpenStore(cfg.cacheDir, 0)
			if err != nil {
				return nil, fmt.Errorf("abw: %w", err)
			}
			sys.cache.SetStore(store)
		}
	}
	return sys, nil
}

// Close flushes and releases the on-disk cache store when the system
// was built WithCacheDir; otherwise it is a no-op. The System remains
// usable for queries afterwards (families just stop spilling to disk).
func (s *System) Close() error { return s.cache.Close() }

// CacheStats returns the query-plan cache counters: set-family hits,
// misses and retained bytes, plus warm-start pivot accounting. All
// zeros unless the system was built WithCache.
func (s *System) CacheStats() CacheStats { return s.cache.Stats() }

// CacheStats is the counter snapshot the memo cache exposes.
type CacheStats = memo.Stats

// Span accumulates a per-stage trace of one query: wall time, sets
// enumerated, simplex pivots, cache outcomes and worker counts for
// every stage the computation passed through (routing, enumeration,
// memo lookup, LP solve/warm-resolve, scheduling, estimation). Attach
// one with WithTrace; read it back with Span.Trace after the query.
type Span = obs.Span

// TraceData is a finished span's snapshot — the same structure the
// daemon returns as a query's "trace" block.
type TraceData = obs.TraceData

// WithTrace attaches a fresh trace span to ctx and returns both. Every
// *Context entry point called with the returned context records its
// stages into the span; the computed results are byte-identical to an
// untraced run (tracing only observes). Read the trace with
// span.Trace() once the call returns:
//
//	ctx, span := abw.WithTrace(context.Background())
//	res, _ := sys.AvailableBandwidthContext(ctx, background, path)
//	td := span.Trace() // stage-by-stage wall time, sets, pivots
func WithTrace(ctx context.Context) (context.Context, *Span) {
	span := obs.NewSpan("")
	return obs.WithSpan(ctx, span), span
}

// ErrCanceled reports a computation stopped by context cancellation or
// deadline expiry. Errors from the *Context entry points satisfy
// errors.Is(err, ErrCanceled) when the context fired, and additionally
// errors.Is(err, context.DeadlineExceeded) when a deadline caused it.
// Canceled computations never store partial results in the cache or on
// disk; an uncancelled run returns byte-identical results with or
// without a context.
var ErrCanceled = cancel.ErrCanceled

// Network returns the underlying topology for advanced use.
func (s *System) Network() *topology.Network { return s.net }

// Model returns the underlying physical conflict model for advanced use.
func (s *System) Model() *conflict.Physical { return s.model }

// NumNodes returns the node count.
func (s *System) NumNodes() int { return s.net.NumNodes() }

// NumLinks returns the directed link count.
func (s *System) NumLinks() int { return s.net.NumLinks() }

// PathBetween returns the link path along the given node sequence,
// verifying every hop exists.
func (s *System) PathBetween(nodes ...NodeID) (Path, error) {
	return s.net.PathFromNodes(nodes)
}

// Result reports an availability computation.
type Result struct {
	// Feasible is false when the background demands alone cannot be
	// scheduled.
	Feasible bool
	// Bandwidth is the exact available bandwidth of the queried path in
	// Mbps (Eq. 6).
	Bandwidth float64
	// Schedule delivers the background plus Bandwidth on the path.
	Schedule Schedule
}

// AvailableBandwidth computes the exact available bandwidth of path
// given background flows, assuming globally optimal link scheduling
// (the paper's Eq. 6 model).
func (s *System) AvailableBandwidth(background []Flow, path Path) (*Result, error) {
	return s.AvailableBandwidthContext(context.Background(), background, path)
}

// AvailableBandwidthContext is AvailableBandwidth under a context:
// enumeration workers and LP pivots poll ctx, so cancellation (or a
// deadline) stops the computation promptly with an error satisfying
// errors.Is(err, ErrCanceled).
func (s *System) AvailableBandwidthContext(ctx context.Context, background []Flow, path Path) (*Result, error) {
	res, err := core.AvailableBandwidthContext(ctx, s.model, background, path, s.coreOptions())
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		return &Result{}, nil
	}
	return &Result{Feasible: true, Bandwidth: res.Bandwidth, Schedule: res.Schedule}, nil
}

// PathCapacity is AvailableBandwidth with no background traffic — the
// baseline problem of the authors' earlier work [1].
func (s *System) PathCapacity(path Path) (*Result, error) {
	return s.AvailableBandwidth(nil, path)
}

// UpperBound computes the rate-coupled clique upper bound of Eq. 9.
func (s *System) UpperBound(background []Flow, path Path) (float64, error) {
	res, err := core.UpperBoundLP(s.model, background, path, s.coreOptions())
	if err != nil {
		return 0, err
	}
	if res.Status != lp.Optimal {
		return 0, nil
	}
	return res.Bandwidth, nil
}

// Route finds a path from src to dst under the given metric. The
// background flows induce the carrier-sensed idleness average-e2eD
// needs; pass nil for an idle network.
func (s *System) Route(metric RouteMetric, src, dst NodeID, background []Flow) (Path, error) {
	idle, err := routing.BackgroundIdleness(s.net, s.model, background, s.coreOptions())
	if err != nil {
		return nil, err
	}
	return routing.FindPath(s.net, s.model, metric, idle, src, dst)
}

// Request is an admission request; Decision its outcome.
type (
	Request  = routing.Request
	Decision = routing.Decision
)

// Admit runs the paper's sequential admission (Sec. 5.2): flows join
// one by one, each routed by metric and admitted iff its path's exact
// available bandwidth covers the demand. With stopAtFirstFailure the
// run ends at the first rejection, as in the paper.
func (s *System) Admit(metric RouteMetric, requests []Request, stopAtFirstFailure bool) ([]Decision, error) {
	return s.AdmitContext(context.Background(), metric, requests, stopAtFirstFailure)
}

// AdmitContext is Admit under a context: ctx is checked between
// admission steps and inside each step's enumeration and LPs, so a
// canceled run stops promptly, returning the decisions completed so far
// alongside an error satisfying errors.Is(err, ErrCanceled).
func (s *System) AdmitContext(ctx context.Context, metric RouteMetric, requests []Request, stopAtFirstFailure bool) ([]Decision, error) {
	return routing.SequentialAdmissionContext(ctx, s.net, s.model, metric, requests,
		routing.AdmissionOptions{StopAtFirstFailure: stopAtFirstFailure, Core: s.coreOptions()})
}

// DistributedRoute computes a route by pure message passing: a
// synchronous distance-vector protocol (internal/dv) runs to
// convergence under the metric's link weights, then next-hop pointers
// are followed. The result matches Route (same weights) but needs no
// global topology knowledge; the returned stats report the protocol
// cost.
func (s *System) DistributedRoute(metric RouteMetric, src, dst NodeID, background []Flow) (Path, DVStats, error) {
	idle, err := routing.BackgroundIdleness(s.net, s.model, background, s.coreOptions())
	if err != nil {
		return nil, DVStats{}, err
	}
	w, err := routing.Weight(s.model, metric, idle)
	if err != nil {
		return nil, DVStats{}, err
	}
	engine, err := dv.New(s.net, w)
	if err != nil {
		return nil, DVStats{}, err
	}
	rounds, err := engine.RunToConvergence(0)
	if err != nil {
		return nil, DVStats{}, err
	}
	path, err := engine.Route(src, dst)
	if err != nil {
		return nil, DVStats{}, err
	}
	return path, DVStats{Rounds: rounds, Messages: engine.Messages()}, nil
}

// DVStats reports the cost of a distance-vector route computation.
type DVStats struct {
	// Rounds is the number of synchronous exchanges until convergence.
	Rounds int
	// Messages is the total number of neighbor advertisements sent.
	Messages int
}

// RouteByEstimate implements the paper's Sec. 4 distributed routing
// proposal: find the src-to-dst path with the largest estimated
// available bandwidth, where every intermediate node scores the prefix
// reaching it with the given estimator from carrier-sensed idleness.
// It returns the path and its estimate.
func (s *System) RouteByEstimate(metric EstimateMetric, src, dst NodeID, background []Flow) (Path, float64, error) {
	idle, err := routing.BackgroundIdleness(s.net, s.model, background, s.coreOptions())
	if err != nil {
		return nil, 0, err
	}
	router, err := routing.NewDistributedRouter(s.net, s.model, metric, idle)
	if err != nil {
		return nil, 0, err
	}
	return router.Route(src, dst)
}

// Estimate computes a distributed estimate of path's available
// bandwidth against the background, using carrier-sensed idleness
// (paper Sec. 4).
func (s *System) Estimate(metric EstimateMetric, background []Flow, path Path) (float64, error) {
	sched, err := routing.BackgroundSchedule(s.model, background, s.coreOptions())
	if err != nil {
		return 0, err
	}
	ps, err := estimate.PathStateFromSchedule(s.net, s.model, sched, path)
	if err != nil {
		return 0, err
	}
	return estimate.Estimate(metric, s.model, ps)
}

// Explanation reports an estimate together with its binding constraint.
type Explanation = estimate.Explanation

// Explain computes an estimate and identifies WHERE the bandwidth is
// lost: the binding local clique (clique-based estimators) or the
// binding hop (bottleneck estimator).
func (s *System) Explain(metric EstimateMetric, background []Flow, path Path) (Explanation, error) {
	sched, err := routing.BackgroundSchedule(s.model, background, s.coreOptions())
	if err != nil {
		return Explanation{}, err
	}
	ps, err := estimate.PathStateFromSchedule(s.net, s.model, sched, path)
	if err != nil {
		return Explanation{}, err
	}
	return estimate.Explain(metric, s.model, ps)
}

// EstimateAll computes all five estimators at once.
func (s *System) EstimateAll(background []Flow, path Path) (map[EstimateMetric]float64, error) {
	sched, err := routing.BackgroundSchedule(s.model, background, s.coreOptions())
	if err != nil {
		return nil, err
	}
	ps, err := estimate.PathStateFromSchedule(s.net, s.model, sched, path)
	if err != nil {
		return nil, err
	}
	return estimate.EstimateAll(s.model, ps)
}

// Simulate executes a schedule in the TDMA frame simulator, forwarding
// the flows' packets hop by hop, and returns their measured end-to-end
// goodput in Mbps.
func (s *System) Simulate(sched Schedule, flows []Flow, periods int) ([]float64, error) {
	rep, err := sim.RunFlows(s.model, sched, flows, sim.TDMAConfig{Periods: periods})
	if err != nil {
		return nil, err
	}
	return rep.FlowDelivered, nil
}

// GreedySchedule builds a schedule for the flows with the greedy
// neediest-first packer instead of the LP — the practical baseline of
// experiment E14. It reports whether every demand was met; when not,
// the schedule still carries best-effort traffic.
func (s *System) GreedySchedule(flows []Flow) (Schedule, bool, error) {
	demand := make(map[LinkID]float64)
	for i, f := range flows {
		if len(f.Path) == 0 || f.Demand <= 0 {
			return Schedule{}, false, fmt.Errorf("abw: flow %d needs a path and positive demand", i)
		}
		for _, l := range f.Path {
			demand[l] += f.Demand
		}
	}
	return schedule.Greedy(s.model, demand)
}

// FixedRateCliqueBound computes the classical Eq. 7 clique bound for
// the path pinned to each hop's alone maximum rate — the baseline the
// paper proves invalid under link adaptation (it can fall below the
// true multirate capacity).
func (s *System) FixedRateCliqueBound(path Path) (float64, error) {
	rates := make([]Rate, 0, len(path))
	for _, l := range path {
		r := conflict.AloneMaxRate(s.model, l)
		if r <= 0 {
			return 0, fmt.Errorf("abw: link %d supports no rate", l)
		}
		rates = append(rates, r)
	}
	return core.FixedRateCliqueBound(s.model, path, rates)
}

// FeasibleDemands reports whether the flows can all be delivered
// simultaneously, returning a delivering schedule when they can.
func (s *System) FeasibleDemands(flows []Flow) (bool, Schedule, error) {
	return core.FeasibleDemands(s.model, flows, s.coreOptions())
}

// MaxMinFair allocates end-to-end throughput max-min fairly across the
// flows over the exact feasibility region: allocations rise together
// and freeze at each flow's true bottleneck (or at its Demand when
// positive; Demand 0 means uncapped). Returns per-flow allocations in
// input order and a delivering schedule.
func (s *System) MaxMinFair(flows []Flow) ([]float64, Schedule, error) {
	return core.MaxMinFair(s.model, flows, s.coreOptions())
}

// MaxDemandScale returns the largest factor theta such that every new
// flow fits at theta times its demand alongside the background;
// theta >= 1 means jointly admissible (the paper's multi-flow
// extension).
func (s *System) MaxDemandScale(background, newFlows []Flow) (float64, error) {
	theta, _, err := core.MaxDemandScale(s.model, background, newFlows, s.coreOptions())
	return theta, err
}
