#!/usr/bin/env bash
# End-to-end exercise of the abwd daemon: build it, boot it on a chain
# scenario with an on-disk cache spill and a query deadline, drive the
# HTTP API (network install, availability query, flow admission, stats),
# then SIGTERM it and assert a clean drain — exit 0, the shutdown line
# logged, and the cache directory flushed so the next boot warms from
# disk. Run from anywhere: make e2e, or ./scripts/e2e.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cachedir="$workdir/cache"
log="$workdir/abwd.log"
bin="$workdir/abwd"
pid=""
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "e2e: $*" >&2
    echo "---- abwd log ----" >&2
    cat "$log" >&2 || true
    exit 1
}

go build -o "$bin" ./cmd/abwd

"$bin" -addr 127.0.0.1:0 -cachedir "$cachedir" -querytimeout 30s -slowquery 10m >"$log" 2>&1 &
pid=$!

# The daemon announces its resolved address (port 0 picks a free one).
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^abwd listening on //p' "$log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || fail "abwd died during startup"
    sleep 0.1
done
[ -n "$addr" ] || fail "abwd never announced its listen address"
base="http://$addr"

# Probes: alive as soon as the listener is up, not ready until a
# network is installed.
code=$(curl -sS -o /dev/null -w '%{http_code}' "$base/healthz")
[ "$code" = "200" ] || fail "healthz answered $code"
code=$(curl -sS -o /dev/null -w '%{http_code}' "$base/readyz")
[ "$code" = "503" ] || fail "readyz before install answered $code, want 503"

# Install a 5-node 100m chain (the server tests' fixture).
out=$(curl -sS -f -X PUT -d '{"nodes":[{"x":0,"y":0},{"x":100,"y":0},{"x":200,"y":0},{"x":300,"y":0},{"x":400,"y":0}]}' "$base/v1/network")
echo "$out" | grep -q '"installed":true' || fail "network install answered: $out"
code=$(curl -sS -o /dev/null -w '%{http_code}' "$base/readyz")
[ "$code" = "200" ] || fail "readyz after install answered $code, want 200"

# Availability query end to end (routing + enumeration + LP). This
# caches the three-link set family for the 0->3 path.
out=$(curl -sS -f -X POST -d '{"src":0,"dst":3}' "$base/v1/query")
echo "$out" | grep -q '"feasible":true' || fail "query answered: $out"

# Install a flow on that path (its availability check is an exact cache
# hit) and read it back.
out=$(curl -sS -f -X POST -d '{"src":0,"dst":3,"demandMbps":1}' "$base/v1/flows")
echo "$out" | grep -q '"admitted":true' || fail "admission answered: $out"
out=$(curl -sS -f "$base/v1/flows")
echo "$out" | grep -q '"id":1' || fail "flow listing answered: $out"

# Query one hop further: the enumeration universe (background flow plus
# the 0->4 path) grows the cached family by exactly one link, so this
# query must be served by the delta path (asserted on /v1/stats below).
out=$(curl -sS -f -X POST -d '{"src":0,"dst":4}' "$base/v1/query")
echo "$out" | grep -q '"feasible":true' || fail "grown query answered: $out"

# A traced query carries the per-stage block; the answer is unchanged.
out=$(curl -sS -f -X POST -d '{"src":0,"dst":4,"trace":true}' "$base/v1/query")
echo "$out" | grep -q '"feasible":true' || fail "traced query answered: $out"
echo "$out" | grep -q '"trace"' || fail "traced query carries no trace block: $out"

# Stats surface: cache on, the install->query->install->query sequence
# above took the delta path, cancellation counter present and untouched.
out=$(curl -sS -f "$base/v1/stats")
echo "$out" | grep -q '"cacheEnabled":true' || fail "stats answered: $out"
delta_hits=$(echo "$out" | sed -n 's/.*"deltaHits":\([0-9]*\).*/\1/p' | head -1)
[ -n "$delta_hits" ] && [ "$delta_hits" -gt 0 ] \
    || fail "stats deltaHits='$delta_hits', want > 0: $out"
echo "$out" | grep -q '"deltaFallbacks":0' || fail "delta chain fell back: $out"
echo "$out" | grep -q '"cancellations":0' || fail "stats missing cancellations: $out"
echo "$out" | grep -q '"metrics"' || fail "stats missing the metrics snapshot: $out"
stats_lookups=$(echo "$out" | sed -n 's/.*"lookups":\([0-9]*\).*/\1/p' | head -1)

# Prometheus exposition: the query-latency histogram must count exactly
# the query requests served (two plain, one traced), the delta outcome
# must be on the cache gauges, and the gauges must reconcile with the
# /v1/stats counters.
metrics=$(curl -sS -f "$base/metrics")
qcount=$(echo "$metrics" | sed -n 's/^abw_http_request_seconds_count{handler="query"} //p')
[ "$qcount" = "3" ] || fail "query histogram count is '$qcount', want 3"
echo "$metrics" | grep -q '^abw_http_requests_total{code="200",handler="query"} 3$' \
    || fail "query request counter off: $(echo "$metrics" | grep abw_http_requests_total)"
echo "$metrics" | grep -q '^abw_cache_delta_hits [1-9]' \
    || fail "delta hits not on /metrics: $(echo "$metrics" | grep abw_cache_delta)"
echo "$metrics" | grep -q '^abw_stage_seconds_count{stage="enumerate"} [1-9]' \
    || fail "no enumerate stage samples: $(echo "$metrics" | grep abw_stage_seconds_count)"
m_lookups=$(echo "$metrics" | sed -n 's/^abw_cache_lookups //p')
[ -n "$stats_lookups" ] && [ "$m_lookups" = "$stats_lookups" ] \
    || fail "abw_cache_lookups=$m_lookups does not reconcile with /v1/stats lookups=$stats_lookups"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
[ "$status" -eq 0 ] || fail "abwd exited $status after SIGTERM"
grep -q "draining" "$log" || fail "shutdown never logged the drain"
# The structured shutdown log reports the drain duration and the final
# flushed byte counts.
grep -q '"msg":"drained"' "$log" || fail "no structured drain-complete log line"
grep -q '"drainMs"' "$log" || fail "drain log missing drainMs"
grep -q '"msg":"shutdown complete"' "$log" || fail "no structured shutdown-complete log line"
grep -q '"diskBytes"' "$log" || fail "shutdown log missing diskBytes"
pid=""

# The drain must have flushed the set-family spill to disk.
files=$(find "$cachedir" -type f | wc -l)
[ "$files" -ge 1 ] || fail "cache dir empty after shutdown: nothing was flushed"

echo "e2e: OK ($files spill file(s) flushed)"
