#!/usr/bin/env bash
# Pre-commit gate over the files staged for this commit: gofmt on the
# staged Go files, then go vet and abwlint restricted to the packages
# those files live in. Fast because it scopes to the change; the full
# tree still gets the complete suite in CI (`make check`).
#
# Install with `make hooks` (copies this file to .git/hooks/pre-commit).
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

# Staged Go files, excluding deletions and the lint fixtures (which
# contain findings on purpose).
mapfile -t files < <(git diff --cached --name-only --diff-filter=ACMR -- '*.go' |
    grep -v '^internal/lint/testdata/' || true)
if [ "${#files[@]}" -eq 0 ]; then
    exit 0
fi

unformatted=$(gofmt -l "${files[@]}")
if [ -n "$unformatted" ]; then
    echo "pre-commit: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# The packages the staged files belong to, as ./dir patterns.
mapfile -t pkgs < <(for f in "${files[@]}"; do dirname "$f"; done | sort -u |
    sed 's|^|./|')

go vet "${pkgs[@]}"
go run ./cmd/abwlint "${pkgs[@]}"
