module abw

go 1.22
