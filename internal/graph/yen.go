package graph

import (
	"errors"
	"fmt"
	"sort"

	"abw/internal/topology"
)

// RoutedPath is a path together with its total weight.
type RoutedPath struct {
	Path   topology.Path
	Weight float64
}

// KShortestPaths returns up to k loopless minimum-weight paths from src
// to dst in non-decreasing weight order (Yen's algorithm). Fewer than k
// paths are returned when the graph does not contain k distinct loopless
// paths. It returns ErrNoPath when no path exists at all.
func KShortestPaths(g Network, src, dst topology.NodeID, w Weight, k int) ([]RoutedPath, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: k must be >= 1, got %d", k)
	}
	best, bestW, err := ShortestPath(g, src, dst, w)
	if err != nil {
		return nil, err
	}
	accepted := []RoutedPath{{Path: best, Weight: bestW}}
	var candidates []RoutedPath

	for len(accepted) < k {
		prevPath := accepted[len(accepted)-1].Path
		prevNodes, err := pathNodes(g, src, prevPath)
		if err != nil {
			return nil, err
		}
		// Spur from each node of the previous accepted path.
		for i := 0; i < len(prevPath); i++ {
			spurNode := prevNodes[i]
			rootPath := prevPath[:i]

			excludedLinks := make(map[topology.LinkID]bool)
			for _, ap := range accepted {
				if pathHasPrefix(ap.Path, rootPath) && len(ap.Path) > i {
					excludedLinks[ap.Path[i]] = true
				}
			}
			for _, cp := range candidates {
				if pathHasPrefix(cp.Path, rootPath) && len(cp.Path) > i {
					excludedLinks[cp.Path[i]] = true
				}
			}
			// Exclude root-path nodes (except the spur node) to keep
			// paths loopless.
			excludedNodes := make(map[topology.NodeID]bool)
			for _, nid := range prevNodes[:i] {
				excludedNodes[nid] = true
			}

			spurPath, spurW, err := shortestPathConstrained(g, spurNode, dst, w, excludedLinks, excludedNodes)
			if errors.Is(err, ErrNoPath) {
				continue
			}
			if err != nil {
				return nil, err
			}
			total := make(topology.Path, 0, i+len(spurPath))
			total = append(total, rootPath...)
			total = append(total, spurPath...)
			rootW, err := PathWeight(g, rootPath, w)
			if err != nil {
				return nil, err
			}
			cand := RoutedPath{Path: total, Weight: rootW + spurW}
			if !containsPath(accepted, cand.Path) && !containsPath(candidates, cand.Path) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].Weight < candidates[b].Weight })
		accepted = append(accepted, candidates[0])
		candidates = candidates[1:]
	}
	return accepted, nil
}

// pathNodes returns the node sequence of a path starting at src. An
// empty path yields just src.
func pathNodes(g Network, src topology.NodeID, path topology.Path) ([]topology.NodeID, error) {
	nodes := make([]topology.NodeID, 0, len(path)+1)
	nodes = append(nodes, src)
	for _, lid := range path {
		link, err := g.Link(lid)
		if err != nil {
			return nil, fmt.Errorf("graph: resolving link %d: %w", lid, err)
		}
		nodes = append(nodes, link.Rx)
	}
	return nodes, nil
}

func pathHasPrefix(p, prefix topology.Path) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func pathsEqual(a, b topology.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(list []RoutedPath, p topology.Path) bool {
	for _, rp := range list {
		if pathsEqual(rp.Path, p) {
			return true
		}
	}
	return false
}
