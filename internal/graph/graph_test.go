package graph

import (
	"errors"
	"math"
	"testing"

	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/topology"
)

// grid builds a 3x3 grid network with 50m spacing:
//
//	0 1 2
//	3 4 5
//	6 7 8
func grid(t *testing.T) *topology.Network {
	t.Helper()
	net, err := topology.New(radio.NewProfile80211a(), geom.GridPoints(9, 3, 50))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func line(t *testing.T, n int, spacing float64) *topology.Network {
	t.Helper()
	net, err := topology.New(radio.NewProfile80211a(), geom.LinePoints(n, spacing))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestShortestPathHops(t *testing.T) {
	net := line(t, 5, 100) // 100m spacing: adjacent hops only (200m pairs out of range)
	path, wgt, err := ShortestPath(net, 0, 4, HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	if wgt != 4 || len(path) != 4 {
		t.Errorf("got weight %g, %d links; want 4 hops", wgt, len(path))
	}
	if err := net.ValidatePath(path); err != nil {
		t.Errorf("invalid path: %v", err)
	}
}

func TestShortestPathPrefersFewHopsViaLongLinks(t *testing.T) {
	net := line(t, 5, 50) // 100m pairs reachable at 18, 150m at 6
	path, wgt, err := ShortestPath(net, 0, 4, HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> 3 (150m, 6Mbps) -> 4 or 0 -> 2 -> 4 (two 100m hops): 2 hops.
	if wgt != 2 {
		t.Errorf("hop weight = %g, want 2; path %v", wgt, path)
	}
}

func TestShortestPathTransmissionDelay(t *testing.T) {
	net := line(t, 5, 50)
	// e2eTD weight: 1/rate. Four 54Mbps hops cost 4/54 = 0.074; two
	// 18Mbps hops cost 2/18 = 0.111; 6Mbps direct-ish hops cost more.
	w := func(l topology.Link) float64 { return 1 / float64(l.MaxRate) }
	path, wgt, err := ShortestPath(net, 0, 4, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Errorf("e2eTD should pick the four 54Mbps hops, got %d links (weight %g)", len(path), wgt)
	}
	if math.Abs(wgt-4.0/54) > 1e-12 {
		t.Errorf("weight = %g, want %g", wgt, 4.0/54)
	}
}

func TestShortestPathNoPath(t *testing.T) {
	// Two clusters far apart.
	net, err := topology.New(radio.NewProfile80211a(), []geom.Point{{X: 0}, {X: 50}, {X: 1000}, {X: 1050}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ShortestPath(net, 0, 3, HopWeight); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathValidation(t *testing.T) {
	net := line(t, 3, 50)
	if _, _, err := ShortestPath(net, 0, 0, HopWeight); err == nil {
		t.Error("src==dst: expected error")
	}
	if _, _, err := ShortestPath(net, 0, 99, HopWeight); err == nil {
		t.Error("dst out of range: expected error")
	}
	neg := func(topology.Link) float64 { return -1 }
	if _, _, err := ShortestPath(net, 0, 2, neg); err == nil {
		t.Error("negative weight: expected error")
	}
}

func TestInfiniteWeightExcludesLink(t *testing.T) {
	net := line(t, 3, 100)
	l01, _ := net.LinkBetween(0, 1)
	w := func(l topology.Link) float64 {
		if l.ID == l01 {
			return math.Inf(1)
		}
		return 1
	}
	if _, _, err := ShortestPath(net, 0, 2, w); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath (only route uses excluded link)", err)
	}
}

func TestPathWeight(t *testing.T) {
	net := line(t, 4, 100)
	path, _, err := ShortestPath(net, 0, 3, HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PathWeight(net, path, HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("PathWeight = %g, want 3", got)
	}
	if _, err := PathWeight(net, topology.Path{topology.LinkID(999)}, HopWeight); err == nil {
		t.Error("bogus link: expected error")
	}
}

func TestReachableAndConnected(t *testing.T) {
	net := line(t, 4, 100)
	seen := Reachable(net, 0, HopWeight)
	for i, ok := range seen {
		if !ok {
			t.Errorf("node %d unreachable in a line", i)
		}
	}
	if !Connected(net) {
		t.Error("line should be connected")
	}
	split, err := topology.New(radio.NewProfile80211a(), []geom.Point{{X: 0}, {X: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if Connected(split) {
		t.Error("split network should not be connected")
	}
	if got := Reachable(net, topology.NodeID(-1), HopWeight); got[0] {
		t.Error("Reachable from invalid src should mark nothing")
	}
}

func TestKShortestPathsGrid(t *testing.T) {
	net := grid(t)
	paths, err := KShortestPaths(net, 0, 8, HopWeight, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("grid should have several loopless paths, got %d", len(paths))
	}
	for i, rp := range paths {
		if err := net.ValidatePath(rp.Path); err != nil {
			t.Errorf("path %d invalid: %v", i, err)
		}
		if i > 0 && rp.Weight < paths[i-1].Weight-1e-12 {
			t.Errorf("paths out of order: %g after %g", rp.Weight, paths[i-1].Weight)
		}
	}
	// All returned paths must be distinct.
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if pathsEqual(paths[i].Path, paths[j].Path) {
				t.Errorf("paths %d and %d identical", i, j)
			}
		}
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	net := grid(t)
	paths, err := KShortestPaths(net, 0, 8, HopWeight, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, rp := range paths {
		nodes, err := net.PathNodes(rp.Path)
		if err != nil {
			t.Fatalf("path %d: %v", i, err)
		}
		seen := make(map[topology.NodeID]bool)
		for _, n := range nodes {
			if seen[n] {
				t.Errorf("path %d revisits node %d", i, n)
			}
			seen[n] = true
		}
	}
}

func TestKShortestPathsFirstIsShortest(t *testing.T) {
	net := grid(t)
	single, w1, err := ShortestPath(net, 0, 8, HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := KShortestPaths(net, 0, 8, HopWeight, 3)
	if err != nil {
		t.Fatal(err)
	}
	if multi[0].Weight != w1 {
		t.Errorf("first k-shortest weight %g != shortest %g", multi[0].Weight, w1)
	}
	if len(single) != len(multi[0].Path) {
		t.Errorf("first k-shortest has %d links, shortest has %d", len(multi[0].Path), len(single))
	}
}

func TestKShortestPathsErrors(t *testing.T) {
	net := line(t, 3, 100)
	if _, err := KShortestPaths(net, 0, 2, HopWeight, 0); err == nil {
		t.Error("k=0: expected error")
	}
	split, err := topology.New(radio.NewProfile80211a(), []geom.Point{{X: 0}, {X: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := KShortestPaths(split, 0, 1, HopWeight, 2); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestKShortestExhaustsLine(t *testing.T) {
	// A 2-node network has exactly one loopless path.
	net := line(t, 2, 50)
	paths, err := KShortestPaths(net, 0, 1, HopWeight, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Errorf("got %d paths, want exactly 1", len(paths))
	}
}
