package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/topology"
)

// allSimplePaths enumerates every loopless path src->dst by DFS —
// exponential, fine for tiny graphs — returning their weights sorted
// ascending.
func allSimplePaths(t *testing.T, g Network, src, dst topology.NodeID, w Weight) []float64 {
	t.Helper()
	var weights []float64
	visited := map[topology.NodeID]bool{src: true}
	var dfs func(at topology.NodeID, cost float64)
	dfs = func(at topology.NodeID, cost float64) {
		if at == dst {
			weights = append(weights, cost)
			return
		}
		for _, lid := range g.OutLinks(at) {
			link, err := g.Link(lid)
			if err != nil {
				t.Fatal(err)
			}
			lw := w(link)
			if math.IsInf(lw, 1) || visited[link.Rx] {
				continue
			}
			visited[link.Rx] = true
			dfs(link.Rx, cost+lw)
			visited[link.Rx] = false
		}
	}
	dfs(src, 0)
	sort.Float64s(weights)
	return weights
}

// TestYenMatchesBruteForce checks, on small random geometric graphs,
// that KShortestPaths returns exactly the k cheapest loopless path
// weights that exhaustive enumeration finds.
func TestYenMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net, err := topology.New(radio.NewProfile80211a(),
			geom.UniformPoints(rng, geom.Rect{W: 250, H: 250}, 6))
		if err != nil {
			t.Fatal(err)
		}
		w := func(l topology.Link) float64 { return 1 / float64(l.MaxRate) }
		src, dst := topology.NodeID(0), topology.NodeID(5)
		want := allSimplePaths(t, net, src, dst, w)
		if len(want) == 0 {
			continue // disconnected draw
		}
		k := len(want)
		if k > 10 {
			k = 10
		}
		got, err := KShortestPaths(net, src, dst, w, k)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(got) != k {
			t.Errorf("seed %d: Yen returned %d paths, brute force has %d (asked %d)",
				seed, len(got), len(want), k)
			continue
		}
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Weight-want[i]) > 1e-9 {
				t.Errorf("seed %d: path %d weight %.6f, brute force %.6f",
					seed, i, got[i].Weight, want[i])
			}
		}
	}
}

// TestYenExhaustive checks that asking for more paths than exist
// returns them all, matching the brute-force count.
func TestYenExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := topology.New(radio.NewProfile80211a(),
		geom.UniformPoints(rng, geom.Rect{W: 200, H: 200}, 5))
	if err != nil {
		t.Fatal(err)
	}
	src, dst := topology.NodeID(0), topology.NodeID(4)
	want := allSimplePaths(t, net, src, dst, HopWeight)
	if len(want) == 0 {
		t.Skip("disconnected draw")
	}
	got, err := KShortestPaths(net, src, dst, HopWeight, len(want)+25)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("Yen found %d loopless paths, brute force %d", len(got), len(want))
	}
}

// TestDijkstraMatchesBruteForce checks the single shortest path against
// exhaustive enumeration on small random graphs.
func TestDijkstraMatchesBruteForce(t *testing.T) {
	for seed := int64(20); seed <= 32; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net, err := topology.New(radio.NewProfile80211a(),
			geom.UniformPoints(rng, geom.Rect{W: 250, H: 250}, 6))
		if err != nil {
			t.Fatal(err)
		}
		w := func(l topology.Link) float64 { return 1 / float64(l.MaxRate) }
		want := allSimplePaths(t, net, 0, 5, w)
		_, got, err := ShortestPath(net, 0, 5, w)
		if len(want) == 0 {
			if err == nil {
				t.Errorf("seed %d: Dijkstra found a path where none exists", seed)
			}
			continue
		}
		if err != nil {
			t.Errorf("seed %d: Dijkstra failed on a connected pair: %v", seed, err)
			continue
		}
		if math.Abs(got-want[0]) > 1e-9 {
			t.Errorf("seed %d: Dijkstra %.6f != brute-force best %.6f", seed, got, want[0])
		}
	}
}
