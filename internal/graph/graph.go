// Package graph provides the routing-substrate algorithms used by the
// QoS routing layer: Dijkstra shortest paths under pluggable additive
// link weights, Yen's k-shortest loopless paths, and reachability
// queries. It operates on any network exposing the topology.Network
// adjacency surface.
package graph

import (
	"container/heap"
	"fmt"
	"math"

	"abw/internal/topology"
)

// Network is the adjacency surface the algorithms need; it is satisfied
// by *topology.Network.
type Network interface {
	NumNodes() int
	OutLinks(topology.NodeID) []topology.LinkID
	Link(topology.LinkID) (topology.Link, error)
}

var _ Network = (*topology.Network)(nil)

// Weight computes the additive cost of traversing a link. Return
// math.Inf(1) to exclude the link from consideration.
type Weight func(topology.Link) float64

// HopWeight is the unit weight: shortest path = fewest hops.
func HopWeight(topology.Link) float64 { return 1 }

// ErrNoPath is returned when the destination is unreachable under the
// given weight.
var ErrNoPath = fmt.Errorf("graph: no path")

type pqItem struct {
	node topology.NodeID
	dist float64
	idx  int
}

type priorityQueue []*pqItem

func (pq priorityQueue) Len() int           { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool { return pq[i].dist < pq[j].dist }
func (pq priorityQueue) Swap(i, j int)      { pq[i], pq[j] = pq[j], pq[i]; pq[i].idx = i; pq[j].idx = j }
func (pq *priorityQueue) Push(x interface{}) {
	it := x.(*pqItem)
	it.idx = len(*pq)
	*pq = append(*pq, it)
}
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

// ShortestPath returns a minimum-weight path from src to dst and its
// total weight. It returns ErrNoPath if dst is unreachable.
func ShortestPath(g Network, src, dst topology.NodeID, w Weight) (topology.Path, float64, error) {
	return shortestPathConstrained(g, src, dst, w, nil, nil)
}

// shortestPathConstrained is Dijkstra with optional excluded links and
// nodes (the spur machinery of Yen's algorithm). Excluded nodes may
// still be used as src.
func shortestPathConstrained(
	g Network,
	src, dst topology.NodeID,
	w Weight,
	excludedLinks map[topology.LinkID]bool,
	excludedNodes map[topology.NodeID]bool,
) (topology.Path, float64, error) {
	n := g.NumNodes()
	if int(src) >= n || src < 0 || int(dst) >= n || dst < 0 {
		return nil, 0, fmt.Errorf("graph: node out of range (src=%d dst=%d n=%d)", src, dst, n)
	}
	if src == dst {
		return nil, 0, fmt.Errorf("graph: src equals dst (%d)", src)
	}

	dist := make([]float64, n)
	prev := make([]topology.LinkID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0

	pq := priorityQueue{{node: src, dist: 0}}
	heap.Init(&pq)
	items := make(map[topology.NodeID]*pqItem, n)
	items[src] = pq[0]

	for pq.Len() > 0 {
		cur := heap.Pop(&pq).(*pqItem)
		delete(items, cur.node)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == dst {
			break
		}
		for _, lid := range g.OutLinks(cur.node) {
			if excludedLinks[lid] {
				continue
			}
			link, err := g.Link(lid)
			if err != nil {
				return nil, 0, fmt.Errorf("graph: resolving link %d: %w", lid, err)
			}
			if excludedNodes[link.Rx] || done[link.Rx] {
				continue
			}
			lw := w(link)
			if math.IsInf(lw, 1) || math.IsNaN(lw) {
				continue
			}
			if lw < 0 {
				return nil, 0, fmt.Errorf("graph: negative weight %g on link %d", lw, lid)
			}
			if nd := cur.dist + lw; nd < dist[link.Rx] {
				dist[link.Rx] = nd
				prev[link.Rx] = lid
				if it, ok := items[link.Rx]; ok {
					it.dist = nd
					heap.Fix(&pq, it.idx)
				} else {
					it := &pqItem{node: link.Rx, dist: nd}
					heap.Push(&pq, it)
					items[link.Rx] = it
				}
			}
		}
	}

	if math.IsInf(dist[dst], 1) {
		return nil, 0, ErrNoPath
	}
	// Walk predecessors back to src.
	var rev topology.Path
	for at := dst; at != src; {
		lid := prev[at]
		link, err := g.Link(lid)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: resolving link %d: %w", lid, err)
		}
		rev = append(rev, lid)
		at = link.Tx
	}
	path := make(topology.Path, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path, dist[dst], nil
}

// PathWeight sums w over the links of path.
func PathWeight(g Network, path topology.Path, w Weight) (float64, error) {
	total := 0.0
	for _, lid := range path {
		link, err := g.Link(lid)
		if err != nil {
			return 0, fmt.Errorf("graph: resolving link %d: %w", lid, err)
		}
		total += w(link)
	}
	return total, nil
}

// Reachable returns, for every node, whether it is reachable from src
// via links of finite weight.
func Reachable(g Network, src topology.NodeID, w Weight) []bool {
	n := g.NumNodes()
	seen := make([]bool, n)
	if src < 0 || int(src) >= n {
		return seen
	}
	seen[src] = true
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, lid := range g.OutLinks(cur) {
			link, err := g.Link(lid)
			if err != nil {
				continue
			}
			if math.IsInf(w(link), 1) {
				continue
			}
			if !seen[link.Rx] {
				seen[link.Rx] = true
				queue = append(queue, link.Rx)
			}
		}
	}
	return seen
}

// Connected reports whether every node is reachable from node 0.
func Connected(g Network) bool {
	for _, ok := range Reachable(g, 0, HopWeight) {
		if !ok {
			return false
		}
	}
	return true
}
