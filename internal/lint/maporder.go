package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMaporder guards DESIGN.md Sec. 8 invariant 4 (deterministic
// output order): a `range` over a map whose body feeds an ordered sink
// — appending to a slice declared outside the loop, sending on a
// channel, or returning a value derived from the iteration variables —
// leaks Go's randomized map order into results. Appends are excused
// when the enclosing function later passes the slice to sort or slices,
// the collect-then-sort idiom every emit path here uses.
var AnalyzerMaporder = &Analyzer{
	Name: "maporder",
	Doc: "range over a map feeding an append/send/return path without a " +
		"subsequent sort makes output order depend on map iteration " +
		"(guards invariant 4: deterministic Set.Key() order and golden tables)",
	Run: runMaporder,
}

func runMaporder(p *Pass) {
	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !p.rangesOverMap(rs) {
				return true
			}
			p.checkMapRange(rs, stack)
			return true
		})
	}
}

// rangesOverMap reports whether rs iterates a map directly or through
// the maps.Keys/Values/All iterators (whose order is equally random).
func (p *Pass) rangesOverMap(rs *ast.RangeStmt) bool {
	if t := p.TypeOf(rs.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return true
		}
	}
	call, ok := rs.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := p.calleeFunc(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "maps" &&
		(fn.Name() == "Keys" || fn.Name() == "Values" || fn.Name() == "All")
}

// calleeFunc resolves a call's callee to a package-level *types.Func.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

func (p *Pass) checkMapRange(rs *ast.RangeStmt, stack []ast.Node) {
	iterObjs := p.rangeVarObjects(rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "send inside map iteration publishes values in map order; collect and sort first")
		case *ast.ReturnStmt:
			if p.usesAny(n, iterObjs) {
				p.Reportf(n.Pos(), "return of a map iteration variable picks an arbitrary entry; iterate sorted keys")
			}
		case *ast.AssignStmt:
			p.checkAppendInMapRange(n, rs, stack)
		}
		return true
	})
}

// rangeVarObjects collects the objects bound to the range's key/value.
func (p *Pass) rangeVarObjects(rs *ast.RangeStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := p.ObjectOf(id); o != nil {
				objs[o] = true
			}
		}
	}
	return objs
}

func (p *Pass) usesAny(n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && objs[p.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// checkAppendInMapRange flags `x = append(x, ...)` where x is declared
// outside the range statement and is not sorted afterwards within the
// enclosing function.
func (p *Pass) checkAppendInMapRange(as *ast.AssignStmt, rs *ast.RangeStmt, stack []ast.Node) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !p.isBuiltinAppend(call) || i >= len(as.Lhs) {
			continue
		}
		target := appendTarget(as.Lhs[i])
		if target == nil {
			// Appending through a selector (s.field = append(...)): the
			// slice outlives the loop and cannot be proven sorted here.
			p.Reportf(as.Pos(), "append to %s inside map iteration records entries in map order; sort before emitting", types.ExprString(as.Lhs[i]))
			continue
		}
		obj := p.ObjectOf(target)
		if obj == nil || withinNode(rs, obj.Pos()) {
			continue // loop-local scratch; order cannot escape
		}
		if p.sortedAfter(obj, rs, stack) {
			continue
		}
		p.Reportf(as.Pos(), "append to %q inside map iteration records entries in map order; sort %q afterwards or iterate sorted keys", target.Name, target.Name)
	}
}

func (p *Pass) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendTarget returns the plain identifier being assigned, or nil for
// selector/index targets.
func appendTarget(lhs ast.Expr) *ast.Ident {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

func withinNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// sortedAfter reports whether, in the innermost enclosing function, the
// slice object is passed to a sort/slices function at a position after
// the range statement.
func (p *Pass) sortedAfter(obj types.Object, rs *ast.RangeStmt, stack []ast.Node) bool {
	var fnBody *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			fnBody = fn.Body
		case *ast.FuncLit:
			fnBody = fn.Body
		}
		if fnBody != nil {
			break
		}
	}
	if fnBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := p.calleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if p.refersTo(arg, obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func (p *Pass) refersTo(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && p.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
