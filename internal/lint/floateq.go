package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloateq guards DESIGN.md Sec. 8 invariant 5 (tolerance-based
// simplex pivoting): in the numeric kernels, `==`/`!=` between floating
// operands is almost always a latent pivot bug — comparisons there must
// go through a named tolerance (pivotTol, feasTol) or be explicitly
// justified as bit-exact (skip-zero sparsity tests, integrality
// checks) with a //lint:ignore.
var AnalyzerFloateq = &Analyzer{
	Name: "floateq",
	Doc: "==/!= on floating-point operands in the numeric kernels; compare " +
		"through a named tolerance instead (guards invariant 5: pivotTol " +
		"discipline in the simplex and enumeration hot paths)",
	Packages: []string{"internal/lp", "internal/core", "internal/clique", "internal/indepset"},
	Run:      runFloateq,
}

func runFloateq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !p.isFloat(be.X) && !p.isFloat(be.Y) {
				return true
			}
			p.Reportf(be.OpPos, "floating-point %s comparison; use a named tolerance helper or justify bit-exactness with //lint:ignore", be.Op)
			return true
		})
	}
}

func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
