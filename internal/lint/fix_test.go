package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixFile materializes src as a one-file package and returns its path.
func fixFile(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fixDiag(file string, fix *Fix) Diagnostic {
	return Diagnostic{Rule: "abw/test", File: file, Line: 1, Col: 1, Message: "test", Fix: fix}
}

func TestApplyFixesRewrites(t *testing.T) {
	src := "package p\n\nvar x = 1\n"
	path := fixFile(t, src)
	off := strings.Index(src, "1")
	fix := &Fix{Message: "bump", Edits: []TextEdit{{Offset: off, End: off + 1, NewText: "2"}}}
	res, err := ApplyFixes([]Diagnostic{fixDiag(path, fix)}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Applied != 1 || res[0].Skipped != 0 {
		t.Fatalf("results = %+v", res)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "package p\n\nvar x = 2\n" {
		t.Errorf("file after fix:\n%s", got)
	}
}

func TestApplyFixesDryRun(t *testing.T) {
	src := "package p\n\nvar x = 1\n"
	path := fixFile(t, src)
	off := strings.Index(src, "1")
	fix := &Fix{Edits: []TextEdit{{Offset: off, End: off + 1, NewText: "2"}}}
	res, err := ApplyFixes([]Diagnostic{fixDiag(path, fix)}, true)
	if err != nil {
		t.Fatal(err)
	}
	if string(res[0].After) != "package p\n\nvar x = 2\n" {
		t.Errorf("dry-run After:\n%s", res[0].After)
	}
	got, _ := os.ReadFile(path)
	if string(got) != src {
		t.Errorf("dry run wrote to disk:\n%s", got)
	}
}

func TestApplyFixesOverlapSkipsSecond(t *testing.T) {
	src := "package p\n\nvar x = 10\n"
	path := fixFile(t, src)
	off := strings.Index(src, "10")
	a := &Fix{Edits: []TextEdit{{Offset: off, End: off + 2, NewText: "20"}}}
	b := &Fix{Edits: []TextEdit{{Offset: off + 1, End: off + 2, NewText: "9"}}}
	res, err := ApplyFixes([]Diagnostic{fixDiag(path, a), fixDiag(path, b)}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Applied != 1 || res[0].Skipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 1/1", res[0].Applied, res[0].Skipped)
	}
	got, _ := os.ReadFile(path)
	if !strings.Contains(string(got), "x = 20") {
		t.Errorf("first fix not applied:\n%s", got)
	}
}

func TestApplyFixesDuplicateEditsCollapse(t *testing.T) {
	src := "package p\n\nvar x = 1\n"
	path := fixFile(t, src)
	off := strings.Index(src, "1")
	edit := TextEdit{Offset: off, End: off + 1, NewText: "2"}
	a := &Fix{Edits: []TextEdit{edit}}
	b := &Fix{Edits: []TextEdit{edit}}
	res, err := ApplyFixes([]Diagnostic{fixDiag(path, a), fixDiag(path, b)}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Both fixes count as applied; the identical edit lands once.
	if res[0].Applied != 2 || res[0].Skipped != 0 {
		t.Fatalf("applied=%d skipped=%d, want 2/0", res[0].Applied, res[0].Skipped)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "package p\n\nvar x = 2\n" {
		t.Errorf("file after duplicate fixes:\n%s", got)
	}
}

func TestApplyFixesUnparsableNotWritten(t *testing.T) {
	src := "package p\n\nvar x = 1\n"
	path := fixFile(t, src)
	off := strings.Index(src, "var")
	fix := &Fix{Edits: []TextEdit{{Offset: off, End: off + 3, NewText: "}{"}}}
	if _, err := ApplyFixes([]Diagnostic{fixDiag(path, fix)}, false); err == nil {
		t.Fatal("unparsable rewrite did not error")
	}
	got, _ := os.ReadFile(path)
	if string(got) != src {
		t.Errorf("unparsable rewrite reached disk:\n%s", got)
	}
}

// passFor wraps a loaded package in a Pass the way runOne does, for
// tests that exercise Pass helpers directly.
func passFor(pkg *Package) *Pass {
	return &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, pkg: pkg}
}

// applyEdit applies a single TextEdit to the package's only file and
// returns the result.
func applyEdit(t *testing.T, pkg *Package, e *TextEdit) string {
	t.Helper()
	if e == nil {
		t.Fatal("nil edit")
	}
	src, err := os.ReadFile(filepath.Join(pkg.Dir, "x.go"))
	if err != nil {
		t.Fatal(err)
	}
	return string(src[:e.Offset]) + e.NewText + string(src[e.End:])
}

func TestEnsureImportGroupedSorted(t *testing.T) {
	pkg := loadSynthetic(t, "synth/impgroup", `package p

import (
	"fmt"
	"os"
)

func f() { fmt.Println(os.Args) }
`)
	p := passFor(pkg)
	e := p.EnsureImport(pkg.Files[0].Pos(), "errors")
	got := applyEdit(t, pkg, e)
	if !strings.Contains(got, "import (\n\t\"errors\"\n\t\"fmt\"\n\t\"os\"\n)") {
		t.Errorf("errors not inserted in sorted position:\n%s", got)
	}
}

func TestEnsureImportGroupedAppendsLast(t *testing.T) {
	pkg := loadSynthetic(t, "synth/implast", `package p

import (
	"fmt"
)

func f() { fmt.Println() }
`)
	p := passFor(pkg)
	e := p.EnsureImport(pkg.Files[0].Pos(), "sort")
	got := applyEdit(t, pkg, e)
	if !strings.Contains(got, "\"fmt\"\n\t\"sort\"") {
		t.Errorf("sort not appended after fmt:\n%s", got)
	}
}

func TestEnsureImportSingle(t *testing.T) {
	pkg := loadSynthetic(t, "synth/impsingle", `package p

import "fmt"

func f() { fmt.Println() }
`)
	p := passFor(pkg)
	e := p.EnsureImport(pkg.Files[0].Pos(), "errors")
	got := applyEdit(t, pkg, e)
	if !strings.Contains(got, "import (\n\t\"errors\"\n\t\"fmt\"\n)") {
		t.Errorf("single import not wrapped into a sorted group:\n%s", got)
	}
}

func TestEnsureImportNone(t *testing.T) {
	pkg := loadSynthetic(t, "synth/impnone", `package p

func f() int { return 1 }
`)
	p := passFor(pkg)
	e := p.EnsureImport(pkg.Files[0].Pos(), "errors")
	got := applyEdit(t, pkg, e)
	if !strings.Contains(got, "package p\n\nimport \"errors\"") {
		t.Errorf("import not inserted after package clause:\n%s", got)
	}
}

func TestEnsureImportAlreadyPresent(t *testing.T) {
	pkg := loadSynthetic(t, "synth/imphave", `package p

import "errors"

var errX = errors.New("x")
`)
	p := passFor(pkg)
	if e := p.EnsureImport(pkg.Files[0].Pos(), "errors"); e != nil {
		t.Errorf("edit for an already-present import: %+v", e)
	}
}

// TestFixRoundTripErrflow is the library-level round trip: lint a
// package with a fixable errflow finding, apply the fix (rewrite plus
// import insertion), re-lint the rewritten source, and require zero
// findings.
func TestFixRoundTripErrflow(t *testing.T) {
	src := `package p

import (
	"fmt"
	"io"
)

func f(err error) bool {
	if err == io.EOF {
		fmt.Println("eof")
	}
	return false
}
`
	pkg := loadSynthetic(t, "synth/roundtrip1", src)
	diags := RunUnfiltered(pkg, []*Analyzer{AnalyzerErrflow})
	if len(diags) != 1 || diags[0].Fix == nil {
		t.Fatalf("want one fixable finding, got %v", diags)
	}
	res, err := ApplyFixes(diags, false)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Applied != 1 {
		t.Fatalf("applied = %d", res[0].Applied)
	}
	after, _ := os.ReadFile(filepath.Join(pkg.Dir, "x.go"))
	if !strings.Contains(string(after), "errors.Is(err, io.EOF)") {
		t.Errorf("rewrite missing:\n%s", after)
	}
	if !strings.Contains(string(after), "\t\"errors\"\n\t\"fmt\"") {
		t.Errorf("errors import not inserted in sorted position:\n%s", after)
	}
	// Re-lint the fixed source under a fresh import path (the loader
	// caches by path).
	fixed := loadSynthetic(t, "synth/roundtrip2", string(after))
	if d := RunUnfiltered(fixed, []*Analyzer{AnalyzerErrflow}); len(d) != 0 {
		t.Errorf("findings after fix: %v", d)
	}
}
