package lint

// Analyzers returns every rule, sorted by name. The set is the contract
// `abwlint -rules` prints and CHANGES to it must update DESIGN.md
// Sec. 9 (static enforcement).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerAtomicfield,
		AnalyzerFloateq,
		AnalyzerGlobalrand,
		AnalyzerMaporder,
		AnalyzerTimenow,
	}
}
