package lint

// Analyzers returns every rule, sorted by name. The set is the contract
// `abwlint -list` prints and CHANGES to it must update DESIGN.md
// Sec. 9/13 (static enforcement).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerAtomicfield,
		AnalyzerCtxflow,
		AnalyzerErrflow,
		AnalyzerFloateq,
		AnalyzerGlobalrand,
		AnalyzerLockguard,
		AnalyzerMaporder,
		AnalyzerTimenow,
	}
}
