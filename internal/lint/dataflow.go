// A small forward-dataflow engine over function bodies. Facts are
// opaque strings a visitor adds and removes as the walk threads them
// through statements in evaluation order; control-flow joins merge by
// intersection, so a fact survives a join only when it holds on every
// non-terminating path into it. That bias — drop facts rather than
// invent them — makes the engine sound for "is the lock held here"
// style questions: it may miss a held lock (a false finding the triage
// waives with a reason) but never fabricates one.
//
// Deliberate simplifications, each conservative in that direction:
//
//   - loop bodies are analyzed once; facts after a loop are the
//     intersection of the entry facts and the body's exit facts (the
//     body may have run zero times);
//   - break/continue/goto paths are treated as terminating, so they do
//     not contribute facts to any join;
//   - function literals are analyzed with no facts (a closure may run
//     on another goroutine or after the function returns);
//   - deferred calls are shown to the visitor under inDefer=true and
//     their effects are otherwise ignored — `defer mu.Unlock()` keeps
//     the lock held for the remainder of the body.
package lint

import "go/ast"

// Facts is the fact set a forward walk threads through a body.
type Facts map[string]bool

func (f Facts) clone() Facts {
	out := make(Facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// intersect removes facts absent from other.
func (f Facts) intersect(other Facts) {
	for k := range f {
		if !other[k] {
			delete(f, k)
		}
	}
}

// flowVisit is invoked for every expression and statement node in
// evaluation order with the facts holding just before it executes; it
// may mutate the set. inDefer marks nodes inside a defer statement.
type flowVisit func(n ast.Node, facts Facts, inDefer bool)

// forwardFlow walks body threading entry through it, calling visit on
// every node in evaluation order. It returns the facts at the body's
// fall-through exit and whether every path through the body terminates
// (returns or panics) before falling through.
func forwardFlow(body *ast.BlockStmt, entry Facts, visit flowVisit) (Facts, bool) {
	w := &flowWalker{visit: visit}
	out, term := w.stmts(body.List, entry)
	return out, term
}

type flowWalker struct {
	visit flowVisit
}

func (w *flowWalker) stmts(list []ast.Stmt, f Facts) (Facts, bool) {
	for _, s := range list {
		var term bool
		f, term = w.stmt(s, f)
		if term {
			return f, true
		}
	}
	return f, false
}

// expr shows every node of e (except nested function literal bodies) to
// the visitor, in source order — a close enough stand-in for evaluation
// order at the granularity facts change here.
func (w *flowWalker) expr(e ast.Node, f Facts, inDefer bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			w.visit(lit, f, inDefer)
			// Closures run with no inherited facts.
			w.stmts(lit.Body.List, make(Facts))
			return false
		}
		w.visit(n, f, inDefer)
		return true
	})
}

// stmt threads f through s, returning the facts at its fall-through
// exit and whether the statement terminates every path through it.
func (w *flowWalker) stmt(s ast.Stmt, f Facts) (Facts, bool) {
	switch s := s.(type) {
	case nil:
		return f, false
	case *ast.BlockStmt:
		return w.stmts(s.List, f)
	case *ast.ReturnStmt:
		w.expr(s, f, false)
		return f, true
	case *ast.BranchStmt:
		// break/continue/goto: the path leaves this join structure;
		// treating it as terminating keeps its facts out of merges.
		return f, true
	case *ast.DeferStmt:
		w.expr(s.Call, f, true)
		return f, false
	case *ast.IfStmt:
		f, _ = w.stmt(s.Init, f)
		w.expr(s.Cond, f, false)
		thenF, thenTerm := w.stmts(s.Body.List, f.clone())
		elseF, elseTerm := f.clone(), false
		if s.Else != nil {
			elseF, elseTerm = w.stmt(s.Else, f.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return f, true
		case thenTerm:
			return elseF, false
		case elseTerm:
			return thenF, false
		default:
			thenF.intersect(elseF)
			return thenF, false
		}
	case *ast.ForStmt:
		f, _ = w.stmt(s.Init, f)
		w.expr(s.Cond, f, false)
		bodyF, _ := w.stmts(s.Body.List, f.clone())
		w.stmt(s.Post, bodyF)
		// The body may run zero times: keep only facts that hold both
		// before the loop and at the body's exit. An unconditional
		// `for {}` only leaves via break/return, but modeling that
		// buys nothing here.
		out := f.clone()
		out.intersect(bodyF)
		return out, false
	case *ast.RangeStmt:
		w.expr(s.X, f, false)
		bodyF, _ := w.stmts(s.Body.List, f.clone())
		out := f.clone()
		out.intersect(bodyF)
		return out, false
	case *ast.SwitchStmt:
		f, _ = w.stmt(s.Init, f)
		w.expr(s.Tag, f, false)
		return w.caseJoin(s.Body.List, f, hasDefaultCase(s.Body.List))
	case *ast.TypeSwitchStmt:
		f, _ = w.stmt(s.Init, f)
		w.stmt(s.Assign, f)
		return w.caseJoin(s.Body.List, f, hasDefaultCase(s.Body.List))
	case *ast.SelectStmt:
		// A select always takes exactly one arm.
		return w.caseJoin(s.Body.List, f, true)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, f)
	case *ast.GoStmt:
		// The goroutine runs concurrently: its body sees no facts, and
		// it changes none here.
		w.expr(s.Call, make(Facts), false)
		return f, false
	case *ast.ExprStmt:
		w.expr(s.X, f, false)
		return f, false
	default:
		// Assignments, declarations, sends, inc/dec: linear statements
		// whose nested expressions the visitor sees in order.
		w.expr(s, f, false)
		return f, false
	}
}

// caseJoin threads f through each case clause independently and merges
// the fall-through exits by intersection. Without a default case the
// entry facts join too (no clause may match).
func (w *flowWalker) caseJoin(clauses []ast.Stmt, f Facts, exhaustive bool) (Facts, bool) {
	var out Facts
	allTerm := true
	join := func(g Facts) {
		allTerm = false
		if out == nil {
			out = g
		} else {
			out.intersect(g)
		}
	}
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, f, false)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, f.clone())
			}
			body = c.Body
		default:
			continue
		}
		g, term := w.stmts(body, f.clone())
		if !term {
			join(g)
		}
	}
	if !exhaustive {
		join(f.clone())
	}
	if out == nil {
		return f, allTerm && len(clauses) > 0
	}
	return out, false
}

func hasDefaultCase(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}
