package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerTimenow keeps wall-clock time out of result-producing code:
// golden experiment tables, parallel-determinism tests and the
// byte-identical enumeration contract (DESIGN.md Sec. 8 invariant 8)
// all assume outputs depend only on inputs and seeds. CLI mains are
// exempt (abwbench legitimately date-stamps baseline files).
var AnalyzerTimenow = &Analyzer{
	Name: "timenow",
	Doc: "time.Now/Since/Until in a result-producing package makes output " +
		"depend on the wall clock, breaking golden-table and " +
		"parallel-determinism gates (package main is exempt)",
	Run: runTimenow,
}

var timenowBanned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runTimenow(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !timenowBanned[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock in a result-producing package; thread time through as an input", fn.Name())
			return true
		})
	}
}
