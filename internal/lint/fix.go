// The suggested-fix engine. Rules attach a Fix — a set of byte-offset
// textual edits confined to the diagnostic's file — to a finding;
// ApplyFixes groups the edits per file, applies them in one pass, and
// re-parses the result before anything touches disk, so a bad edit can
// never leave a file unparsable. Writes are temp+rename, atomic per
// file. The abwlint driver exposes the engine as -fix (rewrite in
// place) and -diff (print the rewrite as a unified diff).
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Fix is one suggested rewrite. Every edit must lie in the file of the
// diagnostic carrying the fix.
type Fix struct {
	// Message describes the rewrite ("use errors.Is").
	Message string `json:"message"`
	// Edits are the byte-offset replacements, non-overlapping.
	Edits []TextEdit `json:"edits"`
}

// TextEdit replaces the bytes [Offset, End) of the diagnostic's file
// with NewText.
type TextEdit struct {
	Offset  int    `json:"offset"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

// Edit builds a TextEdit replacing the source range [pos, end).
func (p *Pass) Edit(pos, end token.Pos, newText string) TextEdit {
	return TextEdit{
		Offset:  p.Fset.Position(pos).Offset,
		End:     p.Fset.Position(end).Offset,
		NewText: newText,
	}
}

// FixResult describes one file ApplyFixes rewrote (or would rewrite).
type FixResult struct {
	// File is the file's path as it appeared in the diagnostics.
	File string
	// Applied counts the fixes applied; Skipped counts fixes dropped
	// because they overlapped an already-accepted edit.
	Applied, Skipped int
	// Before and After are the file's contents around the rewrite.
	Before, After []byte
}

// ApplyFixes collects every diagnostic carrying a fix, applies the
// fixes file by file, and — unless dryRun — writes each changed file
// atomically (temp file + rename). A rewrite that no longer parses
// fails that file without touching it. Overlapping fixes are applied
// first-come in diagnostic order; later conflicting fixes are counted
// as skipped and left for a second abwlint -fix pass. Identical
// duplicate edits (two findings demanding the same import, say)
// collapse. Results are sorted by file.
func ApplyFixes(diags []Diagnostic, dryRun bool) ([]FixResult, error) {
	byFile := make(map[string][]*Fix)
	for i := range diags {
		if diags[i].Fix != nil {
			byFile[diags[i].File] = append(byFile[diags[i].File], diags[i].Fix)
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var out []FixResult
	for _, file := range files {
		res, err := applyFileFixes(file, byFile[file], dryRun)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

func applyFileFixes(file string, fixes []*Fix, dryRun bool) (FixResult, error) {
	src, err := os.ReadFile(file)
	if err != nil {
		return FixResult{File: file}, err
	}
	res := FixResult{File: file, Before: src}

	// Accept fixes greedily in diagnostic order, rejecting any fix with
	// an edit that overlaps an already-accepted edit (identical edits
	// collapse instead). Edits are then applied back to front so
	// earlier offsets stay valid.
	type span struct {
		TextEdit
	}
	var accepted []span
	overlaps := func(e TextEdit) (dup, clash bool) {
		for _, a := range accepted {
			if a.TextEdit == e {
				return true, false
			}
			if e.Offset < a.End && a.Offset < e.End {
				return false, true
			}
		}
		return false, false
	}
	for _, fx := range fixes {
		ok := true
		var fresh []TextEdit
		for _, e := range fx.Edits {
			if e.Offset < 0 || e.End < e.Offset || e.End > len(src) {
				ok = false
				break
			}
			dup, clash := overlaps(e)
			if clash {
				ok = false
				break
			}
			if !dup {
				fresh = append(fresh, e)
			}
		}
		if !ok {
			res.Skipped++
			continue
		}
		for _, e := range fresh {
			accepted = append(accepted, span{e})
		}
		res.Applied++
	}
	if len(accepted) == 0 {
		res.After = src
		return res, nil
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i].Offset > accepted[j].Offset })
	buf := append([]byte{}, src...)
	for _, e := range accepted {
		buf = append(buf[:e.Offset], append([]byte(e.NewText), buf[e.End:]...)...)
	}
	// The gate before anything reaches disk: the rewritten file must
	// still parse.
	if _, err := parser.ParseFile(token.NewFileSet(), file, buf, parser.ParseComments); err != nil {
		return res, fmt.Errorf("lint: fix for %s produces unparsable Go (not written): %w", file, err)
	}
	res.After = buf
	if dryRun {
		return res, nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(file), ".abwlint-fix-*")
	if err != nil {
		return res, err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return res, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return res, err
	}
	if info, err := os.Stat(file); err == nil {
		os.Chmod(tmpName, info.Mode())
	}
	if err := os.Rename(tmpName, file); err != nil {
		os.Remove(tmpName)
		return res, err
	}
	return res, nil
}

// EnsureImport returns an edit adding an unaliased import of path to
// the file containing pos, or nil when the file already imports path.
// The edit handles grouped imports, single imports, and files with no
// import declaration at all.
func (p *Pass) EnsureImport(pos token.Pos, path string) *TextEdit {
	f := p.FileOf(pos)
	if f == nil {
		return nil
	}
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return nil
		}
	}
	quoted := `"` + path + `"`
	// Prefer extending the first grouped import declaration.
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			// Insert in sorted position so gofmt is a no-op on the result:
			// before the first path that sorts after the new one, else
			// after the last spec. (With mixed stdlib/module groups this
			// can land in the "wrong" block, which is cosmetic only.)
			for _, s := range gd.Specs {
				is := s.(*ast.ImportSpec)
				if is.Path.Value > quoted {
					off := p.Fset.Position(is.Pos()).Offset
					return &TextEdit{Offset: off, End: off, NewText: quoted + "\n\t"}
				}
			}
			if n := len(gd.Specs); n > 0 {
				off := p.Fset.Position(gd.Specs[n-1].End()).Offset
				return &TextEdit{Offset: off, End: off, NewText: "\n\t" + quoted}
			}
			off := p.Fset.Position(gd.Lparen).Offset + 1
			return &TextEdit{Offset: off, End: off, NewText: "\n\t" + quoted}
		}
		// Single import: turn `import "x"` into a group.
		if len(gd.Specs) == 1 {
			spec := gd.Specs[0].(*ast.ImportSpec)
			start := p.Fset.Position(spec.Pos()).Offset
			end := p.Fset.Position(spec.End()).Offset
			existing := spec.Path.Value
			if spec.Name != nil {
				existing = spec.Name.Name + " " + existing
			}
			return &TextEdit{Offset: start, End: end,
				NewText: "(\n\t" + quoted + "\n\t" + existing + "\n)"}
		}
	}
	// No import declaration: insert one after the package clause.
	off := p.Fset.Position(f.Name.End()).Offset
	return &TextEdit{Offset: off, End: off, NewText: "\n\nimport " + quoted}
}
