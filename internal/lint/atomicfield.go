package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AnalyzerAtomicfield guards DESIGN.md Sec. 8 invariants 6–8 (the
// shared exploration budget): a variable or struct field that is ever
// passed to sync/atomic must be accessed through sync/atomic
// everywhere in the package — one plain read of a budget counter that
// workers bump atomically is a data race the race detector only
// catches when the schedule cooperates. Deliberate single-owner plain
// access (the sequential walk's non-atomic fast path) must carry a
// //lint:ignore stating why no concurrent writer can exist.
var AnalyzerAtomicfield = &Analyzer{
	Name: "atomicfield",
	Doc: "mixed atomic and plain access to the same variable or field; " +
		"every access must go through sync/atomic, or the plain site must " +
		"prove exclusivity in a //lint:ignore (guards invariants 6-8: the " +
		"shared exploration budget)",
	Run: runAtomicfield,
}

func runAtomicfield(p *Pass) {
	// Pass A: every &x handed to a sync/atomic function marks x's object
	// as atomically accessed; the operand node itself is sanctioned.
	atomicAt := make(map[types.Object]token.Pos)
	sanctioned := make(map[ast.Node]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				operand := ast.Unparen(ue.X)
				if obj := p.addressedObject(operand); obj != nil {
					if _, seen := atomicAt[obj]; !seen {
						atomicAt[obj] = ue.Pos()
					}
					sanctioned[operand] = true
				}
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}
	// Pass B: any other use of those objects is a plain access.
	for _, f := range p.Files {
		p.flagPlainUses(f, atomicAt, sanctioned)
	}
}

// addressedObject resolves the operand of &x to the variable or field
// object being addressed.
func (p *Pass) addressedObject(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if v, ok := p.ObjectOf(e.Sel).(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := p.ObjectOf(e).(*types.Var); ok {
			return v
		}
	}
	return nil
}

func (p *Pass) flagPlainUses(root ast.Node, atomicAt map[types.Object]token.Pos, sanctioned map[ast.Node]bool) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if v, ok := p.Info.Uses[n.Sel].(*types.Var); ok {
				if at, tracked := atomicAt[v]; tracked && !sanctioned[n] {
					p.reportPlainUse(n.Pos(), v, at)
				}
				// The Sel identifier is accounted for; only the receiver
				// expression can hold further uses.
				ast.Inspect(n.X, visit)
				return false
			}
		case *ast.Ident:
			if v, ok := p.Info.Uses[n].(*types.Var); ok {
				if at, tracked := atomicAt[v]; tracked && !sanctioned[n] {
					p.reportPlainUse(n.Pos(), v, at)
				}
			}
		}
		return true
	}
	ast.Inspect(root, visit)
}

func (p *Pass) reportPlainUse(pos token.Pos, v *types.Var, atomicPos token.Pos) {
	at := p.Fset.Position(atomicPos)
	p.Reportf(pos, "%q is accessed via sync/atomic at %s:%d; this plain access races with it",
		v.Name(), filepath.Base(at.Filename), at.Line)
}
