// The interprocedural layer: a package-level call graph built from the
// go/types loader (static calls and method sets only — no x/tools, no
// pointer analysis) plus context-variant resolution. Rules that reason
// across function boundaries (abw/ctxflow, abw/lockguard) share this
// index instead of re-walking the files; it is built lazily, once per
// package, and cached on the Package.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CallGraph indexes every function declared in one package: its
// declaration, the static call sites in its body, and the reverse
// caller edges within the package.
type CallGraph struct {
	// Funcs maps each declared function object to its node, and ByDecl
	// the declaration to the same node.
	Funcs  map[*types.Func]*FuncNode
	ByDecl map[*ast.FuncDecl]*FuncNode
}

// FuncNode is one declared function with its intra-package edges.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	// Calls are the statically-resolved call sites in the body, in
	// source order, including calls to functions outside the package.
	Calls []CallSite
	// Callers are the call sites within this package whose callee is
	// this function.
	Callers []CallSite
}

// CallSite is one statically-resolved call.
type CallSite struct {
	// Caller is the declared function whose body contains the call
	// (never nil; calls in package-level var initializers are skipped).
	Caller *FuncNode
	// Callee is the resolved target; it may be declared in another
	// package. Calls through function values resolve to nil and are not
	// recorded.
	Callee *types.Func
	Call   *ast.CallExpr
	// InFuncLit reports that the call sits inside a function literal
	// nested in Caller — it may execute on a different goroutine or
	// after Caller returns.
	InFuncLit bool
}

// CallGraph returns the package's call graph, building it on first use.
func (p *Pass) CallGraph() *CallGraph {
	if p.pkg.cg == nil {
		p.pkg.cg = buildCallGraph(p)
	}
	return p.pkg.cg
}

func buildCallGraph(p *Pass) *CallGraph {
	g := &CallGraph{
		Funcs:  make(map[*types.Func]*FuncNode),
		ByDecl: make(map[*ast.FuncDecl]*FuncNode),
	}
	// Pass 1: nodes for every declaration, so reverse edges can attach
	// regardless of declaration order.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &FuncNode{Obj: obj, Decl: fd}
			g.Funcs[obj] = n
			g.ByDecl[fd] = n
		}
	}
	// Pass 2: call sites and reverse edges.
	for _, n := range g.ByDecl {
		n := n
		litDepth := 0
		var walk func(ast.Node) bool
		walk = func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				litDepth++
				ast.Inspect(c.Body, walk)
				litDepth--
				return false
			case *ast.CallExpr:
				if callee := p.calleeFunc(c); callee != nil {
					site := CallSite{Caller: n, Callee: callee, Call: c, InFuncLit: litDepth > 0}
					n.Calls = append(n.Calls, site)
					if target, ok := g.Funcs[callee]; ok {
						target.Callers = append(target.Callers, site)
					}
				}
			}
			return true
		}
		ast.Inspect(n.Decl.Body, walk)
	}
	return g
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParam returns the object of fn's context.Context parameter (by
// convention the first), or nil.
func ctxParamOf(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				return v
			}
		}
	}
	return nil
}

// takesContext reports whether fn's first parameter is a
// context.Context.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

// ContextVariant resolves the context-accepting variant of fn: fn
// itself when its first parameter is a context.Context, else a sibling
// named fn.Name()+"Context" — a method on the same receiver type for
// methods, a function in the same package otherwise — whose first
// parameter is a context.Context. Returns nil when no variant exists.
func ContextVariant(fn *types.Func) *types.Func {
	if takesContext(fn) {
		return fn
	}
	if strings.HasSuffix(fn.Name(), "Context") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	want := fn.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, fn.Pkg(), want)
		if m, ok := obj.(*types.Func); ok && takesContext(m) {
			return m
		}
		return nil
	}
	if m, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && takesContext(m) {
		return m
	}
	return nil
}
