package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// flowProbes runs forwardFlow over a function body given as source.
// Calls to set()/del() add and remove the single fact "x"; calls to
// probeN() record whether "x" holds at that point. Returns probe name
// -> held.
func flowProbes(t *testing.T, body string) map[string]bool {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	file, err := parser.ParseFile(token.NewFileSet(), "flow.go", src, 0)
	if err != nil {
		t.Fatalf("parsing probe body: %v\n%s", err, src)
	}
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "f" {
			fd = x
		}
	}
	probes := make(map[string]bool)
	forwardFlow(fd.Body, make(Facts), func(n ast.Node, facts Facts, inDefer bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return
		}
		switch {
		case id.Name == "set" && !inDefer:
			facts["x"] = true
		case id.Name == "del" && !inDefer:
			delete(facts, "x")
		case strings.HasPrefix(id.Name, "probe"):
			probes[id.Name] = facts["x"]
		}
	})
	return probes
}

func TestForwardFlow(t *testing.T) {
	tests := []struct {
		name string
		body string
		want map[string]bool
	}{
		{"linear", "set()\nprobe1()", map[string]bool{"probe1": true}},
		{"delete", "set()\ndel()\nprobe1()", map[string]bool{"probe1": false}},
		{"ifOneArm", "if c {\nset()\n}\nprobe1()", map[string]bool{"probe1": false}},
		{"ifBothArms", "if c {\nset()\n} else {\nset()\n}\nprobe1()", map[string]bool{"probe1": true}},
		{"terminatingArmDropped", "set()\nif c {\ndel()\nreturn\n}\nprobe1()", map[string]bool{"probe1": true}},
		{"deferEffectIgnored", "set()\ndefer del()\nprobe1()", map[string]bool{"probe1": true}},
		{"loopEntrySeen", "set()\nfor c {\nprobe1()\n}\nprobe2()", map[string]bool{"probe1": true, "probe2": true}},
		{"loopBodyNotAssumed", "for i := 0; i < 2; i++ {\nset()\n}\nprobe1()", map[string]bool{"probe1": false}},
		{"loopBodyDelPersists", "set()\nfor range xs {\ndel()\n}\nprobe1()", map[string]bool{"probe1": false}},
		{"breakIsTerminal", "for {\nif c {\nbreak\n}\nset()\n}\nprobe1()", map[string]bool{"probe1": false}},
		{"switchNoDefault", "switch v {\ncase 1:\nset()\n}\nprobe1()", map[string]bool{"probe1": false}},
		{"switchWithDefault", "switch v {\ncase 1:\nset()\ndefault:\nset()\n}\nprobe1()", map[string]bool{"probe1": true}},
		{"selectAllArms", "select {\ncase <-ch:\nset()\ncase <-ch2:\nset()\n}\nprobe1()", map[string]bool{"probe1": true}},
		{"selectOneArm", "select {\ncase <-ch:\nset()\ncase <-ch2:\n}\nprobe1()", map[string]bool{"probe1": false}},
		{"closureSeesNothing", "set()\ng := func() {\nprobe1()\n}\ng()\nprobe2()", map[string]bool{"probe1": false, "probe2": true}},
		{"goroutineSeesNothing", "set()\ngo func() {\nprobe1()\n}()\nprobe2()", map[string]bool{"probe1": false, "probe2": true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := flowProbes(t, tt.body)
			for probe, want := range tt.want {
				held, seen := got[probe]
				if !seen {
					t.Errorf("%s never visited", probe)
					continue
				}
				if held != want {
					t.Errorf("%s: fact held = %v, want %v", probe, held, want)
				}
			}
		})
	}
}

func TestForwardFlowTermination(t *testing.T) {
	src := "package p\n\nfunc f() {\nreturn\n}\n"
	file, err := parser.ParseFile(token.NewFileSet(), "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	_, term := forwardFlow(fd.Body, make(Facts), func(ast.Node, Facts, bool) {})
	if !term {
		t.Error("body ending in return not reported as terminating")
	}
}
