package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSynthetic writes src as a one-file package in a temp dir and
// type-checks it under the given import path.
func loadSynthetic(t *testing.T, importPath, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := sharedLoader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading synthetic package: %v", err)
	}
	return pkg
}

func rulesOf(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Rule
	}
	return out
}

func TestIgnoreSameLine(t *testing.T) {
	pkg := loadSynthetic(t, "synth/sameline", `package p
import "math/rand"
func f() int { return rand.Intn(3) } //lint:ignore abw/globalrand test: same-line directive
`)
	if d := RunUnfiltered(pkg, []*Analyzer{AnalyzerGlobalrand}); len(d) != 0 {
		t.Errorf("same-line ignore did not suppress: %v", d)
	}
}

func TestIgnoreLineAbove(t *testing.T) {
	pkg := loadSynthetic(t, "synth/above", `package p
import "math/rand"
func f() int {
	//lint:ignore abw/globalrand test: directive above the line
	return rand.Intn(3)
}
`)
	if d := RunUnfiltered(pkg, []*Analyzer{AnalyzerGlobalrand}); len(d) != 0 {
		t.Errorf("line-above ignore did not suppress: %v", d)
	}
}

func TestIgnoreWrongLineDoesNotSuppress(t *testing.T) {
	pkg := loadSynthetic(t, "synth/wrongline", `package p
import "math/rand"
//lint:ignore abw/globalrand test: two lines above, out of range
// padding comment
func f() int { return rand.Intn(3) }
`)
	d := RunUnfiltered(pkg, []*Analyzer{AnalyzerGlobalrand})
	// The finding survives AND the directive is reported unused; sorted
	// by line, the line-3 directive report precedes the line-5 finding.
	got := rulesOf(d)
	want := []string{"abw/ignore", "abw/globalrand"}
	if len(d) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("want [unused-ignore, globalrand], got %v", d)
	}
}

func TestFileIgnore(t *testing.T) {
	pkg := loadSynthetic(t, "synth/fileignore", `package p
//lint:file-ignore abw/globalrand test: whole-file waiver
import "math/rand"
func f() int { return rand.Intn(3) }
func g() int { return rand.Intn(5) }
`)
	if d := RunUnfiltered(pkg, []*Analyzer{AnalyzerGlobalrand}); len(d) != 0 {
		t.Errorf("file-ignore did not suppress both findings: %v", d)
	}
}

func TestIgnoreMultipleRules(t *testing.T) {
	pkg := loadSynthetic(t, "synth/multirule", `package p
import (
	"math/rand"
	"time"
)
func f() int64 {
	//lint:ignore abw/globalrand,abw/timenow test: both rules on one line
	return time.Now().UnixNano() + int64(rand.Intn(3))
}
`)
	if d := RunUnfiltered(pkg, []*Analyzer{AnalyzerGlobalrand, AnalyzerTimenow}); len(d) != 0 {
		t.Errorf("comma-list ignore did not suppress both rules: %v", d)
	}
}

func TestIgnoreMissingReason(t *testing.T) {
	pkg := loadSynthetic(t, "synth/noreason", `package p
import "math/rand"
func f() int {
	//lint:ignore abw/globalrand
	return rand.Intn(3)
}
`)
	d := RunUnfiltered(pkg, []*Analyzer{AnalyzerGlobalrand})
	if len(d) != 2 {
		t.Fatalf("want malformed-directive finding plus the unsuppressed finding, got %v", d)
	}
	var sawMalformed bool
	for _, di := range d {
		if di.Rule == "abw/ignore" && strings.Contains(di.Message, "missing a reason") {
			sawMalformed = true
		}
	}
	if !sawMalformed {
		t.Errorf("missing-reason directive not reported: %v", d)
	}
}

func TestIgnoreUnknownRule(t *testing.T) {
	pkg := loadSynthetic(t, "synth/unknownrule", `package p
func f() {
	//lint:ignore abw/nosuchrule test: typo in rule name
	_ = 1
}
`)
	d := RunUnfiltered(pkg, []*Analyzer{AnalyzerGlobalrand})
	if len(d) != 1 || d[0].Rule != "abw/ignore" || !strings.Contains(d[0].Message, "unknown rule") {
		t.Errorf("unknown rule name not reported: %v", d)
	}
}

func TestIgnoreUnusedReported(t *testing.T) {
	pkg := loadSynthetic(t, "synth/unused", `package p
func f() {
	//lint:ignore abw/globalrand test: nothing to suppress here
	_ = 1
}
`)
	d := RunUnfiltered(pkg, []*Analyzer{AnalyzerGlobalrand})
	if len(d) != 1 || d[0].Rule != "abw/ignore" || !strings.Contains(d[0].Message, "suppresses nothing") {
		t.Errorf("unused directive not reported: %v", d)
	}
}

// TestRunPackageScope pins that a scoped rule (floateq) fires inside
// its package list and stays silent outside it.
func TestRunPackageScope(t *testing.T) {
	src := `package p
func f(a, b float64) bool { return a == b }
`
	in := loadSynthetic(t, "abw/internal/lp/sub", src)
	out := loadSynthetic(t, "abw/internal/sim/sub", src)
	if d := Run([]*Package{in}, []*Analyzer{AnalyzerFloateq}); len(d) != 1 {
		t.Errorf("scoped rule should fire inside internal/lp: %v", d)
	}
	if d := Run([]*Package{out}, []*Analyzer{AnalyzerFloateq}); len(d) != 0 {
		t.Errorf("scoped rule should be silent outside its packages: %v", d)
	}
}

func TestMatchPkg(t *testing.T) {
	cases := []struct {
		path, pattern string
		want          bool
	}{
		{"abw/internal/lp", "internal/lp", true},
		{"abw/internal/lp", "internal/lint", false},
		{"abw/internal/lint", "internal/lp", false},
		{"abw/cmd/abwsim", "cmd", true},
		{"cmd/tool", "cmd", true},
		{"abw", "abw", true},
		{"abw/internal/lphelpers", "internal/lp", false},
	}
	for _, c := range cases {
		if got := matchPkg(c.path, c.pattern); got != c.want {
			t.Errorf("matchPkg(%q, %q) = %v, want %v", c.path, c.pattern, got, c.want)
		}
	}
}

// TestDiagnosticsSorted pins the output contract: findings arrive
// sorted by file, then line, then column.
func TestDiagnosticsSorted(t *testing.T) {
	pkg := loadSynthetic(t, "synth/sorted", `package p
import (
	"math/rand"
	"time"
)
func f() int64 { return time.Now().UnixNano() + int64(rand.Intn(3)) }
func g() int   { return rand.Intn(5) }
`)
	d := RunUnfiltered(pkg, []*Analyzer{AnalyzerGlobalrand, AnalyzerTimenow})
	if len(d) < 3 {
		t.Fatalf("want at least 3 findings, got %v", d)
	}
	for i := 1; i < len(d); i++ {
		a, b := d[i-1], d[i]
		if a.File > b.File || (a.File == b.File && (a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col))) {
			t.Errorf("diagnostics out of order at %d: %v before %v", i, a, b)
		}
	}
}
