package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AnalyzerLockguard machine-checks the mutex discipline the concurrent
// subsystems document by hand (memo.Cache, memo.Store, server.Server,
// core.Session — e.g. the "Stats single-lock snapshot" rule of
// DESIGN.md Sec. 10): a struct field annotated
//
//	//guards: <mu>
//
// (in the field's doc or line comment; <mu> names a sync.Mutex or
// sync.RWMutex field of the same struct) may only be read or written
//
//   - in a function where the forward-dataflow engine proves the same
//     instance's mutex held at the access (mu.Lock()/RLock() reached on
//     every path, no intervening Unlock; defer Unlock keeps it held), or
//   - in a method whose name ends in "Locked" — the repo's caller-holds
//     convention — in which case the obligation moves interprocedurally
//     to every static caller, which must itself hold the mutex at the
//     call (or be a *Locked method, recursively).
//
// Anything else is a finding, waivable per access with a justified
// //lint:ignore (the accessor escape hatch). A malformed annotation —
// naming a missing field or one that is not a mutex — is itself a
// finding, so annotations cannot rot.
var AnalyzerLockguard = &Analyzer{
	Name: "lockguard",
	Doc: "access to a //guards:-annotated struct field without holding the " +
		"named mutex, proven by forward dataflow plus the *Locked caller-holds " +
		"convention checked at every call site (guards the single-lock " +
		"snapshot rules of Sec. 10/11)",
	Run: runLockguard,
}

const guardsPrefix = "guards:"

func runLockguard(p *Pass) {
	guards := p.collectGuards()
	if len(guards) == 0 {
		return
	}
	cg := p.CallGraph()

	// Per-function analysis: find unguarded accesses. Accesses inside
	// *Locked methods become caller obligations instead of findings —
	// the convention is that the caller already holds the receiver's
	// mutex, and the interprocedural pass below verifies it does.
	needs := make(map[*types.Func]map[*types.Var]bool) // Locked fn -> mutexes owed
	for _, n := range cg.ByDecl {
		recv := receiverVar(p, n.Decl)
		locked := recv != nil && strings.HasSuffix(n.Decl.Name.Name, "Locked")
		forwardFlow(n.Decl.Body, make(Facts), func(node ast.Node, facts Facts, inDefer bool) {
			switch node := node.(type) {
			case *ast.CallExpr:
				if !inDefer {
					if root, mu, op := p.lockOp(node); root != nil {
						switch op {
						case "Lock", "RLock":
							facts[lockFact(root, mu)] = true
						case "Unlock", "RUnlock":
							delete(facts, lockFact(root, mu))
						}
					}
				}
			case *ast.SelectorExpr:
				fieldObj, ok := p.Info.Uses[node.Sel].(*types.Var)
				if !ok {
					return
				}
				mu := guards[fieldObj]
				if mu == nil {
					return
				}
				root := rootIdentObj(p, node.X)
				if root == nil {
					// Access through a compound expression (map value,
					// call result): instance identity is unknowable
					// statically; stay silent rather than guess.
					return
				}
				if facts[lockFact(root, mu)] {
					return
				}
				if locked && root == recv {
					if needs[n.Obj] == nil {
						needs[n.Obj] = make(map[*types.Var]bool)
					}
					needs[n.Obj][mu] = true
					return
				}
				p.Reportf(node.Sel.Pos(), "%q is guarded by %q (//guards:) but accessed without holding it; lock %s.%s first or go through a *Locked accessor",
					fieldObj.Name(), mu.Name(), root.Name(), mu.Name())
			}
		})
	}

	// Interprocedural pass: discharge *Locked obligations at their call
	// sites. Obligations propagate caller-to-caller through nested
	// *Locked methods until a site either proves the lock held or is a
	// finding; the worklist runs to a fixed point (obligation sets only
	// grow, bounded by the mutex count).
	for changed := true; changed; {
		changed = false
		for fn, mus := range needs {
			node := cg.Funcs[fn]
			if node == nil {
				continue
			}
			for _, site := range node.Callers {
				caller := site.Caller
				callerRecv := receiverVar(p, caller.Decl)
				callerLocked := callerRecv != nil && strings.HasSuffix(caller.Decl.Name.Name, "Locked")
				if !callerLocked {
					continue
				}
				// A *Locked caller inherits the obligation for the same
				// receiver chain instead of discharging it.
				for mu := range mus {
					if needs[caller.Obj] == nil {
						needs[caller.Obj] = make(map[*types.Var]bool)
					}
					if !needs[caller.Obj][mu] {
						needs[caller.Obj][mu] = true
						changed = true
					}
				}
			}
		}
	}
	for fn, mus := range needs {
		node := cg.Funcs[fn]
		if node == nil {
			continue
		}
		for _, site := range node.Callers {
			caller := site.Caller
			callerRecv := receiverVar(p, caller.Decl)
			if callerRecv != nil && strings.HasSuffix(caller.Decl.Name.Name, "Locked") {
				continue // propagated above
			}
			// Re-run the flow over the caller to learn the held set at
			// this specific call site.
			held := p.heldAt(caller, site.Call)
			root := p.callReceiverRoot(site.Call)
			for mu := range mus {
				if root != nil && held[lockFact(root, mu)] {
					continue
				}
				p.Reportf(site.Call.Pos(), "call to %s requires %q held (it touches //guards: fields); lock it before the call",
					fn.Name(), mu.Name())
			}
		}
	}
}

// collectGuards parses //guards: annotations into field -> mutex-field,
// reporting malformed ones.
func (p *Pass) collectGuards() map[*types.Var]*types.Var {
	guards := make(map[*types.Var]*types.Var)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				muName, pos, ok := guardsAnnotation(field)
				if !ok {
					continue
				}
				mu := lookupStructField(p, st, muName)
				if mu == nil || !isMutexType(mu.Type()) {
					p.Reportf(pos, "//guards: names %q, which is not a sync.Mutex/RWMutex field of this struct", muName)
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardsAnnotation extracts the mutex name from a field's doc or line
// comment: the first whitespace-separated token after "guards:"; any
// trailing text is prose for the reader.
func guardsAnnotation(field *ast.Field) (string, token.Pos, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, guardsPrefix); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0], c.Pos(), true
				}
				return "", c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

func lookupStructField(p *Pass, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				if v, ok := p.Info.Defs[n].(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockFact names the fact "mutex field mu of instance root is held".
// The root's declaration position keeps same-named variables in
// different scopes distinct.
func lockFact(root types.Object, mu *types.Var) string {
	return root.Name() + "\x00" + strconv.Itoa(int(root.Pos())) + "\x00" + mu.Name()
}

// lockOp recognizes root.mu.Lock()/Unlock()/RLock()/RUnlock() calls,
// returning the instance root object and the mutex field.
func (p *Pass) lockOp(call *ast.CallExpr) (types.Object, *types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, ""
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "Unlock" && op != "RLock" && op != "RUnlock" {
		return nil, nil, ""
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil, ""
	}
	mu, ok := p.Info.Uses[muSel.Sel].(*types.Var)
	if !ok || !isMutexType(mu.Type()) {
		return nil, nil, ""
	}
	root := rootIdentObj(p, muSel.X)
	if root == nil {
		return nil, nil, ""
	}
	return root, mu, op
}

// rootIdentObj resolves the leftmost identifier of a selector chain
// (x in x.a.b) to its object, nil for non-identifier roots.
func rootIdentObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return p.ObjectOf(t)
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// receiverVar returns the declared receiver variable of a method, nil
// for plain functions or anonymous receivers.
func receiverVar(p *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := p.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// heldAt re-runs the flow over caller and returns the facts holding
// just before the given call executes.
func (p *Pass) heldAt(caller *FuncNode, call *ast.CallExpr) Facts {
	var at Facts
	forwardFlow(caller.Decl.Body, make(Facts), func(n ast.Node, facts Facts, inDefer bool) {
		if n == call {
			at = facts.clone()
			return
		}
		if inDefer {
			return
		}
		if c, ok := n.(*ast.CallExpr); ok {
			if root, mu, op := p.lockOp(c); root != nil {
				switch op {
				case "Lock", "RLock":
					facts[lockFact(root, mu)] = true
				case "Unlock", "RUnlock":
					delete(facts, lockFact(root, mu))
				}
			}
		}
	})
	if at == nil {
		at = make(Facts)
	}
	return at
}

// callReceiverRoot resolves the root instance of a method call's
// receiver expression (c in c.insertLocked(...)).
func (p *Pass) callReceiverRoot(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return rootIdentObj(p, sel.X)
}
