package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file tree under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

var testsModeTree = map[string]string{
	"go.mod": "module synthtest\n\ngo 1.21\n",
	"a.go": `package a

// Eq compares without direct equality.
func Eq(x, y float64) bool { return !(x < y) && !(x > y) }
`,
	"a_test.go": `package a

import "time"

func stampInternal() time.Time { return time.Now() }
`,
	"ax_test.go": `package a_test

import (
	"time"

	a "synthtest"
)

func stampExternal() time.Time {
	_ = a.Eq
	return time.Now()
}
`,
}

func TestLoadSkipsTestFilesByDefault(t *testing.T) {
	l := NewLoader()
	l.Dir = writeTree(t, testsModeTree)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "synthtest" {
		t.Fatalf("packages = %v", pkgPaths(pkgs))
	}
	if d := Run(pkgs, []*Analyzer{AnalyzerTimenow}); len(d) != 0 {
		t.Errorf("findings without -tests: %v", d)
	}
}

func TestLoadTestsMode(t *testing.T) {
	l := NewLoader()
	l.Dir = writeTree(t, testsModeTree)
	l.Tests = true
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if got := pkgPaths(pkgs); len(pkgs) != 2 || pkgs[0].Path != "synthtest" || pkgs[1].Path != "synthtest_test" {
		t.Fatalf("packages = %v, want [synthtest synthtest_test]", got)
	}
	d := Run(pkgs, []*Analyzer{AnalyzerTimenow})
	if len(d) != 2 {
		t.Fatalf("findings = %v, want one per test file", d)
	}
	files := []string{filepath.Base(d[0].File), filepath.Base(d[1].File)}
	if files[0] != "a_test.go" || files[1] != "ax_test.go" {
		t.Errorf("finding files = %v", files)
	}
}

func TestLoadTestsModeCaches(t *testing.T) {
	l := NewLoader()
	l.Dir = writeTree(t, testsModeTree)
	l.Tests = true
	first, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	second, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != second[0] || first[1] != second[1] {
		t.Error("augmented packages not cached across Load calls")
	}
}

// TestLoadTestOnlyDir pins that a directory holding nothing but
// _test.go files — invisible to the plain build — still lints in
// tests mode.
func TestLoadTestOnlyDir(t *testing.T) {
	tree := map[string]string{
		"go.mod": "module synthonly\n\ngo 1.21\n",
		"sub/only_test.go": `package sub

import "time"

func stamp() time.Time { return time.Now() }
`,
	}
	plain := NewLoader()
	plain.Dir = writeTree(t, tree)
	pkgs, err := plain.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 0 {
		t.Fatalf("plain load saw %v", pkgPaths(pkgs))
	}

	l := NewLoader()
	l.Dir = writeTree(t, tree)
	l.Tests = true
	pkgs, err = l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || !strings.HasSuffix(pkgs[0].Path, "/sub") {
		t.Fatalf("packages = %v", pkgPaths(pkgs))
	}
	if d := Run(pkgs, []*Analyzer{AnalyzerTimenow}); len(d) != 1 {
		t.Errorf("findings = %v, want 1", d)
	}
}

// TestLoadTestsModeImportersSeePlainTypes pins the no-cycle property:
// a dependent package type-checks against the plain (non-augmented)
// types even when tests mode is on.
func TestLoadTestsModeImportersSeePlainTypes(t *testing.T) {
	l := NewLoader()
	l.Dir = writeTree(t, map[string]string{
		"go.mod": "module synthdep\n\ngo 1.21\n",
		"lib/lib.go": `package lib

// V is exported for dependents.
var V = 1
`,
		"lib/lib_test.go": `package lib

// testOnly exists only in the augmented package.
var testOnly = 2
`,
		"app/app.go": `package app

import "synthdep/lib"

// U uses the plain package surface.
var U = lib.V
`,
	})
	l.Tests = true
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	var lib *Package
	for _, p := range pkgs {
		if p.Path == "synthdep/lib" {
			lib = p
		}
	}
	if lib == nil {
		t.Fatalf("lib not loaded: %v", pkgPaths(pkgs))
	}
	if lib.Types.Scope().Lookup("testOnly") == nil {
		t.Error("augmented lib is missing its test-file declarations")
	}
}

func pkgPaths(pkgs []*Package) []string {
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = p.Path
	}
	return out
}

func TestPassInTestFile(t *testing.T) {
	l := NewLoader()
	l.Dir = writeTree(t, testsModeTree)
	l.Tests = true
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	p := passFor(pkgs[0])
	inTest := 0
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			inTest++
		}
	}
	if len(p.Files) != 2 || inTest != 1 {
		t.Errorf("files=%d inTest=%d, want 2/1", len(p.Files), inTest)
	}
}
