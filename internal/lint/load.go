// The package loader: discovers the module, expands "./..." patterns,
// parses and type-checks packages in dependency order. Intra-module
// imports are checked from source here; standard-library imports go
// through go/importer's "source" compiler, so the whole pipeline stays
// inside the stdlib (no x/tools, no go.sum).
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("abw/internal/lp").
	Path string
	// Dir is the absolute directory.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages. It caches everything it
// loads, so repeated Load calls (and the stdlib source importer's work)
// are paid once per Loader.
type Loader struct {
	// Dir is the working directory patterns resolve against; defaults to
	// the process working directory.
	Dir string

	fset    *token.FileSet
	ctx     build.Context
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle detection

	modRoot string
	modPath string
}

// buildContextOnce disables cgo for the process-wide build context the
// stdlib source importer captures: every package in this module (and
// every stdlib package it pulls in) has a pure-Go path, and skipping
// cgo keeps the importer hermetic.
var buildContextOnce sync.Once

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	buildContextOnce.Do(func() { build.Default.CgoEnabled = false })
	fset := token.NewFileSet()
	ctx := build.Default
	ctx.CgoEnabled = false
	return &Loader{
		fset:    fset,
		ctx:     ctx,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// ModuleRoot returns the module root directory discovered by Load, or
// empty before the first Load.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// Load expands the patterns ("./...", "./dir/...", "./dir", ".")
// relative to l.Dir, loads every matched package plus its intra-module
// dependency closure, and returns the matched packages sorted by import
// path. Only the returned (matched) packages are analyzed by Run; the
// closure exists to type-check them.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dir := l.Dir
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if l.modRoot == "" {
		root, path, err := findModule(dir)
		if err != nil {
			return nil, err
		}
		l.modRoot, l.modPath = root, path
	}

	var dirs []string
	seen := make(map[string]bool)
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(dir, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			if err := walkGoDirs(base, func(d string) { addDir(d) }); err != nil {
				return nil, err
			}
			continue
		}
		addDir(filepath.Join(dir, filepath.FromSlash(pat)))
	}

	var out []*Package
	for _, d := range dirs {
		imp, err := l.importPathFor(d)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadPackage(imp)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				continue
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks a single directory outside the module (fixture
// packages under testdata) under the given import path. Imports must
// all be standard library.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	return l.check(importPath, dir)
}

func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// walkGoDirs visits base and every subdirectory that is not hidden,
// not testdata, and not underscore-prefixed.
func walkGoDirs(base string, visit func(dir string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		visit(path)
		return nil
	})
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirForImport(imp string) string {
	if imp == l.modPath {
		return l.modRoot
	}
	rel := strings.TrimPrefix(imp, l.modPath+"/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

func (l *Loader) isModuleImport(imp string) bool {
	return imp == l.modPath || strings.HasPrefix(imp, l.modPath+"/")
}

// loadPackage loads imp (a module-internal import path) and,
// recursively, its module-internal imports, then type-checks it.
func (l *Loader) loadPackage(imp string) (*Package, error) {
	if p, ok := l.pkgs[imp]; ok {
		return p, nil
	}
	if l.loading[imp] {
		return nil, fmt.Errorf("lint: import cycle through %s", imp)
	}
	l.loading[imp] = true
	defer delete(l.loading, imp)
	return l.check(imp, l.dirForImport(imp))
}

func (l *Loader) check(imp, dir string) (*Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Pre-load module-internal dependencies so the importer below only
	// ever sees cache hits for them.
	for _, dep := range bp.Imports {
		if l.isModuleImport(dep) {
			if _, err := l.loadPackage(dep); err != nil {
				return nil, fmt.Errorf("lint: loading %s (for %s): %w", dep, imp, err)
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(imp, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", imp, typeErrs[0])
	}
	p := &Package{Path: imp, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[imp] = p
	return p, nil
}

// loaderImporter resolves module-internal imports from the loader cache
// and everything else through the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if l.modPath != "" && l.isModuleImport(path) {
		p, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
