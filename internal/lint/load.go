// The package loader: discovers the module, expands "./..." patterns,
// parses and type-checks packages in dependency order. Intra-module
// imports are checked from source here; standard-library imports go
// through go/importer's "source" compiler, so the whole pipeline stays
// inside the stdlib (no x/tools, no go.sum).
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("abw/internal/lp").
	Path string
	// Dir is the absolute directory.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// cg is the lazily-built interprocedural call graph (callgraph.go),
	// shared by every analyzer that runs over this package.
	cg *CallGraph
}

// Loader parses and type-checks packages. It caches everything it
// loads, so repeated Load calls (and the stdlib source importer's work)
// are paid once per Loader.
type Loader struct {
	// Dir is the working directory patterns resolve against; defaults to
	// the process working directory.
	Dir string

	// Tests, when set, makes Load return test-augmented packages: each
	// matched package is re-type-checked with its in-package _test.go
	// files included (and an external _test package, if one exists, is
	// returned as its own Package). Importers of the package still see
	// the plain, non-augmented types, so test-only imports can never
	// create cycles through the loader.
	Tests bool

	fset    *token.FileSet
	ctx     build.Context
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	testPkg map[string]*Package // test-augmented, by import path
	loading map[string]bool     // cycle detection

	modRoot string
	modPath string
}

// buildContextOnce disables cgo for the process-wide build context the
// stdlib source importer captures: every package in this module (and
// every stdlib package it pulls in) has a pure-Go path, and skipping
// cgo keeps the importer hermetic.
var buildContextOnce sync.Once

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	buildContextOnce.Do(func() { build.Default.CgoEnabled = false })
	fset := token.NewFileSet()
	ctx := build.Default
	ctx.CgoEnabled = false
	return &Loader{
		fset:    fset,
		ctx:     ctx,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		testPkg: make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// ModuleRoot returns the module root directory discovered by Load, or
// empty before the first Load.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// Load expands the patterns ("./...", "./dir/...", "./dir", ".")
// relative to l.Dir, loads every matched package plus its intra-module
// dependency closure, and returns the matched packages sorted by import
// path. Only the returned (matched) packages are analyzed by Run; the
// closure exists to type-check them.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dir := l.Dir
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if l.modRoot == "" {
		root, path, err := findModule(dir)
		if err != nil {
			return nil, err
		}
		l.modRoot, l.modPath = root, path
	}

	var dirs []string
	seen := make(map[string]bool)
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(dir, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			if err := walkGoDirs(base, func(d string) { addDir(d) }); err != nil {
				return nil, err
			}
			continue
		}
		addDir(filepath.Join(dir, filepath.FromSlash(pat)))
	}

	var out []*Package
	for _, d := range dirs {
		imp, err := l.importPathFor(d)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadPackage(imp)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				// A directory holding only _test.go files is invisible to
				// the plain build but still wants linting in -tests mode.
				if !l.Tests || !hasTestFiles(&l.ctx, d) {
					continue
				}
			} else {
				return nil, err
			}
		}
		if !l.Tests {
			// A directory holding only _test.go files type-checks to an
			// empty package (ImportDir lists test files, so it is not a
			// NoGoError); without tests there is nothing to lint.
			if pkg != nil && len(pkg.Files) > 0 {
				out = append(out, pkg)
			}
			continue
		}
		aug, xtest, err := l.loadTestPackages(imp, d, pkg)
		if err != nil {
			return nil, err
		}
		out = append(out, aug)
		if xtest != nil {
			out = append(out, xtest)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// hasTestFiles reports whether dir contains _test.go files even when it
// has no plain Go files.
func hasTestFiles(ctx *build.Context, dir string) bool {
	bp, _ := ctx.ImportDir(dir, 0)
	return bp != nil && (len(bp.TestGoFiles) > 0 || len(bp.XTestGoFiles) > 0)
}

// loadTestPackages returns the test-augmented form of pkg (its files
// re-type-checked together with the in-package _test.go files) and, when
// the directory declares an external test package, that package too.
// A directory with no test files returns pkg unchanged. The augmented
// types never enter the importer cache: dependents keep seeing the plain
// package, so test-only imports cannot create cycles.
func (l *Loader) loadTestPackages(imp, dir string, pkg *Package) (aug, xtest *Package, err error) {
	if p, ok := l.testPkg[imp]; ok {
		return p, l.testPkg[imp+" [xtest]"], nil
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); !nogo {
			return nil, nil, err
		}
	}
	if bp == nil || (len(bp.TestGoFiles) == 0 && len(bp.XTestGoFiles) == 0) {
		return pkg, nil, nil
	}
	// Pre-load module-internal test dependencies plainly, exactly like
	// check does for production imports.
	for _, deps := range [][]string{bp.TestImports, bp.XTestImports} {
		for _, dep := range deps {
			if l.isModuleImport(dep) && dep != imp {
				if _, err := l.loadPackage(dep); err != nil {
					return nil, nil, fmt.Errorf("lint: loading %s (for %s tests): %w", dep, imp, err)
				}
			}
		}
	}
	parse := func(names []string) ([]*ast.File, error) {
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	testFiles, err := parse(bp.TestGoFiles)
	if err != nil {
		return nil, nil, err
	}
	var base []*ast.File
	if pkg != nil {
		base = pkg.Files
	}
	files := append(append([]*ast.File{}, base...), testFiles...)
	aug, err = l.typeCheck(imp, dir, files, (*loaderImporter)(l))
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s with tests: %w", imp, err)
	}
	l.testPkg[imp] = aug
	if len(bp.XTestGoFiles) > 0 {
		xfiles, err := parse(bp.XTestGoFiles)
		if err != nil {
			return nil, nil, err
		}
		// The external test package imports the package under test; give
		// it the augmented types so exported test hooks resolve.
		xi := &xtestImporter{base: (*loaderImporter)(l), path: imp, aug: aug.Types}
		xtest, err = l.typeCheck(imp+"_test", dir, xfiles, xi)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: type-checking %s_test: %w", imp, err)
		}
		l.testPkg[imp+" [xtest]"] = xtest
	}
	return aug, xtest, nil
}

// typeCheck runs the type checker over already-parsed files without
// touching the importer cache.
func (l *Loader) typeCheck(imp, dir string, files []*ast.File, imports types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imports,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(imp, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, typeErrs[0]
	}
	return &Package{Path: imp, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// xtestImporter resolves the package under test to its test-augmented
// types and everything else through the normal loader path.
type xtestImporter struct {
	base types.Importer
	path string
	aug  *types.Package
}

func (x *xtestImporter) Import(path string) (*types.Package, error) {
	if path == x.path {
		return x.aug, nil
	}
	return x.base.Import(path)
}

// LoadDir type-checks a single directory outside the module (fixture
// packages under testdata) under the given import path. Imports must
// all be standard library.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	return l.check(importPath, dir)
}

func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// walkGoDirs visits base and every subdirectory that is not hidden,
// not testdata, and not underscore-prefixed.
func walkGoDirs(base string, visit func(dir string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		visit(path)
		return nil
	})
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirForImport(imp string) string {
	if imp == l.modPath {
		return l.modRoot
	}
	rel := strings.TrimPrefix(imp, l.modPath+"/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

func (l *Loader) isModuleImport(imp string) bool {
	return imp == l.modPath || strings.HasPrefix(imp, l.modPath+"/")
}

// loadPackage loads imp (a module-internal import path) and,
// recursively, its module-internal imports, then type-checks it.
func (l *Loader) loadPackage(imp string) (*Package, error) {
	if p, ok := l.pkgs[imp]; ok {
		return p, nil
	}
	if l.loading[imp] {
		return nil, fmt.Errorf("lint: import cycle through %s", imp)
	}
	l.loading[imp] = true
	defer delete(l.loading, imp)
	return l.check(imp, l.dirForImport(imp))
}

func (l *Loader) check(imp, dir string) (*Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Pre-load module-internal dependencies so the importer below only
	// ever sees cache hits for them.
	for _, dep := range bp.Imports {
		if l.isModuleImport(dep) {
			if _, err := l.loadPackage(dep); err != nil {
				return nil, fmt.Errorf("lint: loading %s (for %s): %w", dep, imp, err)
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(imp, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", imp, typeErrs[0])
	}
	p := &Package{Path: imp, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[imp] = p
	return p, nil
}

// loaderImporter resolves module-internal imports from the loader cache
// and everything else through the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if l.modPath != "" && l.isModuleImport(path) {
		p, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
