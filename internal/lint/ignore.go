// Suppression directives. A finding is silenced by a comment of the
// form
//
//	//lint:ignore abw/<rule>[,abw/<rule>...] <reason>
//
// placed on the flagged line or on the line directly above it, or by a
//
//	//lint:file-ignore abw/<rule> <reason>
//
// anywhere in the file, which silences the rule for the whole file. The
// reason is mandatory, the rule must exist, and a directive that ends
// up suppressing nothing is itself reported — stale ignores fail the
// build instead of rotting in place.
package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

const (
	ignorePrefix     = "lint:ignore"
	fileIgnorePrefix = "lint:file-ignore"
	// ignoreRule names the pseudo-rule malformed/unused directives are
	// reported under. It cannot itself be suppressed.
	ignoreRule = "abw/ignore"
)

// ignoreDirective is one parsed suppression comment.
type ignoreDirective struct {
	file      string
	line      int // line the comment ends on
	rules     []string
	wholeFile bool // file-scoped
	used      bool
	pos       token.Position
}

type ignoreIndex struct {
	// byFile groups directives by diagnostic file name.
	byFile map[string][]*ignoreDirective
}

// buildIgnoreIndex scans every comment of every file for directives.
// Malformed directives (missing rule, unknown rule, missing reason) are
// returned as diagnostics immediately.
func buildIgnoreIndex(pkgs []*Package, knownRules map[string]bool) (*ignoreIndex, []Diagnostic) {
	idx := &ignoreIndex{byFile: make(map[string][]*ignoreDirective)}
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, diag := parseIgnore(pkg.Fset, c, knownRules)
					if diag != nil {
						bad = append(bad, *diag)
					}
					if d != nil {
						idx.byFile[d.file] = append(idx.byFile[d.file], d)
					}
				}
			}
		}
	}
	return idx, bad
}

func parseIgnore(fset *token.FileSet, c *ast.Comment, knownRules map[string]bool) (*ignoreDirective, *Diagnostic) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if t, ok := strings.CutPrefix(c.Text, "/*"); ok {
		text = strings.TrimSpace(strings.TrimSuffix(t, "*/"))
	}
	var rest string
	var fileScoped bool
	switch {
	case strings.HasPrefix(text, fileIgnorePrefix):
		rest, fileScoped = strings.TrimPrefix(text, fileIgnorePrefix), true
	case strings.HasPrefix(text, ignorePrefix):
		rest = strings.TrimPrefix(text, ignorePrefix)
	default:
		return nil, nil
	}
	pos := fset.Position(c.Pos())
	malformed := func(msg string) *Diagnostic {
		return &Diagnostic{Rule: ignoreRule, File: pos.Filename, Line: pos.Line, Col: pos.Column, Message: msg}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, malformed("ignore directive is missing a rule name (want //lint:ignore abw/<rule> <reason>)")
	}
	rules := strings.Split(fields[0], ",")
	for _, r := range rules {
		if !knownRules[r] {
			return nil, malformed("ignore directive names unknown rule " + r)
		}
	}
	if len(fields) < 2 {
		return nil, malformed("ignore directive for " + fields[0] + " is missing a reason")
	}
	end := fset.Position(c.End())
	return &ignoreDirective{
		file:      end.Filename,
		line:      end.Line,
		rules:     rules,
		wholeFile: fileScoped,
		pos:       pos,
	}, nil
}

// suppresses reports whether some directive covers d, marking the first
// covering directive used.
func (idx *ignoreIndex) suppresses(d Diagnostic) bool {
	for _, dir := range idx.byFile[d.File] {
		if !dir.covers(d) {
			continue
		}
		dir.used = true
		return true
	}
	return false
}

func (dir *ignoreDirective) covers(d Diagnostic) bool {
	if !dir.wholeFile && d.Line != dir.line && d.Line != dir.line+1 {
		return false
	}
	for _, r := range dir.rules {
		if r == d.Rule {
			return true
		}
	}
	return false
}

// unused returns one diagnostic per directive that suppressed nothing,
// in sorted file order (the caller sorts the full set again, but this
// keeps the function deterministic on its own). A directive naming any
// rule that did not run this invocation is exempt: a partial `-rules`
// run cannot prove it stale.
func (idx *ignoreIndex) unused(active map[string]bool) []Diagnostic {
	files := make([]string, 0, len(idx.byFile))
	for f := range idx.byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var out []Diagnostic
	for _, f := range files {
		for _, dir := range idx.byFile[f] {
			if dir.used || !allActive(dir.rules, active) {
				continue
			}
			out = append(out, Diagnostic{
				Rule: ignoreRule,
				File: dir.pos.Filename,
				Line: dir.pos.Line,
				Col:  dir.pos.Column,
				Message: "ignore directive for " + strings.Join(dir.rules, ",") +
					" suppresses nothing; delete it",
			})
		}
	}
	return out
}

func allActive(rules []string, active map[string]bool) bool {
	for _, r := range rules {
		if !active[r] {
			return false
		}
	}
	return true
}
