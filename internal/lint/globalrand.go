package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerGlobalrand guards DESIGN.md design decision 5 (determinism
// everywhere): every random draw must flow from an explicit seeded
// *rand.Rand stream (internal/geom's placement streams), never from the
// process-global math/rand state, whose seed and goroutine interleaving
// make topologies and workloads irreproducible.
var AnalyzerGlobalrand = &Analyzer{
	Name: "globalrand",
	Doc: "top-level math/rand function (global generator); draw from a " +
		"seeded *rand.Rand stream instead so placements and workloads " +
		"replay bit-for-bit (guards design decision 5: determinism)",
	Run: runGlobalrand,
}

// globalrandAllowed are the math/rand constructors that *create* seeded
// streams — the replacement the rule demands.
var globalrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runGlobalrand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method on *rand.Rand etc. — the sanctioned form
			}
			if globalrandAllowed[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "%s.%s uses the global math/rand generator; draw from a seeded *rand.Rand stream", fn.Pkg().Path(), fn.Name())
			return true
		})
	}
}
