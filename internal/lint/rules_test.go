package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// sharedLoader caches stdlib type-checking across all tests in this
// package (the source importer pays for math/rand, time, etc. once).
var sharedLoader = NewLoader()

func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	pkg, err := sharedLoader.LoadDir(filepath.Join("testdata", "src", dir), "fixture/"+dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// wantsOf extracts `// want "substr"` expectations as "file:line" ->
// substrings. Quotes inside the expectation are written as \".
func wantsOf(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				wants[key] = append(wants[key], strings.ReplaceAll(m[1], `\"`, `"`))
			}
		}
	}
	return wants
}

// checkFixture runs the analyzer over the fixture (scopes ignored, so
// testdata paths work) and requires an exact match between findings
// and want comments — including that every //lint:ignore in the
// fixture suppresses something, since unused ignores are findings.
func checkFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg := loadFixture(t, dir)
	diags := RunUnfiltered(pkg, []*Analyzer{a})
	wants := wantsOf(t, pkg)
	matched := make(map[string]int)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)
		found := false
		for _, w := range wants[key] {
			if strings.Contains(d.Message, w) {
				found = true
				matched[key]++
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding %s:%d: %s (%s)", filepath.Base(d.File), d.Line, d.Message, d.Rule)
		}
	}
	for key, ws := range wants {
		if matched[key] < len(ws) {
			t.Errorf("missing finding at %s: want %q, matched %d of %d", key, ws, matched[key], len(ws))
		}
	}
}

func TestMaporderFixture(t *testing.T)   { checkFixture(t, AnalyzerMaporder, "maporder") }
func TestFloateqFixture(t *testing.T)    { checkFixture(t, AnalyzerFloateq, "floateq") }
func TestGlobalrandFixture(t *testing.T) { checkFixture(t, AnalyzerGlobalrand, "globalrand") }
func TestAtomicfieldFixture(t *testing.T) {
	checkFixture(t, AnalyzerAtomicfield, "atomicfield")
}
func TestTimenowFixture(t *testing.T)   { checkFixture(t, AnalyzerTimenow, "timenow") }
func TestCtxflowFixture(t *testing.T)   { checkFixture(t, AnalyzerCtxflow, "ctxflow") }
func TestErrflowFixture(t *testing.T)   { checkFixture(t, AnalyzerErrflow, "errflow") }
func TestLockguardFixture(t *testing.T) { checkFixture(t, AnalyzerLockguard, "lockguard") }

// TestTimenowMainExempt pins the package-main exemption: the same
// time.Now call that fails in a library package passes in a command.
func TestTimenowMainExempt(t *testing.T) {
	checkFixture(t, AnalyzerTimenow, "timenow_main")
}

// TestAnalyzersRegistry pins the registry contract: sorted by name,
// unique, every rule documented and runnable.
func TestAnalyzersRegistry(t *testing.T) {
	as := Analyzers()
	if len(as) < 5 {
		t.Fatalf("want at least 5 analyzers, got %d", len(as))
	}
	for i, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %d incomplete: %+v", i, a)
		}
		if i > 0 && as[i-1].Name >= a.Name {
			t.Errorf("analyzers out of order: %q >= %q", as[i-1].Name, a.Name)
		}
	}
}
