// Command timenow_main shows the abw/timenow package-main exemption:
// CLI surfaces may date-stamp output files.
package main

import "time"

func main() {
	_ = time.Now() // no finding: package main is exempt
}
