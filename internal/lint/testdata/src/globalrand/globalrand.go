// Package globalrand exercises abw/globalrand: the process-global
// math/rand generator, the seeded-stream form that passes, and
// suppression.
package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// global draws from the shared generator.
func global() int {
	return rand.Intn(10) // want "math/rand.Intn uses the global"
}

// globalV2 is the same mistake in v2 clothing.
func globalV2() int {
	return randv2.IntN(10) // want "math/rand/v2.IntN uses the global"
}

// asValue references the global function without calling it.
var pick = rand.Float64 // want "math/rand.Float64 uses the global"

// seeded is the sanctioned form: an explicit stream.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// suppressed documents why the global draw is acceptable.
func suppressed() int {
	//lint:ignore abw/globalrand fixture: demo code; suppression under test
	return rand.Intn(10)
}
