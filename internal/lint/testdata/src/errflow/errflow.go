// Package errflow exercises abw/errflow: sentinel identity compares
// (errors.Is required), fmt.Errorf wrapping discipline, and
// suppression.
package errflow

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// compare flags identity equality between errors.
func compare(err error) bool {
	return err == errSentinel // want "== on errors"
}

// compareNeq is just as wrong.
func compareNeq(err error) bool {
	return err != errSentinel // want "!= on errors"
}

// nilCheck is the idiom, not a finding.
func nilCheck(err error) bool {
	return err != nil
}

// isOK is the sanctioned form.
func isOK(err error) bool {
	return errors.Is(err, errSentinel)
}

// wrapWrong formats an error with %v, stripping its identity.
func wrapWrong(err error) error {
	return fmt.Errorf("query: %v", err) // want "formats an error with %v"
}

// wrapRight wraps with %w; identity survives.
func wrapRight(err error) error {
	return fmt.Errorf("query: %w", err)
}

// wrapString formats a non-error operand; no finding.
func wrapString(name string) error {
	return fmt.Errorf("query %q failed", name)
}

// starWidth uses * width, outside the plain left-to-right verb subset
// the rule parses; it stays silent rather than guessing.
func starWidth(err error) error {
	return fmt.Errorf("%*v", 3, err)
}

// identity documents a pointer-identity compare.
func identity(err error) bool {
	//lint:ignore abw/errflow fixture: pointer identity on purpose; suppression under test
	return err == errSentinel
}
