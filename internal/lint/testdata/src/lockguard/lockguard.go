// Package lockguard exercises abw/lockguard: //guards: annotations,
// dataflow-proved critical sections (defer, branches, unlock), the
// *Locked caller-holds convention with interprocedural discharge,
// malformed annotations, and suppression.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //guards: mu
}

// inc accesses n inside a plain Lock/Unlock pair.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// get holds mu via defer across the read.
func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// bare reads n with no lock anywhere.
func (c *counter) bare() int {
	return c.n // want "accessed without holding it"
}

// unlockedThen reads after the critical section ended.
func (c *counter) unlockedThen() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "accessed without holding it"
}

// oneBranch locks on only one path; the join drops the fact.
func (c *counter) oneBranch(b bool) int {
	if b {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n // want "accessed without holding it"
}

// incLocked is the caller-holds convention: its access becomes an
// obligation at every call site instead of a finding here.
func (c *counter) incLocked() {
	c.n++
}

// viaLocked discharges the obligation: mu is held at the call.
func (c *counter) viaLocked() {
	c.mu.Lock()
	c.incLocked()
	c.mu.Unlock()
}

// skipsLock calls the Locked accessor with nothing held.
func (c *counter) skipsLock() {
	c.incLocked() // want "requires \"mu\" held"
}

// doubleLocked nests the convention; the obligation propagates
// through it to its own callers.
func (c *counter) doubleLocked() {
	c.incLocked()
}

// viaDouble discharges the propagated obligation.
func (c *counter) viaDouble() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.doubleLocked()
}

// skipsDouble drops the propagated obligation.
func (c *counter) skipsDouble() {
	c.doubleLocked() // want "requires \"mu\" held"
}

// rwbox guards with a RWMutex; RLock counts as holding.
type rwbox struct {
	rw sync.RWMutex
	v  int //guards: rw
}

func (b *rwbox) read() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.v
}

// bad annotates a field with something that is not a mutex.
type bad struct {
	//guards: missing // want "not a sync.Mutex/RWMutex field"
	no int
}

// snapshot documents a deliberately unsynchronized read.
func (c *counter) snapshot() int {
	//lint:ignore abw/lockguard fixture: racy sampling read on purpose; suppression under test
	return c.n
}
