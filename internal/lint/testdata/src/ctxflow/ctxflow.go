// Package ctxflow exercises abw/ctxflow: dropped contexts at calls
// with a Context variant, fresh Background/TODO mints outside the
// delegation-shim shape, ctx struct fields, and suppression.
package ctxflow

import "context"

// holder stores a context, outliving the call that scoped it.
type holder struct {
	ctx context.Context // want "stored in a struct field"
	n   int
}

// work is the context-accepting workhorse.
func work(ctx context.Context, n int) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	_ = n
	return nil
}

// stepContext is the cancellable variant of step.
func stepContext(ctx context.Context, n int) error {
	return work(ctx, n)
}

// step is the documented adapter shape: a single-return delegation
// shim minting Background as the variant's first argument. Allowed.
func step(n int) error {
	return stepContext(context.Background(), n)
}

// drops receives a ctx but calls the context-free step, severing the
// chain stepContext exists to keep intact.
func drops(ctx context.Context, n int) error {
	return step(n) // want "call drops ctx"
}

// forwards passes its ctx on; no finding.
func forwards(ctx context.Context, n int) error {
	return stepContext(ctx, n)
}

// mintsFresh has a ctx in scope and mints a new one anyway.
func mintsFresh(ctx context.Context, n int) error {
	return work(context.Background(), n) // want "context.Background() in library code"
}

// tooBig is not a shim — two statements — so its mint is a finding.
func tooBig(n int) error {
	m := n + 1
	return work(context.Background(), m) // want "context.Background() in library code"
}

// client has a method pair following the same Context convention.
type client struct{ n int }

func (c *client) fetchContext(ctx context.Context, n int) error {
	return work(ctx, n)
}

// fetch is a method-shaped delegation shim. Allowed.
func (c *client) fetch(n int) error {
	return c.fetchContext(context.Background(), n)
}

// dropsMethod has a ctx and calls the context-free method variant.
func dropsMethod(ctx context.Context, c *client) error {
	return c.fetch(1) // want "call drops ctx"
}

// sentinel documents a deliberately detached context.
func sentinel(n int) error {
	//lint:ignore abw/ctxflow fixture: detached on purpose; suppression under test
	c := context.TODO()
	return work(c, n)
}
