// Package maporder exercises abw/maporder: map iteration feeding
// ordered sinks, the collect-then-sort escape, and suppression.
package maporder

import (
	"maps"
	"slices"
	"sort"
)

// appendUnsorted leaks map order into the returned slice.
func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside map iteration"
	}
	return keys
}

// appendThenSort is the sanctioned collect-then-sort idiom.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendThenSlicesSort also counts as sorted.
func appendThenSlicesSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// sendInRange publishes values in map order.
func sendInRange(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "send inside map iteration"
	}
}

// returnRangeVar picks an arbitrary entry.
func returnRangeVar(m map[string]int) string {
	for k := range m {
		if len(k) > 3 {
			return k // want "return of a map iteration variable"
		}
	}
	return ""
}

// returnConstant is a pure existence check; any entry serves.
func returnConstant(m map[string]int) bool {
	for range m {
		return true
	}
	return false
}

// loopLocal appends only to a slice scoped inside the loop.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// suppressed documents why map order is fine here.
func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore abw/maporder fixture: caller sorts; suppression under test
		keys = append(keys, k)
	}
	return keys
}

// mapsKeysIterator is just as unordered as ranging the map itself.
func mapsKeysIterator(m map[string]int) []string {
	var keys []string
	for k := range maps.Keys(m) {
		keys = append(keys, k) // want "append to \"keys\" inside map iteration"
	}
	return keys
}

type sink struct{ rows []string }

// fieldAppend records into a struct field that outlives the loop.
func (s *sink) fieldAppend(m map[string]int) {
	for k := range m {
		s.rows = append(s.rows, k) // want "append to s.rows inside map iteration"
	}
}
