// Package atomicfield exercises abw/atomicfield: mixed atomic and
// plain access to the same field or variable, and suppression.
package atomicfield

import "sync/atomic"

type counter struct {
	n     int64
	limit int64
}

// bump is the sanctioned atomic write.
func (c *counter) bump() int64 {
	return atomic.AddInt64(&c.n, 1)
}

// peek reads the same field without the atomic.
func (c *counter) peek() int64 {
	return c.n // want "\"n\" is accessed via sync/atomic"
}

// limitOnly touches a field nobody uses atomically; no finding.
func (c *counter) limitOnly() int64 {
	return c.limit
}

// sequential documents a single-owner plain access.
func (c *counter) sequential() {
	//lint:ignore abw/atomicfield fixture: exclusive owner; suppression under test
	c.n++
}

var hits int64

// record uses the package-level var atomically...
func record() {
	atomic.AddInt64(&hits, 1)
}

// report ...and this plain read races with record.
func report() int64 {
	return hits // want "\"hits\" is accessed via sync/atomic"
}

type safe struct{ n atomic.Int64 }

// typed uses the atomic wrapper type; access is safe by construction.
func (s *safe) typed() int64 {
	s.n.Add(1)
	return s.n.Load()
}
