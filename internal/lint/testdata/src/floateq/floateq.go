// Package floateq exercises abw/floateq: direct float equality, the
// tolerance idiom that passes, and suppression.
package floateq

import "math"

const tol = 1e-9

// direct compares computed floats exactly.
func direct(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// notEqual is just as wrong.
func notEqual(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

// zeroTest against a literal still compares floats.
func zeroTest(a float64) bool {
	return a == 0 // want "floating-point == comparison"
}

// narrow float32 is no safer.
func narrow(a, b float32) bool {
	return a == b // want "floating-point == comparison"
}

// tolerant is the sanctioned form.
func tolerant(a, b float64) bool {
	return math.Abs(a-b) <= tol
}

// ordered comparisons are tolerance-compatible and allowed.
func ordered(a, b float64) bool {
	return a < b || a > b
}

// ints are exact; no finding.
func ints(a, b int) bool {
	return a == b
}

// sentinel documents a bit-exact comparison.
func sentinel(a float64) bool {
	//lint:ignore abw/floateq fixture: exact sentinel; suppression under test
	return a == 0
}
