// Package timenow exercises abw/timenow: wall-clock reads in a
// result-producing package, the clock-as-input form that passes, and
// suppression.
package timenow

import "time"

// stamp reads the wall clock.
func stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// age measures against the wall clock.
func age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the wall clock"
}

// deadline is wall-clock arithmetic too.
func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until reads the wall clock"
}

// explicit threads the clock through as an input; deterministic.
func explicit(now time.Time, t time.Time) time.Duration {
	return now.Sub(t)
}

// fixed constructs times from inputs only.
func fixed(sec int64) time.Time {
	return time.Unix(sec, 0)
}

// suppressed documents an accepted wall-clock read.
func suppressed() time.Time {
	//lint:ignore abw/timenow fixture: operator-facing log stamp; suppression under test
	return time.Now()
}
