package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerErrflow guards the typed-sentinel discipline PR 7 introduced
// (cancel.ErrCanceled vs indepset.ErrLimit vs context.DeadlineExceeded):
// the cancellation layer deliberately wraps causes — Cause() returns
// `fmt.Errorf("%w: %w", ...)` — so identity comparison against a
// sentinel is not merely style, it is wrong: `err == ErrCanceled` is
// false for every error the query path actually returns. Two checks:
//
//  1. `==`/`!=` between error-typed operands (nil excluded) must be
//     errors.Is — the fix rewrites the comparison and adds the errors
//     import if missing;
//  2. fmt.Errorf with an error operand must wrap with %w, or the
//     sentinel identity is lost at that hop — the fix rewrites the verb.
var AnalyzerErrflow = &Analyzer{
	Name: "errflow",
	Doc: "error identity lost: ==/!= between errors (use errors.Is so wrapped " +
		"sentinels like ErrCanceled still match) or fmt.Errorf formatting an " +
		"error without %w (guards the typed-sentinel discipline of Sec. 12)",
	Run: runErrflow,
}

func runErrflow(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				p.checkErrCompare(n)
			case *ast.CallExpr:
				p.checkErrorfWrap(n)
			}
			return true
		})
	}
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorExpr(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorType)
}

func isNilExpr(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// checkErrCompare flags err ==/!= sentinel and suggests errors.Is.
func (p *Pass) checkErrCompare(be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isNilExpr(p, be.X) || isNilExpr(p, be.Y) {
		return // err != nil is the idiom, not a finding
	}
	if !isErrorExpr(p, be.X) || !isErrorExpr(p, be.Y) {
		return
	}
	not := ""
	if be.Op == token.NEQ {
		not = "!"
	}
	rewrite := fmt.Sprintf("%serrors.Is(%s, %s)", not, exprText(p, be.X), exprText(p, be.Y))
	fix := &Fix{
		Message: "compare with errors.Is",
		Edits:   []TextEdit{p.Edit(be.Pos(), be.End(), rewrite)},
	}
	if imp := p.EnsureImport(be.Pos(), "errors"); imp != nil {
		fix.Edits = append(fix.Edits, *imp)
	}
	p.ReportFix(be.OpPos, fix, "%s on errors misses wrapped sentinels (cancel.Cause wraps every cause); use %serrors.Is", be.Op, not)
}

// exprText renders e from the original source so the fix preserves the
// author's spelling exactly.
func exprText(p *Pass, e ast.Expr) string {
	return types.ExprString(e)
}

// checkErrorfWrap flags fmt.Errorf("... %v ...", err): formatting an
// error with any verb but %w strips its identity at that hop.
func (p *Pass) checkErrorfWrap(call *ast.CallExpr) {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	verbs, ok := parseVerbs(format)
	if !ok || len(verbs) != len(call.Args)-1 {
		return // indexed/star verbs or mismatched arity: stay silent
	}
	formatPos := call.Args[0].Pos()
	for i, v := range verbs {
		arg := call.Args[i+1]
		if v.verb == 'w' || !isErrorExpr(p, arg) {
			continue
		}
		// The verb's byte range within the string literal: the literal
		// includes its opening quote, so offset+1 skips it. Only plain
		// (non-raw, non-escaped-prefix) literals line up byte-for-byte;
		// anything else gets the finding without the fix.
		var fix *Fix
		if lit, okLit := ast.Unparen(call.Args[0]).(*ast.BasicLit); okLit && isPlainStringLit(lit, format) {
			start := p.Fset.Position(formatPos).Offset + 1 + v.start
			end := p.Fset.Position(formatPos).Offset + 1 + v.end
			fix = &Fix{
				Message: "wrap the error with %w",
				Edits:   []TextEdit{{Offset: start, End: end, NewText: "%w"}},
			}
		}
		p.ReportFix(arg.Pos(), fix, "fmt.Errorf formats an error with %%%c, dropping its identity; wrap with %%w so errors.Is still sees the sentinel", v.verb)
	}
}

// isPlainStringLit reports whether lit is a double-quoted literal whose
// quoted bytes equal its value byte-for-byte (no escapes), so value
// offsets map directly onto source offsets.
func isPlainStringLit(lit *ast.BasicLit, value string) bool {
	return lit.Kind == token.STRING && lit.Value == `"`+value+`"`
}

// verbSpan is one formatting verb: its final verb character and the
// byte range of the whole %-sequence within the format string.
type verbSpan struct {
	verb       byte
	start, end int
}

// parseVerbs scans a Printf format string into its verb sequence. It
// reports ok=false on constructs whose argument mapping is not a plain
// left-to-right walk (explicit argument indexes, * width/precision).
func parseVerbs(format string) ([]verbSpan, bool) {
	var out []verbSpan
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		start := i
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// flags, width, precision
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		if i >= len(format) {
			return nil, false
		}
		c := format[i]
		if c == '*' || c == '[' {
			return nil, false
		}
		i++
		out = append(out, verbSpan{verb: c, start: start, end: i})
	}
	return out, true
}
