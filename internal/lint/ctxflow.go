package lint

import "go/ast"

// AnalyzerCtxflow guards DESIGN.md Sec. 12 (cancellation points): once
// a context enters a call path it must reach every cancellation-capable
// callee, or a deadline silently stops propagating and the Sec. 5.2
// admission loop keeps enumerating after its caller gave up. Three
// checks, all riding the interprocedural call graph:
//
//  1. a function that accepts a context.Context must pass it on: a call
//     to a callee that has a context-accepting variant (itself, or a
//     sibling named <fn>Context) without forwarding any context is a
//     dropped-context finding;
//  2. context.Background()/context.TODO() are banned in non-test
//     library code except inside a delegation shim — a function whose
//     whole body is `return <callee>Context(context.Background(), ...)`,
//     the documented adapter from the context-free API surface;
//  3. storing a context in a struct field outlives the call it scopes
//     (the context package's own first rule); the field declaration is
//     the finding.
//
// Package main is exempt from check 2: commands mint their root
// contexts. Test files are exempt from checks 2 and 3 (tests mint
// contexts freely) but not from check 1 — a test helper that takes a
// ctx and drops it hides exactly the regression this rule exists for.
var AnalyzerCtxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "context.Context must flow to every cancellation-capable callee: " +
		"dropped ctx on a call with a Context variant, context.Background/TODO " +
		"outside delegation shims and package main, or a ctx stored in a " +
		"struct field (guards Sec. 12: cancellation points)",
	Run: runCtxflow,
}

func runCtxflow(p *Pass) {
	cg := p.CallGraph()
	for _, f := range p.Files {
		p.checkCtxFields(f)
	}
	for _, n := range cg.ByDecl {
		p.checkCtxCalls(n)
	}
	if p.Pkg.Name() != "main" {
		for _, n := range cg.ByDecl {
			p.checkCtxBackground(n)
		}
	}
}

// checkCtxFields flags struct fields of type context.Context (check 3).
func (p *Pass) checkCtxFields(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			if p.InTestFile(field.Pos()) {
				continue
			}
			if t := p.TypeOf(field.Type); t != nil && isContextType(t) {
				p.Reportf(field.Pos(), "context.Context stored in a struct field outlives the call it scopes; pass ctx as a parameter instead")
			}
		}
		return true
	})
}

// checkCtxCalls enforces propagation (check 1): inside a function with
// a context parameter, every call whose callee has a context-accepting
// variant must forward a context.
func (p *Pass) checkCtxCalls(n *FuncNode) {
	ctxVar := ctxParamOf(p.Info, n.Decl)
	if ctxVar == nil {
		return
	}
	for _, site := range n.Calls {
		variant := ContextVariant(site.Callee)
		if variant == nil {
			continue
		}
		if p.forwardsContext(site.Call) {
			continue
		}
		if variant == site.Callee {
			// The callee demands a context and the call compiled, so a
			// context argument exists — it just isn't flowing from here
			// (it is a fresh Background/TODO, caught by check 2, or some
			// stored context). Nothing more to say at this site.
			continue
		}
		p.Reportf(site.Call.Pos(), "call drops ctx: %s has a context-accepting variant %s; pass the ctx this function received",
			site.Callee.Name(), variant.Name())
	}
}

// forwardsContext reports whether any argument of call is a
// context-typed expression that is not a fresh context.Background() or
// context.TODO() — a received ctx, a derived context, or a field of
// one.
func (p *Pass) forwardsContext(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := p.TypeOf(arg)
		if t == nil || !isContextType(t) {
			continue
		}
		if isCtxMint(p, arg) {
			continue
		}
		return true
	}
	return false
}

// isCtxMint reports whether e is a direct context.Background() or
// context.TODO() call.
func isCtxMint(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := p.calleeFunc(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// checkCtxBackground enforces the Background/TODO ban (check 2).
func (p *Pass) checkCtxBackground(n *FuncNode) {
	if p.InTestFile(n.Decl.Pos()) {
		return
	}
	shim := isDelegationShim(p, n.Decl)
	ast.Inspect(n.Decl.Body, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok || !isCtxMint(p, call) {
			return true
		}
		if shim && isShimMint(n.Decl, call) {
			return true
		}
		fn := p.calleeFunc(call)
		p.Reportf(call.Pos(), "context.%s() in library code severs cancellation; accept a ctx parameter or delegate through a single-return shim", fn.Name())
		return true
	})
}

// isDelegationShim reports whether fd is the documented adapter shape:
// no context parameter, and a body that is exactly one return statement
// whose single result calls a context-accepting function with a fresh
// Background/TODO context as its first argument.
func isDelegationShim(p *Pass, fd *ast.FuncDecl) bool {
	if ctxParamOf(p.Info, fd) != nil {
		return false
	}
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 || !isCtxMint(p, call.Args[0]) {
		return false
	}
	callee := p.calleeFunc(call)
	return callee != nil && takesContext(callee)
}

// isShimMint reports whether call is the Background/TODO mint in shim
// position: the first argument of the single returned call.
func isShimMint(fd *ast.FuncDecl, mint *ast.CallExpr) bool {
	ret := fd.Body.List[0].(*ast.ReturnStmt)
	outer, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok || len(outer.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(outer.Args[0]).(*ast.CallExpr)
	return ok && first == mint
}
