// Package lint is a stdlib-only static-analysis framework for this
// module: a package loader (go/parser + go/types, no x/tools), a
// diagnostic model with //lint:ignore suppression, and the repo-specific
// analyzers that turn the DESIGN.md Sec. 8 invariants into machine
// checks. The cmd/abwlint driver runs every analyzer over the tree and
// fails CI on findings; each rule documents the invariant it guards.
//
// Since PR 8 the loader can augment every package with its _test.go
// files (Loader.Tests, the abwlint -tests flag): test code is subject to
// the same rules, with Pass.InTestFile letting individual checks relax
// where test-local behavior (context.Background in a test body, say) is
// deliberate. Rules may attach a Fix to a diagnostic; the abwlint
// -fix/-diff driver applies the edits atomically per file with a
// re-parse check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named rule. Run reports findings through the Pass; the
// framework applies package scoping and suppression afterwards.
type Analyzer struct {
	// Name is the rule's short name; diagnostics carry "abw/<Name>".
	Name string
	// Doc is a one-paragraph description shown by `abwlint -list`.
	Doc string
	// Packages restricts the rule to packages whose import path matches
	// one of the patterns (see matchPkg). Empty means every package.
	Packages []string
	// Run inspects one package and reports findings.
	Run func(*Pass)
}

// ID returns the namespaced rule identifier, e.g. "abw/floateq".
func (a *Analyzer) ID() string { return "abw/" + a.Name }

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FileOf returns the file containing pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.Info.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// ObjectOf resolves an identifier to its object (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Info.ObjectOf(id)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, format, args...)
}

// ReportFix records a finding at pos carrying a suggested fix (nil for
// none); `abwlint -fix` applies the fix's edits.
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.analyzer.ID(),
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	})
}

// Diagnostic is one finding. The JSON field names are a stable contract
// for downstream tooling; diagnostics are always emitted sorted by
// file, line, column, rule, message. Fix, when present, is a suggested
// rewrite confined to the diagnostic's file.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	Fix     *Fix   `json:"fix,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Rule)
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// matchPkg reports whether an import path matches a scope pattern: the
// pattern equals the path, or aligns with it on "/" boundaries
// ("internal/lp" matches "abw/internal/lp"; "cmd" matches
// "abw/cmd/abwsim").
func matchPkg(path, pattern string) bool {
	if path == pattern {
		return true
	}
	if strings.HasSuffix(path, "/"+pattern) || strings.HasPrefix(path, pattern+"/") {
		return true
	}
	return strings.Contains(path, "/"+pattern+"/")
}

func (a *Analyzer) appliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, pat := range a.Packages {
		if matchPkg(pkgPath, pat) {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the packages, honoring each rule's
// package scope, then applies //lint:ignore suppression and appends a
// diagnostic for every malformed or unused ignore directive. The result
// is sorted by file, line, column, rule.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.appliesTo(pkg.Path) {
				continue
			}
			raw = append(raw, runOne(pkg, a)...)
		}
	}
	return finish(pkgs, analyzers, raw)
}

// RunUnfiltered executes the analyzers over one package ignoring their
// package scopes. Fixture tests use it so rule logic is exercised under
// testdata import paths that the production scopes would exclude.
func RunUnfiltered(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		raw = append(raw, runOne(pkg, a)...)
	}
	return finish([]*Package{pkg}, analyzers, raw)
}

func runOne(pkg *Package, a *Analyzer) []Diagnostic {
	var out []Diagnostic
	pass := &Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		pkg:      pkg,
		analyzer: a,
		diags:    &out,
	}
	a.Run(pass)
	return out
}

// finish applies suppression and reports ignore-directive hygiene:
// malformed directives and directives that suppress nothing are both
// findings, so stale ignores rot out of the tree instead of lingering.
func finish(pkgs []*Package, analyzers []*Analyzer, raw []Diagnostic) []Diagnostic {
	// Directive names validate against the FULL registry, not the set
	// that ran: `-rules errflow` must not turn every valid directive for
	// another rule into an "unknown rule" finding.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.ID()] = true
	}
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.ID()] = true
	}
	idx, bad := buildIgnoreIndex(pkgs, known)
	out := bad
	for _, d := range raw {
		if idx.suppresses(d) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, idx.unused(active)...)
	sortDiagnostics(out)
	return out
}

// inspectWithStack walks root in source order invoking f with each node
// and its ancestor stack (outermost first, excluding the node itself).
// Returning false from f prunes the node's children.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if !f(n, stack) {
			return
		}
		stack = append(stack, n)
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			walk(c)
			return false
		})
		stack = stack[:len(stack)-1]
	}
	walk(root)
}
