package lint

import (
	"go/types"
	"testing"
)

const variantSrc = `package p

import "context"

func Step(n int) {}
func StepContext(ctx context.Context, n int) {}
func Plain(n int) {}
func Already(ctx context.Context) {}
func WrongFirst(n int, ctx context.Context) {}
func WrongFirstContext(n int, ctx context.Context) {}

type T struct{}

func (T) Fetch() {}
func (T) FetchContext(ctx context.Context) {}
func (T) Solo() {}
`

func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("%s is %T, want *types.Func", name, obj)
	}
	return fn
}

func lookupMethod(t *testing.T, pkg *Package, typeName, method string) *types.Func {
	t.Helper()
	tn := pkg.Types.Scope().Lookup(typeName).Type()
	obj, _, _ := types.LookupFieldOrMethod(tn, true, pkg.Types, method)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("%s.%s is %T, want *types.Func", typeName, method, obj)
	}
	return fn
}

func TestContextVariant(t *testing.T) {
	pkg := loadSynthetic(t, "synth/variant", variantSrc)

	if got := ContextVariant(lookupFunc(t, pkg, "Step")); got == nil || got.Name() != "StepContext" {
		t.Errorf("variant of Step = %v, want StepContext", got)
	}
	if got := ContextVariant(lookupFunc(t, pkg, "Plain")); got != nil {
		t.Errorf("variant of Plain = %v, want nil", got)
	}
	// A function already taking a ctx is its own variant.
	if fn := lookupFunc(t, pkg, "Already"); ContextVariant(fn) != fn {
		t.Error("Already is not its own variant")
	}
	// A *Context-named function resolves no further.
	if got := ContextVariant(lookupFunc(t, pkg, "StepContext")); got == nil || got.Name() != "StepContext" {
		t.Errorf("variant of StepContext = %v", got)
	}
	// The sibling's first parameter must be the context.
	if got := ContextVariant(lookupFunc(t, pkg, "WrongFirst")); got != nil {
		t.Errorf("variant of WrongFirst = %v, want nil (ctx not first)", got)
	}
	// Methods resolve through the receiver's method set.
	if got := ContextVariant(lookupMethod(t, pkg, "T", "Fetch")); got == nil || got.Name() != "FetchContext" {
		t.Errorf("variant of T.Fetch = %v, want FetchContext", got)
	}
	if got := ContextVariant(lookupMethod(t, pkg, "T", "Solo")); got != nil {
		t.Errorf("variant of T.Solo = %v, want nil", got)
	}
}

func TestCallGraphEdges(t *testing.T) {
	pkg := loadSynthetic(t, "synth/cg", `package p

func a() { b() }

func b() { c(); go func() { c() }() }

func c() {}
`)
	p := passFor(pkg)
	cg := p.CallGraph()
	if got := len(cg.Funcs); got != 3 {
		t.Fatalf("Funcs = %d, want 3", got)
	}
	aFn := lookupFunc(t, pkg, "a")
	bFn := lookupFunc(t, pkg, "b")
	cFn := lookupFunc(t, pkg, "c")

	aNode := cg.Funcs[aFn]
	if len(aNode.Calls) != 1 || aNode.Calls[0].Callee != bFn {
		t.Errorf("a's calls: %+v", aNode.Calls)
	}
	bNode := cg.Funcs[bFn]
	if len(bNode.Callers) != 1 || bNode.Callers[0].Caller != aNode {
		t.Errorf("b's callers: %+v", bNode.Callers)
	}
	// b calls c twice: once directly, once inside a function literal.
	cNode := cg.Funcs[cFn]
	if len(cNode.Callers) != 2 {
		t.Fatalf("c has %d callers, want 2", len(cNode.Callers))
	}
	inLit := 0
	for _, site := range cNode.Callers {
		if site.Caller != bNode {
			t.Errorf("c caller is %v, want b", site.Caller.Obj)
		}
		if site.InFuncLit {
			inLit++
		}
	}
	if inLit != 1 {
		t.Errorf("%d call sites flagged InFuncLit, want 1", inLit)
	}
	// The graph is built once and cached on the package.
	if p.CallGraph() != cg {
		t.Error("CallGraph not cached")
	}
}
