// Package cancel is the leaf package behind the tree's cooperative
// cancellation: a typed ErrCanceled that every layer (enumeration DFS,
// simplex pivots, memo singleflight, server handlers) maps context
// cancellation onto, and a countdown Checker that makes periodic
// ctx.Err() polling cheap enough for DFS and pivot hot loops.
//
// The contract every long-running loop follows:
//
//   - A run whose context is never cancelled behaves byte-identically
//     to a run with no context at all (the nil-Checker fast path is a
//     single pointer comparison, so uncancellable loops pay nothing).
//   - A cancelled run returns an error satisfying
//     errors.Is(err, ErrCanceled) promptly — within one check interval
//     of the cancellation point.
//   - Cancelled results are partial garbage: callers must never store,
//     spill, or memoize them (DESIGN.md Sec. 12 pins the rule).
package cancel

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled reports that a computation was abandoned because its
// context was cancelled. It is distinct from truncation errors like
// indepset.ErrLimit: a truncated family is a sound partial result, a
// cancelled one is not a result at all.
var ErrCanceled = errors.New("abw: computation canceled")

// Cause wraps the context's cancellation cause in ErrCanceled so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.DeadlineExceeded)
// (or context.Canceled) hold on the returned error — the server maps
// the former to a canceled response and the latter to 504.
func Cause(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, cause)
	}
	return ErrCanceled
}

// DefaultInterval is the countdown used when a Checker is created with
// a non-positive interval: one real channel poll per 256 Check calls.
const DefaultInterval = 256

// Checker amortizes context polling over a hot loop. Check decrements
// a countdown and only consults ctx.Done() when it hits zero, so the
// fast path is one decrement and one branch. A nil *Checker is valid
// and never reports cancellation — NewChecker returns nil for contexts
// that can never be cancelled, keeping context-free runs branch-light.
type Checker struct {
	done <-chan struct{}
	//lint:ignore abw/ctxflow the Checker IS the documented poll point for this ctx; it lives strictly inside the call that built it
	ctx   context.Context
	n     int
	every int
}

// NewChecker returns a Checker polling ctx every `every` Check calls
// (DefaultInterval when every <= 0), or nil when ctx can never be
// cancelled (nil context or nil Done channel). The first Check on a
// non-nil Checker is a real poll, so a loop entered with an
// already-cancelled context stops before doing any work.
func NewChecker(ctx context.Context, every int) *Checker {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	if every <= 0 {
		every = DefaultInterval
	}
	return &Checker{done: ctx.Done(), ctx: ctx, n: 1, every: every}
}

// Check returns Cause(ctx) if the context has been cancelled, polling
// the Done channel once per interval. On a nil receiver it returns nil.
func (c *Checker) Check() error {
	if c == nil {
		return nil
	}
	c.n--
	if c.n > 0 {
		return nil
	}
	c.n = c.every
	select {
	case <-c.done:
		return Cause(c.ctx)
	default:
		return nil
	}
}
