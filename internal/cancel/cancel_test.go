package cancel

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilCheckerNeverCancels(t *testing.T) {
	var c *Checker
	for i := 0; i < 10*DefaultInterval; i++ {
		if err := c.Check(); err != nil {
			t.Fatalf("nil checker reported cancellation: %v", err)
		}
	}
}

func TestNewCheckerUncancellableContext(t *testing.T) {
	if c := NewChecker(context.Background(), 8); c != nil {
		t.Fatal("NewChecker(Background) should be nil: Done() is nil")
	}
}

func TestCheckerFirstCheckIsReal(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	c := NewChecker(ctx, 1000)
	if err := c.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("first Check on canceled ctx = %v, want ErrCanceled", err)
	}
}

func TestCheckerInterval(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	c := NewChecker(ctx, 4)
	// First check is real; context still live.
	if err := c.Check(); err != nil {
		t.Fatalf("live ctx Check = %v", err)
	}
	cancelFn()
	// The next real poll happens within one interval.
	var got error
	for i := 0; i < 4; i++ {
		if got = c.Check(); got != nil {
			break
		}
	}
	if !errors.Is(got, ErrCanceled) {
		t.Fatalf("cancellation not observed within one interval: %v", got)
	}
}

func TestCauseWrapsContextCause(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	err := Cause(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Cause = %v, want ErrCanceled in chain", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Cause = %v, want context.Canceled in chain", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer dcancel()
	<-dctx.Done()
	derr := Cause(dctx)
	if !errors.Is(derr, ErrCanceled) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("deadline Cause = %v, want ErrCanceled and DeadlineExceeded", derr)
	}
}
