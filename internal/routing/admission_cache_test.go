package routing

import (
	"math"
	"testing"

	"abw/internal/core"
	"abw/internal/memo"
)

// TestSequentialAdmissionCachedMatchesUncached pins the subsystem
// contract at the admission level: running the same request sequence
// with the memo cache (set-family reuse + warm-started LPs + memoized
// feasibility) must produce decision-for-decision identical outcomes —
// same paths, same admit/reject verdicts, same available bandwidth
// within solver tolerance.
func TestSequentialAdmissionCachedMatchesUncached(t *testing.T) {
	net, m := lineNet(t, 6, 100)
	reqs := []Request{
		{Src: 0, Dst: 5, Demand: 1.0},
		{Src: 1, Dst: 4, Demand: 0.8},
		{Src: 0, Dst: 5, Demand: 1.0},
		{Src: 2, Dst: 5, Demand: 0.5},
		{Src: 0, Dst: 5, Demand: 1.0},
		{Src: 0, Dst: 3, Demand: 0.7},
	}
	for _, metric := range []Metric{MetricHopCount, MetricE2ETD} {
		plain, err := SequentialAdmission(net, m, metric, reqs, AdmissionOptions{})
		if err != nil {
			t.Fatalf("%v uncached: %v", metric, err)
		}
		cache := memo.New(0)
		cached, err := SequentialAdmission(net, m, metric, reqs, AdmissionOptions{
			Core: core.Options{Cache: cache},
		})
		if err != nil {
			t.Fatalf("%v cached: %v", metric, err)
		}
		if len(plain) != len(cached) {
			t.Fatalf("%v: %d decisions uncached, %d cached", metric, len(plain), len(cached))
		}
		for i := range plain {
			p, c := plain[i], cached[i]
			if p.Admitted != c.Admitted {
				t.Fatalf("%v decision %d: admitted %v uncached, %v cached", metric, i, p.Admitted, c.Admitted)
			}
			if len(p.Path) != len(c.Path) {
				t.Fatalf("%v decision %d: path %v uncached, %v cached", metric, i, p.Path, c.Path)
			}
			for j := range p.Path {
				if p.Path[j] != c.Path[j] {
					t.Fatalf("%v decision %d: path %v uncached, %v cached", metric, i, p.Path, c.Path)
				}
			}
			if math.Abs(p.Available-c.Available) > 1e-7 {
				t.Fatalf("%v decision %d: available %.12g uncached, %.12g cached",
					metric, i, p.Available, c.Available)
			}
		}
		st := cache.Stats()
		if st.Hits == 0 {
			t.Errorf("%v: admission sequence never hit the set-family cache: %+v", metric, st)
		}
	}
}

// TestSequentialAdmissionDeltaMatchesFullWalks pins the tentpole at the
// admission level. Flows whose paths extend hop by hop grow the
// enumeration universe (topology.LinkUnion of the involved paths) one
// link per step — exactly the shape delta enumeration warm-starts. The
// run must take the delta path (DeltaHits > 0, no fallbacks) and still
// produce decision-for-decision identical outcomes to both an uncached
// run and a cached run with the delta path switched off.
func TestSequentialAdmissionDeltaMatchesFullWalks(t *testing.T) {
	net, m := lineNet(t, 6, 100)
	reqs := []Request{
		{Src: 0, Dst: 2, Demand: 0.3},
		{Src: 0, Dst: 3, Demand: 0.3},
		{Src: 0, Dst: 4, Demand: 0.3},
		{Src: 0, Dst: 5, Demand: 0.3},
	}
	run := func(cache *memo.Cache) []Decision {
		t.Helper()
		decs, err := SequentialAdmission(net, m, MetricHopCount, reqs, AdmissionOptions{
			Core: core.Options{Cache: cache},
		})
		if err != nil {
			t.Fatal(err)
		}
		return decs
	}
	plain := run(nil)

	deltaCache := memo.New(0)
	withDelta := run(deltaCache)
	st := deltaCache.Stats()
	if st.DeltaHits == 0 {
		t.Fatalf("growing admission sequence never took the delta path: %+v", st)
	}
	if st.DeltaFallbacks != 0 {
		t.Fatalf("delta chain fell back on a supported model: %+v", st)
	}

	fullCache := memo.New(0)
	fullCache.SetDeltaEnabled(false)
	withoutDelta := run(fullCache)
	if fst := fullCache.Stats(); fst.DeltaHits != 0 {
		t.Fatalf("delta disabled but counted: %+v", fst)
	}

	for _, other := range [][]Decision{withDelta, withoutDelta} {
		if len(other) != len(plain) {
			t.Fatalf("%d decisions, want %d", len(other), len(plain))
		}
		for i := range plain {
			p, c := plain[i], other[i]
			if p.Admitted != c.Admitted {
				t.Fatalf("decision %d: admitted %v, want %v", i, c.Admitted, p.Admitted)
			}
			if math.Abs(p.Available-c.Available) > 1e-7 {
				t.Fatalf("decision %d: available %.12g, want %.12g", i, c.Available, p.Available)
			}
		}
	}
}
