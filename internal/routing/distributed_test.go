package routing

import (
	"errors"
	"testing"

	"abw/internal/conflict"
	"abw/internal/estimate"
	"abw/internal/geom"
	"abw/internal/graph"
	"abw/internal/radio"
	"abw/internal/topology"
)

func gridNet(t *testing.T, n, cols int, spacing float64) (*topology.Network, *conflict.Physical) {
	t.Helper()
	net, err := topology.New(radio.NewProfile80211a(), geom.GridPoints(n, cols, spacing))
	if err != nil {
		t.Fatal(err)
	}
	return net, conflict.NewPhysical(net)
}

func TestDistributedRouterFindsPath(t *testing.T) {
	net, m := gridNet(t, 9, 3, 80)
	router, err := NewDistributedRouter(net, m, estimate.MetricConservativeClique, allIdle(net))
	if err != nil {
		t.Fatal(err)
	}
	path, est, err := router.Route(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Errorf("estimate = %g, want positive", est)
	}
	if err := net.ValidatePath(path); err != nil {
		t.Errorf("invalid path: %v", err)
	}
	nodes, err := net.PathNodes(path)
	if err != nil {
		t.Fatal(err)
	}
	if nodes[0] != 0 || nodes[len(nodes)-1] != 8 {
		t.Errorf("endpoints wrong: %v", nodes)
	}
}

func TestDistributedRouterAvoidsBusyRegion(t *testing.T) {
	// Same fixture as TestAvgE2EDAvoidsBusyNodes: two relays, one busy.
	prof := radio.NewProfile80211a()
	net, err := topology.New(prof, []geom.Point{
		{X: 0, Y: 0},
		{X: 50, Y: 40},  // busy relay (node 1)
		{X: 50, Y: -40}, // idle relay (node 2)
		{X: 100, Y: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	idle := []float64{1, 0.05, 1, 1}
	router, err := NewDistributedRouter(net, m, estimate.MetricConservativeClique, idle)
	if err != nil {
		t.Fatal(err)
	}
	path, est, err := router.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := net.PathNodes(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if n == 1 {
			t.Errorf("routed through busy node: %v (estimate %.2f)", nodes, est)
		}
	}
}

func TestDistributedRouterMatchesEstimatorOnLine(t *testing.T) {
	// On a line there is one loopless route; the router's estimate must
	// equal evaluating the estimator on it directly.
	net, m := lineNet(t, 4, 100)
	idle := allIdle(net)
	router, err := NewDistributedRouter(net, m, estimate.MetricCliqueConstraint, idle)
	if err != nil {
		t.Fatal(err)
	}
	path, est, err := router.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	linkIdle, err := estimate.LinkIdleRatios(net, idle, path)
	if err != nil {
		t.Fatal(err)
	}
	ps := estimate.PathState{Path: path, Idle: linkIdle}
	for _, lid := range path {
		ps.Rates = append(ps.Rates, conflict.AloneMaxRate(m, lid))
	}
	direct, err := estimate.CliqueConstraint(m, ps)
	if err != nil {
		t.Fatal(err)
	}
	if est != direct {
		t.Errorf("router estimate %.4f != direct %.4f", est, direct)
	}
}

func TestDistributedRouterPrefixMonotone(t *testing.T) {
	// The estimate of the returned path must not exceed the estimate of
	// any of its prefixes (adding hops only adds constraints).
	net, m := gridNet(t, 9, 3, 80)
	idle := allIdle(net)
	router, err := NewDistributedRouter(net, m, estimate.MetricConservativeClique, idle)
	if err != nil {
		t.Fatal(err)
	}
	path, est, err := router.Route(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(path); k++ {
		ps, err := router.pathState(path[:k])
		if err != nil {
			t.Fatal(err)
		}
		prefixEst, err := estimate.ConservativeClique(m, ps)
		if err != nil {
			t.Fatal(err)
		}
		if est > prefixEst+1e-9 {
			t.Errorf("full-path estimate %.4f exceeds prefix[%d] estimate %.4f", est, k, prefixEst)
		}
	}
}

func TestDistributedRouterErrors(t *testing.T) {
	net, m := lineNet(t, 3, 100)
	idle := allIdle(net)
	if _, err := NewDistributedRouter(nil, m, estimate.MetricBottleneckNode, idle); err == nil {
		t.Error("nil network: expected error")
	}
	if _, err := NewDistributedRouter(net, m, estimate.MetricBottleneckNode, []float64{1}); err == nil {
		t.Error("short idleness: expected error")
	}
	router, err := NewDistributedRouter(net, m, estimate.MetricBottleneckNode, idle)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := router.Route(0, 0); err == nil {
		t.Error("src==dst: expected error")
	}
	if _, _, err := router.Route(0, 99); err == nil {
		t.Error("dst out of range: expected error")
	}
	// Disconnected target.
	split, err := topology.New(radio.NewProfile80211a(), []geom.Point{{X: 0}, {X: 50}, {X: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	sm := conflict.NewPhysical(split)
	router2, err := NewDistributedRouter(split, sm, estimate.MetricBottleneckNode, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := router2.Route(0, 2); !errors.Is(err, graph.ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}
