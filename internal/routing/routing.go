// Package routing implements the paper's QoS routing layer (Sec. 4):
// distributed routing metrics over a multirate network with background
// traffic — hop count, end-to-end transmission delay (e2eTD), and
// average end-to-end delay (average-e2eD, Eq. 14) — plus the
// estimator-guided path selection the paper proposes, and the
// sequential flow-admission experiment of Sec. 5.2 (Figs. 2 and 3).
package routing

import (
	"fmt"
	"math"

	"abw/internal/conflict"
	"abw/internal/estimate"
	"abw/internal/graph"
	"abw/internal/topology"
)

// Metric is a QoS routing metric.
type Metric int

// The routing metrics compared in Fig. 3.
const (
	// MetricHopCount prefers the fewest hops.
	MetricHopCount Metric = iota + 1
	// MetricE2ETD minimizes the end-to-end transmission delay
	// sum_i 1/r_i (from the authors' earlier work [1]).
	MetricE2ETD
	// MetricAvgE2ED minimizes the average end-to-end delay
	// sum_i 1/(lambda_i r_i) of Eq. 14 — transmission delay inflated by
	// the background-busy fraction of each hop.
	MetricAvgE2ED
)

// String implements fmt.Stringer with the paper's labels.
func (m Metric) String() string {
	switch m {
	case MetricHopCount:
		return "hop count"
	case MetricE2ETD:
		return "e2eTD"
	case MetricAvgE2ED:
		return "average-e2eD"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// AllMetrics returns the three routing metrics in the paper's order.
func AllMetrics() []Metric {
	return []Metric{MetricHopCount, MetricE2ETD, MetricAvgE2ED}
}

// Weight builds the additive link weight for a metric. nodeIdle is the
// per-node carrier-sensed idle ratio vector; it is required by
// MetricAvgE2ED and ignored by the others. Links whose endpoints have no
// idle time are excluded (infinite weight) under MetricAvgE2ED.
func Weight(m conflict.Model, metric Metric, nodeIdle []float64) (graph.Weight, error) {
	switch metric {
	case MetricHopCount:
		return graph.HopWeight, nil
	case MetricE2ETD:
		return func(l topology.Link) float64 {
			r := conflict.AloneMaxRate(m, l.ID)
			if r <= 0 {
				return math.Inf(1)
			}
			return 1 / float64(r)
		}, nil
	case MetricAvgE2ED:
		if nodeIdle == nil {
			return nil, fmt.Errorf("routing: %v requires node idleness", metric)
		}
		return func(l topology.Link) float64 {
			r := conflict.AloneMaxRate(m, l.ID)
			if r <= 0 {
				return math.Inf(1)
			}
			if int(l.Tx) >= len(nodeIdle) || int(l.Rx) >= len(nodeIdle) {
				return math.Inf(1)
			}
			lambda := math.Min(nodeIdle[l.Tx], nodeIdle[l.Rx])
			if lambda <= 0 {
				return math.Inf(1)
			}
			return 1 / (lambda * float64(r))
		}, nil
	default:
		return nil, fmt.Errorf("routing: unknown metric %d", int(metric))
	}
}

// FindPath routes src to dst under the given metric.
func FindPath(net *topology.Network, m conflict.Model, metric Metric, nodeIdle []float64, src, dst topology.NodeID) (topology.Path, error) {
	w, err := Weight(m, metric, nodeIdle)
	if err != nil {
		return nil, err
	}
	path, _, err := graph.ShortestPath(net, src, dst, w)
	if err != nil {
		return nil, fmt.Errorf("routing: %v from %d to %d: %w", metric, src, dst, err)
	}
	return path, nil
}

// FindPathByLCTT routes by local clique transmission time — the LCTT
// metric the paper (after its reference [1]) names alongside e2eTD as a
// good capacity-seeking metric: among up to k loopless e2eTD-shortest
// candidates, pick the path whose bottleneck local clique has the
// smallest transmission time, i.e. the largest clique-constraint
// bandwidth (Eq. 11).
func FindPathByLCTT(net *topology.Network, m conflict.Model, src, dst topology.NodeID, k int) (topology.Path, float64, error) {
	idle := make([]float64, net.NumNodes())
	for i := range idle {
		idle[i] = 1 // LCTT ignores background by definition
	}
	return FindPathByEstimator(net, m, idle, src, dst, k, func(ps estimate.PathState) (float64, error) {
		return estimate.CliqueConstraint(m, ps)
	})
}

// PathEvaluator scores a candidate path; higher is better. The paper
// proposes using the Sec. 4 bandwidth estimators this way.
type PathEvaluator func(estimate.PathState) (float64, error)

// FindPathByEstimator implements the paper's estimator-guided routing:
// enumerate up to k loopless shortest candidates by e2eTD, build each
// candidate's distributed state from idleness, and keep the path whose
// estimated available bandwidth is largest.
func FindPathByEstimator(
	net *topology.Network,
	m conflict.Model,
	nodeIdle []float64,
	src, dst topology.NodeID,
	k int,
	eval PathEvaluator,
) (topology.Path, float64, error) {
	if eval == nil {
		return nil, 0, fmt.Errorf("routing: nil evaluator")
	}
	w, err := Weight(m, MetricE2ETD, nil)
	if err != nil {
		return nil, 0, err
	}
	cands, err := graph.KShortestPaths(net, src, dst, w, k)
	if err != nil {
		return nil, 0, fmt.Errorf("routing: candidates from %d to %d: %w", src, dst, err)
	}
	bestScore := math.Inf(-1)
	var best topology.Path
	for _, cand := range cands {
		ps, err := pathState(net, m, nodeIdle, cand.Path)
		if err != nil {
			return nil, 0, err
		}
		score, err := eval(ps)
		if err != nil {
			return nil, 0, fmt.Errorf("routing: evaluating candidate: %w", err)
		}
		if score > bestScore {
			bestScore = score
			best = cand.Path
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("routing: no scorable candidate from %d to %d", src, dst)
	}
	return best, bestScore, nil
}

func pathState(net *topology.Network, m conflict.Model, nodeIdle []float64, path topology.Path) (estimate.PathState, error) {
	idle, err := estimate.LinkIdleRatios(net, nodeIdle, path)
	if err != nil {
		return estimate.PathState{}, err
	}
	states := estimate.PathState{Path: path, Idle: idle}
	for _, lid := range path {
		r := conflict.AloneMaxRate(m, lid)
		if r <= 0 {
			return estimate.PathState{}, fmt.Errorf("routing: link %d supports no rate", lid)
		}
		states.Rates = append(states.Rates, r)
	}
	if err := states.Validate(); err != nil {
		return estimate.PathState{}, err
	}
	return states, nil
}
