package routing

import (
	"container/heap"
	"fmt"

	"abw/internal/conflict"
	"abw/internal/estimate"
	"abw/internal/graph"
	"abw/internal/topology"
)

// DistributedRouter implements the paper's Sec. 4 proposal verbatim:
// "Each intermediate node on a path estimates the available bandwidth
// from the source to itself on that path, and uses it in distributed
// routing algorithms as any other routing metrics." The router runs a
// best-first widest-path search where a node's label is the estimated
// available bandwidth of the prefix path reaching it, computed with one
// of the Sec. 4 estimators from carrier-sensed idleness.
//
// Because the estimators depend on the whole prefix (its local cliques),
// the search keeps one best label per node — the standard heuristic in
// distributed QoS routing; it is exact whenever prefix estimates compose
// monotonically, which holds for all five estimators on loop-free
// prefixes (adding a hop only adds constraints).
type DistributedRouter struct {
	net      *topology.Network
	model    conflict.Model
	metric   estimate.Metric
	nodeIdle []float64
}

// NewDistributedRouter builds a router over the given network using the
// given estimator and per-node idleness.
func NewDistributedRouter(net *topology.Network, m conflict.Model, metric estimate.Metric, nodeIdle []float64) (*DistributedRouter, error) {
	if net == nil || m == nil {
		return nil, fmt.Errorf("routing: nil network or model")
	}
	if len(nodeIdle) < net.NumNodes() {
		return nil, fmt.Errorf("routing: idleness vector has %d entries for %d nodes", len(nodeIdle), net.NumNodes())
	}
	return &DistributedRouter{net: net, model: m, metric: metric, nodeIdle: nodeIdle}, nil
}

type drLabel struct {
	node     topology.NodeID
	path     topology.Path
	estimate float64
	idx      int
}

type drQueue []*drLabel

func (q drQueue) Len() int           { return len(q) }
func (q drQueue) Less(i, j int) bool { return q[i].estimate > q[j].estimate } // widest first
func (q drQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *drQueue) Push(x interface{}) {
	l := x.(*drLabel)
	l.idx = len(*q)
	*q = append(*q, l)
}
func (q *drQueue) Pop() interface{} {
	old := *q
	n := len(old)
	l := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return l
}

// Route returns the path from src to dst with the largest estimated
// available bandwidth, together with that estimate.
func (r *DistributedRouter) Route(src, dst topology.NodeID) (topology.Path, float64, error) {
	n := r.net.NumNodes()
	if src < 0 || int(src) >= n || dst < 0 || int(dst) >= n {
		return nil, 0, fmt.Errorf("routing: node out of range (src=%d dst=%d n=%d)", src, dst, n)
	}
	if src == dst {
		return nil, 0, fmt.Errorf("routing: src equals dst (%d)", src)
	}

	best := make(map[topology.NodeID]float64, n)
	q := drQueue{}
	heap.Init(&q)

	// Seed with every outgoing link of the source.
	for _, lid := range r.net.OutLinks(src) {
		label, err := r.label(topology.Path{lid})
		if err != nil {
			return nil, 0, err
		}
		if label == nil {
			continue
		}
		heap.Push(&q, label)
	}

	for q.Len() > 0 {
		cur := heap.Pop(&q).(*drLabel)
		if prev, ok := best[cur.node]; ok && prev >= cur.estimate {
			continue
		}
		best[cur.node] = cur.estimate
		if cur.node == dst {
			return cur.path, cur.estimate, nil
		}
		visited := r.pathNodes(cur.path, src)
		for _, lid := range r.net.OutLinks(cur.node) {
			link, err := r.net.Link(lid)
			if err != nil {
				return nil, 0, err
			}
			if visited[link.Rx] {
				continue
			}
			ext := make(topology.Path, 0, len(cur.path)+1)
			ext = append(ext, cur.path...)
			ext = append(ext, lid)
			label, err := r.label(ext)
			if err != nil {
				return nil, 0, err
			}
			if label == nil || label.estimate <= 0 {
				continue
			}
			if prev, ok := best[label.node]; ok && prev >= label.estimate {
				continue
			}
			heap.Push(&q, label)
		}
	}
	return nil, 0, graph.ErrNoPath
}

// label builds the search label for a prefix path, or nil when the
// prefix is unusable (a silent link).
func (r *DistributedRouter) label(prefix topology.Path) (*drLabel, error) {
	ps, err := r.pathState(prefix)
	if err != nil {
		return nil, nil // silent link: prune quietly
	}
	est, err := estimate.Estimate(r.metric, r.model, ps)
	if err != nil {
		return nil, fmt.Errorf("routing: estimating prefix: %w", err)
	}
	last, err := r.net.Link(prefix[len(prefix)-1])
	if err != nil {
		return nil, err
	}
	return &drLabel{node: last.Rx, path: prefix, estimate: est}, nil
}

func (r *DistributedRouter) pathState(path topology.Path) (estimate.PathState, error) {
	idle, err := estimate.LinkIdleRatios(r.net, r.nodeIdle, path)
	if err != nil {
		return estimate.PathState{}, err
	}
	ps := estimate.PathState{Path: path, Idle: idle}
	for _, lid := range path {
		rate := conflict.AloneMaxRate(r.model, lid)
		if rate <= 0 {
			return estimate.PathState{}, fmt.Errorf("routing: link %d supports no rate", lid)
		}
		ps.Rates = append(ps.Rates, rate)
	}
	if err := ps.Validate(); err != nil {
		return estimate.PathState{}, err
	}
	return ps, nil
}

func (r *DistributedRouter) pathNodes(path topology.Path, src topology.NodeID) map[topology.NodeID]bool {
	out := make(map[topology.NodeID]bool, len(path)+1)
	out[src] = true
	for _, lid := range path {
		if link, err := r.net.Link(lid); err == nil {
			out[link.Rx] = true
		}
	}
	return out
}
