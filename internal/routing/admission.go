package routing

import (
	"context"
	"errors"
	"fmt"
	"math"

	"abw/internal/cancel"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/graph"
	"abw/internal/lp"
	"abw/internal/obs"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// Request is one flow asking to join the network.
type Request struct {
	Src    topology.NodeID
	Dst    topology.NodeID
	Demand float64 // Mbps
}

// Decision records the outcome of one admission attempt.
type Decision struct {
	Request Request
	// Path is the route the metric chose (nil when routing failed).
	Path topology.Path
	// Available is the exact available bandwidth of Path given the
	// previously admitted flows (the paper's Fig. 3 y-axis).
	Available float64
	// Admitted is true when Available covers the demand.
	Admitted bool
	// Reason explains a rejection.
	Reason string
}

// AdmissionOptions configure a sequential admission run.
type AdmissionOptions struct {
	// StopAtFirstFailure mirrors the paper's Sec. 5.2 setup: the run
	// ends when the first flow cannot be satisfied.
	StopAtFirstFailure bool
	// Core carries through to the availability LP.
	Core core.Options
}

// SequentialAdmission reproduces the paper's Sec. 5.2 experiment: flows
// join one by one; each is routed with the given metric using the
// idleness induced by the already-admitted background, its path's exact
// available bandwidth is computed with the Eq. 6 model, and it is
// admitted iff the demand fits.
func SequentialAdmission(
	net *topology.Network,
	m conflict.Model,
	metric Metric,
	requests []Request,
	opts AdmissionOptions,
) ([]Decision, error) {
	return SequentialAdmissionContext(context.Background(), net, m, metric, requests, opts)
}

// SequentialAdmissionContext is SequentialAdmission under a context:
// ctx is checked between admission steps and forwarded into each step's
// enumeration and LP solves, so a cancelled run stops promptly with an
// error satisfying errors.Is(err, cancel.ErrCanceled) alongside the
// decisions completed so far. Admission state is only extended by fully
// completed steps — cancellation never commits a half-evaluated flow.
func SequentialAdmissionContext(
	ctx context.Context,
	net *topology.Network,
	m conflict.Model,
	metric Metric,
	requests []Request,
	opts AdmissionOptions,
) ([]Decision, error) {
	// A configured cache opts the run into session acceleration: set
	// families, warm-started availability LPs and memoized feasibility
	// verdicts persist across the admission steps. Answers are the same
	// either way (core's session property tests pin warm == cold).
	var sess *core.Session
	if opts.Core.Cache != nil {
		sess = core.NewSession(m, opts.Core)
	}
	var admitted []core.Flow
	decisions := make([]Decision, 0, len(requests))
	for _, req := range requests {
		if ctx.Err() != nil {
			return decisions, cancel.Cause(ctx)
		}
		dec, err := admitOne(ctx, net, m, metric, req, admitted, opts.Core, sess)
		if err != nil {
			return decisions, err
		}
		decisions = append(decisions, dec)
		if dec.Admitted {
			admitted = append(admitted, core.Flow{Path: dec.Path, Demand: req.Demand})
		} else if opts.StopAtFirstFailure {
			break
		}
	}
	return decisions, nil
}

func admitOne(
	ctx context.Context,
	net *topology.Network,
	m conflict.Model,
	metric Metric,
	req Request,
	admitted []core.Flow,
	coreOpts core.Options,
	sess *core.Session,
) (Decision, error) {
	dec := Decision{Request: req}
	if req.Demand <= 0 {
		return dec, fmt.Errorf("routing: request demand must be positive, got %g", req.Demand)
	}
	tm := obs.SpanFrom(ctx).StartStage(obs.StageAdmit)
	defer tm.End()
	idle, err := backgroundIdleness(ctx, net, m, admitted, coreOpts, sess)
	if err != nil {
		return dec, err
	}
	rt := obs.SpanFrom(ctx).StartStage(obs.StageRoute)
	path, err := FindPath(net, m, metric, idle, req.Src, req.Dst)
	rt.End()
	if errors.Is(err, graph.ErrNoPath) {
		dec.Reason = "no route"
		return dec, nil
	}
	if err != nil {
		return dec, err
	}
	dec.Path = path

	var res *core.Result
	if sess != nil {
		res, err = sess.AvailableBandwidthContext(ctx, admitted, path)
	} else {
		res, err = core.AvailableBandwidthContext(ctx, m, admitted, path, coreOpts)
	}
	if err != nil {
		return dec, fmt.Errorf("routing: availability of %v: %w", path, err)
	}
	if res.Status != lp.Optimal {
		dec.Reason = fmt.Sprintf("availability LP %v", res.Status)
		return dec, nil
	}
	dec.Available = math.Max(0, res.Bandwidth) // LP round-off can dip below zero
	if res.Bandwidth+1e-9 >= req.Demand {
		dec.Admitted = true
	} else {
		dec.Reason = fmt.Sprintf("available %.3f Mbps < demand %.3f Mbps", res.Bandwidth, req.Demand)
	}
	return dec, nil
}

// BackgroundIdleness derives per-node carrier-sensed idle ratios from
// the admitted flows: the minimal-airtime schedule delivering the
// admitted demands is computed (what an efficient network converges to)
// and each node senses it. With no background, every node is fully
// idle.
func BackgroundIdleness(net *topology.Network, m conflict.Model, admitted []core.Flow, coreOpts core.Options) ([]float64, error) {
	return backgroundIdleness(context.Background(), net, m, admitted, coreOpts, nil)
}

// BackgroundIdlenessContext is BackgroundIdleness under a context: the
// feasibility enumeration and LP poll ctx and stop promptly on
// cancellation.
func BackgroundIdlenessContext(ctx context.Context, net *topology.Network, m conflict.Model, admitted []core.Flow, coreOpts core.Options) ([]float64, error) {
	return backgroundIdleness(ctx, net, m, admitted, coreOpts, nil)
}

// backgroundIdleness is BackgroundIdleness optionally answering the
// feasibility question through a session's memo.
func backgroundIdleness(ctx context.Context, net *topology.Network, m conflict.Model, admitted []core.Flow, coreOpts core.Options, sess *core.Session) ([]float64, error) {
	if sess != nil {
		// The session memoizes the whole schedule → idle-ratio pipeline
		// by demand signature.
		return sess.IdleRatiosContext(ctx, net, admitted)
	}
	if len(admitted) == 0 {
		idle := make([]float64, net.NumNodes())
		for i := range idle {
			idle[i] = 1
		}
		return idle, nil
	}
	ok, sched, err := core.FeasibleDemandsContext(ctx, m, admitted, coreOpts)
	if err != nil {
		return nil, fmt.Errorf("routing: background schedule: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("routing: background flows are not jointly schedulable")
	}
	return estimate.NodeIdleRatios(net, sched), nil
}

// BackgroundSchedule exposes the minimal-airtime schedule used for
// idleness, for callers that need the schedule itself (e.g. the Fig. 4
// estimation experiment and the simulators).
func BackgroundSchedule(m conflict.Model, admitted []core.Flow, coreOpts core.Options) (schedule.Schedule, error) {
	return BackgroundScheduleContext(context.Background(), m, admitted, coreOpts)
}

// BackgroundScheduleContext is BackgroundSchedule under a context; see
// BackgroundIdlenessContext.
func BackgroundScheduleContext(ctx context.Context, m conflict.Model, admitted []core.Flow, coreOpts core.Options) (schedule.Schedule, error) {
	if len(admitted) == 0 {
		return schedule.Schedule{}, nil
	}
	ok, sched, err := core.FeasibleDemandsContext(ctx, m, admitted, coreOpts)
	if err != nil {
		return schedule.Schedule{}, fmt.Errorf("routing: background schedule: %w", err)
	}
	if !ok {
		return schedule.Schedule{}, fmt.Errorf("routing: background not schedulable")
	}
	return sched, nil
}
