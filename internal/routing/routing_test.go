package routing

import (
	"testing"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/schedule"
	"abw/internal/topology"
)

func lineNet(t *testing.T, n int, spacing float64) (*topology.Network, *conflict.Physical) {
	t.Helper()
	net, err := topology.New(radio.NewProfile80211a(), geom.LinePoints(n, spacing))
	if err != nil {
		t.Fatal(err)
	}
	return net, conflict.NewPhysical(net)
}

func allIdle(net *topology.Network) []float64 {
	idle := make([]float64, net.NumNodes())
	for i := range idle {
		idle[i] = 1
	}
	return idle
}

func TestMetricStrings(t *testing.T) {
	want := map[Metric]string{
		MetricHopCount: "hop count",
		MetricE2ETD:    "e2eTD",
		MetricAvgE2ED:  "average-e2eD",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if Metric(42).String() != "Metric(42)" {
		t.Error("unknown metric label wrong")
	}
	if len(AllMetrics()) != 3 {
		t.Error("AllMetrics should list 3 metrics")
	}
}

func TestWeightValidation(t *testing.T) {
	_, m := lineNet(t, 3, 100)
	if _, err := Weight(m, MetricAvgE2ED, nil); err == nil {
		t.Error("avgE2ED without idleness: expected error")
	}
	if _, err := Weight(m, Metric(0), nil); err == nil {
		t.Error("unknown metric: expected error")
	}
}

func TestHopCountVsE2ETD(t *testing.T) {
	// 5 nodes, 50m apart: hop count jumps 150m at 6 Mbps (2 hops);
	// e2eTD prefers four 54 Mbps hops.
	net, m := lineNet(t, 5, 50)
	hopPath, err := FindPath(net, m, MetricHopCount, nil, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	tdPath, err := FindPath(net, m, MetricE2ETD, nil, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hopPath) >= len(tdPath) {
		t.Errorf("hop count path (%d hops) should be shorter than e2eTD path (%d hops)", len(hopPath), len(tdPath))
	}
	if len(tdPath) != 4 {
		t.Errorf("e2eTD path has %d hops, want 4 (all 54 Mbps)", len(tdPath))
	}
}

func TestAvgE2EDAvoidsBusyNodes(t *testing.T) {
	// Two parallel 2-hop routes 0 -> (1 or 2) -> 3. Node 1 is busy
	// (idle 0.1), node 2 is idle: average-e2eD must route via node 2
	// while e2eTD is indifferent-or-picks-first.
	prof := radio.NewProfile80211a()
	net, err := topology.New(prof, []geom.Point{
		{X: 0, Y: 0},    // 0: src
		{X: 50, Y: 40},  // 1: busy relay
		{X: 50, Y: -40}, // 2: idle relay
		{X: 100, Y: 0},  // 3: dst
	})
	if err != nil {
		t.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	idle := []float64{1, 0.1, 1, 1}
	path, err := FindPath(net, m, MetricAvgE2ED, idle, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := net.PathNodes(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if n == 1 {
			t.Errorf("average-e2eD routed through the busy node: %v", nodes)
		}
	}
}

func TestBackgroundIdlenessNoFlows(t *testing.T) {
	net, m := lineNet(t, 4, 100)
	idle, err := BackgroundIdleness(net, m, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range idle {
		if v != 1 {
			t.Errorf("node %d idle = %g, want 1", i, v)
		}
	}
}

func TestBackgroundIdlenessWithFlow(t *testing.T) {
	net, m := lineNet(t, 4, 100)
	path, err := net.PathFromNodes([]topology.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	idle, err := BackgroundIdleness(net, m, []core.Flow{{Path: path, Demand: 2}}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range idle {
		if v >= 1 {
			t.Errorf("node %d idle = %g, want < 1 with background traffic", i, v)
		}
		if v < 0 {
			t.Errorf("node %d idle = %g negative", i, v)
		}
	}
}

func TestSequentialAdmissionInvariants(t *testing.T) {
	net, m := lineNet(t, 5, 100)
	reqs := []Request{
		{Src: 0, Dst: 4, Demand: 1.5},
		{Src: 0, Dst: 4, Demand: 1.5},
		{Src: 0, Dst: 4, Demand: 1.5},
		{Src: 0, Dst: 4, Demand: 1.5},
	}
	decs, err := SequentialAdmission(net, m, MetricE2ETD, reqs, AdmissionOptions{StopAtFirstFailure: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) == 0 {
		t.Fatal("no decisions")
	}
	// The 4-hop chain supports 54/11 ~ 4.909 Mbps end to end (the
	// optimal schedule reuses hop 0 at 6 Mbps alongside hop 3 at 18 —
	// the same link-adaptation structure as the paper's Scenario II).
	// Three 1.5 Mbps flows fit; the fourth must fail.
	for i, d := range decs {
		if d.Admitted {
			if d.Available+1e-9 < d.Request.Demand {
				t.Errorf("decision %d admitted with available %.3f < demand %.3f", i, d.Available, d.Request.Demand)
			}
			if err := net.ValidatePath(d.Path); err != nil {
				t.Errorf("decision %d has invalid path: %v", i, err)
			}
		} else {
			if d.Reason == "" {
				t.Errorf("decision %d rejected without reason", i)
			}
			if i != len(decs)-1 {
				t.Errorf("run should have stopped at first failure (failure at %d of %d)", i, len(decs))
			}
		}
	}
	if got, want := decs[0].Available, 54.0/11; got < want-1e-6 || got > want+1e-6 {
		t.Errorf("first flow available = %.6f, want 54/11 = %.6f", got, want)
	}
	last := decs[len(decs)-1]
	if last.Admitted {
		t.Error("the run should end with a rejected flow")
	}
	if len(decs) != 4 {
		t.Errorf("expected exactly 3 admissions + 1 failure, got %d decisions", len(decs))
	}
}

func TestSequentialAdmissionContinueAfterFailure(t *testing.T) {
	net, m := lineNet(t, 5, 100)
	reqs := []Request{
		{Src: 0, Dst: 4, Demand: 100}, // impossible
		{Src: 0, Dst: 4, Demand: 2},   // fine
	}
	decs, err := SequentialAdmission(net, m, MetricHopCount, reqs, AdmissionOptions{StopAtFirstFailure: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 2 {
		t.Fatalf("got %d decisions, want 2", len(decs))
	}
	if decs[0].Admitted {
		t.Error("100 Mbps demand should be rejected")
	}
	if !decs[1].Admitted {
		t.Errorf("2 Mbps after a rejection should be admitted: %+v", decs[1])
	}
}

func TestSequentialAdmissionNoRoute(t *testing.T) {
	net, err := topology.New(radio.NewProfile80211a(), []geom.Point{{X: 0}, {X: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	decs, err := SequentialAdmission(net, m, MetricHopCount, []Request{{Src: 0, Dst: 1, Demand: 1}}, AdmissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 1 || decs[0].Admitted || decs[0].Reason != "no route" {
		t.Errorf("decisions = %+v, want a single 'no route' rejection", decs)
	}
}

func TestSequentialAdmissionBadDemand(t *testing.T) {
	net, m := lineNet(t, 3, 100)
	if _, err := SequentialAdmission(net, m, MetricHopCount, []Request{{Src: 0, Dst: 2, Demand: 0}}, AdmissionOptions{}); err == nil {
		t.Error("zero demand: expected error")
	}
}

func TestFindPathByEstimator(t *testing.T) {
	net, m := lineNet(t, 5, 50)
	idle := allIdle(net)
	eval := func(ps estimate.PathState) (float64, error) {
		return estimate.ConservativeClique(m, ps)
	}
	path, score, err := FindPathByEstimator(net, m, idle, 0, 4, 5, eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 || score <= 0 {
		t.Errorf("path=%v score=%g", path, score)
	}
	if err := net.ValidatePath(path); err != nil {
		t.Errorf("invalid path: %v", err)
	}
	if _, _, err := FindPathByEstimator(net, m, idle, 0, 4, 3, nil); err == nil {
		t.Error("nil evaluator: expected error")
	}
}

func TestFindPathByEstimatorPrefersHigherBandwidth(t *testing.T) {
	// Against e2eTD's own top choice, the estimator-guided router must
	// return a path whose estimate is at least as large as the e2eTD
	// path's estimate.
	net, m := lineNet(t, 6, 50)
	idle := allIdle(net)
	eval := func(ps estimate.PathState) (float64, error) {
		return estimate.ConservativeClique(m, ps)
	}
	bestPath, bestScore, err := FindPathByEstimator(net, m, idle, 0, 5, 8, eval)
	if err != nil {
		t.Fatal(err)
	}
	tdPath, err := FindPath(net, m, MetricE2ETD, nil, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	tdState, err := estimate.PathStateFromSchedule(net, m, emptySchedule(), tdPath)
	if err != nil {
		t.Fatal(err)
	}
	tdScore, err := eval(tdState)
	if err != nil {
		t.Fatal(err)
	}
	if bestScore < tdScore-1e-9 {
		t.Errorf("estimator-guided score %.4f below e2eTD path score %.4f (path %v)", bestScore, tdScore, bestPath)
	}
}

func emptySchedule() schedule.Schedule { return schedule.Schedule{} }

func TestFindPathByLCTT(t *testing.T) {
	net, m := lineNet(t, 5, 50)
	path, score, err := FindPathByLCTT(net, m, 0, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ValidatePath(path); err != nil {
		t.Errorf("invalid path: %v", err)
	}
	if score <= 0 {
		t.Errorf("LCTT score = %g", score)
	}
	// The score equals the clique-constraint estimate of the chosen
	// path with full idleness.
	ps, err := estimate.PathStateFromSchedule(net, m, emptySchedule(), path)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := estimate.CliqueConstraint(m, ps)
	if err != nil {
		t.Fatal(err)
	}
	if score != direct {
		t.Errorf("score %.4f != direct clique constraint %.4f", score, direct)
	}
}
