//lint:file-ignore abw/timenow observability is the one sanctioned clock reader: timestamps here measure latency for metrics, traces, and logs, and never feed a computation result (DESIGN.md Sec. 14)

package obs

import "time"

// now and since are the package's only wall-clock reads, kept in this
// file so the abw/timenow suppression covers exactly the telemetry
// clock and nothing else. Every other package stays clock-free and
// deterministic; they observe time only through the Span/Registry
// helpers defined here.
func now() time.Time { return time.Now() }

func since(t time.Time) time.Duration { return time.Since(t) }

// procEpoch salts request ids so ids from different daemon runs are
// distinguishable in aggregated logs.
var procEpoch = now().UnixNano()

// Stopwatch measures one elapsed interval for callers outside this
// package (HTTP middleware, shutdown drain timing) without giving them
// a wall-clock read of their own: the zero Stopwatch is inert and
// reports zero elapsed.
type Stopwatch struct {
	t time.Time
}

// StartWatch starts a stopwatch.
func StartWatch() Stopwatch { return Stopwatch{t: now()} }

// Elapsed returns the time since StartWatch (zero for a zero value).
func (s Stopwatch) Elapsed() time.Duration {
	if s.t.IsZero() {
		return 0
	}
	return since(s.t)
}

// Seconds is Elapsed in float seconds — the unit every latency
// histogram records.
func (s Stopwatch) Seconds() float64 { return s.Elapsed().Seconds() }
