// Package obs is the observability layer of the query path: a
// stdlib-only metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms) with Prometheus text exposition, per-query stage
// tracing carried through context.Context, and structured-logging
// helpers (log/slog) with request-id threading.
//
// The whole package follows the cancel.Checker nil-receiver pattern:
// a nil *Registry hands out nil instruments, a nil *Span hands out
// inert timers, and every method of a nil instrument is a no-op — so
// uninstrumented runs pay one nil check per instrumentation point and
// produce byte-identical results (DESIGN.md Sec. 14). Instrumentation
// only ever records what a computation did; it never changes what the
// computation does.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// L is one metric label. Instruments are identified by metric name plus
// the full label set; the same (name, labels) always returns the same
// instrument.
type L struct {
	K, V string
}

// DefaultLatencyBuckets are the histogram bounds every latency series
// uses, in seconds: 100µs to 10s, roughly logarithmic. Fixed buckets
// keep recording allocation-free and exposition deterministic.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return "unknown"
	}
}

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops reading zero).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; negative n is ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. All methods are safe on a nil
// receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts:
// recording is lock-free (one atomic add per bucket, count, and sum),
// so concurrent Observe calls from enumeration workers never contend on
// a mutex. Bounds are upper-inclusive (Prometheus `le` semantics) and
// an implicit +Inf bucket catches overflow. All methods are safe on a
// nil receiver.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, no +Inf
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bound >= v is the le-bucket; past the end is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (zero on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the covering bucket — the usual fixed-bucket
// approximation. Observations in the +Inf bucket clamp to the highest
// finite bound. Returns 0 with no observations or on a nil receiver.
// The snapshot is not atomic across buckets; concurrent recording can
// skew a quantile by at most the in-flight observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// series is one registered instrument under a family: exactly one of
// c/g/h is set, matching the family kind.
type series struct {
	labels string // rendered {k="v",...}, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every label combination of one metric name, so
// exposition emits HELP/TYPE once per name.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64          // histogram families only
	series  map[string]*series // guarded by Registry.mu
}

// Registry is a set of named instruments. Create with NewRegistry; a
// nil *Registry is the disabled fast path — it hands out nil
// instruments whose methods no-op, so instrumented code runs unchanged
// (and unmeasured) without one.
//
// Instrument lookup takes the registry mutex; recording on the returned
// instrument is mutex-free. Hot paths should look instruments up once
// and keep the pointer.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for (name, labels), creating it on first
// use. Returns nil on a nil registry. Panics when name is already
// registered as a different kind — a programming error, not an
// operational condition.
func (r *Registry) Counter(name, help string, labels ...L) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, counterKind, nil, labels)
	return s.c
}

// Gauge returns the gauge for (name, labels); see Counter.
func (r *Registry) Gauge(name, help string, labels ...L) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, gaugeKind, nil, labels)
	return s.g
}

// Histogram returns the histogram for (name, labels); see Counter. All
// label combinations of one name share the first registration's
// buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...L) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	s := r.lookup(name, help, histogramKind, buckets, labels)
	return s.h
}

func (r *Registry) lookup(name, help string, k kind, buckets []float64, labels []L) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		switch k {
		case counterKind:
			s.c = &Counter{}
		case gaugeKind:
			s.g = &Gauge{}
		case histogramKind:
			s.h = newHistogram(f.buckets)
		}
		f.series[key] = s
	}
	return s
}

// labelKey renders labels sorted by key as `{k="v",...}` — the series
// identity and the exposition form.
func labelKey(labels []L) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]L, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.V))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// mergeLabels splices an extra label (e.g. le for histogram buckets)
// into a rendered label key.
func mergeLabels(key, extra string) string {
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every instrument in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// label key, histograms as cumulative _bucket/_sum/_count series. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	// Snapshot each family's series under the lock; values are read
	// atomically afterwards so a slow writer never blocks recording.
	type snapSeries struct {
		labels string
		s      *series
	}
	snap := make([][]snapSeries, len(fams))
	for i, f := range fams {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			snap[i] = append(snap[i], snapSeries{labels: k, s: f.series[k]})
		}
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, ss := range snap[i] {
			switch f.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ss.labels, ss.s.c.Value())
			case gaugeKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ss.labels, ss.s.g.Value())
			case histogramKind:
				h := ss.s.h
				cum := int64(0)
				for bi, bound := range h.bounds {
					cum += h.counts[bi].Load()
					le := mergeLabels(ss.labels, `le="`+formatFloat(bound)+`"`)
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, le, cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				le := mergeLabels(ss.labels, `le="+Inf"`)
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, le, cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ss.labels, formatFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ss.labels, h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// HistSummary is the JSON-facing digest of one histogram series.
type HistSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time JSON-ready view of a registry, merged
// into GET /v1/stats next to the memo-cache counters. Map keys are the
// full series names including labels; encoding/json sorts them, so the
// encoded form is deterministic for fixed counter values.
type Snapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]int64       `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value. A nil registry
// returns nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	out := &Snapshot{}
	r.mu.Lock()
	type item struct {
		name string
		s    *series
		kind kind
	}
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var items []item
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			items = append(items, item{name: name + k, s: f.series[k], kind: f.kind})
		}
	}
	r.mu.Unlock()
	for _, it := range items {
		switch it.kind {
		case counterKind:
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[it.name] = it.s.c.Value()
		case gaugeKind:
			if out.Gauges == nil {
				out.Gauges = make(map[string]int64)
			}
			out.Gauges[it.name] = it.s.g.Value()
		case histogramKind:
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistSummary)
			}
			h := it.s.h
			out.Histograms[it.name] = HistSummary{
				Count: h.Count(),
				Sum:   h.Sum(),
				P50:   h.Quantile(0.50),
				P90:   h.Quantile(0.90),
				P99:   h.Quantile(0.99),
			}
		}
	}
	return out
}
