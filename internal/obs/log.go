package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// NewLogger returns a leveled JSON logger writing to w. Level strings
// are debug/info/warn/error (case-insensitive); anything else falls
// back to info. abwd owns the single logger and hands it to the server
// via SetLogger; library packages never log.
func NewLogger(w io.Writer, level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lv}))
}

type requestIDKeyType struct{}

var requestIDKey requestIDKeyType

// reqSeq numbers requests within one process; combined with procEpoch
// the ids stay unique across daemon restarts.
var reqSeq atomic.Uint64

// NextRequestID returns a process-unique request id of the form
// <epoch36>-<seq>, cheap enough to mint per request.
func NextRequestID() string {
	return fmt.Sprintf("%s-%d", strings.ToLower(fmt.Sprintf("%x", procEpoch)), reqSeq.Add(1))
}

// WithRequestID attaches a request id to a context.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom extracts the request id from a context ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
