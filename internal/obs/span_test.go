package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestNilSpanFastPath(t *testing.T) {
	var s *Span
	if s.ID() != "" {
		t.Fatal("nil span id must be empty")
	}
	tm := s.StartStage(StageEnumerate)
	if tm != nil {
		t.Fatal("nil span must hand out a nil timer")
	}
	// Every timer method must be a no-op on nil.
	tm.SetStage(StageLPSolve)
	tm.AddSets(5)
	tm.AddPivots(5)
	tm.SetWorkers(4)
	tm.SetWarm(true)
	tm.SetOutcome("hit")
	tm.End()
	if s.Trace() != nil {
		t.Fatal("nil span trace must be nil")
	}
	if s.StageNames() != nil {
		t.Fatal("nil span stage names must be nil")
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatal("empty context must yield nil span")
	}
	if WithSpan(ctx, nil) != ctx {
		t.Fatal("attaching nil span must return the context unchanged")
	}
	s := NewSpan("req-1")
	ctx = WithSpan(ctx, s)
	if got := SpanFrom(ctx); got != s {
		t.Fatal("span did not round-trip through context")
	}
}

func TestSpanAggregation(t *testing.T) {
	s := NewSpan("req-2")

	t1 := s.StartStage(StageEnumerate)
	t1.AddSets(10)
	t1.SetWorkers(4)
	t1.End()
	t1.End() // second End is a no-op

	t2 := s.StartStage(StageEnumerate)
	t2.AddSets(5)
	t2.SetWorkers(2) // lower than first call: Workers keeps the max
	t2.End()

	t3 := s.StartStage(StageLPWarm)
	t3.AddPivots(7)
	t3.SetWarm(true)
	t3.End()

	t4 := s.StartStage(StageMemo)
	t4.SetOutcome("hit")
	t4.End()
	t5 := s.StartStage(StageMemo)
	t5.SetOutcome("miss")
	t5.End()

	// A warm attempt that fell back cold re-stages before End.
	t6 := s.StartStage(StageLPWarm)
	t6.SetStage(StageLPSolve)
	t6.AddPivots(11)
	t6.End()

	td := s.Trace()
	if td.RequestID != "req-2" {
		t.Fatalf("trace id = %q", td.RequestID)
	}
	if td.TotalNs < 0 {
		t.Fatalf("total = %d", td.TotalNs)
	}
	byStage := map[Stage]StageRecord{}
	for _, rec := range td.Stages {
		byStage[rec.Stage] = rec
	}
	enum := byStage[StageEnumerate]
	if enum.Calls != 2 || enum.Sets != 15 || enum.Workers != 4 {
		t.Fatalf("enumerate record = %+v", enum)
	}
	warm := byStage[StageLPWarm]
	if warm.Calls != 1 || warm.Pivots != 7 || warm.Warm != 1 {
		t.Fatalf("lp_warm record = %+v", warm)
	}
	cold := byStage[StageLPSolve]
	if cold.Calls != 1 || cold.Pivots != 11 || cold.Warm != 0 {
		t.Fatalf("lp_solve record = %+v", cold)
	}
	memo := byStage[StageMemo]
	if memo.Calls != 2 || memo.Cache["hit"] != 1 || memo.Cache["miss"] != 1 {
		t.Fatalf("memo record = %+v", memo)
	}
	if got := strings.Join(s.StageNames(), ","); got != "enumerate,lp_solve,lp_warm,memo" {
		t.Fatalf("stage names = %s", got)
	}
}

// TestSpanConcurrentTimers ends timers from many goroutines into one
// span; under -race this proves the span's aggregation is safe for the
// parallel-enumeration case.
func TestSpanConcurrentTimers(t *testing.T) {
	s := NewSpan("req-3")
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tm := s.StartStage(StageEnumerate)
				tm.AddSets(1)
				tm.End()
			}
		}()
	}
	wg.Wait()
	td := s.Trace()
	if len(td.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(td.Stages))
	}
	rec := td.Stages[0]
	if rec.Calls != goroutines*perG || rec.Sets != goroutines*perG {
		t.Fatalf("record = %+v, want %d calls/sets", rec, goroutines*perG)
	}
}

func TestRequestIDThreading(t *testing.T) {
	ctx := context.Background()
	if RequestIDFrom(ctx) != "" {
		t.Fatal("empty context must yield empty id")
	}
	if WithRequestID(ctx, "") != ctx {
		t.Fatal("empty id must leave context unchanged")
	}
	a, b := NextRequestID(), NextRequestID()
	if a == b || a == "" {
		t.Fatalf("request ids must be unique and non-empty: %q %q", a, b)
	}
	ctx = WithRequestID(ctx, a)
	if got := RequestIDFrom(ctx); got != a {
		t.Fatalf("request id = %q, want %q", got, a)
	}
}
