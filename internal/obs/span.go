package obs

import (
	"context"
	"sort"
	"sync"
)

// Stage names one segment of the query path. The constants below are
// the complete vocabulary; they appear as the `stage` label on
// abw_stage_seconds and as keys in a trace's stage list.
type Stage string

const (
	// StageRoute is shortest-path resolution in internal/routing.
	StageRoute Stage = "route"
	// StageAdmit is one flow's admission check inside a sequential
	// admission sweep.
	StageAdmit Stage = "admit"
	// StageEnumerate is independent-set / clique enumeration in
	// internal/indepset (the DFS itself, cache misses only).
	StageEnumerate Stage = "enumerate"
	// StageMemo is the set-family cache lookup in internal/memo,
	// whatever its outcome.
	StageMemo Stage = "memo"
	// StageDelta is a delta-enumeration chain in internal/memo: the
	// per-link warm-start walks that grow a smaller cached family into
	// the requested one instead of re-enumerating from scratch. Nested
	// inside the memo stage's lookup (whose outcome is then "delta").
	StageDelta Stage = "delta"
	// StageSession is a session-level availability/feasibility/idle
	// memo consultation in internal/core.
	StageSession Stage = "session"
	// StageLPSolve is a cold simplex solve in internal/lp.
	StageLPSolve Stage = "lp_solve"
	// StageLPWarm is a warm dual re-solve by lp.WarmSolver. A warm
	// attempt that falls back to a cold solve records under
	// StageLPSolve instead (the timer is re-staged before End).
	StageLPWarm Stage = "lp_warm"
	// StageSchedule is background/link-schedule construction.
	StageSchedule Stage = "schedule"
	// StageEstimate is per-estimator bandwidth estimation on the
	// resolved path.
	StageEstimate Stage = "estimate"
)

// StageRecord aggregates every timer that ended on one stage within a
// span. Wall time is summed, not unioned: concurrent workers in the
// same stage count their overlap twice, which is the useful number for
// "where did the CPU go".
type StageRecord struct {
	Stage   Stage            `json:"stage"`
	Calls   int64            `json:"calls"`
	WallNs  int64            `json:"wallNs"`
	Sets    int64            `json:"sets,omitempty"`
	Pivots  int64            `json:"pivots,omitempty"`
	Workers int              `json:"workers,omitempty"`
	Warm    int64            `json:"warm,omitempty"`
	Cache   map[string]int64 `json:"cache,omitempty"`
}

// Span accumulates the stage records of one query. Create with
// NewSpan, thread through context.Context with WithSpan/SpanFrom. A
// nil *Span is the uninstrumented fast path: StartStage returns an
// inert timer and no clock is read anywhere.
type Span struct {
	id    string
	start int64 // UnixNano at creation

	mu     sync.Mutex
	stages map[Stage]*StageRecord // guarded by mu
	order  []Stage                // first-End order, guarded by mu
}

// NewSpan returns an empty span with the given request id (may be "").
func NewSpan(id string) *Span {
	return &Span{id: id, start: now().UnixNano(), stages: make(map[Stage]*StageRecord)}
}

// ID returns the request id the span was created with ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

type spanKeyType struct{}

var spanKey spanKeyType

// WithSpan attaches a span to a context. Attaching nil returns the
// context unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFrom extracts the span from a context, or nil when absent. The
// nil result is directly usable: all Span methods accept nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StageTimer measures one call into a stage. Obtain with
// Span.StartStage, finish with End (defer-friendly; End on an inert or
// already-ended timer is a no-op). The zero StageTimer is inert, so
// the nil-span path costs a couple of nil checks and zero clock reads.
//
// A StageTimer is used by one goroutine; the Span it reports into is
// what's safe for concurrent use.
type StageTimer struct {
	span    *Span
	stage   Stage
	startNs int64
	sets    int64
	pivots  int64
	workers int
	warm    bool
	outcome string
	done    bool
}

// StartStage begins timing one call into stage. On a nil span it
// returns an inert timer without reading the clock.
func (s *Span) StartStage(stage Stage) *StageTimer {
	if s == nil {
		return nil
	}
	return &StageTimer{span: s, stage: stage, startNs: now().UnixNano()}
}

// SetStage re-labels the timer before End — used when a warm LP
// attempt falls back to a cold solve and must account under
// StageLPSolve.
func (t *StageTimer) SetStage(stage Stage) {
	if t == nil {
		return
	}
	t.stage = stage
}

// AddSets notes n enumerated (or cache-served) independent sets.
func (t *StageTimer) AddSets(n int64) {
	if t == nil {
		return
	}
	t.sets += n
}

// AddPivots notes n simplex pivots.
func (t *StageTimer) AddPivots(n int64) {
	if t == nil {
		return
	}
	t.pivots += n
}

// SetWorkers notes the worker count the stage ran with.
func (t *StageTimer) SetWorkers(n int) {
	if t == nil {
		return
	}
	t.workers = n
}

// SetWarm marks the call as a successful warm re-solve.
func (t *StageTimer) SetWarm(warm bool) {
	if t == nil {
		return
	}
	t.warm = warm
}

// SetOutcome tags the call with a cache outcome (hit, miss, diskHit,
// bypass, merge) counted per stage in the trace.
func (t *StageTimer) SetOutcome(outcome string) {
	if t == nil {
		return
	}
	t.outcome = outcome
}

// End stops the timer and folds it into the span. Safe to defer;
// second and later calls are no-ops.
func (t *StageTimer) End() {
	if t == nil || t.done || t.span == nil {
		return
	}
	t.done = true
	wall := now().UnixNano() - t.startNs
	s := t.span
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.stages[t.stage]
	if rec == nil {
		rec = &StageRecord{Stage: t.stage}
		s.stages[t.stage] = rec
		s.order = append(s.order, t.stage)
	}
	rec.Calls++
	rec.WallNs += wall
	rec.Sets += t.sets
	rec.Pivots += t.pivots
	if t.workers > rec.Workers {
		rec.Workers = t.workers
	}
	if t.warm {
		rec.Warm++
	}
	if t.outcome != "" {
		if rec.Cache == nil {
			rec.Cache = make(map[string]int64)
		}
		rec.Cache[t.outcome]++
	}
}

// TraceData is the JSON "trace" block of a query response: total wall
// time plus one record per stage in first-completion order.
type TraceData struct {
	RequestID string        `json:"requestId,omitempty"`
	TotalNs   int64         `json:"totalNs"`
	Stages    []StageRecord `json:"stages"`
}

// Trace snapshots the span. Total wall time is measured at the call,
// so take it once, when the query is done. Returns nil on a nil span.
func (s *Span) Trace() *TraceData {
	if s == nil {
		return nil
	}
	td := &TraceData{RequestID: s.id, TotalNs: now().UnixNano() - s.start}
	s.mu.Lock()
	defer s.mu.Unlock()
	td.Stages = make([]StageRecord, 0, len(s.order))
	for _, st := range s.order {
		rec := *s.stages[st]
		if rec.Cache != nil {
			// Copy so the snapshot can't race later End calls; sorted
			// iteration isn't needed for a map copy, but callers
			// serialize via encoding/json, which sorts keys.
			c := make(map[string]int64, len(rec.Cache))
			for k, v := range rec.Cache {
				c[k] = v
			}
			rec.Cache = c
		}
		td.Stages = append(td.Stages, rec)
	}
	return td
}

// StageNames returns the stages recorded so far, sorted — test helper
// and slow-query-log summary.
func (s *Span) StageNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.stages))
	for st := range s.stages {
		names = append(names, string(st))
	}
	sort.Strings(names)
	return names
}
