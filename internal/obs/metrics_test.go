package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("abw_test_total", "test counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("abw_test_gauge", "test gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Same (name, labels) must return the same instrument.
	if r.Counter("abw_test_total", "test counter") != c {
		t.Fatal("second Counter lookup returned a different instrument")
	}
	if r.Counter("abw_test_total", "test counter", L{"k", "v"}) == c {
		t.Fatal("labeled lookup must be a distinct series")
	}
}

func TestLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("abw_labels_total", "h", L{"a", "1"}, L{"b", "2"})
	b := r.Counter("abw_labels_total", "h", L{"b", "2"}, L{"a", "1"})
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("abw_clash", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("abw_clash", "h")
}

func TestNilRegistryAndInstrumentsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x", "h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All methods must be safe on nil receivers.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil Snapshot must be nil")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("abw_lat_seconds", "h", []float64{0.01, 0.1, 1})
	for i := 0; i < 50; i++ {
		h.Observe(0.005) // le=0.01 bucket
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.05) // le=0.1 bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // +Inf bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	wantSum := 50*0.005 + 40*0.05 + 10*5.0
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
	// p50 falls in the first bucket (cumulative 50 >= rank 50).
	if q := h.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Fatalf("p50 = %g, want within (0, 0.01]", q)
	}
	// p90 lands exactly at the second bucket's cumulative edge.
	if q := h.Quantile(0.9); q <= 0.01 || q > 0.1 {
		t.Fatalf("p90 = %g, want within (0.01, 0.1]", q)
	}
	// p99 is in +Inf; clamps to the highest finite bound.
	if q := h.Quantile(0.99); q != 1 {
		t.Fatalf("p99 = %g, want clamp to 1", q)
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 100 {
		t.Fatal("NaN observation must be dropped")
	}
}

// TestHistogramConcurrentRecording drives one histogram from many
// goroutines; under -race this proves recording is data-race-free, and
// the final count/sum prove no observation was lost.
func TestHistogramConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("abw_conc_seconds", "h", DefaultLatencyBuckets)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g%4) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	wantSum := float64(perG) * 2 * (0.001 + 0.002 + 0.003)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("abw_b_total", "b help", L{"code", "200"}).Add(3)
	r.Counter("abw_b_total", "b help", L{"code", "404"}).Inc()
	r.Gauge("abw_a_gauge", "a help").Set(9)
	h := r.Histogram("abw_c_seconds", "c help", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP abw_a_gauge a help
# TYPE abw_a_gauge gauge
abw_a_gauge 9
# HELP abw_b_total b help
# TYPE abw_b_total counter
abw_b_total{code="200"} 3
abw_b_total{code="404"} 1
# HELP abw_c_seconds c help
# TYPE abw_c_seconds histogram
abw_c_seconds_bucket{le="0.5"} 1
abw_c_seconds_bucket{le="1"} 2
abw_c_seconds_bucket{le="+Inf"} 3
abw_c_seconds_sum 3
abw_c_seconds_count 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Deterministic: a second write must be byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Fatal("exposition is not deterministic across writes")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("abw_s_total", "h").Add(2)
	r.Gauge("abw_s_gauge", "h", L{"x", "y"}).Set(-4)
	h := r.Histogram("abw_s_seconds", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)

	s := r.Snapshot()
	if s.Counters["abw_s_total"] != 2 {
		t.Fatalf("snapshot counter = %d, want 2", s.Counters["abw_s_total"])
	}
	if s.Gauges[`abw_s_gauge{x="y"}`] != -4 {
		t.Fatalf("snapshot gauge = %d, want -4", s.Gauges[`abw_s_gauge{x="y"}`])
	}
	hs, ok := s.Histograms["abw_s_seconds"]
	if !ok || hs.Count != 2 || math.Abs(hs.Sum-2.0) > 1e-9 {
		t.Fatalf("snapshot histogram = %+v, want count 2 sum 2", hs)
	}
	if hs.P50 <= 0 || hs.P99 <= hs.P50 {
		t.Fatalf("quantiles not ordered: %+v", hs)
	}
}

func TestLabelEscaping(t *testing.T) {
	key := labelKey([]L{{"path", `a"b\c` + "\n"}})
	want := `{path="a\"b\\c\n"}`
	if key != want {
		t.Fatalf("labelKey = %s, want %s", key, want)
	}
}
