package trace

import (
	"math/rand"
	"testing"

	"abw/internal/geom"
	"abw/internal/graph"
	"abw/internal/radio"
	"abw/internal/topology"
)

func testNet(t *testing.T) *topology.Network {
	t.Helper()
	net, err := topology.Random(radio.NewProfile80211a(), geom.Rect{W: 400, H: 600}, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRandomRequests(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(2))
	reqs, err := RandomRequests(net, rng, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 8 {
		t.Fatalf("got %d requests, want 8", len(reqs))
	}
	seen := map[[2]topology.NodeID]bool{}
	for i, r := range reqs {
		if r.Src == r.Dst {
			t.Errorf("request %d has src == dst", i)
		}
		if r.Demand != 2 {
			t.Errorf("request %d demand = %g", i, r.Demand)
		}
		key := [2]topology.NodeID{r.Src, r.Dst}
		if seen[key] {
			t.Errorf("request %d duplicates pair %v", i, key)
		}
		seen[key] = true
		if _, _, err := graph.ShortestPath(net, r.Src, r.Dst, graph.HopWeight); err != nil {
			t.Errorf("request %d endpoints not routable: %v", i, err)
		}
	}
}

func TestRandomRequestsDeterministic(t *testing.T) {
	net := testNet(t)
	a, err := RandomRequests(net, rand.New(rand.NewSource(9)), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRequests(net, rand.New(rand.NewSource(9)), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
}

func TestRandomRequestsValidation(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomRequests(net, rng, 0, 2); err == nil {
		t.Error("n=0: expected error")
	}
	if _, err := RandomRequests(net, rng, 3, 0); err == nil {
		t.Error("zero demand: expected error")
	}
	single, err := topology.New(radio.NewProfile80211a(), []geom.Point{{X: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RandomRequests(single, rng, 1, 2); err == nil {
		t.Error("one-node network: expected error")
	}
	// Two disconnected nodes: no routable pair exists.
	split, err := topology.New(radio.NewProfile80211a(), []geom.Point{{X: 0}, {X: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RandomRequests(split, rng, 1, 2); err == nil {
		t.Error("disconnected network: expected error")
	}
}

func TestDemandSweep(t *testing.T) {
	net := testNet(t)
	reqs, err := RandomRequests(net, rand.New(rand.NewSource(3)), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sweep := DemandSweep(reqs, []float64{0.5, 1, 4})
	if len(sweep) != 3 {
		t.Fatalf("sweep length %d, want 3", len(sweep))
	}
	for i, d := range []float64{0.5, 1, 4} {
		for j, r := range sweep[i] {
			if r.Demand != d {
				t.Errorf("sweep[%d][%d] demand = %g, want %g", i, j, r.Demand, d)
			}
			if r.Src != reqs[j].Src || r.Dst != reqs[j].Dst {
				t.Errorf("sweep[%d][%d] endpoints changed", i, j)
			}
		}
	}
	// Originals untouched.
	for j, r := range reqs {
		if r.Demand != 2 {
			t.Errorf("original request %d mutated to %g", j, r.Demand)
		}
	}
}
