// Package trace generates the evaluation workloads: random
// source-destination flow requests over a topology (the paper's Sec. 5.2
// uses 8 random flows of 2 Mbps each) and demand sweeps for the
// estimator experiments.
package trace

import (
	"fmt"
	"math/rand"

	"abw/internal/graph"
	"abw/internal/routing"
	"abw/internal/topology"
)

// RandomRequests draws n flow requests with distinct, mutually routable
// endpoints: src != dst and a path exists. It errors when the topology
// cannot host n such pairs within a bounded number of draws.
func RandomRequests(net *topology.Network, rng *rand.Rand, n int, demand float64) ([]routing.Request, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: n must be positive, got %d", n)
	}
	if demand <= 0 {
		return nil, fmt.Errorf("trace: demand must be positive, got %g", demand)
	}
	numNodes := net.NumNodes()
	if numNodes < 2 {
		return nil, fmt.Errorf("trace: network has %d nodes, need at least 2", numNodes)
	}
	out := make([]routing.Request, 0, n)
	usedPair := make(map[[2]topology.NodeID]bool, n)
	maxTries := 200 * n
	for tries := 0; len(out) < n; tries++ {
		if tries >= maxTries {
			return nil, fmt.Errorf("trace: placed only %d of %d routable flow pairs after %d draws", len(out), n, maxTries)
		}
		src := topology.NodeID(rng.Intn(numNodes))
		dst := topology.NodeID(rng.Intn(numNodes))
		if src == dst || usedPair[[2]topology.NodeID{src, dst}] {
			continue
		}
		if _, _, err := graph.ShortestPath(net, src, dst, graph.HopWeight); err != nil {
			continue
		}
		usedPair[[2]topology.NodeID{src, dst}] = true
		out = append(out, routing.Request{Src: src, Dst: dst, Demand: demand})
	}
	return out, nil
}

// DemandSweep returns copies of the requests scaled to each demand in
// the sweep — the knob for pushing the Fig. 4 experiment from light to
// heavy background load.
func DemandSweep(reqs []routing.Request, demands []float64) [][]routing.Request {
	out := make([][]routing.Request, 0, len(demands))
	for _, d := range demands {
		scaled := make([]routing.Request, len(reqs))
		copy(scaled, reqs)
		for i := range scaled {
			scaled[i].Demand = d
		}
		out = append(out, scaled)
	}
	return out
}
