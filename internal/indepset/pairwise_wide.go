package indepset

import (
	"context"
	"math/bits"
	"sync"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// enumerateWide is the multi-word twin of enumeratePairwise, used when
// some link declares more than 64 positive rates and a single uint64
// can no longer hold a rate mask. Every mask becomes W consecutive
// uint64 words (W = ceil(maxRates/64), uniform across links so rows
// slice out of flat arenas), and every mask operation of the narrow
// walk maps to its W-word counterpart: same DFS order, same pruning,
// same leaf maximality decisions, hence the same family byte for byte.
//
// With workers > 1 the assignment lattice splits exactly like the
// narrow walk's (choiceTasks); the clear table is shared read-only.
func enumerateWide(ctx context.Context, m conflict.PairwiseModel, universe []topology.LinkID, rates [][]radio.Rate, budget *budget, workers int) ([]Set, error) {
	n := len(universe)
	maxRates, total := 0, 0
	rateOff := make([]int, n)
	for j := range rates {
		rateOff[j] = total
		total += len(rates[j])
		if len(rates[j]) > maxRates {
			maxRates = len(rates[j])
		}
	}
	W := (maxRates + 63) / 64
	// clear[((i*total)+rateOff[j]+rj)*W : +W] is the mask of link i's
	// rates clearing the couple (universe[j], rates[j][rj]); the
	// diagonal is all-ones, as in the narrow table.
	e := &wideEnum{
		ctx:      ctx,
		universe: universe,
		rates:    rates,
		clear:    make([]uint64, n*total*W),
		rateOff:  rateOff,
		total:    total,
		n:        n,
		w:        W,
		budget:   budget,
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for rj := range rates[j] {
				masks := e.clearAt(i, j, rj)
				if i == j {
					for k := range masks {
						masks[k] = ^uint64(0)
					}
					continue
				}
				other := conflict.Couple{Link: universe[j], Rate: rates[j][rj]}
				for ri, r := range rates[i] {
					if m.RateClears(universe[i], r, other) {
						masks[ri>>6] |= 1 << uint(ri&63)
					}
				}
			}
		}
	}
	if workers <= 1 {
		w := newWideWorker(e)
		err := w.rec(0)
		w.release()
		return w.out, err
	}
	tasks := choiceTasks(n, workers, func(i int) int { return len(rates[i]) })
	if workers > len(tasks) {
		workers = len(tasks)
	}
	return parallelRun(workers, len(tasks), func() (func(int) error, func() []Set) {
		w := newWideWorker(e)
		return func(t int) error { return w.runTask(tasks[t]) },
			func() []Set { w.release(); return w.out }
	})
}

// wideEnum is the read-only state shared by every worker of one
// multi-word pairwise enumeration.
type wideEnum struct {
	//lint:ignore abw/ctxflow read-only per-enumeration worker state; lives strictly inside the Enumerate call that received ctx
	ctx      context.Context
	universe []topology.LinkID
	rates    [][]radio.Rate
	clear    []uint64 // flat clear table, W words per (i, j, rj)
	rateOff  []int    // prefix sums of len(rates[j])
	total    int      // sum of len(rates[j])
	n, w     int
	budget   *budget
}

func (e *wideEnum) clearAt(i, j, rj int) []uint64 {
	off := (i*e.total + e.rateOff[j] + rj) * e.w
	return e.clear[off : off+e.w : off+e.w]
}

type wideMember struct {
	pos int
	ri  int
	ge  []uint64 // mask of declared rates at least the chosen one (geArena slot)
}

// wideWorker owns the mutable DFS state of one worker, all flat arenas
// of W-word rows: avail (n rows), its per-depth snapshots, the ge mask
// per stacked member, and one temporary row for leaf maximality.
type wideWorker struct {
	e        *wideEnum
	chk      *cancel.Checker // nil for uncancellable contexts (zero cost)
	scratch  *wideScratch
	avail    []uint64 // n*W: rates of each link clearing every member
	saved    []uint64 // n*n*W: avail snapshot per depth
	geArena  []uint64 // n*W: ge mask per depth
	tmp      []uint64 // W
	members  []wideMember
	isMember []bool
	out      []Set
}

// wideScratch holds one worker's reusable buffers, pooled like
// pairScratch; grow re-slices (or reallocates) to the current n and W.
type wideScratch struct {
	avail    []uint64
	saved    []uint64
	geArena  []uint64
	tmp      []uint64
	members  []wideMember
	isMember []bool
}

var wideScratchPool = sync.Pool{New: func() any { return new(wideScratch) }}

func (s *wideScratch) grow(n, w int) {
	need := func(b []uint64, sz int) []uint64 {
		if cap(b) < sz {
			return make([]uint64, sz)
		}
		return b[:sz]
	}
	s.avail = need(s.avail, n*w)
	s.saved = need(s.saved, n*n*w)
	s.geArena = need(s.geArena, n*w)
	s.tmp = need(s.tmp, w)
	if cap(s.members) < n {
		s.members = make([]wideMember, 0, n)
	}
	s.members = s.members[:0]
	if cap(s.isMember) < n {
		s.isMember = make([]bool, n)
	}
	s.isMember = s.isMember[:n]
	for i := range s.isMember {
		s.isMember[i] = false
	}
}

func newWideWorker(e *wideEnum) *wideWorker {
	s := wideScratchPool.Get().(*wideScratch)
	s.grow(e.n, e.w)
	w := &wideWorker{
		e:        e,
		chk:      cancel.NewChecker(e.ctx, 0),
		scratch:  s,
		avail:    s.avail,
		saved:    s.saved,
		geArena:  s.geArena,
		tmp:      s.tmp,
		members:  s.members,
		isMember: s.isMember,
	}
	for i := 0; i < e.n; i++ {
		row := w.availRow(i)
		if len(e.rates[i]) == 0 {
			for k := range row {
				row[k] = 0
			}
			continue
		}
		setGE(row, len(e.rates[i])-1)
	}
	return w
}

// release returns the worker's scratch to the pool. The worker must not
// be used afterwards; out stays valid (it never aliases the scratch).
func (w *wideWorker) release() {
	if w.scratch == nil {
		return
	}
	w.scratch.members = w.members[:0]
	wideScratchPool.Put(w.scratch)
	w.scratch = nil
	w.avail, w.saved, w.geArena, w.tmp = nil, nil, nil, nil
	w.members, w.isMember = nil, nil
}

func (w *wideWorker) availRow(i int) []uint64 {
	return w.avail[i*w.e.w : (i+1)*w.e.w : (i+1)*w.e.w]
}

// anyAnd2 reports whether a&b has any bit set.
func anyAnd2(a, b []uint64) bool {
	for k := range a {
		if a[k]&b[k] != 0 {
			return true
		}
	}
	return false
}

// anyAnd3 reports whether a&b&c has any bit set.
func anyAnd3(a, b, c []uint64) bool {
	for k := range a {
		if a[k]&b[k]&c[k] != 0 {
			return true
		}
	}
	return false
}

func andInto(dst, src []uint64) {
	for k := range dst {
		dst[k] &= src[k]
	}
}

// setGE writes the mask with bits 0..ri set (the W-word analogue of
// (1<<(ri+1))-1, the "at least this rate" mask for descending rates).
func setGE(dst []uint64, ri int) {
	word := ri >> 6
	for k := 0; k < word; k++ {
		dst[k] = ^uint64(0)
	}
	// 2<<63 wraps to 0 in uint64, so bit 63 still yields all-ones.
	dst[word] = (uint64(2) << uint(ri&63)) - 1
	for k := word + 1; k < len(dst); k++ {
		dst[k] = 0
	}
}

// firstBit returns the index of the lowest set bit, or a sentinel past
// any declared rate index when the mask is empty — mirroring the narrow
// walk's bits.TrailingZeros64 returning 64 on zero.
func firstBit(a []uint64) int {
	for k := range a {
		if a[k] != 0 {
			return k<<6 + bits.TrailingZeros64(a[k])
		}
	}
	return len(a) << 6
}

// push includes (universe[idx], rates[idx][ri]) when that keeps the
// partial set feasible, exactly like the narrow worker's push.
func (w *wideWorker) push(idx, ri int) bool {
	e := w.e
	d := len(w.members)
	ge := w.geArena[d*e.w : (d+1)*e.w : (d+1)*e.w]
	setGE(ge, ri)
	if !anyAnd2(w.availRow(idx), ge) {
		return false
	}
	for ii := range w.members {
		a := &w.members[ii]
		if !anyAnd3(w.availRow(a.pos), e.clearAt(a.pos, idx, ri), a.ge) {
			return false
		}
	}
	copy(w.saved[d*e.n*e.w:(d+1)*e.n*e.w], w.avail)
	for j := 0; j < e.n; j++ {
		andInto(w.availRow(j), e.clearAt(j, idx, ri))
	}
	w.members = append(w.members, wideMember{pos: idx, ri: ri, ge: ge})
	w.isMember[idx] = true
	return true
}

func (w *wideWorker) pop() {
	d := len(w.members) - 1
	w.isMember[w.members[d].pos] = false
	w.members = w.members[:d]
	copy(w.avail, w.saved[d*w.e.n*w.e.w:(d+1)*w.e.n*w.e.w])
}

// maximal reports whether the current full assignment is maximal; the
// two clauses are word-for-word the narrow worker's with W-word masks.
func (w *wideWorker) maximal() bool {
	e := w.e
	// Rate-maximality: some member could be raised to a higher declared
	// rate with every other member keeping its rate.
	for ii := range w.members {
		a := &w.members[ii]
		for rj := firstBit(w.availRow(a.pos)); rj < a.ri; rj++ {
			ok := true
			for jj := range w.members {
				if jj == ii {
					continue
				}
				b := &w.members[jj]
				// b's rates clearing every member except a, plus a at
				// its raised rate.
				copy(w.tmp, e.clearAt(b.pos, a.pos, rj))
				for kk := range w.members {
					if kk == ii || kk == jj {
						continue
					}
					c := &w.members[kk]
					andInto(w.tmp, e.clearAt(b.pos, c.pos, c.ri))
				}
				if !anyAnd2(w.tmp, b.ge) {
					ok = false
					break
				}
			}
			if ok {
				return false
			}
		}
	}
	// Link-maximality: some outside link could join at a declared rate
	// with every member keeping its rate.
	for j := 0; j < e.n; j++ {
		if w.isMember[j] {
			continue
		}
		for rj := firstBit(w.availRow(j)); rj < len(e.rates[j]); rj++ {
			ok := true
			for ii := range w.members {
				a := &w.members[ii]
				if !anyAnd3(w.availRow(a.pos), e.clearAt(a.pos, j, rj), a.ge) {
					ok = false
					break
				}
			}
			if ok {
				return false
			}
		}
	}
	return true
}

// visitLeaf charges the budget for the current full assignment and
// records it when maximal.
func (w *wideWorker) visitLeaf() error {
	if len(w.members) == 0 {
		return nil
	}
	if !w.e.budget.take() {
		return ErrLimit
	}
	if w.maximal() {
		couples := make([]conflict.Couple, len(w.members))
		for d := range w.members {
			a := &w.members[d]
			couples[d] = conflict.Couple{Link: w.e.universe[a.pos], Rate: w.e.rates[a.pos][a.ri]}
		}
		w.out = append(w.out, Set{Couples: couples}) // idx order = link order
	}
	return nil
}

func (w *wideWorker) rec(idx int) error {
	if err := w.chk.Check(); err != nil {
		return err
	}
	if idx == w.e.n {
		return w.visitLeaf()
	}
	// Exclude universe[idx].
	if err := w.rec(idx + 1); err != nil {
		return err
	}
	// Include at each rate that keeps the partial set feasible.
	for ri := range w.e.rates[idx] {
		if !w.push(idx, ri) {
			continue
		}
		err := w.rec(idx + 1)
		w.pop()
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *wideWorker) runTask(t choiceTask) error {
	pushed := 0
	feasible := true
	for idx, c := range t.choices {
		if c < 0 {
			continue
		}
		if !w.push(idx, c) {
			feasible = false
			break
		}
		pushed++
	}
	var err error
	if feasible {
		err = w.rec(len(t.choices))
	}
	for ; pushed > 0; pushed-- {
		w.pop()
	}
	return err
}
