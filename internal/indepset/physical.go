package indepset

import (
	"context"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// enumeratePhysical walks link subsets; under the physical model the
// maximum supported rate vector is a function of membership, and
// interference only grows with additions, so infeasible subsets prune
// their supersets. Rate-maximality is automatic (every member already
// carries its maximum supported rate), and link-maximality is decided
// at each node from the tracker's running interference sums: an outside
// link joins exactly when it sustains some positive declared rate and
// lowers no member's rate.
//
// With workers > 1 the subset lattice is split at its first two
// branching levels (subtreeTasks) and each worker walks its subtrees
// with a private SetTracker; see parallel.go for the equivalence
// argument.
func enumeratePhysical(ctx context.Context, m *conflict.Physical, universe []topology.LinkID, budget *budget, workers int) ([]Set, error) {
	n := len(universe)
	if n == 0 {
		return nil, nil
	}
	e := &physicalEnum{
		m:        m,
		ctx:      ctx,
		universe: universe,
		minRate:  make([]radio.Rate, n),
		n:        n,
		budget:   budget,
	}
	// minRate[i] is the lowest positive declared rate of universe[i]: the
	// weakest couple it could join a set with. Links with no positive
	// declared rate can never join (nor appear).
	for i, l := range universe {
		e.minRate[i] = m.MinPositiveRate(l)
	}
	if workers <= 1 {
		w := newPhysicalWorker(e)
		err := w.rec(0)
		return w.out, err
	}
	tasks := subtreeTasks(n)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	return parallelRun(workers, len(tasks), func() (func(int) error, func() []Set) {
		w := newPhysicalWorker(e)
		return func(t int) error { return w.runTask(tasks[t]) },
			func() []Set { return w.out }
	})
}

// physicalEnum is the read-only state shared by every worker of one
// physical enumeration.
type physicalEnum struct {
	m *conflict.Physical
	//lint:ignore abw/ctxflow read-only per-enumeration worker state; lives strictly inside the Enumerate call that received ctx
	ctx      context.Context
	universe []topology.LinkID
	minRate  []radio.Rate
	n        int
	budget   *budget
}

// physicalWorker owns the mutable DFS state of one worker: an
// incremental SetTracker plus the member stack and output family.
type physicalWorker struct {
	e        *physicalEnum
	tr       *conflict.SetTracker
	chk      *cancel.Checker // nil for uncancellable contexts (zero cost)
	members  []int
	isMember []bool
	rateBuf  []radio.Rate
	arena    []conflict.Couple // chunked backing for materialized sets
	out      []Set
}

func newPhysicalWorker(e *physicalEnum) *physicalWorker {
	return &physicalWorker{
		e:        e,
		tr:       e.m.NewSetTracker(e.universe),
		chk:      cancel.NewChecker(e.ctx, 0),
		members:  make([]int, 0, e.n),
		isMember: make([]bool, e.n),
		rateBuf:  make([]radio.Rate, e.n),
	}
}

func (w *physicalWorker) push(i int) {
	w.tr.Push(i)
	w.members = append(w.members, i)
	w.isMember[i] = true
}

func (w *physicalWorker) pop() {
	i := w.members[len(w.members)-1]
	w.isMember[i] = false
	w.members = w.members[:len(w.members)-1]
	w.tr.Pop()
}

// visit charges the budget for the current member set and records it
// when maximal. ok=false prunes the subtree: some member is silenced,
// and interference only grows with further members.
func (w *physicalWorker) visit() (ok bool, err error) {
	e := w.e
	// Feasibility: every member must keep a positive max rate.
	for d, mi := range w.members {
		r := w.tr.MaxRate(mi)
		//lint:ignore abw/floateq Rate 0 is the exact silenced-link sentinel MaxRate returns, never a computed float
		if r == 0 {
			return false, nil
		}
		w.rateBuf[d] = r
	}
	if !e.budget.take() {
		return false, ErrLimit
	}
	if physicalMaximal(w.tr, w.members, w.isMember, w.rateBuf, e.minRate, e.n) {
		if cap(w.arena)-len(w.arena) < len(w.members) {
			w.arena = make([]conflict.Couple, 0, 16*e.n)
		}
		base := len(w.arena)
		for d, mi := range w.members {
			w.arena = append(w.arena, conflict.Couple{Link: e.universe[mi], Rate: w.rateBuf[d]})
		}
		couples := w.arena[base:len(w.arena):len(w.arena)]
		w.out = append(w.out, Set{Couples: couples}) // members ascend, so couples are sorted
	}
	return true, nil
}

func (w *physicalWorker) rec(start int) error {
	if err := w.chk.Check(); err != nil {
		return err
	}
	if len(w.members) > 0 {
		ok, err := w.visit()
		if !ok || err != nil {
			return err
		}
	}
	for i := start; i < w.e.n; i++ {
		w.push(i)
		err := w.rec(i + 1)
		w.pop()
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *physicalWorker) runTask(t subtreeTask) error {
	if err := w.chk.Check(); err != nil {
		return err
	}
	for k := 0; k < t.plen; k++ {
		w.push(t.prefix[k])
	}
	var err error
	if t.leafOnly {
		_, err = w.visit()
	} else {
		err = w.rec(t.start)
	}
	for k := 0; k < t.plen; k++ {
		w.pop()
	}
	return err
}

// physicalMaximal reports link-maximality of the tracker's current
// member set (rates in rateBuf): no outside link may join at any
// positive declared rate while every member keeps its rate. Under the
// physical model a joining link can only lower member rates, so
// "keeps" means the recomputed rate with the joiner's interference
// added stays at least the current one.
func physicalMaximal(tr *conflict.SetTracker, members []int, isMember []bool, rateBuf, minRate []radio.Rate, n int) bool {
	for j := 0; j < n; j++ {
		//lint:ignore abw/floateq Rate 0 is the exact no-declared-rate sentinel, never a computed float
		if isMember[j] || minRate[j] == 0 {
			continue
		}
		if tr.MaxRate(j) < minRate[j] {
			continue // blocked or silenced: cannot join at any declared rate
		}
		joins := true
		for d, mi := range members {
			if tr.MaxRateJoined(mi, j) < rateBuf[d] {
				joins = false
				break
			}
		}
		if joins {
			return false
		}
	}
	return true
}
