package indepset

import (
	"context"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/topology"
)

// enumerateFallback is the brute-force walk for models that are neither
// physical nor pairwise: it materializes every feasible couple
// assignment (feasibility must be downward monotone in set inclusion)
// and post-filters with the reference IsMaximal predicate.
//
// With workers > 1 the assignment lattice splits like the pairwise
// walk's (choiceTasks); the model's MaxRate/Rates must then be safe for
// concurrent read-only use (every model in internal/conflict is).
func enumerateFallback(ctx context.Context, m conflict.Model, universe []topology.LinkID, budget *budget, workers int) ([]Set, error) {
	e := &fallbackEnum{m: m, ctx: ctx, universe: universe, budget: budget}
	if workers <= 1 {
		w := &fallbackWorker{e: e, chk: cancel.NewChecker(ctx, 0)}
		err := w.rec(0)
		return w.maximalSets(), err
	}
	tasks := choiceTasks(len(universe), workers, func(i int) int { return len(m.Rates(universe[i])) })
	if workers > len(tasks) {
		workers = len(tasks)
	}
	return parallelRun(workers, len(tasks), func() (func(int) error, func() []Set) {
		w := &fallbackWorker{e: e, chk: cancel.NewChecker(ctx, 0)}
		return func(t int) error { return w.runTask(tasks[t]) },
			w.maximalSets
	})
}

// fallbackEnum is the read-only state shared by every worker of one
// brute-force enumeration.
type fallbackEnum struct {
	m conflict.Model
	//lint:ignore abw/ctxflow read-only per-enumeration worker state; lives strictly inside the Enumerate call that received ctx
	ctx      context.Context
	universe []topology.LinkID
	budget   *budget
}

// fallbackWorker owns one worker's couple stack and materialized
// feasible assignments.
type fallbackWorker struct {
	e   *fallbackEnum
	chk *cancel.Checker // nil for uncancellable contexts (zero cost)
	cur []conflict.Couple
	all []Set
}

func (w *fallbackWorker) rec(idx int) error {
	e := w.e
	if err := w.chk.Check(); err != nil {
		return err
	}
	if idx == len(e.universe) {
		if len(w.cur) > 0 {
			if !e.budget.take() {
				return ErrLimit
			}
			w.all = append(w.all, NewSet(w.cur...))
		}
		return nil
	}
	// Exclude universe[idx].
	if err := w.rec(idx + 1); err != nil {
		return err
	}
	// Include at each rate that keeps the partial set feasible.
	for _, r := range e.m.Rates(e.universe[idx]) {
		w.cur = append(w.cur, conflict.Couple{Link: e.universe[idx], Rate: r})
		if conflict.Feasible(e.m, w.cur) {
			if err := w.rec(idx + 1); err != nil {
				w.cur = w.cur[:len(w.cur)-1]
				return err
			}
		}
		w.cur = w.cur[:len(w.cur)-1]
	}
	return nil
}

func (w *fallbackWorker) runTask(t choiceTask) error {
	pushed := 0
	feasible := true
	for idx, c := range t.choices {
		if c < 0 {
			continue
		}
		w.cur = append(w.cur, conflict.Couple{Link: w.e.universe[idx], Rate: w.e.m.Rates(w.e.universe[idx])[c]})
		pushed++
		if !conflict.Feasible(w.e.m, w.cur) {
			feasible = false
			break
		}
	}
	var err error
	if feasible {
		err = w.rec(len(t.choices))
	}
	w.cur = w.cur[:len(w.cur)-pushed]
	return err
}

// maximalSets post-filters the worker's materialized assignments with
// the reference maximality predicate — also after a truncated walk,
// whose partial family stays sound.
func (w *fallbackWorker) maximalSets() []Set {
	out := make([]Set, 0, len(w.all))
	for _, s := range w.all {
		if s.Len() == 0 {
			continue
		}
		if IsMaximal(w.e.m, s, w.e.universe) {
			out = append(out, s)
		}
	}
	return out
}
