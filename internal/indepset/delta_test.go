package indepset

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/topology"
)

// assertDeltaGrowth grows the universe one link at a time and checks, at
// every step and worker count, that EnumerateDelta from the previous
// step's base returns the byte-identical family and exploration count of
// a fresh full walk over the grown universe. The delta result then
// becomes the next step's base, exercising the chained form the memo
// cache uses.
func assertDeltaGrowth(t *testing.T, m conflict.Model, links []topology.LinkID, label string) {
	t.Helper()
	if len(links) < 2 {
		return
	}
	universe := dedupSorted(links)
	base := DeltaBase{Universe: universe[:1:1]}
	sets, truncated, explored, err := EnumeratePartialCounted(m, base.Universe, Options{})
	if err != nil || truncated {
		t.Fatalf("%s: seed enumeration: truncated=%v err=%v", label, truncated, err)
	}
	base.Sets, base.Explored = sets, explored
	for step := 1; step < len(universe); step++ {
		link := universe[step]
		grown := universe[: step+1 : step+1]
		got, gotExplored, err := EnumerateDelta(context.Background(), m, base, link, Options{})
		if err != nil {
			t.Fatalf("%s: step %d: EnumerateDelta(+%d): %v", label, step, link, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			want, truncated, wantExplored, err := EnumeratePartialCounted(m, grown, Options{Workers: workers})
			if err != nil || truncated {
				t.Fatalf("%s: step %d workers %d: fresh walk: truncated=%v err=%v", label, step, workers, truncated, err)
			}
			if !reflect.DeepEqual(keys(got), keys(want)) {
				t.Fatalf("%s: step %d workers %d: delta family differs:\n got  %v\n want %v",
					label, step, workers, keys(got), keys(want))
			}
			if gotExplored != wantExplored {
				t.Fatalf("%s: step %d workers %d: delta explored %d, fresh %d",
					label, step, workers, gotExplored, wantExplored)
			}
		}
		base = DeltaBase{Universe: grown, Sets: got, Explored: gotExplored}
	}
}

func TestDeltaPhysicalRandomTopologies(t *testing.T) {
	prof := radio.NewProfile80211a()
	for seed := int64(1); seed <= 10; seed++ {
		net, err := topology.Random(prof, geom.Rect{W: 350, H: 350}, 6, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertDeltaGrowth(t, conflict.NewPhysical(net), cappedLinks(net, 8), "physical random")
	}
}

func TestDeltaProtocolRandomTopologies(t *testing.T) {
	prof := radio.NewProfile80211a()
	for seed := int64(1); seed <= 10; seed++ {
		net, err := topology.Random(prof, geom.Rect{W: 350, H: 350}, 6, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertDeltaGrowth(t, conflict.NewProtocol(net), cappedLinks(net, 8), "protocol random")
	}
}

func TestDeltaChains(t *testing.T) {
	prof := radio.NewProfile80211a()
	for _, spacing := range []float64{60, 100, 150} {
		net, path, err := topology.Chain(prof, 7, spacing)
		if err != nil {
			t.Fatalf("chain(7, %g): %v", spacing, err)
		}
		links := []topology.LinkID(path)
		assertDeltaGrowth(t, conflict.NewPhysical(net), links, "physical chain")
		assertDeltaGrowth(t, conflict.NewProtocol(net), links, "protocol chain")
	}
}

func TestDeltaRandomTables(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rates := []radio.Rate{54, 36, 18}
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4)
		tb := conflict.NewTable()
		var links []topology.LinkID
		for i := topology.LinkID(0); int(i) < n; i++ {
			tb.SetRates(i, rates[:1+rng.Intn(len(rates))]...)
			links = append(links, i)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for _, ri := range tb.Rates(topology.LinkID(i)) {
					for _, rj := range tb.Rates(topology.LinkID(j)) {
						if rng.Float64() < 0.45 {
							if err := tb.AddConflict(topology.LinkID(i), ri, topology.LinkID(j), rj); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
			}
		}
		assertDeltaGrowth(t, tb, links, "random table")
	}
}

// TestDeltaLimitVerdict pins the accounting contract: with a limit
// between the base count and the grown count, the delta walk trips
// ErrLimit exactly like a fresh walk over the grown universe would; at
// the grown count, both succeed.
func TestDeltaLimitVerdict(t *testing.T) {
	prof := radio.NewProfile80211a()
	net, path, err := topology.Chain(prof, 7, 80)
	if err != nil {
		t.Fatal(err)
	}
	links := []topology.LinkID(path)
	m := conflict.NewPhysical(net)
	universe := dedupSorted(links)
	baseU := universe[:len(universe)-1]
	link := universe[len(universe)-1]

	_, _, baseExplored, err := EnumeratePartialCounted(m, baseU, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, grownExplored, err := EnumeratePartialCounted(m, universe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if grownExplored <= baseExplored {
		t.Fatalf("degenerate topology: grown %d <= base %d", grownExplored, baseExplored)
	}

	for limit := baseExplored; limit < grownExplored; limit += (grownExplored - baseExplored + 3) / 4 {
		opts := Options{Limit: int(limit)}
		baseSets, truncated, baseCount, err := EnumeratePartialCounted(m, baseU, opts)
		if err != nil || truncated {
			t.Fatalf("limit %d: base walk truncated=%v err=%v", limit, truncated, err)
		}
		base := DeltaBase{Universe: baseU, Sets: baseSets, Explored: baseCount}
		_, _, err = EnumerateDelta(context.Background(), m, base, link, opts)
		if !errors.Is(err, ErrLimit) {
			t.Fatalf("limit %d (< grown %d): delta err = %v, want ErrLimit", limit, grownExplored, err)
		}
	}

	opts := Options{Limit: int(grownExplored)}
	baseSets, _, baseCount, err := EnumeratePartialCounted(m, baseU, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := DeltaBase{Universe: baseU, Sets: baseSets, Explored: baseCount}
	got, gotExplored, err := EnumerateDelta(context.Background(), m, base, link, opts)
	if err != nil {
		t.Fatalf("limit == grown count %d: delta err = %v", grownExplored, err)
	}
	want, err := Enumerate(m, universe, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys(got), keys(want)) || gotExplored != grownExplored {
		t.Fatalf("exact-limit delta diverged: explored %d vs %d", gotExplored, grownExplored)
	}
}

func TestDeltaUnsupportedModel(t *testing.T) {
	prof := radio.NewProfile80211a()
	net, path, err := topology.Chain(prof, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	links := []topology.LinkID(path)
	m := opaque{m: conflict.NewPhysical(net)}
	base := DeltaBase{Universe: links[:len(links)-1]}
	base.Sets, _, base.Explored, err = EnumeratePartialCounted(m, base.Universe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EnumerateDelta(context.Background(), m, base, links[len(links)-1], Options{}); !errors.Is(err, ErrDeltaUnsupported) {
		t.Fatalf("opaque model: err = %v, want ErrDeltaUnsupported", err)
	}
}

func TestDeltaUnsupportedWideRates(t *testing.T) {
	tb := conflict.NewTable()
	var wide []radio.Rate
	for r := 70; r >= 1; r-- {
		wide = append(wide, radio.Rate(r))
	}
	tb.SetRates(0, wide...)
	tb.SetRates(1, 54, 36)
	base := DeltaBase{Universe: []topology.LinkID{0}}
	var err error
	base.Sets, _, base.Explored, err = EnumeratePartialCounted(tb, base.Universe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EnumerateDelta(context.Background(), tb, base, 1, Options{}); !errors.Is(err, ErrDeltaUnsupported) {
		t.Fatalf(">64-rate universe: err = %v, want ErrDeltaUnsupported", err)
	}
}

func TestDeltaLinkAlreadyPresent(t *testing.T) {
	prof := radio.NewProfile80211a()
	net, path, err := topology.Chain(prof, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	links := []topology.LinkID(path)
	m := conflict.NewPhysical(net)
	base := DeltaBase{Universe: dedupSorted(links)}
	base.Sets, _, base.Explored, err = EnumeratePartialCounted(m, base.Universe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, explored, err := EnumerateDelta(context.Background(), m, base, links[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys(got), keys(base.Sets)) || explored != base.Explored {
		t.Fatalf("re-adding a member changed the family or count")
	}
}

// TestDeltaCancellation pins the contract shared with Enumerate: a
// cancelled delta walk returns ErrCanceled and no family.
func TestDeltaCancellation(t *testing.T) {
	prof := radio.NewProfile80211a()
	net, path, err := topology.Chain(prof, 7, 80)
	if err != nil {
		t.Fatal(err)
	}
	links := []topology.LinkID(path)
	m := conflict.NewPhysical(net)
	universe := dedupSorted(links)
	base := DeltaBase{Universe: universe[:len(universe)-1]}
	base.Sets, _, base.Explored, err = EnumeratePartialCounted(m, base.Universe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sets, _, err := EnumerateDelta(ctx, m, base, universe[len(universe)-1], Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancelled delta: err = %v, want ErrCanceled", err)
	}
	if sets != nil {
		t.Fatalf("cancelled delta returned a family (%d sets)", len(sets))
	}
}
