package indepset

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/topology"
)

// assertParallelMatchesSequential pins the parallel walk's headline
// guarantee: for every worker count the enumerated family is
// byte-identical (same Set.Key sequence) to the sequential walk's.
// Run under -race this also exercises the shared-state partitioning at
// >= 4 workers across every model kind.
func assertParallelMatchesSequential(t *testing.T, m conflict.Model, links []topology.LinkID, label string) {
	t.Helper()
	seq, err := Enumerate(m, links, Options{Workers: 1})
	if err != nil {
		t.Fatalf("%s: sequential: %v", label, err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Enumerate(m, links, Options{Workers: workers})
		if err != nil {
			t.Fatalf("%s: %d workers: %v", label, workers, err)
		}
		if !reflect.DeepEqual(keys(par), keys(seq)) {
			t.Fatalf("%s: %d workers diverge:\n par %v\n seq %v",
				label, workers, keys(par), keys(seq))
		}
		// Keys pin membership and rates; double-check the couples too.
		for i := range par {
			if !reflect.DeepEqual(par[i].Couples, seq[i].Couples) {
				t.Fatalf("%s: %d workers: set %d couples %v != %v",
					label, workers, i, par[i].Couples, seq[i].Couples)
			}
		}
	}
}

func TestParallelMatchesSequentialPhysical(t *testing.T) {
	prof := radio.NewProfile80211a()
	for seed := int64(1); seed <= 8; seed++ {
		net, err := topology.Random(prof, geom.Rect{W: 400, H: 400}, 8, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		links := cappedLinks(net, 14)
		if len(links) == 0 {
			continue
		}
		assertParallelMatchesSequential(t, conflict.NewPhysical(net), links, "physical random")
	}
	for _, hops := range []int{4, 8} {
		net, path, err := topology.Chain(prof, hops, 100)
		if err != nil {
			t.Fatal(err)
		}
		assertParallelMatchesSequential(t, conflict.NewPhysical(net), path, "physical chain")
	}
	// A mesh big enough that the automatic mode (Workers: 0) also takes
	// the parallel path on multi-core machines.
	net, err := topology.New(prof, geom.GridPoints(9, 3, 80))
	if err != nil {
		t.Fatal(err)
	}
	var links []topology.LinkID
	for _, l := range net.Links() {
		links = append(links, l.ID)
	}
	m := conflict.NewPhysical(net)
	assertParallelMatchesSequential(t, m, links, "physical mesh")
	auto, err := Enumerate(m, links, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Enumerate(m, links, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys(auto), keys(seq)) {
		t.Fatalf("automatic worker count diverges from sequential on the mesh")
	}
}

func TestParallelMatchesSequentialProtocol(t *testing.T) {
	prof := radio.NewProfile80211a()
	for seed := int64(1); seed <= 8; seed++ {
		net, err := topology.Random(prof, geom.Rect{W: 400, H: 400}, 8, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		links := cappedLinks(net, 12)
		if len(links) == 0 {
			continue
		}
		assertParallelMatchesSequential(t, conflict.NewProtocol(net), links, "protocol random")
	}
}

func TestParallelMatchesSequentialTable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rates := []radio.Rate{54, 36, 18}
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(6)
		tb := conflict.NewTable()
		var links []topology.LinkID
		for i := topology.LinkID(0); int(i) < n; i++ {
			tb.SetRates(i, rates[:1+rng.Intn(len(rates))]...)
			links = append(links, i)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for _, ri := range tb.Rates(topology.LinkID(i)) {
					for _, rj := range tb.Rates(topology.LinkID(j)) {
						if rng.Float64() < 0.45 {
							if err := tb.AddConflict(topology.LinkID(i), ri, topology.LinkID(j), rj); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
			}
		}
		assertParallelMatchesSequential(t, tb, links, "random table")
	}
}

func TestParallelMatchesSequentialFallback(t *testing.T) {
	prof := radio.NewProfile80211a()
	net, path, err := topology.Chain(prof, 6, 80)
	if err != nil {
		t.Fatal(err)
	}
	links := []topology.LinkID(path)
	phys := conflict.NewPhysical(net)
	assertParallelMatchesSequential(t, opaque{m: phys}, links, "opaque physical")

	fixed := conflict.FixRates(phys, []conflict.Couple{
		{Link: links[0], Rate: 18}, {Link: links[2], Rate: 6}, {Link: links[4], Rate: 18},
	})
	assertParallelMatchesSequential(t, fixed, links, "fixed rates")
}

// TestParallelLimitExact pins the shared-budget limit semantics under
// parallelism (regression guard for the PR 1 off-by-one class): on a
// family where every explored feasible set is maximal, a Limit-bounded
// run returns exactly the sequential walk's family size — min(Limit,
// family) — and never Limit+1, at every worker count and on both the
// pairwise and fallback walks.
func TestParallelLimitExact(t *testing.T) {
	const n = 6
	tb, links := allConflictTable(t, n)
	models := []struct {
		name string
		m    conflict.Model
	}{
		{"pairwise", tb},
		{"fallback", opaque{m: tb}},
	}
	for _, mm := range models {
		for limit := 1; limit <= n+1; limit++ {
			seq, seqTrunc, err := EnumeratePartial(mm.m, links, Options{Limit: limit, Workers: 1})
			if err != nil {
				t.Fatalf("%s limit %d: sequential: %v", mm.name, limit, err)
			}
			want := limit
			if limit >= n {
				want = n
			}
			if len(seq) != want {
				t.Fatalf("%s limit %d: sequential family %d, want %d", mm.name, limit, len(seq), want)
			}
			for _, workers := range []int{2, 4, 8} {
				par, parTrunc, err := EnumeratePartial(mm.m, links, Options{Limit: limit, Workers: workers})
				if err != nil {
					t.Fatalf("%s limit %d workers %d: %v", mm.name, limit, workers, err)
				}
				if len(par) != len(seq) {
					t.Errorf("%s limit %d workers %d: family %d != sequential %d",
						mm.name, limit, workers, len(par), len(seq))
				}
				if len(par) > limit {
					t.Errorf("%s limit %d workers %d: %d sets exceed the limit",
						mm.name, limit, workers, len(par))
				}
				if parTrunc != seqTrunc {
					t.Errorf("%s limit %d workers %d: truncated=%v, sequential %v",
						mm.name, limit, workers, parTrunc, seqTrunc)
				}
				// Enumerate must agree with the truncation flag.
				if _, err := Enumerate(mm.m, links, Options{Limit: limit, Workers: workers}); (err != nil) != parTrunc || (parTrunc && !errors.Is(err, ErrLimit)) {
					t.Errorf("%s limit %d workers %d: Enumerate err %v, truncated %v",
						mm.name, limit, workers, err, parTrunc)
				}
			}
		}
	}
}

// TestParallelTruncationSound checks a truncated parallel physical walk:
// at most Limit sets come back, every one is feasible and maximal, and
// every one belongs to the complete family.
func TestParallelTruncationSound(t *testing.T) {
	prof := radio.NewProfile80211a()
	net, path, err := topology.Chain(prof, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	full, err := Enumerate(m, path, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	inFull := make(map[string]bool, len(full))
	for _, s := range full {
		inFull[s.Key()] = true
	}
	for _, limit := range []int{3, 7, 19} {
		for _, workers := range []int{2, 4, 8} {
			sets, truncated, err := EnumeratePartial(m, path, Options{Limit: limit, Workers: workers})
			if err != nil {
				t.Fatalf("limit %d workers %d: %v", limit, workers, err)
			}
			if !truncated {
				t.Fatalf("limit %d workers %d: expected truncation", limit, workers)
			}
			if len(sets) > limit {
				t.Errorf("limit %d workers %d: %d sets exceed the limit", limit, workers, len(sets))
			}
			for _, s := range sets {
				if !inFull[s.Key()] {
					t.Errorf("limit %d workers %d: %v not in the complete family", limit, workers, s)
				}
				if !IsMaximal(m, s, path) {
					t.Errorf("limit %d workers %d: %v not maximal", limit, workers, s)
				}
			}
		}
	}
}

func TestWorkerCount(t *testing.T) {
	small := make([]topology.LinkID, minParallelLinks-1)
	big := make([]topology.LinkID, minParallelLinks)
	cases := []struct {
		opts Options
		n    int
		want int
	}{
		{Options{}, len(small), 1},
		{Options{}, len(big), runtime.GOMAXPROCS(0)},
		{Options{Workers: 1}, len(big), 1},
		{Options{Workers: -3}, len(big), 1},
		{Options{Workers: 5}, 2, 5},
	}
	for _, c := range cases {
		if got := c.opts.workerCount(c.n); got != c.want {
			t.Errorf("workerCount(Workers=%d, n=%d) = %d, want %d", c.opts.Workers, c.n, got, c.want)
		}
	}
}

// TestChoiceTasksPartition checks the couple-assignment task generator:
// tasks are distinct, cover every prefix combination of the split
// levels exactly once, and deepen with the worker count.
func TestChoiceTasksPartition(t *testing.T) {
	numRates := func(i int) int { return []int{2, 1, 3, 2, 2}[i] }
	tasks := choiceTasks(5, 4, numRates)
	seen := make(map[string]bool, len(tasks))
	depth := -1
	for _, task := range tasks {
		if depth == -1 {
			depth = len(task.choices)
		}
		if len(task.choices) != depth {
			t.Fatalf("mixed task depths %d and %d", depth, len(task.choices))
		}
		k := ""
		for _, c := range task.choices {
			k += string(rune('a' + c + 1))
			if c < -1 || c >= numRates(len(k)-1) {
				t.Fatalf("choice %d out of range in %v", c, task.choices)
			}
		}
		if seen[k] {
			t.Fatalf("duplicate task %v", task.choices)
		}
		seen[k] = true
	}
	want := 1
	for lvl := 0; lvl < depth; lvl++ {
		want *= 1 + numRates(lvl)
	}
	if len(tasks) != want {
		t.Fatalf("got %d tasks at depth %d, want %d", len(tasks), depth, want)
	}
	if len(tasks) < 4*4 {
		t.Fatalf("got %d tasks for 4 workers, want at least 16", len(tasks))
	}
}
