// Delta enumeration: compute the maximal-set family of a universe grown
// by one link from the cached family of the base universe, without
// re-walking the base lattice. The grown family decomposes exactly:
//
//	family(U ∪ {l}) = survivors(family(U)) ∪ {maximal sets containing l}
//
// A set without l is maximal over U ∪ {l} iff it was maximal over U and
// l cannot join it with every member keeping its rate: rate-maximality
// involves only the members (universe-independent), and link-maximality
// over the old links is untouched by growth — only the l-clause is new.
// Part (b) runs first: a DFS over the l-containing slice of the lattice
// with l pushed from the root, branching over the remaining links in
// descending-conflict order so l's interference prunes subtrees at
// their shallowest node (feasibility, the budget and maximality are all
// branch-order independent; see the order helpers). Part (a) then needs
// no model replay at all — a base set is displaced exactly when some
// walked set equals it plus l, bytes for bytes (the strip rule proved
// at stripSurvivors) — so survival is one couple-hash lookup per cached
// set against the freshly walked family.
//
// Exploration accounting carries over too: both walk families charge
// their budget once per feasible leaf, and a leaf over U ∪ {l} either
// contains l (charged by part (b)) or is a leaf over U (charged by the
// base enumeration). Seeding the budget with the base count therefore
// reproduces the full walk's ErrLimit verdict exactly; see
// EnumeratePartialCounted for where the seed comes from.
package indepset

import (
	"context"
	"errors"
	"math"
	"sort"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// ErrDeltaUnsupported reports that the delta path cannot serve this
// model or universe shape (brute-force-walk models, or pairwise
// universes beyond 64 positive rates per link). Callers fall back to
// full enumeration; the fallback is always correct, the delta path is
// only ever an optimization.
var ErrDeltaUnsupported = errors.New("indepset: delta enumeration unsupported for this model or universe")

// DeltaBase is a complete enumeration result to warm-start from: the
// canonical (sorted, deduplicated) universe it was enumerated over, its
// full maximal-set family in key order, and the exact exploration count
// the walk charged (EnumeratePartialCounted). Truncated families must
// never be used as bases — their set list and count are both partial.
type DeltaBase struct {
	Universe []topology.LinkID
	Sets     []Set
	Explored int64
}

// EnumerateDelta returns the maximal-set family over base.Universe plus
// one more link, byte-identical to Enumerate over the grown universe
// under the same Options, along with the grown universe's exploration
// count (a valid DeltaBase.Explored for chaining). The model must be
// the one the base was enumerated under. Errors: ErrDeltaUnsupported
// (caller should fall back to Enumerate), ErrLimit (the grown universe
// would trip Options.Limit — a full walk would too), or ErrCanceled.
func EnumerateDelta(ctx context.Context, m conflict.Model, base DeltaBase, link topology.LinkID, opts Options) ([]Set, int64, error) {
	universe := dedupSorted(append(append([]topology.LinkID(nil), base.Universe...), link))
	if len(universe) == len(base.Universe) {
		// Link already present: the family is unchanged.
		return append([]Set(nil), base.Sets...), base.Explored, nil
	}
	lpos := searchLinks(universe, link)
	limit := opts.limit()
	switch mm := m.(type) {
	case *conflict.Physical:
		return deltaPhysical(ctx, mm, base, universe, lpos, limit)
	case conflict.PairwiseModel:
		return deltaPairwise(ctx, mm, base, universe, lpos, limit)
	default:
		return nil, 0, ErrDeltaUnsupported
	}
}

// searchLinks returns the position of l in the sorted universe, or -1.
func searchLinks(universe []topology.LinkID, l topology.LinkID) int {
	lo := sort.Search(len(universe), func(i int) bool { return universe[i] >= l })
	if lo < len(universe) && universe[lo] == l {
		return lo
	}
	return -1
}

func deltaPhysical(ctx context.Context, m *conflict.Physical, base DeltaBase, universe []topology.LinkID, lpos, limit int) ([]Set, int64, error) {
	n := len(universe)
	e := &physicalEnum{
		m:        m,
		ctx:      ctx,
		universe: universe,
		minRate:  make([]radio.Rate, n),
		n:        n,
		budget:   newSeededBudget(limit, base.Explored),
	}
	for i, l := range universe {
		e.minRate[i] = m.MinPositiveRate(l)
	}
	//lint:ignore abw/floateq Rate 0 is the exact no-declared-rate sentinel, never a computed float
	if e.minRate[lpos] == 0 {
		// The new link can neither join an old set nor appear in a new
		// one; the family and the exploration count are unchanged.
		return append([]Set(nil), base.Sets...), base.Explored, nil
	}
	w := newPhysicalWorker(e)
	w.push(lpos)
	err := w.recDelta(0, physicalDeltaOrder(m, universe, lpos))
	w.pop()
	if err != nil {
		return nil, 0, err
	}
	sortByKey(w.out)
	return mergeByKey(stripSurvivors(base.Sets, w.out, universe[lpos]), w.out), e.budget.count(), nil
}

// physicalDeltaOrder returns the branch order of the delta walk: every
// position except lpos, strongest conflictors of the grown link first
// (node sharers above all — they block it outright — then by mutual
// interference power, ties by position). Branch order is free to
// choose: feasibility is monotone and member-order-independent, so the
// walk visits the same feasible subsets in any order, and the final
// sort restores canonical emission. Fronting l's conflictors makes the
// subtrees that would die of l's interference die at the root instead
// of one level above the leaves.
func physicalDeltaOrder(m *conflict.Physical, universe []topology.LinkID, lpos int) []int {
	net := m.Network()
	l := universe[lpos]
	ll, lerr := net.Link(l)
	threat := make([]float64, len(universe))
	order := make([]int, 0, len(universe)-1)
	for p, id := range universe {
		if p == lpos {
			continue
		}
		threat[p] = m.InterferencePower(id, l) + m.InterferencePower(l, id)
		if lerr == nil {
			if pl, err := net.Link(id); err == nil && conflict.SharesNode(ll, pl) {
				threat[p] = math.Inf(1)
			}
		}
		order = append(order, p)
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if threat[a] > threat[b] {
			return true
		}
		if threat[a] < threat[b] {
			return false
		}
		return a < b
	})
	return order
}

// stripSurvivors returns the base sets that stay maximal once l joins
// the universe. A base set S is displaced exactly when l can join it
// with every member keeping its rate — and then S ∪ {l}, with those
// very rates, is itself maximal over the grown universe: no outside
// link that couldn't join S can join S ∪ {l} (l only adds
// constraints), no member can be raised (S was rate-maximal under
// fewer constraints), and l sits at its best joining rate. So the
// displaced sets are precisely the walked sets minus l, bytes for
// bytes — rates included, since a join that lowered any member's rate
// would not displace S but coexist with it. One couple-hash lookup per
// base set decides survival (hash hits are verified structurally, so a
// collision can never mislabel a set); no model replay, no key-string
// materialization.
func stripSurvivors(base, grown []Set, l topology.LinkID) []Set {
	// head/next chain grown-set indices per stripped-couples hash.
	head := make(map[uint64]int32, len(grown))
	next := make([]int32, len(grown))
	for gi, g := range grown {
		h := fnvOffset
		for _, c := range g.Couples {
			if c.Link != l {
				h = hashCouple(h, c)
			}
		}
		if prev, ok := head[h]; ok {
			next[gi] = prev
		} else {
			next[gi] = -1
		}
		head[h] = int32(gi)
	}
	out := make([]Set, 0, len(base))
	for _, s := range base {
		h := fnvOffset
		for _, c := range s.Couples {
			h = hashCouple(h, c)
		}
		displaced := false
		if gi, ok := head[h]; ok {
			for ; gi >= 0; gi = next[gi] {
				if strippedEqual(grown[gi].Couples, s.Couples, l) {
					displaced = true
					break
				}
			}
		}
		if !displaced {
			out = append(out, s)
		}
	}
	return out
}

// FNV-1a constants for hashing couple sequences.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashCouple folds one couple into an FNV-1a state: the link and the
// rate's exact bit pattern, so two couple lists hash equal only when
// links and rates match bit for bit (modulo 64-bit collisions, which
// strippedEqual screens out).
func hashCouple(h uint64, c conflict.Couple) uint64 {
	h ^= uint64(c.Link)
	h *= fnvPrime
	h ^= math.Float64bits(float64(c.Rate))
	h *= fnvPrime
	return h
}

// strippedEqual reports whether the grown set's couples minus l equal
// the base set's couples exactly — same links, same rates, in the same
// canonical ascending-link order both sides store.
func strippedEqual(g, s []conflict.Couple, l topology.LinkID) bool {
	if len(g) != len(s)+1 {
		return false
	}
	j := 0
	for _, c := range g {
		if c.Link == l {
			continue
		}
		if j == len(s) || c != s[j] {
			return false
		}
		j++
	}
	return j == len(s)
}

// recDelta walks every subset containing the grown link, which the
// caller has already pushed: it is the plain walk over the remaining
// positions in the given branch order. Visiting each node through
// visitDelta makes the grown link's interference prune natively — a
// branch dies the moment any member is silenced, exactly the plain
// walk's prune but conditioned on the grown link from the root — so
// the walk touches only that link's slice of the lattice, with no
// per-node join checks beyond what a fresh walk would pay.
func (w *physicalWorker) recDelta(start int, order []int) error {
	if err := w.chk.Check(); err != nil {
		return err
	}
	ok, err := w.visitDelta()
	if !ok || err != nil {
		return err
	}
	for oi := start; oi < len(order); oi++ {
		w.push(order[oi])
		err := w.recDelta(oi+1, order)
		w.pop()
		if err != nil {
			return err
		}
	}
	return nil
}

// visitDelta is visit for the delta walk, where members sit in branch
// order rather than ascending position: feasibility, budget and
// maximality are member-order-independent (tracker sums and the
// isMember table), only materialization must re-establish the
// canonical ascending-position couple order, by insertion-sorting the
// freshly appended couples (member counts are small; the sort is a
// handful of swaps).
func (w *physicalWorker) visitDelta() (ok bool, err error) {
	e := w.e
	for d, mi := range w.members {
		r := w.tr.MaxRate(mi)
		//lint:ignore abw/floateq Rate 0 is the exact silenced-link sentinel MaxRate returns, never a computed float
		if r == 0 {
			return false, nil
		}
		w.rateBuf[d] = r
	}
	if !e.budget.take() {
		return false, ErrLimit
	}
	if physicalMaximal(w.tr, w.members, w.isMember, w.rateBuf, e.minRate, e.n) {
		if cap(w.arena)-len(w.arena) < len(w.members) {
			w.arena = make([]conflict.Couple, 0, 16*e.n)
		}
		base := len(w.arena)
		for d, mi := range w.members {
			w.arena = append(w.arena, conflict.Couple{Link: e.universe[mi], Rate: w.rateBuf[d]})
			for k := len(w.arena) - 1; k > base && w.arena[k-1].Link > w.arena[k].Link; k-- {
				w.arena[k-1], w.arena[k] = w.arena[k], w.arena[k-1]
			}
		}
		couples := w.arena[base:len(w.arena):len(w.arena)]
		w.out = append(w.out, Set{Couples: couples})
	}
	return true, nil
}

func deltaPairwise(ctx context.Context, m conflict.PairwiseModel, base DeltaBase, universe []topology.LinkID, lpos, limit int) ([]Set, int64, error) {
	n := len(universe)
	rates, maxRates := positiveRates(m, universe)
	if maxRates > 64 {
		// The wide walk has no delta twin; fall back to a full walk.
		return nil, 0, ErrDeltaUnsupported
	}
	if len(rates[lpos]) == 0 {
		// No positive declared rate: the link can neither join an old
		// set nor appear in a new one.
		return append([]Set(nil), base.Sets...), base.Explored, nil
	}
	e := &pairwiseEnum{
		ctx:      ctx,
		universe: universe,
		rates:    rates,
		clear:    buildClearTable(m, universe, rates),
		n:        n,
		budget:   newSeededBudget(limit, base.Explored),
	}
	w := newPairwiseWorker(e)
	defer w.release()
	order := pairwiseDeltaOrder(e, lpos)
	for ri := range e.rates[lpos] {
		if !w.push(lpos, ri) {
			continue
		}
		err := w.recDelta(0, order)
		w.pop()
		if err != nil {
			return nil, 0, err
		}
	}
	sortByKey(w.out)
	return mergeByKey(stripSurvivors(base.Sets, w.out, universe[lpos]), w.out), e.budget.count(), nil
}

// pairwiseDeltaOrder returns the branch order of the pairwise delta
// walk: every position except lpos, strongest conflictors of the grown
// link first, measured from the clear table — the number of couple
// rates the grown link cannot clear plus the number of its own rates
// the position denies it — with ties by position. See
// physicalDeltaOrder for why branch order is free to choose.
func pairwiseDeltaOrder(e *pairwiseEnum, lpos int) []int {
	threat := make([]int, e.n)
	order := make([]int, 0, e.n-1)
	for p := 0; p < e.n; p++ {
		if p == lpos {
			continue
		}
		for _, mask := range e.clear[lpos][p] {
			if mask == 0 {
				threat[p]++
			}
		}
		for _, mask := range e.clear[p][lpos] {
			if mask == 0 {
				threat[p]++
			}
		}
		order = append(order, p)
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if threat[a] != threat[b] {
			return threat[a] > threat[b]
		}
		return a < b
	})
	return order
}

// mergeByKey merges two key-sorted families into canonical key order.
// The survivors inherit the base family's order (a subsequence of a
// sorted list) with their keys already cached, so the delta result
// needs one linear merge instead of re-sorting — and re-keying — the
// whole family. Keys never collide across the two inputs: every new
// set contains the grown link, no survivor does.
func mergeByKey(survivors, grown []Set) []Set {
	if len(grown) == 0 {
		return survivors
	}
	if len(survivors) == 0 {
		return grown
	}
	out := make([]Set, 0, len(survivors)+len(grown))
	i, j := 0, 0
	for i < len(survivors) && j < len(grown) {
		if survivors[i].Key() < grown[j].Key() {
			out = append(out, survivors[i])
			i++
		} else {
			out = append(out, grown[j])
			j++
		}
	}
	out = append(out, survivors[i:]...)
	return append(out, grown[j:]...)
}

// recDelta walks every complete assignment that includes the grown
// link, which the caller has already pushed at one of its rates: it is
// the plain walk over the remaining positions in the given branch
// order. With the grown link a member from the root, every push
// already validates against it — a branch under which no rate of the
// grown link survives is never entered — so the per-node prune of a
// staged walk comes for free.
func (w *pairwiseWorker) recDelta(oi int, order []int) error {
	if err := w.chk.Check(); err != nil {
		return err
	}
	if oi == len(order) {
		return w.visitLeafDelta()
	}
	idx := order[oi]
	// Exclude universe[idx].
	if err := w.recDelta(oi+1, order); err != nil {
		return err
	}
	// Include at each rate that keeps the partial set feasible.
	for ri := range w.e.rates[idx] {
		if !w.push(idx, ri) {
			continue
		}
		err := w.recDelta(oi+1, order)
		w.pop()
		if err != nil {
			return err
		}
	}
	return nil
}

// visitLeafDelta is visitLeaf for the delta walk, where members sit in
// branch order rather than ascending position: the budget charge and
// the maximality check are member-order-independent (mask
// intersections and the isMember table), only materialization must
// re-establish the canonical ascending-position couple order, by
// insertion-sorting the freshly built couples.
func (w *pairwiseWorker) visitLeafDelta() error {
	if !w.e.budget.take() {
		return ErrLimit
	}
	if w.maximal() {
		couples := make([]conflict.Couple, 0, len(w.members))
		for d := range w.members {
			a := &w.members[d]
			couples = append(couples, conflict.Couple{Link: w.e.universe[a.pos], Rate: w.e.rates[a.pos][a.ri]})
			for k := len(couples) - 1; k > 0 && couples[k-1].Link > couples[k].Link; k-- {
				couples[k-1], couples[k] = couples[k], couples[k-1]
			}
		}
		w.out = append(w.out, Set{Couples: couples})
	}
	return nil
}
