// Parallel enumeration scaffolding: the subset/assignment lattices the
// walks explore split cleanly at their first branching levels into
// independent subtrees, so enumeration distributes those subtrees over
// workers that each own their full mutable DFS state (a
// conflict.SetTracker for the physical walk, bitmask state for pairwise
// walks, a couple stack for the fallback) while sharing the read-only
// per-universe precomputation. Three properties make the parallel walk
// indistinguishable from the sequential one:
//
//  1. Partitioning — tasks cover the lattice exactly once, so the union
//     of per-worker families equals the sequential family.
//  2. Budget accounting — Options.Limit is charged through one shared
//     budget; exactly Limit explorations succeed across all workers, so
//     Enumerate trips ErrLimit in precisely the instances the
//     sequential walk does, and a truncated EnumeratePartial returns at
//     most Limit sets.
//  3. Merge determinism — set keys are unique within a family and the
//     merged family is sorted by key, so the output is byte-identical
//     to the sequential walk no matter how the scheduler interleaves
//     workers.
package indepset

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// minParallelLinks is the smallest universe the automatic mode
// (Options.Workers == 0) parallelizes. Below it the whole walk finishes
// in the time it takes to start workers; an explicit Workers > 1 still
// forces parallelism (property tests rely on that).
const minParallelLinks = 10

// workerCount resolves Options.Workers against the universe size.
func (o Options) workerCount(universeLinks int) int {
	switch {
	case o.Workers == 0:
		if universeLinks < minParallelLinks {
			return 1
		}
		return runtime.GOMAXPROCS(0)
	case o.Workers < 1:
		return 1
	default:
		return o.Workers
	}
}

// budget is the exploration budget shared by every worker of one
// enumeration. take charges one explored feasible set and reports
// whether it was within the limit; exactly `limit` takes succeed, so
// the explored-set count at truncation is deterministic even under
// parallelism. Sequential walks skip the atomic.
type budget struct {
	n     int64
	limit int64
	seq   bool
}

func newBudget(limit, workers int) *budget {
	return &budget{limit: int64(limit), seq: workers <= 1}
}

// newSeededBudget returns a sequential budget whose counter starts at
// seed already-spent charges. The delta walk (delta.go) inherits the
// base universe's exploration count this way, so the combined count —
// and therefore the ErrLimit verdict — is identical to a full walk
// over the grown universe.
func newSeededBudget(limit int, seed int64) *budget {
	//lint:ignore abw/atomicfield the budget is not yet shared — seq means one worker owns it exclusively for its whole life
	return &budget{n: seed, limit: int64(limit), seq: true}
}

// count returns the number of successful charges so far. Exact for a
// complete walk (every take succeeded); after a tripped limit it may
// overshoot and must not be trusted — truncated walks never report
// their count anywhere.
func (b *budget) count() int64 {
	if b.seq {
		//lint:ignore abw/atomicfield seq means one worker owns the budget exclusively; no concurrent access exists
		return b.n
	}
	return atomic.LoadInt64(&b.n)
}

func (b *budget) take() bool {
	if b.seq {
		//lint:ignore abw/atomicfield seq means one worker owns the budget exclusively; no concurrent access exists
		b.n++
		//lint:ignore abw/atomicfield same single-owner sequential path as the increment above
		return b.n <= b.limit
	}
	return atomic.AddInt64(&b.n, 1) <= b.limit
}

// subtreeTask is one unit of the physical walk's two-level split: push
// the member prefix, then either visit just that set (leafOnly — the
// interior nodes of the split levels) or run the full DFS over
// positions >= start.
type subtreeTask struct {
	prefix   [2]int
	plen     int
	start    int
	leafOnly bool
}

// subtreeTasks partitions the subset lattice over n universe positions
// at its first two branching levels, in the sequential walk's
// pre-order: visit {i}, then one task per subtree rooted at {i, j}.
func subtreeTasks(n int) []subtreeTask {
	tasks := make([]subtreeTask, 0, n+n*(n-1)/2)
	for i := 0; i < n; i++ {
		tasks = append(tasks, subtreeTask{prefix: [2]int{i}, plen: 1, leafOnly: true})
		for j := i + 1; j < n; j++ {
			tasks = append(tasks, subtreeTask{prefix: [2]int{i, j}, plen: 2, start: j + 1})
		}
	}
	return tasks
}

// choiceTask fixes the first levels of a couple-assignment walk
// (pairwise and fallback): choices[i] is -1 to exclude universe[i] or
// an index into its declared rates to include it. Tasks whose prefix is
// infeasible enumerate nothing, exactly like the sequential walk never
// descending past an infeasible branch.
type choiceTask struct {
	choices []int
}

// choiceTasks partitions a couple-assignment walk at its first levels.
// The split deepens (up to four levels) until the task count reaches
// about four per worker, so uneven subtree sizes still balance; order
// is the sequential branch order (exclude first, then declared rates).
func choiceTasks(n, workers int, numRates func(int) int) []choiceTask {
	depth, count := 0, 1
	for depth < n && depth < 4 && count < 4*workers {
		count *= 1 + numRates(depth)
		depth++
	}
	tasks := []choiceTask{{}}
	for lvl := 0; lvl < depth; lvl++ {
		next := make([]choiceTask, 0, len(tasks)*(1+numRates(lvl)))
		for _, t := range tasks {
			for c := -1; c < numRates(lvl); c++ {
				nc := make([]int, lvl+1)
				copy(nc, t.choices)
				nc[lvl] = c
				next = append(next, choiceTask{choices: nc})
			}
		}
		tasks = next
	}
	return tasks
}

// parallelRun drives an enumeration: workers pull task indices from a
// shared counter, each building its own DFS state via newWorker and
// collecting its partial family. collect runs even after an ErrLimit
// stop (truncated walks still hand back the maximal sets found). The
// merged family is unsorted; the dispatcher sorts by key.
func parallelRun(workers, numTasks int, newWorker func() (run func(task int) error, collect func() []Set)) ([]Set, error) {
	var next int64
	outs := make([][]Set, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run, collect := newWorker()
			defer func() { outs[w] = collect() }()
			for {
				t := int(atomic.AddInt64(&next, 1)) - 1
				if t >= numTasks {
					return
				}
				if err := run(t); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]Set, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrLimit) {
			return out, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}
