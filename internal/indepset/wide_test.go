package indepset

import (
	"math/rand"
	"reflect"
	"testing"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// wideTable builds a table model where link 0 declares `classes` rate
// classes (forcing the multi-word pairwise walk once classes > 64) and
// the remaining links declare a handful, with dense random pairwise
// conflicts. Small link counts keep the brute-force reference
// tractable: the walk's leaf count is the product of per-link choices.
func wideTable(t *testing.T, rng *rand.Rand, classes, extraLinks int) (*conflict.Table, []topology.LinkID) {
	t.Helper()
	tb := conflict.NewTable()
	var wide []radio.Rate
	for r := classes; r >= 1; r-- {
		wide = append(wide, radio.Rate(r))
	}
	tb.SetRates(0, wide...)
	links := []topology.LinkID{0}
	small := []radio.Rate{54, 36, 18}
	for i := 1; i <= extraLinks; i++ {
		tb.SetRates(topology.LinkID(i), small[:1+rng.Intn(len(small))]...)
		links = append(links, topology.LinkID(i))
	}
	for i := 0; i <= extraLinks; i++ {
		for j := i + 1; j <= extraLinks; j++ {
			for _, ri := range tb.Rates(topology.LinkID(i)) {
				for _, rj := range tb.Rates(topology.LinkID(j)) {
					if rng.Float64() < 0.6 {
						if err := tb.AddConflict(topology.LinkID(i), ri, topology.LinkID(j), rj); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
	}
	return tb, links
}

// TestWideEquivalenceReference gates the multi-word pairwise walk
// against the brute-force reference at rate counts straddling the word
// boundaries: 64 (last narrow width), 65 and 70 (two words), and 130
// (three words).
func TestWideEquivalenceReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, classes := range []int{64, 65, 70, 130} {
		for trial := 0; trial < 3; trial++ {
			tb, links := wideTable(t, rng, classes, 2)
			assertSameFamily(t, tb, links, "wide table")
		}
	}
}

// TestWideMatchesFallback cross-checks the multi-word walk against the
// generic brute-force walk (opaque hides the pairwise interface) on the
// same instances.
func TestWideMatchesFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		tb, links := wideTable(t, rng, 66, 2)
		direct, err := Enumerate(tb, links, Options{})
		if err != nil {
			t.Fatal(err)
		}
		viaFallback, err := Enumerate(opaque{m: tb}, links, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(keys(direct), keys(viaFallback)) {
			t.Fatalf("wide walk %v != fallback walk %v", keys(direct), keys(viaFallback))
		}
	}
}

// TestWideParallelDeterminism pins the parallel contract for the
// multi-word walk: 2/4/8 workers return the byte-identical family of
// the sequential walk.
func TestWideParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 3; trial++ {
		tb, links := wideTable(t, rng, 68, 3)
		seq, err := Enumerate(tb, links, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := Enumerate(tb, links, Options{Workers: workers})
			if err != nil {
				t.Fatalf("workers %d: %v", workers, err)
			}
			if !reflect.DeepEqual(keys(seq), keys(par)) {
				t.Fatalf("workers %d family differs:\n got  %v\n want %v", workers, keys(par), keys(seq))
			}
		}
	}
}

// TestWideExploredMatchesNarrowSemantics pins the exploration count of
// the wide walk to the fallback's leaf-count decomposition contract:
// growing a 65-class universe still reports a count, and a limit below
// it trips ErrLimit.
func TestWideLimitTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tb, links := wideTable(t, rng, 65, 2)
	_, truncated, explored, err := EnumeratePartialCounted(tb, links, Options{})
	if err != nil || truncated {
		t.Fatalf("full wide walk: truncated=%v err=%v", truncated, err)
	}
	if explored < 1 {
		t.Fatalf("wide walk reported %d explored assignments", explored)
	}
	if explored > 1 {
		_, truncated, _, err := EnumeratePartialCounted(tb, links, Options{Limit: int(explored) - 1})
		if err != nil || !truncated {
			t.Fatalf("limit below count: truncated=%v err=%v, want truncated", truncated, err)
		}
	}
}
