package indepset

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/topology"
)

// meshFixture builds a mesh large enough that enumeration does real
// work at every worker count.
func meshFixture(t *testing.T) (conflict.Model, []topology.LinkID) {
	t.Helper()
	net, err := topology.New(radio.NewProfile80211a(), geom.GridPoints(9, 3, 80))
	if err != nil {
		t.Fatal(err)
	}
	var links []topology.LinkID
	for _, l := range net.Links() {
		links = append(links, l.ID)
	}
	return conflict.NewPhysical(net), links
}

// TestContextRunByteIdentical pins the determinism invariant of the
// cancellation work: an uncancelled run returns the byte-identical
// family at every worker count, with or without a context — the
// checker polls change nothing but responsiveness.
func TestContextRunByteIdentical(t *testing.T) {
	m, links := meshFixture(t)
	ref, err := Enumerate(m, links, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithCancel(context.Background())
	defer cancelCtx() // live but never fired during the runs
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := EnumerateContext(ctx, m, links, Options{Workers: workers})
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if !reflect.DeepEqual(keys(got), keys(ref)) {
			t.Fatalf("%d workers with context diverge from sequential without", workers)
		}
	}
}

// TestPreCanceledContextFailsFast pins the checker's first-poll-is-real
// contract: a context canceled before the walk starts yields
// ErrCanceled deterministically at every worker count, and the partial
// variant reports it as an error, never as truncation.
func TestPreCanceledContextFailsFast(t *testing.T) {
	m, links := meshFixture(t)
	ctx, cancelCtx := context.WithCancel(context.Background())
	cancelCtx()
	for _, workers := range []int{1, 2, 4} {
		if _, err := EnumerateContext(ctx, m, links, Options{Workers: workers}); !errors.Is(err, ErrCanceled) {
			t.Fatalf("%d workers: err = %v, want ErrCanceled", workers, err)
		}
		sets, truncated, err := EnumeratePartialContext(ctx, m, links, Options{Workers: workers})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%d workers partial: err = %v, want ErrCanceled", workers, err)
		}
		if truncated {
			t.Fatalf("%d workers: cancellation must not masquerade as truncation", workers)
		}
		if sets != nil {
			t.Fatalf("%d workers: cancelled walk returned a partial family", workers)
		}
	}
}

// TestCanceledDistinctFromLimit pins the error taxonomy: hitting
// Options.Limit and being cancelled are different conditions and
// neither satisfies the other.
func TestCanceledDistinctFromLimit(t *testing.T) {
	if errors.Is(ErrCanceled, ErrLimit) || errors.Is(ErrLimit, ErrCanceled) {
		t.Fatal("ErrCanceled and ErrLimit must be distinct")
	}
	m, links := meshFixture(t)
	ctx, cancelCtx := context.WithCancel(context.Background())
	cancelCtx()
	_, err := EnumerateContext(ctx, m, links, Options{Limit: 1})
	if !errors.Is(err, ErrCanceled) || errors.Is(err, ErrLimit) {
		t.Fatalf("pre-canceled walk with a limit: err = %v, want pure ErrCanceled", err)
	}
}

// TestConcurrentCancelAllOrNothing pins the mid-enumeration contract
// under -race: with a cancel racing the walk, the result is either the
// complete (reference-identical) family or ErrCanceled — never a
// silently partial family, never a foreign error.
func TestConcurrentCancelAllOrNothing(t *testing.T) {
	m, links := meshFixture(t)
	ref, err := Enumerate(m, links, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		ctx, cancelCtx := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			cancelCtx()
		}()
		got, err := EnumerateContext(ctx, m, links, Options{Workers: 4})
		wg.Wait()
		switch {
		case err == nil:
			if !reflect.DeepEqual(keys(got), keys(ref)) {
				t.Fatalf("trial %d: uncancelled result diverges", trial)
			}
		case errors.Is(err, ErrCanceled):
			if got != nil {
				t.Fatalf("trial %d: cancelled walk returned sets", trial)
			}
		default:
			t.Fatalf("trial %d: foreign error %v", trial, err)
		}
	}
}
