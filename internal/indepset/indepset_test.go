package indepset

import (
	"errors"
	"math/rand"
	"testing"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/topology"
)

func TestScenarioIIMaximalSets(t *testing.T) {
	s := scenario.NewScenarioII()
	sets, err := Enumerate(s.Model, s.Links(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"0@54":      true, // {(L1,54)}
		"1@54":      true, // {(L2,54)}
		"2@54":      true, // {(L3,54)}
		"3@54|0@36": false,
		"0@36|3@54": true, // {(L1,36),(L4,54)} — the link-adaptation slot
	}
	got := make(map[string]bool, len(sets))
	for _, set := range sets {
		got[set.Key()] = true
	}
	for key, expect := range want {
		if expect && !got[key] {
			t.Errorf("missing maximal set %q; got %v", key, keys(sets))
		}
	}
	if len(sets) != 4 {
		t.Errorf("got %d maximal sets %v, want 4", len(sets), keys(sets))
	}
	// {(L4,54)} alone must NOT be maximal: (L1,36) can join.
	l4 := NewSet(conflict.Couple{Link: s.L4, Rate: 54})
	if IsMaximal(s.Model, l4, s.Links()) {
		t.Error("{(L4,54)} should not be maximal — (L1,36) can be inserted")
	}
	// {(L1,36)} alone is not maximal either (rate can rise to 54).
	l1 := NewSet(conflict.Couple{Link: s.L1, Rate: 36})
	if IsMaximal(s.Model, l1, s.Links()) {
		t.Error("{(L1,36)} should not be maximal — rate can be raised")
	}
}

func TestScenarioIMaximalSets(t *testing.T) {
	s := scenario.NewScenarioI(54)
	links := []topology.LinkID{s.L1, s.L2, s.L3}
	sets, err := Enumerate(s.Model, links, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Maximal sets: {L1@54, L2@54} and {L3@54}.
	if len(sets) != 2 {
		t.Fatalf("got %d maximal sets %v, want 2", len(sets), keys(sets))
	}
	got := map[string]bool{}
	for _, set := range sets {
		got[set.Key()] = true
	}
	if !got["0@54|1@54"] || !got["2@54"] {
		t.Errorf("sets = %v, want {L1,L2} and {L3}", keys(sets))
	}
}

func TestEnumeratePhysicalChain(t *testing.T) {
	net, path, err := topology.Chain(radio.NewProfile80211a(), 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	sets, err := Enumerate(m, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) == 0 {
		t.Fatal("no maximal independent sets on a 4-hop chain")
	}
	for _, s := range sets {
		if !conflict.Feasible(m, s.Couples) {
			t.Errorf("enumerated set %v not feasible", s)
		}
		if !IsMaximal(m, s, path) {
			t.Errorf("enumerated set %v not maximal", s)
		}
	}
	// Every chain link must appear in at least one set (all links can
	// transmit alone).
	for _, l := range path {
		found := false
		for _, s := range sets {
			if s.Contains(l) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("link %d missing from every maximal set", l)
		}
	}
}

func TestEnumerateNoDuplicates(t *testing.T) {
	s := scenario.NewScenarioII()
	sets, err := Enumerate(s.Model, s.Links(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, set := range sets {
		if seen[set.Key()] {
			t.Errorf("duplicate set %v", set)
		}
		seen[set.Key()] = true
	}
}

func TestEnumerateLimit(t *testing.T) {
	// 16 mutually compatible links explode combinatorially: the limit
	// must trip.
	tb := conflict.NewTable()
	var links []topology.LinkID
	for i := topology.LinkID(0); i < 16; i++ {
		tb.SetRates(i, 54)
		links = append(links, i)
	}
	if _, err := Enumerate(tb, links, Options{Limit: 100}); !errors.Is(err, ErrLimit) {
		t.Errorf("err = %v, want ErrLimit", err)
	}
	// With a generous limit it succeeds and returns the single maximal
	// set of all 16 links.
	sets, err := Enumerate(tb, links, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0].Len() != 16 {
		t.Errorf("got %d sets (first len %d), want one 16-link set", len(sets), sets[0].Len())
	}
}

func TestEnumerateEmptyAndSilentLinks(t *testing.T) {
	tb := conflict.NewTable()
	sets, err := Enumerate(tb, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 0 {
		t.Errorf("empty universe: got %v", keys(sets))
	}
	// A link with no rates can never appear.
	tb.SetRates(0, 54)
	sets, err = Enumerate(tb, []topology.LinkID{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0].Key() != "0@54" {
		t.Errorf("got %v, want only {L0@54}", keys(sets))
	}
}

func TestSetAccessors(t *testing.T) {
	s := NewSet(conflict.Couple{Link: 5, Rate: 36}, conflict.Couple{Link: 2, Rate: 54})
	//lint:ignore abw/floateq Rate returns the stored couple verbatim; bit-exact by construction
	if s.Rate(2) != 54 || s.Rate(5) != 36 || s.Rate(9) != 0 {
		t.Error("Rate lookups wrong")
	}
	if !s.Contains(5) || s.Contains(9) {
		t.Error("Contains wrong")
	}
	if got := s.Links(); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Errorf("Links = %v, want [2 5] (sorted)", got)
	}
	rv := s.RateVector([]topology.LinkID{2, 3, 5})
	//lint:ignore abw/floateq RateVector copies stored couples; bit-exact by construction
	if rv[0] != 54 || rv[1] != 0 || rv[2] != 36 {
		t.Errorf("RateVector = %v", rv)
	}
	if s.Key() != "2@54|5@36" {
		t.Errorf("Key = %q", s.Key())
	}
	if s.String() != "{(L2, 54Mbps), (L5, 36Mbps)}" {
		t.Errorf("String = %q", s.String())
	}
}

// TestEnumerateRandomTableProperty builds random pairwise conflict
// tables and checks the enumeration invariants: every returned set is
// feasible and maximal, and every single-couple set extends to some
// returned maximal set.
func TestEnumerateRandomTableProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rates := []radio.Rate{54, 36, 18}
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(5)
		tb := conflict.NewTable()
		var links []topology.LinkID
		for i := topology.LinkID(0); int(i) < n; i++ {
			tb.SetRates(i, rates...)
			links = append(links, i)
		}
		// Random conflicts with probability 0.4 per couple pair.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for _, ri := range rates {
					for _, rj := range rates {
						if rng.Float64() < 0.4 {
							if err := tb.AddConflict(topology.LinkID(i), ri, topology.LinkID(j), rj); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
			}
		}
		sets, err := Enumerate(tb, links, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, s := range sets {
			if !conflict.Feasible(tb, s.Couples) {
				t.Errorf("trial %d: set %v infeasible", trial, s)
			}
			if !IsMaximal(tb, s, links) {
				t.Errorf("trial %d: set %v not maximal", trial, s)
			}
		}
		// Completeness: every link must appear in some maximal set.
		for _, l := range links {
			found := false
			for _, s := range sets {
				if s.Contains(l) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("trial %d: link %d in no maximal set", trial, l)
			}
		}
	}
}

func keys(sets []Set) []string {
	out := make([]string, 0, len(sets))
	for _, s := range sets {
		out = append(out, s.Key())
	}
	return out
}

func TestEnumeratePartialTruncates(t *testing.T) {
	// 16 mutually compatible links explode; partial enumeration returns
	// whatever maximal sets it found plus the truncation flag.
	tb := conflict.NewTable()
	var links []topology.LinkID
	for i := topology.LinkID(0); i < 16; i++ {
		tb.SetRates(i, 54)
		links = append(links, i)
	}
	sets, truncated, err := EnumeratePartial(tb, links, Options{Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("expected truncation")
	}
	// Everything returned must still be genuinely feasible and maximal.
	for _, s := range sets {
		if !conflict.Feasible(tb, s.Couples) {
			t.Errorf("set %v infeasible", s)
		}
		if !IsMaximal(tb, s, links) {
			t.Errorf("set %v not maximal", s)
		}
	}
	// The complete run is not truncated and agrees with Enumerate.
	full, truncated, err := EnumeratePartial(tb, links, Options{})
	if err != nil || truncated {
		t.Fatalf("full run: truncated=%v err=%v", truncated, err)
	}
	direct, err := Enumerate(tb, links, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(direct) {
		t.Errorf("partial-full (%d sets) != Enumerate (%d sets)", len(full), len(direct))
	}
}

// allConflictTable builds n links with one rate each where every pair
// conflicts: the maximal set family is exactly the n singletons, and
// every feasible non-empty set is maximal, so the exploration count
// equals the returned set count and the limit boundary is unambiguous.
func allConflictTable(t *testing.T, n int) (*conflict.Table, []topology.LinkID) {
	t.Helper()
	tb := conflict.NewTable()
	var links []topology.LinkID
	for i := topology.LinkID(0); int(i) < n; i++ {
		tb.SetRates(i, 54)
		links = append(links, i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := tb.AddConflictAllRates(topology.LinkID(i), topology.LinkID(j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tb, links
}

// TestEnumerateLimitBoundary pins the exact limit semantics documented
// on Options.Limit: a truncated run hands back at most Limit sets (the
// walk stops *before* exploring set Limit+1), and Limit equal to the
// family size completes untruncated. Regression for an off-by-one where
// the limit check ran only after appending set Limit+1, so callers got
// Limit+1 sets from a "limited" enumeration.
func TestEnumerateLimitBoundary(t *testing.T) {
	const n = 5
	tb, links := allConflictTable(t, n)

	// Limit below the family size: truncated, and at most Limit sets.
	sets, truncated, err := EnumeratePartial(tb, links, Options{Limit: n - 1})
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatalf("limit %d over %d-set family: want truncated", n-1, n)
	}
	if len(sets) > n-1 {
		t.Fatalf("truncated run returned %d sets, limit was %d: %v", len(sets), n-1, keys(sets))
	}
	if _, err := Enumerate(tb, links, Options{Limit: n - 1}); !errors.Is(err, ErrLimit) {
		t.Fatalf("Enumerate with tripped limit: got err %v, want ErrLimit", err)
	}

	// Limit exactly the family size: complete and untruncated.
	sets, truncated, err = EnumeratePartial(tb, links, Options{Limit: n})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatalf("limit %d over %d-set family: spuriously truncated", n, n)
	}
	if len(sets) != n {
		t.Fatalf("got %d sets at exact limit, want %d", len(sets), n)
	}
}

// TestEnumerateLimitBoundaryFallback is the same boundary check routed
// through the generic (non-pairwise) walk via the opaque wrapper.
func TestEnumerateLimitBoundaryFallback(t *testing.T) {
	const n = 5
	tb, links := allConflictTable(t, n)
	m := opaque{m: tb}

	sets, truncated, err := EnumeratePartial(m, links, Options{Limit: n - 1})
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatalf("limit %d over %d-set family: want truncated", n-1, n)
	}
	if len(sets) > n-1 {
		t.Fatalf("truncated run returned %d sets, limit was %d: %v", len(sets), n-1, keys(sets))
	}

	sets, truncated, err = EnumeratePartial(m, links, Options{Limit: n})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatalf("limit %d over %d-set family: spuriously truncated", n, n)
	}
	if len(sets) != n {
		t.Fatalf("got %d sets at exact limit, want %d", len(sets), n)
	}
}
