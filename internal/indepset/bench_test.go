package indepset

import (
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/topology"
)

func BenchmarkEnumerateScenarioII(b *testing.B) {
	s := scenario.NewScenarioII()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(s.Model, s.Links(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEnumeratePhysical(b *testing.B, hops int) {
	b.Helper()
	net, path, err := topology.Chain(radio.NewProfile80211a(), hops, 100)
	if err != nil {
		b.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(m, path, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateChain4(b *testing.B) { benchEnumeratePhysical(b, 4) }
func BenchmarkEnumerateChain8(b *testing.B) { benchEnumeratePhysical(b, 8) }

// BenchmarkEnumerateMesh measures enumeration over all links of a small
// random mesh — the worst case the Fig. 3 experiment hits per admission.
func BenchmarkEnumerateMesh(b *testing.B) {
	net, err := topology.New(radio.NewProfile80211a(),
		geom.GridPoints(9, 3, 80))
	if err != nil {
		b.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	links := make([]topology.LinkID, 0, net.NumLinks())
	for _, l := range net.Links() {
		links = append(links, l.ID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(m, links, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
