package indepset

import (
	"math/rand"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/topology"
)

// Enumeration micro-benchmarks, one per specialized walk. Run with
// `go test -bench=Enumerate -benchmem ./internal/indepset/` to see
// ns/op and allocs/op per path; the end-to-end query cost lives in the
// root package's BenchmarkAvailableBandwidthQuery.

func BenchmarkEnumerateScenarioII(b *testing.B) {
	s := scenario.NewScenarioII()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(s.Model, s.Links(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEnumeratePhysical(b *testing.B, hops int) {
	b.Helper()
	net, path, err := topology.Chain(radio.NewProfile80211a(), hops, 100)
	if err != nil {
		b.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(m, path, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateChain4(b *testing.B) { benchEnumeratePhysical(b, 4) }
func BenchmarkEnumerateChain8(b *testing.B) { benchEnumeratePhysical(b, 8) }

// BenchmarkEnumerateMesh measures enumeration over all links of a small
// random mesh — the worst case the Fig. 3 experiment hits per admission.
func BenchmarkEnumerateMesh(b *testing.B) {
	net, err := topology.New(radio.NewProfile80211a(),
		geom.GridPoints(9, 3, 80))
	if err != nil {
		b.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	links := make([]topology.LinkID, 0, net.NumLinks())
	for _, l := range net.Links() {
		links = append(links, l.ID)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(m, links, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerateProtocolChain exercises the bitmask pairwise walk
// with the protocol (interference-range) model on an 8-hop chain.
func BenchmarkEnumerateProtocolChain(b *testing.B) {
	net, path, err := topology.Chain(radio.NewProfile80211a(), 8, 100)
	if err != nil {
		b.Fatal(err)
	}
	m := conflict.NewProtocol(net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(m, path, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerateTableRandom exercises the bitmask pairwise walk on a
// dense random conflict table (10 links, 3 rates, 40% pair conflicts).
func BenchmarkEnumerateTableRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	rates := []radio.Rate{54, 36, 18}
	tb := conflict.NewTable()
	var links []topology.LinkID
	const n = 10
	for i := topology.LinkID(0); i < n; i++ {
		tb.SetRates(i, rates...)
		links = append(links, i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, ri := range rates {
				for _, rj := range rates {
					if rng.Float64() < 0.4 {
						if err := tb.AddConflict(topology.LinkID(i), ri, topology.LinkID(j), rj); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(tb, links, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEnumeratePairwiseAllocs pins the steady-state allocation count of
// the sequential pairwise walk (also visible as allocs/op under
// `go test -bench=EnumerateTableRandom -benchmem`). The clear-mask
// table is slab-backed (three allocations however many links) and the
// worker's avail/saved/member scratch comes from a pool, so per-call
// allocations are a small constant plus the returned family itself —
// nowhere near the old n^2 mask slices. This walk measured ~115
// allocs/op when pinned (dominated by the returned sets and their
// cached keys); the bound leaves noise headroom while still catching a
// per-pair regression, which would add ~100 on its own.
func TestEnumeratePairwiseAllocs(t *testing.T) {
	net, path, err := topology.Chain(radio.NewProfile80211a(), 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := conflict.NewProtocol(net)
	links := []topology.LinkID(path)
	run := func() {
		if _, err := Enumerate(m, links, Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch pool
	allocs := testing.AllocsPerRun(50, run)
	const maxAllocs = 150
	if allocs > maxAllocs {
		t.Fatalf("sequential pairwise Enumerate: %.0f allocs/op, want <= %d", allocs, maxAllocs)
	}
}

// Worker-scaling benchmarks: the same enumeration at 1/2/4/8 workers on
// the biggest walks above. On a multi-core machine the mesh walk is
// wide enough (40 links) to show near-linear scaling; compare with
// `go test -bench=Workers -benchmem ./internal/indepset/`.

func benchMeshWorkers(b *testing.B, workers int) {
	b.Helper()
	net, err := topology.New(radio.NewProfile80211a(),
		geom.GridPoints(9, 3, 80))
	if err != nil {
		b.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	links := make([]topology.LinkID, 0, net.NumLinks())
	for _, l := range net.Links() {
		links = append(links, l.ID)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(m, links, Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateMeshWorkers1(b *testing.B) { benchMeshWorkers(b, 1) }
func BenchmarkEnumerateMeshWorkers2(b *testing.B) { benchMeshWorkers(b, 2) }
func BenchmarkEnumerateMeshWorkers4(b *testing.B) { benchMeshWorkers(b, 4) }
func BenchmarkEnumerateMeshWorkers8(b *testing.B) { benchMeshWorkers(b, 8) }

func benchProtocolChainWorkers(b *testing.B, workers int) {
	b.Helper()
	net, path, err := topology.Chain(radio.NewProfile80211a(), 12, 100)
	if err != nil {
		b.Fatal(err)
	}
	m := conflict.NewProtocol(net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(m, path, Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateProtocolWorkers1(b *testing.B) { benchProtocolChainWorkers(b, 1) }
func BenchmarkEnumerateProtocolWorkers2(b *testing.B) { benchProtocolChainWorkers(b, 2) }
func BenchmarkEnumerateProtocolWorkers4(b *testing.B) { benchProtocolChainWorkers(b, 4) }
func BenchmarkEnumerateProtocolWorkers8(b *testing.B) { benchProtocolChainWorkers(b, 8) }

// BenchmarkEnumerateFallback exercises the generic brute-force walk (the
// path every model took before the specialized walks existed) on a
// 6-hop physical chain, for comparison against the incremental paths.
func BenchmarkEnumerateFallback(b *testing.B) {
	net, path, err := topology.Chain(radio.NewProfile80211a(), 6, 100)
	if err != nil {
		b.Fatal(err)
	}
	m := opaque{m: conflict.NewPhysical(net)}
	links := []topology.LinkID(path)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(m, links, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
