package indepset

import (
	"context"
	"math/bits"
	"sync"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// enumeratePairwise walks (link, rate) couple assignments in link order
// for models whose feasibility decomposes pairwise. It maintains, for
// every universe link, a bitmask of the declared rates that still clear
// every current member (bit k = k-th declared rate, descending), so
// adding a couple only checks the new couple against current members,
// and leaf maximality is a handful of mask intersections instead of
// from-scratch feasibility calls.
//
// With workers > 1 the assignment lattice is split at its first levels
// (choiceTasks); the clear-mask table is built once and shared
// read-only, each worker owning only its avail/member stacks.
func enumeratePairwise(ctx context.Context, m conflict.PairwiseModel, universe []topology.LinkID, budget *budget, workers int) ([]Set, error) {
	n := len(universe)
	if n == 0 {
		return nil, nil
	}
	rates, maxRates := positiveRates(m, universe)
	if maxRates > 64 {
		// Rate lists beyond one mask word walk with multi-word masks
		// (pairwise_wide.go) — same DFS order, same family.
		return enumerateWide(ctx, m, universe, rates, budget, workers)
	}
	e := &pairwiseEnum{
		ctx:      ctx,
		universe: universe,
		rates:    rates,
		clear:    buildClearTable(m, universe, rates),
		n:        n,
		budget:   budget,
	}
	if workers <= 1 {
		w := newPairwiseWorker(e)
		err := w.rec(0)
		w.release()
		return w.out, err
	}
	tasks := choiceTasks(n, workers, func(i int) int { return len(rates[i]) })
	if workers > len(tasks) {
		workers = len(tasks)
	}
	return parallelRun(workers, len(tasks), func() (func(int) error, func() []Set) {
		w := newPairwiseWorker(e)
		return func(t int) error { return w.runTask(tasks[t]) },
			func() []Set { w.release(); return w.out }
	})
}

// positiveRates collects each link's positive declared rates, preserving
// the model's descending order (non-positive rates can never appear in a
// feasible couple), and returns the longest per-link list. The per-link
// slices share one backing slab — two allocations total, whatever n is.
func positiveRates(m conflict.PairwiseModel, universe []topology.LinkID) ([][]radio.Rate, int) {
	total := 0
	for _, l := range universe {
		total += len(m.Rates(l))
	}
	slab := make([]radio.Rate, 0, total)
	rates := make([][]radio.Rate, len(universe))
	maxRates := 0
	for i, l := range universe {
		start := len(slab)
		for _, r := range m.Rates(l) {
			if r > 0 {
				slab = append(slab, r)
			}
		}
		rates[i] = slab[start:len(slab):len(slab)]
		if len(rates[i]) > maxRates {
			maxRates = len(rates[i])
		}
	}
	return rates, maxRates
}

// buildClearTable precomputes clear[i][j][rj]: the mask of link i's
// rates that clear the couple (universe[j], rates[j][rj]). The diagonal
// is all-ones: a link never constrains itself (MaxRate ignores couples
// on the queried link). The mask rows share two backing slabs, so the
// whole n^2 table costs three allocations.
func buildClearTable(m conflict.PairwiseModel, universe []topology.LinkID, rates [][]radio.Rate) [][][]uint64 {
	n := len(universe)
	total := 0
	for j := range rates {
		total += len(rates[j])
	}
	flat := make([]uint64, n*total)
	mid := make([][]uint64, n*n)
	clear := make([][][]uint64, n)
	off := 0
	for i := range clear {
		clear[i] = mid[i*n : (i+1)*n]
		for j := range clear[i] {
			masks := flat[off : off+len(rates[j]) : off+len(rates[j])]
			off += len(rates[j])
			if i == j {
				for rj := range masks {
					masks[rj] = ^uint64(0)
				}
			} else {
				for rj := range masks {
					other := conflict.Couple{Link: universe[j], Rate: rates[j][rj]}
					var bm uint64
					for ri, r := range rates[i] {
						if m.RateClears(universe[i], r, other) {
							bm |= 1 << uint(ri)
						}
					}
					masks[rj] = bm
				}
			}
			clear[i][j] = masks
		}
	}
	return clear
}

// pairwiseEnum is the read-only state shared by every worker of one
// pairwise enumeration: the universe, its declared positive rates, and
// the precomputed clear-mask table.
type pairwiseEnum struct {
	//lint:ignore abw/ctxflow read-only per-enumeration worker state; lives strictly inside the Enumerate call that received ctx
	ctx      context.Context
	universe []topology.LinkID
	rates    [][]radio.Rate
	clear    [][][]uint64
	n        int
	budget   *budget
}

type pairMember struct {
	pos int
	ri  int
	ge  uint64 // mask of declared rates at least the chosen one
}

// pairwiseWorker owns the mutable DFS state of one worker: the
// per-link masks of rates still clearing every member, their per-depth
// snapshots, and the member stack. The mask and stack buffers come from
// a package-level pool (pairScratch) so repeated enumerations reuse
// them instead of reallocating the n + n*n words per worker.
type pairwiseWorker struct {
	e        *pairwiseEnum
	chk      *cancel.Checker // nil for uncancellable contexts (zero cost)
	scratch  *pairScratch
	avail    []uint64 // rates of each link clearing every member
	saved    [][]uint64
	members  []pairMember
	isMember []bool
	out      []Set
}

// pairScratch holds one worker's reusable buffers. Pooled globally:
// sizes are re-sliced (or grown) to the current universe on checkout,
// and the walk's push/pop discipline guarantees members is empty and
// isMember all-false at release, so only avail needs re-initializing.
type pairScratch struct {
	avail    []uint64
	sback    []uint64
	saved    [][]uint64
	members  []pairMember
	isMember []bool
}

var pairScratchPool = sync.Pool{New: func() any { return new(pairScratch) }}

func (s *pairScratch) grow(n int) {
	if cap(s.avail) < n {
		s.avail = make([]uint64, n)
	}
	s.avail = s.avail[:n]
	if cap(s.sback) < n*n {
		s.sback = make([]uint64, n*n)
	}
	s.sback = s.sback[:n*n]
	if cap(s.saved) < n {
		s.saved = make([][]uint64, n)
	}
	s.saved = s.saved[:n]
	for d := range s.saved {
		s.saved[d] = s.sback[d*n : (d+1)*n]
	}
	if cap(s.members) < n {
		s.members = make([]pairMember, 0, n)
	}
	s.members = s.members[:0]
	if cap(s.isMember) < n {
		s.isMember = make([]bool, n)
	}
	s.isMember = s.isMember[:n]
	for i := range s.isMember {
		s.isMember[i] = false
	}
}

func newPairwiseWorker(e *pairwiseEnum) *pairwiseWorker {
	n := e.n
	s := pairScratchPool.Get().(*pairScratch)
	s.grow(n)
	for i := range s.avail {
		// Safe at 64 declared rates: the shift wraps to 0 and the
		// decrement yields the intended all-ones mask.
		s.avail[i] = (uint64(1) << uint(len(e.rates[i]))) - 1
	}
	return &pairwiseWorker{
		e:        e,
		chk:      cancel.NewChecker(e.ctx, 0),
		scratch:  s,
		avail:    s.avail,
		saved:    s.saved,
		members:  s.members,
		isMember: s.isMember,
	}
}

// release returns the worker's scratch to the pool. The worker must not
// be used afterwards; out stays valid (it never aliases the scratch).
func (w *pairwiseWorker) release() {
	if w.scratch == nil {
		return
	}
	w.scratch.members = w.members[:0]
	pairScratchPool.Put(w.scratch)
	w.scratch = nil
	w.avail, w.saved, w.members, w.isMember = nil, nil, nil, nil
}

// push includes (universe[idx], rates[idx][ri]) when that keeps the
// partial set feasible: the new couple must be sustainable against the
// members (some clearing rate at or above it) and every member must
// retain a clearing rate at or above its own. It reports whether the
// couple was pushed; on false the worker state is unchanged.
func (w *pairwiseWorker) push(idx, ri int) bool {
	e := w.e
	ge := (uint64(1) << uint(ri+1)) - 1
	if w.avail[idx]&ge == 0 {
		return false
	}
	for ii := range w.members {
		a := &w.members[ii]
		if w.avail[a.pos]&e.clear[a.pos][idx][ri]&a.ge == 0 {
			return false
		}
	}
	d := len(w.members)
	copy(w.saved[d], w.avail)
	for j := 0; j < e.n; j++ {
		w.avail[j] &= e.clear[j][idx][ri]
	}
	w.members = append(w.members, pairMember{pos: idx, ri: ri, ge: ge})
	w.isMember[idx] = true
	return true
}

func (w *pairwiseWorker) pop() {
	d := len(w.members) - 1
	w.isMember[w.members[d].pos] = false
	w.members = w.members[:d]
	copy(w.avail, w.saved[d])
}

// maximal reports whether the current full assignment is maximal.
func (w *pairwiseWorker) maximal() bool {
	e := w.e
	// Rate-maximality: some member could be raised to a higher
	// declared rate with every other member keeping its rate.
	for ii := range w.members {
		a := &w.members[ii]
		// The member itself sustains a raise to index rj exactly when
		// some still-clearing rate is at least rates[a.pos][rj], i.e.
		// rj is at or below the best clearing rate.
		for rj := bits.TrailingZeros64(w.avail[a.pos]); rj < a.ri; rj++ {
			ok := true
			for jj := range w.members {
				if jj == ii {
					continue
				}
				b := &w.members[jj]
				// b's rates clearing every member except a, plus a at
				// its raised rate.
				mask := e.clear[b.pos][a.pos][rj]
				for kk := range w.members {
					if kk == ii || kk == jj {
						continue
					}
					c := &w.members[kk]
					mask &= e.clear[b.pos][c.pos][c.ri]
				}
				if mask&b.ge == 0 {
					ok = false
					break
				}
			}
			if ok {
				return false
			}
		}
	}
	// Link-maximality: some outside link could join at a declared
	// rate with every member keeping its rate.
	for j := 0; j < e.n; j++ {
		if w.isMember[j] || w.avail[j] == 0 {
			continue
		}
		for rj := bits.TrailingZeros64(w.avail[j]); rj < len(e.rates[j]); rj++ {
			ok := true
			for ii := range w.members {
				a := &w.members[ii]
				if w.avail[a.pos]&e.clear[a.pos][j][rj]&a.ge == 0 {
					ok = false
					break
				}
			}
			if ok {
				return false
			}
		}
	}
	return true
}

// visitLeaf charges the budget for the current full assignment and
// records it when maximal.
func (w *pairwiseWorker) visitLeaf() error {
	if len(w.members) == 0 {
		return nil
	}
	if !w.e.budget.take() {
		return ErrLimit
	}
	if w.maximal() {
		couples := make([]conflict.Couple, len(w.members))
		for d := range w.members {
			a := &w.members[d]
			couples[d] = conflict.Couple{Link: w.e.universe[a.pos], Rate: w.e.rates[a.pos][a.ri]}
		}
		w.out = append(w.out, Set{Couples: couples}) // idx order = link order
	}
	return nil
}

func (w *pairwiseWorker) rec(idx int) error {
	if err := w.chk.Check(); err != nil {
		return err
	}
	if idx == w.e.n {
		return w.visitLeaf()
	}
	// Exclude universe[idx].
	if err := w.rec(idx + 1); err != nil {
		return err
	}
	// Include at each rate that keeps the partial set feasible.
	for ri := range w.e.rates[idx] {
		if !w.push(idx, ri) {
			continue
		}
		err := w.rec(idx + 1)
		w.pop()
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *pairwiseWorker) runTask(t choiceTask) error {
	pushed := 0
	feasible := true
	for idx, c := range t.choices {
		if c < 0 {
			continue
		}
		if !w.push(idx, c) {
			feasible = false
			break
		}
		pushed++
	}
	var err error
	if feasible {
		err = w.rec(len(t.choices))
	}
	for ; pushed > 0; pushed-- {
		w.pop()
	}
	return err
}
