package indepset

import (
	"context"
	"math/bits"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// enumeratePairwise walks (link, rate) couple assignments in link order
// for models whose feasibility decomposes pairwise. It maintains, for
// every universe link, a bitmask of the declared rates that still clear
// every current member (bit k = k-th declared rate, descending), so
// adding a couple only checks the new couple against current members,
// and leaf maximality is a handful of mask intersections instead of
// from-scratch feasibility calls.
//
// With workers > 1 the assignment lattice is split at its first levels
// (choiceTasks); the clear-mask table is built once and shared
// read-only, each worker owning only its avail/member stacks.
func enumeratePairwise(ctx context.Context, m conflict.PairwiseModel, universe []topology.LinkID, limit, workers int) ([]Set, error) {
	n := len(universe)
	if n == 0 {
		return nil, nil
	}
	// Positive declared rates per link, preserving the model's descending
	// order. Non-positive rates can never appear in a feasible couple.
	rates := make([][]radio.Rate, n)
	for i, l := range universe {
		for _, r := range m.Rates(l) {
			if r > 0 {
				rates[i] = append(rates[i], r)
			}
		}
		if len(rates[i]) > 64 {
			// Masks are uint64; absurd rate counts take the slow path.
			return enumerateFallback(ctx, m, universe, limit, workers)
		}
	}
	// clear[i][j][rj] is the mask of link i's rates that clear the couple
	// (universe[j], rates[j][rj]). The diagonal is all-ones: a link never
	// constrains itself (MaxRate ignores couples on the queried link).
	clear := make([][][]uint64, n)
	for i := range clear {
		clear[i] = make([][]uint64, n)
		for j := range clear[i] {
			masks := make([]uint64, len(rates[j]))
			if i == j {
				for rj := range masks {
					masks[rj] = ^uint64(0)
				}
			} else {
				for rj := range masks {
					other := conflict.Couple{Link: universe[j], Rate: rates[j][rj]}
					var bm uint64
					for ri, r := range rates[i] {
						if m.RateClears(universe[i], r, other) {
							bm |= 1 << uint(ri)
						}
					}
					masks[rj] = bm
				}
			}
			clear[i][j] = masks
		}
	}
	e := &pairwiseEnum{
		ctx:      ctx,
		universe: universe,
		rates:    rates,
		clear:    clear,
		n:        n,
		budget:   newBudget(limit, workers),
	}
	if workers <= 1 {
		w := newPairwiseWorker(e)
		err := w.rec(0)
		return w.out, err
	}
	tasks := choiceTasks(n, workers, func(i int) int { return len(rates[i]) })
	if workers > len(tasks) {
		workers = len(tasks)
	}
	return parallelRun(workers, len(tasks), func() (func(int) error, func() []Set) {
		w := newPairwiseWorker(e)
		return func(t int) error { return w.runTask(tasks[t]) },
			func() []Set { return w.out }
	})
}

// pairwiseEnum is the read-only state shared by every worker of one
// pairwise enumeration: the universe, its declared positive rates, and
// the precomputed clear-mask table.
type pairwiseEnum struct {
	//lint:ignore abw/ctxflow read-only per-enumeration worker state; lives strictly inside the Enumerate call that received ctx
	ctx      context.Context
	universe []topology.LinkID
	rates    [][]radio.Rate
	clear    [][][]uint64
	n        int
	budget   *budget
}

type pairMember struct {
	pos int
	ri  int
	ge  uint64 // mask of declared rates at least the chosen one
}

// pairwiseWorker owns the mutable DFS state of one worker: the
// per-link masks of rates still clearing every member, their per-depth
// snapshots, and the member stack.
type pairwiseWorker struct {
	e        *pairwiseEnum
	chk      *cancel.Checker // nil for uncancellable contexts (zero cost)
	avail    []uint64        // rates of each link clearing every member
	saved    [][]uint64
	members  []pairMember
	isMember []bool
	out      []Set
}

func newPairwiseWorker(e *pairwiseEnum) *pairwiseWorker {
	n := e.n
	avail := make([]uint64, n)
	for i := range avail {
		avail[i] = (uint64(1) << uint(len(e.rates[i]))) - 1
	}
	saved := make([][]uint64, n)
	sback := make([]uint64, n*n)
	for d := range saved {
		saved[d] = sback[d*n : (d+1)*n]
	}
	return &pairwiseWorker{
		e:        e,
		chk:      cancel.NewChecker(e.ctx, 0),
		avail:    avail,
		saved:    saved,
		members:  make([]pairMember, 0, n),
		isMember: make([]bool, n),
	}
}

// push includes (universe[idx], rates[idx][ri]) when that keeps the
// partial set feasible: the new couple must be sustainable against the
// members (some clearing rate at or above it) and every member must
// retain a clearing rate at or above its own. It reports whether the
// couple was pushed; on false the worker state is unchanged.
func (w *pairwiseWorker) push(idx, ri int) bool {
	e := w.e
	ge := (uint64(1) << uint(ri+1)) - 1
	if w.avail[idx]&ge == 0 {
		return false
	}
	for ii := range w.members {
		a := &w.members[ii]
		if w.avail[a.pos]&e.clear[a.pos][idx][ri]&a.ge == 0 {
			return false
		}
	}
	d := len(w.members)
	copy(w.saved[d], w.avail)
	for j := 0; j < e.n; j++ {
		w.avail[j] &= e.clear[j][idx][ri]
	}
	w.members = append(w.members, pairMember{pos: idx, ri: ri, ge: ge})
	w.isMember[idx] = true
	return true
}

func (w *pairwiseWorker) pop() {
	d := len(w.members) - 1
	w.isMember[w.members[d].pos] = false
	w.members = w.members[:d]
	copy(w.avail, w.saved[d])
}

// maximal reports whether the current full assignment is maximal.
func (w *pairwiseWorker) maximal() bool {
	e := w.e
	// Rate-maximality: some member could be raised to a higher
	// declared rate with every other member keeping its rate.
	for ii := range w.members {
		a := &w.members[ii]
		// The member itself sustains a raise to index rj exactly when
		// some still-clearing rate is at least rates[a.pos][rj], i.e.
		// rj is at or below the best clearing rate.
		for rj := bits.TrailingZeros64(w.avail[a.pos]); rj < a.ri; rj++ {
			ok := true
			for jj := range w.members {
				if jj == ii {
					continue
				}
				b := &w.members[jj]
				// b's rates clearing every member except a, plus a at
				// its raised rate.
				mask := e.clear[b.pos][a.pos][rj]
				for kk := range w.members {
					if kk == ii || kk == jj {
						continue
					}
					c := &w.members[kk]
					mask &= e.clear[b.pos][c.pos][c.ri]
				}
				if mask&b.ge == 0 {
					ok = false
					break
				}
			}
			if ok {
				return false
			}
		}
	}
	// Link-maximality: some outside link could join at a declared
	// rate with every member keeping its rate.
	for j := 0; j < e.n; j++ {
		if w.isMember[j] || w.avail[j] == 0 {
			continue
		}
		for rj := bits.TrailingZeros64(w.avail[j]); rj < len(e.rates[j]); rj++ {
			ok := true
			for ii := range w.members {
				a := &w.members[ii]
				if w.avail[a.pos]&e.clear[a.pos][j][rj]&a.ge == 0 {
					ok = false
					break
				}
			}
			if ok {
				return false
			}
		}
	}
	return true
}

// visitLeaf charges the budget for the current full assignment and
// records it when maximal.
func (w *pairwiseWorker) visitLeaf() error {
	if len(w.members) == 0 {
		return nil
	}
	if !w.e.budget.take() {
		return ErrLimit
	}
	if w.maximal() {
		couples := make([]conflict.Couple, len(w.members))
		for d := range w.members {
			a := &w.members[d]
			couples[d] = conflict.Couple{Link: w.e.universe[a.pos], Rate: w.e.rates[a.pos][a.ri]}
		}
		w.out = append(w.out, Set{Couples: couples}) // idx order = link order
	}
	return nil
}

func (w *pairwiseWorker) rec(idx int) error {
	if err := w.chk.Check(); err != nil {
		return err
	}
	if idx == w.e.n {
		return w.visitLeaf()
	}
	// Exclude universe[idx].
	if err := w.rec(idx + 1); err != nil {
		return err
	}
	// Include at each rate that keeps the partial set feasible.
	for ri := range w.e.rates[idx] {
		if !w.push(idx, ri) {
			continue
		}
		err := w.rec(idx + 1)
		w.pop()
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *pairwiseWorker) runTask(t choiceTask) error {
	pushed := 0
	feasible := true
	for idx, c := range t.choices {
		if c < 0 {
			continue
		}
		if !w.push(idx, c) {
			feasible = false
			break
		}
		pushed++
	}
	var err error
	if feasible {
		err = w.rec(len(t.choices))
	}
	for ; pushed > 0; pushed-- {
		w.pop()
	}
	return err
}
