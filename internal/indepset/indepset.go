// Package indepset enumerates the paper's rate-coupled independent sets
// (Sec. 2.4): sets of (link, rate) couples that can all transmit
// concurrently, together with the *maximal* ones that suffice for the
// feasibility condition (Propositions 1-3). A maximal independent set
// satisfies two conditions beyond feasibility:
//
//  1. rate-maximality — no single link's rate can be raised while the
//     rest of the set keeps its rates; and
//  2. link-maximality — no further link can be inserted at any positive
//     rate without lowering some member's rate.
//
// Unlike single-rate networks, a maximal set's link set may be a strict
// subset of another independent set's; the enumeration below preserves
// those (the paper's Scenario II depends on them).
//
// Maximality is decided during the DFS itself: the single-link and
// single-rate extensions that could disqualify a subset are exactly the
// kind of children the walk visits anyway, so each explored feasible set
// is tested in place against incrementally maintained state instead of
// being materialized and re-verified from scratch afterwards. The
// physical model keeps running per-receiver interference sums
// (conflict.SetTracker); pairwise models (conflict.PairwiseModel) keep
// per-link bitmasks of the rates still clearing every member, so a push
// only checks the newly added couple against the current members.
// Models that are neither fall back to the brute-force walk.
//
// Every walk can also run across goroutines (Options.Workers): the
// search lattice splits at its first branching levels into independent
// subtrees, each worker owns its full mutable DFS state, and the merged
// family is byte-identical to the sequential walk's. See parallel.go
// for the partitioning, budget-accounting and merge-determinism
// invariants (DESIGN.md Sec. 8 pins them).
package indepset

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/obs"
	"abw/internal/radio"
	"abw/internal/topology"
)

// Set is an independent set: couples sorted by link ID.
type Set struct {
	Couples []conflict.Couple

	// key caches Key(); enumeration fills it while sorting the final
	// family so downstream LP construction reuses it for free.
	key string
}

// NewSet builds a Set from couples, sorting them by link ID.
func NewSet(couples ...conflict.Couple) Set {
	cs := make([]conflict.Couple, len(couples))
	copy(cs, couples)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Link < cs[j].Link })
	return Set{Couples: cs}
}

// Rate returns the rate of the given link in the set, or 0 if the link
// is not a member. It binary-searches the (sorted) couples.
func (s Set) Rate(link topology.LinkID) radio.Rate {
	cs := s.Couples
	lo, hi := 0, len(cs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cs[mid].Link < link {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cs) && cs[lo].Link == link {
		return cs[lo].Rate
	}
	return 0
}

// Links returns the member link IDs in ascending order.
func (s Set) Links() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(s.Couples))
	for _, c := range s.Couples {
		out = append(out, c.Link)
	}
	return out
}

// Contains reports whether link is a member.
func (s Set) Contains(link topology.LinkID) bool { return s.Rate(link) > 0 }

// Len returns the number of couples.
func (s Set) Len() int { return len(s.Couples) }

// Key returns a canonical string identity for deduplication.
func (s Set) Key() string {
	if s.key != "" {
		return s.key
	}
	var b strings.Builder
	b.Grow(8 * len(s.Couples))
	for i, c := range s.Couples {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(int(c.Link)))
		b.WriteByte('@')
		// Integral rates below 1e6 print identically under %g and plain
		// decimal, skipping shortest-float formatting on the common case.
		//lint:ignore abw/floateq exact integrality test: both formatting branches print the same key, only speed differs
		if f := float64(c.Rate); f == float64(int(f)) && f >= 0 && f < 1e6 {
			b.WriteString(strconv.Itoa(int(f)))
		} else {
			b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		}
	}
	return b.String()
}

// String implements fmt.Stringer.
func (s Set) String() string {
	parts := make([]string, 0, len(s.Couples))
	for _, c := range s.Couples {
		parts = append(parts, c.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// RateVector returns the set's throughput-rate vector aligned with the
// given link universe (the R*_i of paper Eq. 4): entry j is the rate of
// universe[j] in the set, or 0.
func (s Set) RateVector(universe []topology.LinkID) []radio.Rate {
	out := make([]radio.Rate, len(universe))
	for j, l := range universe {
		out[j] = s.Rate(l)
	}
	return out
}

// ErrLimit is returned when enumeration exceeds the configured set
// limit; callers may treat partial enumerations as lower bounds
// (paper Sec. 3.3) but Enumerate refuses to return silently truncated
// results.
var ErrLimit = fmt.Errorf("indepset: enumeration limit exceeded")

// ErrCanceled reports that an enumeration was abandoned because its
// context was cancelled. Unlike ErrLimit, a cancelled walk's partial
// family is NOT returned — cancellation yields no result at all, and
// callers (the memo cache in particular) must never store one.
var ErrCanceled = cancel.ErrCanceled

// Options configure enumeration.
type Options struct {
	// Limit bounds the number of feasible sets explored; 0 means the
	// default of 1<<20. The bound is exact, also under parallelism
	// (workers charge one shared budget): at most Limit sets are
	// explored in total, the walk stops before exploring set Limit+1,
	// and a truncated EnumeratePartial hands back at most Limit sets.
	Limit int

	// Workers sets the number of concurrent enumeration workers:
	//
	//	 0   automatic — GOMAXPROCS workers for universes of at least
	//	     ten links, sequential below that (tiny walks finish faster
	//	     than workers start);
	//	 1   sequential (any negative value likewise);
	//	>1   exactly that many workers, regardless of universe size.
	//
	// A parallel enumeration returns the byte-identical set family of
	// the sequential walk (same Set.Key order). The conflict model must
	// be safe for concurrent read-only use when Workers != 1; every
	// model in internal/conflict is immutable after construction and
	// qualifies. A truncated parallel EnumeratePartial explores exactly
	// Limit sets like the sequential walk, but scheduling decides which
	// subtrees those came from, so the (still sound and maximal)
	// partial family may differ run to run.
	Workers int
}

func (o Options) limit() int {
	if o.Limit <= 0 {
		return 1 << 20
	}
	return o.Limit
}

// EffectiveLimit returns the exploration bound enumeration will actually
// enforce: Limit, or the package default when Limit is unset. Cache keys
// (internal/memo) embed it so families enumerated under different
// bounds never share an entry.
func (o Options) EffectiveLimit() int { return o.limit() }

// Enumerate returns every maximal independent set (with maximum
// supported rate vectors) over the given links, in deterministic order.
// The empty set is never returned; if no link can transmit at all the
// result is empty.
func Enumerate(m conflict.Model, links []topology.LinkID, opts Options) ([]Set, error) {
	return EnumerateContext(context.Background(), m, links, opts)
}

// EnumerateContext is Enumerate under a context: the walk polls
// ctx.Done() periodically (a countdown check in the DFS hot loops, so
// uncancellable contexts cost nothing) and returns an error satisfying
// errors.Is(err, ErrCanceled) promptly once ctx is cancelled. A run
// whose context is never cancelled returns the byte-identical family
// of a context-free run at every worker count.
func EnumerateContext(ctx context.Context, m conflict.Model, links []topology.LinkID, opts Options) ([]Set, error) {
	sets, truncated, _, err := enumerate(ctx, m, links, opts)
	if err != nil {
		return nil, err
	}
	if truncated {
		return nil, ErrLimit
	}
	return sets, nil
}

// EnumeratePartial is Enumerate with graceful degradation: when the
// exploration limit trips, it returns the maximal sets found so far and
// truncated = true instead of failing. A truncated result is still a
// sound basis for the paper's Sec. 3.3 LOWER bounds (every returned set
// is genuinely feasible and maximal); it must not be used where
// completeness matters (exact Eq. 6 optima, upper bounds).
func EnumeratePartial(m conflict.Model, links []topology.LinkID, opts Options) ([]Set, bool, error) {
	return EnumeratePartialContext(context.Background(), m, links, opts)
}

// EnumeratePartialContext is EnumeratePartial under a context; see
// EnumerateContext. Cancellation wins over truncation: a cancelled walk
// returns ErrCanceled and no family, never a truncated partial one.
func EnumeratePartialContext(ctx context.Context, m conflict.Model, links []topology.LinkID, opts Options) ([]Set, bool, error) {
	sets, truncated, _, err := enumerate(ctx, m, links, opts)
	return sets, truncated, err
}

// EnumeratePartialCounted is EnumeratePartial reporting, alongside the
// family, how many feasible sets (physical walk) or feasible complete
// couple assignments (pairwise/fallback walks) the enumeration charged
// against Options.Limit. For a complete (untruncated) family the count
// is exact and deterministic — byte-identical runs charge identically —
// and it is the accounting seed the delta path (EnumerateDelta) needs
// to reproduce ErrLimit verdicts without re-walking the base universe.
// The count of a truncated run is unspecified.
func EnumeratePartialCounted(m conflict.Model, links []topology.LinkID, opts Options) ([]Set, bool, int64, error) {
	return enumerate(context.Background(), m, links, opts)
}

// EnumeratePartialCountedContext is EnumeratePartialCounted under a
// context; see EnumerateContext for the cancellation contract.
func EnumeratePartialCountedContext(ctx context.Context, m conflict.Model, links []topology.LinkID, opts Options) ([]Set, bool, int64, error) {
	return enumerate(ctx, m, links, opts)
}

func enumerate(ctx context.Context, m conflict.Model, links []topology.LinkID, opts Options) ([]Set, bool, int64, error) {
	universe := dedupSorted(links)
	limit := opts.limit()
	workers := opts.workerCount(len(universe))
	tm := obs.SpanFrom(ctx).StartStage(obs.StageEnumerate)
	tm.SetWorkers(workers)
	defer tm.End()
	b := newBudget(limit, workers)
	var out []Set
	var err error
	switch mm := m.(type) {
	case *conflict.Physical:
		out, err = enumeratePhysical(ctx, mm, universe, b, workers)
	case conflict.PairwiseModel:
		out, err = enumeratePairwise(ctx, mm, universe, b, workers)
	default:
		out, err = enumerateFallback(ctx, m, universe, b, workers)
	}
	truncated := errors.Is(err, ErrLimit)
	if err != nil && !truncated {
		return nil, false, 0, err
	}
	sortByKey(out)
	tm.AddSets(int64(len(out)))
	return out, truncated, b.count(), nil
}

// CacheKeys fills each set's cached canonical key in place — the same
// precomputation enumeration performs while sorting its final family.
// Families rebuilt outside enumeration (e.g. reloaded from the memo
// disk store) call it so downstream Key() lookups stay O(1), keeping
// reloaded families behavior-identical to freshly enumerated ones.
func CacheKeys(sets []Set) {
	for i := range sets {
		sets[i].key = sets[i].Key()
	}
}

func sortByKey(sets []Set) {
	for i := range sets {
		sets[i].key = sets[i].Key()
	}
	sort.Sort(setsByKey(sets))
}

type setsByKey []Set

func (s setsByKey) Len() int           { return len(s) }
func (s setsByKey) Less(i, j int) bool { return s[i].key < s[j].key }
func (s setsByKey) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// IsMaximal reports whether s is a maximal independent set over the
// given link universe: feasible, rate-maximal and link-maximal. It is
// the from-scratch reference predicate; the enumeration walks reach the
// same verdict from incremental state (see the equivalence property
// test).
func IsMaximal(m conflict.Model, s Set, universe []topology.LinkID) bool {
	if s.Len() == 0 || !conflict.Feasible(m, s.Couples) {
		return false
	}
	// Rate-maximality: raising any member's rate one step must break
	// feasibility.
	for i, c := range s.Couples {
		for _, r := range m.Rates(c.Link) { // descending
			if r <= c.Rate {
				break
			}
			cand := make([]conflict.Couple, len(s.Couples))
			copy(cand, s.Couples)
			cand[i] = conflict.Couple{Link: c.Link, Rate: r}
			if conflict.Feasible(m, cand) {
				return false
			}
		}
	}
	// Link-maximality: no outside link can join at any positive rate
	// with every member keeping its current rate.
	member := make(map[topology.LinkID]bool, s.Len())
	for _, c := range s.Couples {
		member[c.Link] = true
	}
	for _, l := range universe {
		if member[l] {
			continue
		}
		for _, r := range m.Rates(l) {
			cand := make([]conflict.Couple, 0, s.Len()+1)
			cand = append(cand, s.Couples...)
			cand = append(cand, conflict.Couple{Link: l, Rate: r})
			if conflict.Feasible(m, cand) {
				return false
			}
		}
	}
	return true
}

func dedupSorted(links []topology.LinkID) []topology.LinkID {
	out := make([]topology.LinkID, len(links))
	copy(out, links)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, l := range out {
		if i == 0 || l != out[w-1] {
			out[w] = l
			w++
		}
	}
	return out[:w]
}
