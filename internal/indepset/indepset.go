// Package indepset enumerates the paper's rate-coupled independent sets
// (Sec. 2.4): sets of (link, rate) couples that can all transmit
// concurrently, together with the *maximal* ones that suffice for the
// feasibility condition (Propositions 1-3). A maximal independent set
// satisfies two conditions beyond feasibility:
//
//  1. rate-maximality — no single link's rate can be raised while the
//     rest of the set keeps its rates; and
//  2. link-maximality — no further link can be inserted at any positive
//     rate without lowering some member's rate.
//
// Unlike single-rate networks, a maximal set's link set may be a strict
// subset of another independent set's; the enumeration below preserves
// those (the paper's Scenario II depends on them).
package indepset

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// Set is an independent set: couples sorted by link ID.
type Set struct {
	Couples []conflict.Couple
}

// NewSet builds a Set from couples, sorting them by link ID.
func NewSet(couples ...conflict.Couple) Set {
	cs := make([]conflict.Couple, len(couples))
	copy(cs, couples)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Link < cs[j].Link })
	return Set{Couples: cs}
}

// Rate returns the rate of the given link in the set, or 0 if the link
// is not a member.
func (s Set) Rate(link topology.LinkID) radio.Rate {
	for _, c := range s.Couples {
		if c.Link == link {
			return c.Rate
		}
	}
	return 0
}

// Links returns the member link IDs in ascending order.
func (s Set) Links() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(s.Couples))
	for _, c := range s.Couples {
		out = append(out, c.Link)
	}
	return out
}

// Contains reports whether link is a member.
func (s Set) Contains(link topology.LinkID) bool { return s.Rate(link) > 0 }

// Len returns the number of couples.
func (s Set) Len() int { return len(s.Couples) }

// Key returns a canonical string identity for deduplication.
func (s Set) Key() string {
	var b strings.Builder
	for i, c := range s.Couples {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d@%g", c.Link, float64(c.Rate))
	}
	return b.String()
}

// String implements fmt.Stringer.
func (s Set) String() string {
	parts := make([]string, 0, len(s.Couples))
	for _, c := range s.Couples {
		parts = append(parts, c.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// RateVector returns the set's throughput-rate vector aligned with the
// given link universe (the R*_i of paper Eq. 4): entry j is the rate of
// universe[j] in the set, or 0.
func (s Set) RateVector(universe []topology.LinkID) []radio.Rate {
	out := make([]radio.Rate, len(universe))
	for j, l := range universe {
		out[j] = s.Rate(l)
	}
	return out
}

// ErrLimit is returned when enumeration exceeds the configured set
// limit; callers may treat partial enumerations as lower bounds
// (paper Sec. 3.3) but Enumerate refuses to return silently truncated
// results.
var ErrLimit = fmt.Errorf("indepset: enumeration limit exceeded")

// Options configure enumeration.
type Options struct {
	// Limit bounds the number of feasible sets explored; 0 means the
	// default of 1<<20.
	Limit int
}

func (o Options) limit() int {
	if o.Limit <= 0 {
		return 1 << 20
	}
	return o.Limit
}

// Enumerate returns every maximal independent set (with maximum
// supported rate vectors) over the given links, in deterministic order.
// The empty set is never returned; if no link can transmit at all the
// result is empty.
func Enumerate(m conflict.Model, links []topology.LinkID, opts Options) ([]Set, error) {
	sets, truncated, err := enumerate(m, links, opts)
	if err != nil {
		return nil, err
	}
	if truncated {
		return nil, ErrLimit
	}
	return sets, nil
}

// EnumeratePartial is Enumerate with graceful degradation: when the
// exploration limit trips, it returns the maximal sets found so far and
// truncated = true instead of failing. A truncated result is still a
// sound basis for the paper's Sec. 3.3 LOWER bounds (every returned set
// is genuinely feasible and maximal); it must not be used where
// completeness matters (exact Eq. 6 optima, upper bounds).
func EnumeratePartial(m conflict.Model, links []topology.LinkID, opts Options) ([]Set, bool, error) {
	return enumerate(m, links, opts)
}

func enumerate(m conflict.Model, links []topology.LinkID, opts Options) ([]Set, bool, error) {
	universe := dedupSorted(links)
	var all []Set
	var err error
	if pm, ok := m.(*conflict.Physical); ok {
		all, err = enumeratePhysical(pm, universe, opts.limit())
	} else {
		all, err = enumerateGeneric(m, universe, opts.limit())
	}
	truncated := errors.Is(err, ErrLimit)
	if err != nil && !truncated {
		return nil, false, err
	}
	out := make([]Set, 0, len(all))
	for _, s := range all {
		if s.Len() == 0 {
			continue
		}
		if IsMaximal(m, s, universe) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, truncated, nil
}

// IsMaximal reports whether s is a maximal independent set over the
// given link universe: feasible, rate-maximal and link-maximal.
func IsMaximal(m conflict.Model, s Set, universe []topology.LinkID) bool {
	if s.Len() == 0 || !conflict.Feasible(m, s.Couples) {
		return false
	}
	// Rate-maximality: raising any member's rate one step must break
	// feasibility.
	for i, c := range s.Couples {
		for _, r := range m.Rates(c.Link) { // descending
			if r <= c.Rate {
				break
			}
			cand := make([]conflict.Couple, len(s.Couples))
			copy(cand, s.Couples)
			cand[i] = conflict.Couple{Link: c.Link, Rate: r}
			if conflict.Feasible(m, cand) {
				return false
			}
		}
	}
	// Link-maximality: no outside link can join at any positive rate
	// with every member keeping its current rate.
	member := make(map[topology.LinkID]bool, s.Len())
	for _, c := range s.Couples {
		member[c.Link] = true
	}
	for _, l := range universe {
		if member[l] {
			continue
		}
		for _, r := range m.Rates(l) {
			cand := make([]conflict.Couple, 0, s.Len()+1)
			cand = append(cand, s.Couples...)
			cand = append(cand, conflict.Couple{Link: l, Rate: r})
			if conflict.Feasible(m, cand) {
				return false
			}
		}
	}
	return true
}

// enumeratePhysical walks link subsets; under the physical model the
// maximum supported rate vector is a function of membership, and
// interference only grows with additions, so infeasible subsets prune
// their supersets.
func enumeratePhysical(m *conflict.Physical, universe []topology.LinkID, limit int) ([]Set, error) {
	var out []Set
	var members []topology.LinkID
	var rec func(start int) error
	rec = func(start int) error {
		if len(members) > 0 {
			rates, ok := m.MaxRateVector(members)
			if !ok {
				return nil // some member silenced: prune subtree
			}
			couples := make([]conflict.Couple, len(members))
			for i, l := range members {
				couples[i] = conflict.Couple{Link: l, Rate: rates[i]}
			}
			out = append(out, NewSet(couples...))
			if len(out) > limit {
				return ErrLimit
			}
		}
		for i := start; i < len(universe); i++ {
			members = append(members, universe[i])
			err := rec(i + 1)
			members = members[:len(members)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return out, err
	}
	return out, nil
}

// enumerateGeneric walks (link, rate) couple assignments in link order.
// It requires the model's feasibility to be downward monotone in set
// inclusion (true for the pairwise Table and Protocol models).
func enumerateGeneric(m conflict.Model, universe []topology.LinkID, limit int) ([]Set, error) {
	var out []Set
	var cur []conflict.Couple
	var rec func(idx int) error
	rec = func(idx int) error {
		if idx == len(universe) {
			if len(cur) > 0 {
				out = append(out, NewSet(cur...))
				if len(out) > limit {
					return ErrLimit
				}
			}
			return nil
		}
		// Exclude universe[idx].
		if err := rec(idx + 1); err != nil {
			return err
		}
		// Include at each rate that keeps the partial set feasible.
		for _, r := range m.Rates(universe[idx]) {
			cur = append(cur, conflict.Couple{Link: universe[idx], Rate: r})
			if conflict.Feasible(m, cur) {
				if err := rec(idx + 1); err != nil {
					cur = cur[:len(cur)-1]
					return err
				}
			}
			cur = cur[:len(cur)-1]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return out, err
	}
	return out, nil
}

func dedupSorted(links []topology.LinkID) []topology.LinkID {
	out := make([]topology.LinkID, 0, len(links))
	seen := make(map[topology.LinkID]bool, len(links))
	for _, l := range links {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
