// Package indepset enumerates the paper's rate-coupled independent sets
// (Sec. 2.4): sets of (link, rate) couples that can all transmit
// concurrently, together with the *maximal* ones that suffice for the
// feasibility condition (Propositions 1-3). A maximal independent set
// satisfies two conditions beyond feasibility:
//
//  1. rate-maximality — no single link's rate can be raised while the
//     rest of the set keeps its rates; and
//  2. link-maximality — no further link can be inserted at any positive
//     rate without lowering some member's rate.
//
// Unlike single-rate networks, a maximal set's link set may be a strict
// subset of another independent set's; the enumeration below preserves
// those (the paper's Scenario II depends on them).
//
// Maximality is decided during the DFS itself: the single-link and
// single-rate extensions that could disqualify a subset are exactly the
// kind of children the walk visits anyway, so each explored feasible set
// is tested in place against incrementally maintained state instead of
// being materialized and re-verified from scratch afterwards. The
// physical model keeps running per-receiver interference sums
// (conflict.SetTracker); pairwise models (conflict.PairwiseModel) keep
// per-link bitmasks of the rates still clearing every member, so a push
// only checks the newly added couple against the current members.
// Models that are neither fall back to the brute-force walk.
package indepset

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// Set is an independent set: couples sorted by link ID.
type Set struct {
	Couples []conflict.Couple

	// key caches Key(); enumeration fills it while sorting the final
	// family so downstream LP construction reuses it for free.
	key string
}

// NewSet builds a Set from couples, sorting them by link ID.
func NewSet(couples ...conflict.Couple) Set {
	cs := make([]conflict.Couple, len(couples))
	copy(cs, couples)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Link < cs[j].Link })
	return Set{Couples: cs}
}

// Rate returns the rate of the given link in the set, or 0 if the link
// is not a member. It binary-searches the (sorted) couples.
func (s Set) Rate(link topology.LinkID) radio.Rate {
	cs := s.Couples
	lo, hi := 0, len(cs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cs[mid].Link < link {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cs) && cs[lo].Link == link {
		return cs[lo].Rate
	}
	return 0
}

// Links returns the member link IDs in ascending order.
func (s Set) Links() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(s.Couples))
	for _, c := range s.Couples {
		out = append(out, c.Link)
	}
	return out
}

// Contains reports whether link is a member.
func (s Set) Contains(link topology.LinkID) bool { return s.Rate(link) > 0 }

// Len returns the number of couples.
func (s Set) Len() int { return len(s.Couples) }

// Key returns a canonical string identity for deduplication.
func (s Set) Key() string {
	if s.key != "" {
		return s.key
	}
	var b strings.Builder
	b.Grow(8 * len(s.Couples))
	for i, c := range s.Couples {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(int(c.Link)))
		b.WriteByte('@')
		// Integral rates below 1e6 print identically under %g and plain
		// decimal, skipping shortest-float formatting on the common case.
		if f := float64(c.Rate); f == float64(int(f)) && f >= 0 && f < 1e6 {
			b.WriteString(strconv.Itoa(int(f)))
		} else {
			b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		}
	}
	return b.String()
}

// String implements fmt.Stringer.
func (s Set) String() string {
	parts := make([]string, 0, len(s.Couples))
	for _, c := range s.Couples {
		parts = append(parts, c.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// RateVector returns the set's throughput-rate vector aligned with the
// given link universe (the R*_i of paper Eq. 4): entry j is the rate of
// universe[j] in the set, or 0.
func (s Set) RateVector(universe []topology.LinkID) []radio.Rate {
	out := make([]radio.Rate, len(universe))
	for j, l := range universe {
		out[j] = s.Rate(l)
	}
	return out
}

// ErrLimit is returned when enumeration exceeds the configured set
// limit; callers may treat partial enumerations as lower bounds
// (paper Sec. 3.3) but Enumerate refuses to return silently truncated
// results.
var ErrLimit = fmt.Errorf("indepset: enumeration limit exceeded")

// Options configure enumeration.
type Options struct {
	// Limit bounds the number of feasible sets explored; 0 means the
	// default of 1<<20. The bound is exact: the walk stops before
	// exploring set Limit+1, and a truncated EnumeratePartial hands back
	// at most Limit sets.
	Limit int
}

func (o Options) limit() int {
	if o.Limit <= 0 {
		return 1 << 20
	}
	return o.Limit
}

// Enumerate returns every maximal independent set (with maximum
// supported rate vectors) over the given links, in deterministic order.
// The empty set is never returned; if no link can transmit at all the
// result is empty.
func Enumerate(m conflict.Model, links []topology.LinkID, opts Options) ([]Set, error) {
	sets, truncated, err := enumerate(m, links, opts)
	if err != nil {
		return nil, err
	}
	if truncated {
		return nil, ErrLimit
	}
	return sets, nil
}

// EnumeratePartial is Enumerate with graceful degradation: when the
// exploration limit trips, it returns the maximal sets found so far and
// truncated = true instead of failing. A truncated result is still a
// sound basis for the paper's Sec. 3.3 LOWER bounds (every returned set
// is genuinely feasible and maximal); it must not be used where
// completeness matters (exact Eq. 6 optima, upper bounds).
func EnumeratePartial(m conflict.Model, links []topology.LinkID, opts Options) ([]Set, bool, error) {
	return enumerate(m, links, opts)
}

func enumerate(m conflict.Model, links []topology.LinkID, opts Options) ([]Set, bool, error) {
	universe := dedupSorted(links)
	var out []Set
	var err error
	switch mm := m.(type) {
	case *conflict.Physical:
		out, err = enumeratePhysical(mm, universe, opts.limit())
	case conflict.PairwiseModel:
		out, err = enumeratePairwise(mm, universe, opts.limit())
	default:
		out, err = enumerateFallback(m, universe, opts.limit())
	}
	truncated := errors.Is(err, ErrLimit)
	if err != nil && !truncated {
		return nil, false, err
	}
	sortByKey(out)
	return out, truncated, nil
}

func sortByKey(sets []Set) {
	for i := range sets {
		sets[i].key = sets[i].Key()
	}
	sort.Sort(setsByKey(sets))
}

type setsByKey []Set

func (s setsByKey) Len() int           { return len(s) }
func (s setsByKey) Less(i, j int) bool { return s[i].key < s[j].key }
func (s setsByKey) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// IsMaximal reports whether s is a maximal independent set over the
// given link universe: feasible, rate-maximal and link-maximal. It is
// the from-scratch reference predicate; the enumeration walks reach the
// same verdict from incremental state (see the equivalence property
// test).
func IsMaximal(m conflict.Model, s Set, universe []topology.LinkID) bool {
	if s.Len() == 0 || !conflict.Feasible(m, s.Couples) {
		return false
	}
	// Rate-maximality: raising any member's rate one step must break
	// feasibility.
	for i, c := range s.Couples {
		for _, r := range m.Rates(c.Link) { // descending
			if r <= c.Rate {
				break
			}
			cand := make([]conflict.Couple, len(s.Couples))
			copy(cand, s.Couples)
			cand[i] = conflict.Couple{Link: c.Link, Rate: r}
			if conflict.Feasible(m, cand) {
				return false
			}
		}
	}
	// Link-maximality: no outside link can join at any positive rate
	// with every member keeping its current rate.
	member := make(map[topology.LinkID]bool, s.Len())
	for _, c := range s.Couples {
		member[c.Link] = true
	}
	for _, l := range universe {
		if member[l] {
			continue
		}
		for _, r := range m.Rates(l) {
			cand := make([]conflict.Couple, 0, s.Len()+1)
			cand = append(cand, s.Couples...)
			cand = append(cand, conflict.Couple{Link: l, Rate: r})
			if conflict.Feasible(m, cand) {
				return false
			}
		}
	}
	return true
}

// enumeratePhysical walks link subsets; under the physical model the
// maximum supported rate vector is a function of membership, and
// interference only grows with additions, so infeasible subsets prune
// their supersets. Rate-maximality is automatic (every member already
// carries its maximum supported rate), and link-maximality is decided
// at each node from the tracker's running interference sums: an outside
// link joins exactly when it sustains some positive declared rate and
// lowers no member's rate.
func enumeratePhysical(m *conflict.Physical, universe []topology.LinkID, limit int) ([]Set, error) {
	n := len(universe)
	if n == 0 {
		return nil, nil
	}
	tr := m.NewSetTracker(universe)
	// minRate[i] is the lowest positive declared rate of universe[i]: the
	// weakest couple it could join a set with. Links with no positive
	// declared rate can never join (nor appear).
	minRate := make([]radio.Rate, n)
	for i, l := range universe {
		minRate[i] = m.MinPositiveRate(l)
	}

	var out []Set
	explored := 0
	members := make([]int, 0, n)
	isMember := make([]bool, n)
	rateBuf := make([]radio.Rate, n)
	var arena []conflict.Couple // chunked backing for materialized sets

	var rec func(start int) error
	rec = func(start int) error {
		if len(members) > 0 {
			// Feasibility: every member must keep a positive max rate.
			for d, mi := range members {
				r := tr.MaxRate(mi)
				if r == 0 {
					return nil // some member silenced: prune subtree
				}
				rateBuf[d] = r
			}
			if explored == limit {
				return ErrLimit
			}
			explored++
			if physicalMaximal(tr, members, isMember, rateBuf, minRate, n) {
				if cap(arena)-len(arena) < len(members) {
					arena = make([]conflict.Couple, 0, 16*n)
				}
				base := len(arena)
				for d, mi := range members {
					arena = append(arena, conflict.Couple{Link: universe[mi], Rate: rateBuf[d]})
				}
				couples := arena[base:len(arena):len(arena)]
				out = append(out, Set{Couples: couples}) // members ascend, so couples are sorted
			}
		}
		for i := start; i < n; i++ {
			tr.Push(i)
			members = append(members, i)
			isMember[i] = true
			err := rec(i + 1)
			isMember[i] = false
			members = members[:len(members)-1]
			tr.Pop()
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return out, err
	}
	return out, nil
}

// physicalMaximal reports link-maximality of the tracker's current
// member set (rates in rateBuf): no outside link may join at any
// positive declared rate while every member keeps its rate. Under the
// physical model a joining link can only lower member rates, so
// "keeps" means the recomputed rate with the joiner's interference
// added stays at least the current one.
func physicalMaximal(tr *conflict.SetTracker, members []int, isMember []bool, rateBuf, minRate []radio.Rate, n int) bool {
	for j := 0; j < n; j++ {
		if isMember[j] || minRate[j] == 0 {
			continue
		}
		if tr.MaxRate(j) < minRate[j] {
			continue // blocked or silenced: cannot join at any declared rate
		}
		joins := true
		for d, mi := range members {
			if tr.MaxRateJoined(mi, j) < rateBuf[d] {
				joins = false
				break
			}
		}
		if joins {
			return false
		}
	}
	return true
}

// enumeratePairwise walks (link, rate) couple assignments in link order
// for models whose feasibility decomposes pairwise. It maintains, for
// every universe link, a bitmask of the declared rates that still clear
// every current member (bit k = k-th declared rate, descending), so
// adding a couple only checks the new couple against current members,
// and leaf maximality is a handful of mask intersections instead of
// from-scratch feasibility calls.
func enumeratePairwise(m conflict.PairwiseModel, universe []topology.LinkID, limit int) ([]Set, error) {
	n := len(universe)
	if n == 0 {
		return nil, nil
	}
	// Positive declared rates per link, preserving the model's descending
	// order. Non-positive rates can never appear in a feasible couple.
	rates := make([][]radio.Rate, n)
	for i, l := range universe {
		for _, r := range m.Rates(l) {
			if r > 0 {
				rates[i] = append(rates[i], r)
			}
		}
		if len(rates[i]) > 64 {
			// Masks are uint64; absurd rate counts take the slow path.
			return enumerateFallback(m, universe, limit)
		}
	}
	// clear[i][j][rj] is the mask of link i's rates that clear the couple
	// (universe[j], rates[j][rj]). The diagonal is all-ones: a link never
	// constrains itself (MaxRate ignores couples on the queried link).
	clear := make([][][]uint64, n)
	for i := range clear {
		clear[i] = make([][]uint64, n)
		for j := range clear[i] {
			masks := make([]uint64, len(rates[j]))
			if i == j {
				for rj := range masks {
					masks[rj] = ^uint64(0)
				}
			} else {
				for rj := range masks {
					other := conflict.Couple{Link: universe[j], Rate: rates[j][rj]}
					var bm uint64
					for ri, r := range rates[i] {
						if m.RateClears(universe[i], r, other) {
							bm |= 1 << uint(ri)
						}
					}
					masks[rj] = bm
				}
			}
			clear[i][j] = masks
		}
	}

	avail := make([]uint64, n) // rates of each link clearing every member
	for i := range avail {
		avail[i] = (uint64(1) << uint(len(rates[i]))) - 1
	}
	saved := make([][]uint64, n)
	for d := range saved {
		saved[d] = make([]uint64, n)
	}
	type member struct {
		pos int
		ri  int
		ge  uint64 // mask of declared rates at least the chosen one
	}
	members := make([]member, 0, n)
	isMember := make([]bool, n)

	maximal := func() bool {
		// Rate-maximality: some member could be raised to a higher
		// declared rate with every other member keeping its rate.
		for ii := range members {
			a := &members[ii]
			// The member itself sustains a raise to index rj exactly when
			// some still-clearing rate is at least rates[a.pos][rj], i.e.
			// rj is at or below the best clearing rate.
			for rj := bits.TrailingZeros64(avail[a.pos]); rj < a.ri; rj++ {
				ok := true
				for jj := range members {
					if jj == ii {
						continue
					}
					b := &members[jj]
					// b's rates clearing every member except a, plus a at
					// its raised rate.
					mask := clear[b.pos][a.pos][rj]
					for kk := range members {
						if kk == ii || kk == jj {
							continue
						}
						c := &members[kk]
						mask &= clear[b.pos][c.pos][c.ri]
					}
					if mask&b.ge == 0 {
						ok = false
						break
					}
				}
				if ok {
					return false
				}
			}
		}
		// Link-maximality: some outside link could join at a declared
		// rate with every member keeping its rate.
		for j := 0; j < n; j++ {
			if isMember[j] || avail[j] == 0 {
				continue
			}
			for rj := bits.TrailingZeros64(avail[j]); rj < len(rates[j]); rj++ {
				ok := true
				for ii := range members {
					a := &members[ii]
					if avail[a.pos]&clear[a.pos][j][rj]&a.ge == 0 {
						ok = false
						break
					}
				}
				if ok {
					return false
				}
			}
		}
		return true
	}

	var out []Set
	explored := 0
	var rec func(idx int) error
	rec = func(idx int) error {
		if idx == n {
			if len(members) == 0 {
				return nil
			}
			if explored == limit {
				return ErrLimit
			}
			explored++
			if maximal() {
				couples := make([]conflict.Couple, len(members))
				for d := range members {
					a := &members[d]
					couples[d] = conflict.Couple{Link: universe[a.pos], Rate: rates[a.pos][a.ri]}
				}
				out = append(out, Set{Couples: couples}) // idx order = link order
			}
			return nil
		}
		// Exclude universe[idx].
		if err := rec(idx + 1); err != nil {
			return err
		}
		// Include at each rate that keeps the partial set feasible: the
		// new couple must be sustainable against the members (some
		// clearing rate at or above it) and every member must retain a
		// clearing rate at or above its own.
		for ri := range rates[idx] {
			ge := (uint64(1) << uint(ri+1)) - 1
			if avail[idx]&ge == 0 {
				continue
			}
			feasible := true
			for ii := range members {
				a := &members[ii]
				if avail[a.pos]&clear[a.pos][idx][ri]&a.ge == 0 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			d := len(members)
			copy(saved[d], avail)
			for j := 0; j < n; j++ {
				avail[j] &= clear[j][idx][ri]
			}
			members = append(members, member{pos: idx, ri: ri, ge: ge})
			isMember[idx] = true
			err := rec(idx + 1)
			isMember[idx] = false
			members = members[:d]
			copy(avail, saved[d])
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return out, err
	}
	return out, nil
}

// enumerateFallback is the brute-force walk for models that are neither
// physical nor pairwise: it materializes every feasible couple
// assignment (feasibility must be downward monotone in set inclusion)
// and post-filters with the reference IsMaximal predicate.
func enumerateFallback(m conflict.Model, universe []topology.LinkID, limit int) ([]Set, error) {
	var all []Set
	var cur []conflict.Couple
	var rec func(idx int) error
	rec = func(idx int) error {
		if idx == len(universe) {
			if len(cur) > 0 {
				if len(all) == limit {
					return ErrLimit
				}
				all = append(all, NewSet(cur...))
			}
			return nil
		}
		// Exclude universe[idx].
		if err := rec(idx + 1); err != nil {
			return err
		}
		// Include at each rate that keeps the partial set feasible.
		for _, r := range m.Rates(universe[idx]) {
			cur = append(cur, conflict.Couple{Link: universe[idx], Rate: r})
			if conflict.Feasible(m, cur) {
				if err := rec(idx + 1); err != nil {
					cur = cur[:len(cur)-1]
					return err
				}
			}
			cur = cur[:len(cur)-1]
		}
		return nil
	}
	err := rec(0)
	if err != nil && !errors.Is(err, ErrLimit) {
		return nil, err
	}
	out := make([]Set, 0, len(all))
	for _, s := range all {
		if s.Len() == 0 {
			continue
		}
		if IsMaximal(m, s, universe) {
			out = append(out, s)
		}
	}
	return out, err
}

func dedupSorted(links []topology.LinkID) []topology.LinkID {
	out := make([]topology.LinkID, len(links))
	copy(out, links)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, l := range out {
		if i == 0 || l != out[w-1] {
			out[w] = l
			w++
		}
	}
	return out[:w]
}
