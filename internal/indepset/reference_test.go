package indepset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/topology"
)

// referenceEnumerate is the brute-force reference the incremental DFS
// walks are gated against: materialize every feasible couple assignment
// with from-scratch conflict.Feasible checks, post-filter with the
// reference IsMaximal predicate, and sort by Key. Any divergence from
// Enumerate is a bug in the incremental maximality/feasibility state.
func referenceEnumerate(t *testing.T, m conflict.Model, links []topology.LinkID) []Set {
	t.Helper()
	universe := dedupSorted(links)
	var all []Set
	var cur []conflict.Couple
	var rec func(idx int)
	rec = func(idx int) {
		if idx == len(universe) {
			if len(cur) > 0 {
				all = append(all, NewSet(cur...))
			}
			return
		}
		rec(idx + 1)
		for _, r := range m.Rates(universe[idx]) {
			cur = append(cur, conflict.Couple{Link: universe[idx], Rate: r})
			if conflict.Feasible(m, cur) {
				rec(idx + 1)
			}
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	var out []Set
	for _, s := range all {
		if IsMaximal(m, s, universe) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// assertSameFamily checks that Enumerate returns exactly the reference
// set family (same Key multiset, same order).
func assertSameFamily(t *testing.T, m conflict.Model, links []topology.LinkID, label string) {
	t.Helper()
	got, err := Enumerate(m, links, Options{})
	if err != nil {
		t.Fatalf("%s: Enumerate: %v", label, err)
	}
	want := referenceEnumerate(t, m, links)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d maximal sets %v, reference has %d %v",
			label, len(got), keys(got), len(want), keys(want))
	}
	if !reflect.DeepEqual(keys(got), keys(want)) {
		t.Fatalf("%s: set families differ:\n got  %v\n want %v", label, keys(got), keys(want))
	}
}

// cappedLinks bounds the universe so the brute-force reference stays
// tractable.
func cappedLinks(net *topology.Network, max int) []topology.LinkID {
	var out []topology.LinkID
	for _, l := range net.Links() {
		if len(out) == max {
			break
		}
		out = append(out, l.ID)
	}
	return out
}

func TestEquivalencePhysicalRandomTopologies(t *testing.T) {
	prof := radio.NewProfile80211a()
	for seed := int64(1); seed <= 12; seed++ {
		net, err := topology.Random(prof, geom.Rect{W: 350, H: 350}, 6, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		links := cappedLinks(net, 8)
		if len(links) == 0 {
			continue
		}
		assertSameFamily(t, conflict.NewPhysical(net), links, "physical random")
	}
}

func TestEquivalenceProtocolRandomTopologies(t *testing.T) {
	prof := radio.NewProfile80211a()
	for seed := int64(1); seed <= 12; seed++ {
		net, err := topology.Random(prof, geom.Rect{W: 350, H: 350}, 6, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		links := cappedLinks(net, 8)
		if len(links) == 0 {
			continue
		}
		assertSameFamily(t, conflict.NewProtocol(net), links, "protocol random")
	}
}

func TestEquivalenceChains(t *testing.T) {
	prof := radio.NewProfile80211a()
	for _, spacing := range []float64{60, 80, 100, 120, 150} {
		for _, hops := range []int{3, 5, 7} {
			net, path, err := topology.Chain(prof, hops, spacing)
			if err != nil {
				t.Fatalf("chain(%d, %g): %v", hops, spacing, err)
			}
			links := []topology.LinkID(path)
			assertSameFamily(t, conflict.NewPhysical(net), links, "physical chain")
			assertSameFamily(t, conflict.NewProtocol(net), links, "protocol chain")
		}
	}
}

func TestEquivalenceRandomTables(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rates := []radio.Rate{54, 36, 18}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		tb := conflict.NewTable()
		var links []topology.LinkID
		for i := topology.LinkID(0); int(i) < n; i++ {
			// Vary per-link rate counts so some links only support a
			// subset of the rate classes.
			tb.SetRates(i, rates[:1+rng.Intn(len(rates))]...)
			links = append(links, i)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for _, ri := range tb.Rates(topology.LinkID(i)) {
					for _, rj := range tb.Rates(topology.LinkID(j)) {
						if rng.Float64() < 0.45 {
							if err := tb.AddConflict(topology.LinkID(i), ri, topology.LinkID(j), rj); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
			}
		}
		assertSameFamily(t, tb, links, "random table")
	}
}

// opaque hides a model's dynamic type behind explicit forwarding methods
// so it satisfies neither *Physical nor PairwiseModel: enumeration must
// take the brute-force fallback path. (A struct embedding would promote
// RateClears and defeat the point.)
type opaque struct{ m conflict.Model }

func (o opaque) MaxRate(link topology.LinkID, concurrent []conflict.Couple) radio.Rate {
	return o.m.MaxRate(link, concurrent)
}
func (o opaque) Rates(link topology.LinkID) []radio.Rate { return o.m.Rates(link) }

func TestEquivalenceFallbackPath(t *testing.T) {
	// FixedRates is genuinely non-pairwise (its MaxRate depends on the
	// jointly chosen substitute rates), and opaque-wrapped models force
	// the generic walk; both must agree with the reference.
	prof := radio.NewProfile80211a()
	net, path, err := topology.Chain(prof, 5, 80)
	if err != nil {
		t.Fatal(err)
	}
	links := []topology.LinkID(path)
	phys := conflict.NewPhysical(net)

	fixed := conflict.FixRates(phys, []conflict.Couple{{Link: links[0], Rate: 18}, {Link: links[2], Rate: 6}, {Link: links[4], Rate: 18}})
	assertSameFamily(t, fixed, links, "fixed rates")

	assertSameFamily(t, opaque{m: phys}, links, "opaque physical")

	// The fallback and incremental paths must also agree with each other.
	direct, err := Enumerate(phys, links, Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaFallback, err := Enumerate(opaque{m: phys}, links, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys(direct), keys(viaFallback)) {
		t.Fatalf("incremental path %v != fallback path %v", keys(direct), keys(viaFallback))
	}
}
