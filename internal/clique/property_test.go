package clique

import (
	"errors"
	"math/rand"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/topology"
)

// randomGeomModel builds a physical model over a small random layout
// and returns all its link IDs.
func randomGeomModel(t *testing.T, seed int64, nodes int) (*conflict.Physical, []topology.LinkID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := topology.New(radio.NewProfile80211a(),
		geom.UniformPoints(rng, geom.Rect{W: 250, H: 250}, nodes))
	if err != nil {
		t.Fatal(err)
	}
	links := make([]topology.LinkID, 0, net.NumLinks())
	for _, l := range net.Links() {
		links = append(links, l.ID)
	}
	return conflict.NewPhysical(net), links
}

// TestMaximalCliquesPropertyPhysical checks enumeration invariants on
// random geometric networks: every result is a clique, is maximal, and
// no duplicates appear.
func TestMaximalCliquesPropertyPhysical(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		m, links := randomGeomModel(t, seed, 5)
		if len(links) == 0 {
			continue
		}
		if len(links) > 12 {
			links = links[:12] // keep the couple graph small enough to enumerate
		}
		cliques, err := MaximalCliques(m, links, Options{Limit: 200000})
		if errors.Is(err, ErrLimit) {
			continue // adversarially dense draw; covered by other seeds
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seen := map[string]bool{}
		for _, c := range cliques {
			if !IsClique(m, c.Couples) {
				t.Errorf("seed %d: %v is not a clique", seed, c)
			}
			if !IsMaximal(m, c, links) {
				t.Errorf("seed %d: %v is not maximal", seed, c)
			}
			if seen[c.Key()] {
				t.Errorf("seed %d: duplicate clique %v", seed, c)
			}
			seen[c.Key()] = true
		}
		// Completeness: every couple that interferes with nothing...
		// every (link, alone-rate) couple must appear in some maximal
		// clique (singletons count when nothing interferes).
		for _, l := range links {
			for _, r := range m.Rates(l) {
				found := false
				for _, c := range cliques {
					//lint:ignore abw/floateq cliques copy declared rates unmodified; exact membership test
					if c.Rate(l) == r {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("seed %d: couple (L%d,%v) in no maximal clique", seed, l, r)
				}
			}
		}
	}
}

// TestLocalCliquesCoverEveryHop checks that on any path, every hop
// appears in at least one local clique and consecutive hops share one
// (adjacent links always interfere through their common node).
func TestLocalCliquesCoverEveryHop(t *testing.T) {
	for _, spacing := range []float64{50, 80, 100, 120} {
		net, path, err := topology.Chain(radio.NewProfile80211a(), 5, spacing)
		if err != nil {
			t.Fatal(err)
		}
		m := conflict.NewPhysical(net)
		rates := make([]radio.Rate, len(path))
		for i, l := range path {
			rates[i] = conflict.AloneMaxRate(m, l)
		}
		cliques, err := LocalCliques(m, path, rates)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range path {
			found := false
			for _, c := range cliques {
				if c.Contains(l) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("spacing %g: hop %d in no local clique", spacing, i)
			}
		}
		for i := 0; i+1 < len(path); i++ {
			shared := false
			for _, c := range cliques {
				if c.Contains(path[i]) && c.Contains(path[i+1]) {
					shared = true
					break
				}
			}
			if !shared {
				t.Errorf("spacing %g: hops %d,%d share no local clique", spacing, i, i+1)
			}
		}
	}
}

// TestCliqueBoundMatchesBruteForceTimeShare checks on random demand
// vectors that TransmissionTime equals the straightforward sum.
func TestCliqueBoundMatchesBruteForceTimeShare(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		couples := make([]conflict.Couple, 0, n)
		rates := []radio.Rate{54, 36, 18, 6}
		demands := map[topology.LinkID]float64{}
		want := 0.0
		for i := 0; i < n; i++ {
			r := rates[rng.Intn(len(rates))]
			d := rng.Float64() * 20
			couples = append(couples, conflict.Couple{Link: topology.LinkID(i), Rate: r})
			demands[topology.LinkID(i)] = d
			want += d / float64(r)
		}
		c := New(couples...)
		got := c.TransmissionTime(func(l topology.LinkID) float64 { return demands[l] })
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("trial %d: transmission time %.12f, want %.12f", trial, got, want)
		}
	}
}
