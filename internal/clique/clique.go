// Package clique implements the paper's rate-coupled cliques (Sec. 3.1):
// sets of (link, rate) couples — at most one couple per link — in which
// every two couples interfere with each other. It provides maximal
// clique enumeration over the full couple universe (Bron-Kerbosch with
// pivoting), maximal cliques *with maximum rates*, per-rate-vector
// cliques (the C_ij of Sec. 3.2), clique transmission times, and the
// local interference cliques used by the distributed estimators (Sec. 4).
package clique

import (
	"fmt"
	"sort"
	"strings"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// Clique is a set of mutually interfering couples, sorted by link ID.
type Clique struct {
	Couples []conflict.Couple
}

// New builds a Clique from couples, sorting them by link ID.
func New(couples ...conflict.Couple) Clique {
	cs := make([]conflict.Couple, len(couples))
	copy(cs, couples)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Link < cs[j].Link })
	return Clique{Couples: cs}
}

// Len returns the number of couples.
func (c Clique) Len() int { return len(c.Couples) }

// Rate returns the rate of link in the clique, or 0 if absent.
func (c Clique) Rate(link topology.LinkID) radio.Rate {
	for _, cp := range c.Couples {
		if cp.Link == link {
			return cp.Rate
		}
	}
	return 0
}

// Contains reports whether link is a member.
func (c Clique) Contains(link topology.LinkID) bool { return c.Rate(link) > 0 }

// Links returns member link IDs in ascending order.
func (c Clique) Links() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(c.Couples))
	for _, cp := range c.Couples {
		out = append(out, cp.Link)
	}
	return out
}

// Key returns a canonical identity string for deduplication.
func (c Clique) Key() string {
	var b strings.Builder
	for i, cp := range c.Couples {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d@%g", cp.Link, float64(cp.Rate))
	}
	return b.String()
}

// String implements fmt.Stringer.
func (c Clique) String() string {
	parts := make([]string, 0, len(c.Couples))
	for _, cp := range c.Couples {
		parts = append(parts, cp.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// TransmissionTime returns the clique time share sum_i y_i / r_i for the
// given per-link demands (the T_ij of Sec. 3.2; with unit demands it is
// the clique transmission time T-hat of Eq. 7). Links with zero demand
// contribute nothing.
func (c Clique) TransmissionTime(demand func(topology.LinkID) float64) float64 {
	total := 0.0
	for _, cp := range c.Couples {
		if cp.Rate <= 0 {
			continue
		}
		total += demand(cp.Link) / float64(cp.Rate)
	}
	return total
}

// UnitTransmissionTime is TransmissionTime with unit demand on every
// member link: sum_i 1/r_i (Eq. 7's T-hat).
func (c Clique) UnitTransmissionTime() float64 {
	return c.TransmissionTime(func(topology.LinkID) float64 { return 1 })
}

// IsClique reports whether every two distinct-link couples in the set
// interfere under m and no link repeats.
func IsClique(m conflict.Model, couples []conflict.Couple) bool {
	seen := make(map[topology.LinkID]bool, len(couples))
	for _, cp := range couples {
		if cp.Rate <= 0 || seen[cp.Link] {
			return false
		}
		seen[cp.Link] = true
	}
	for i := 0; i < len(couples); i++ {
		for j := i + 1; j < len(couples); j++ {
			if !conflict.Interferes(m, couples[i], couples[j]) {
				return false
			}
		}
	}
	return true
}

// ErrLimit is returned when enumeration exceeds the configured limit.
var ErrLimit = fmt.Errorf("clique: enumeration limit exceeded")

// Options configure enumeration.
type Options struct {
	// Limit bounds the number of maximal cliques; 0 means 1<<20.
	Limit int
}

func (o Options) limit() int {
	if o.Limit <= 0 {
		return 1 << 20
	}
	return o.Limit
}

// coupleGraph is an adjacency structure over an indexed couple universe.
type coupleGraph struct {
	couples []conflict.Couple
	adj     [][]bool
}

func newCoupleGraph(m conflict.Model, couples []conflict.Couple) *coupleGraph {
	g := &coupleGraph{couples: couples, adj: make([][]bool, len(couples))}
	for i := range couples {
		g.adj[i] = make([]bool, len(couples))
	}
	for i := 0; i < len(couples); i++ {
		for j := i + 1; j < len(couples); j++ {
			if couples[i].Link == couples[j].Link {
				continue // one couple per link: same-link couples never adjacent
			}
			if conflict.Interferes(m, couples[i], couples[j]) {
				g.adj[i][j] = true
				g.adj[j][i] = true
			}
		}
	}
	return g
}

// maximalCliques runs Bron-Kerbosch with pivoting over g.
func (g *coupleGraph) maximalCliques(limit int) ([][]int, error) {
	var out [][]int
	n := len(g.couples)
	p := make([]int, 0, n)
	for i := 0; i < n; i++ {
		p = append(p, i)
	}
	var rec func(r, p, x []int) error
	rec = func(r, p, x []int) error {
		if len(p) == 0 && len(x) == 0 {
			clique := make([]int, len(r))
			copy(clique, r)
			out = append(out, clique)
			if len(out) > limit {
				return ErrLimit
			}
			return nil
		}
		// Pivot: vertex of p ∪ x with the most neighbors in p.
		pivot, best := -1, -1
		for _, u := range p {
			if d := g.degreeIn(u, p); d > best {
				pivot, best = u, d
			}
		}
		for _, u := range x {
			if d := g.degreeIn(u, p); d > best {
				pivot, best = u, d
			}
		}
		cand := make([]int, 0, len(p))
		for _, v := range p {
			if pivot < 0 || !g.adj[pivot][v] {
				cand = append(cand, v)
			}
		}
		for _, v := range cand {
			newP := g.intersectNeighbors(p, v)
			newX := g.intersectNeighbors(x, v)
			if err := rec(append(r, v), newP, newX); err != nil {
				return err
			}
			p = remove(p, v)
			x = append(x, v)
		}
		return nil
	}
	if err := rec(nil, p, nil); err != nil {
		return nil, err
	}
	return out, nil
}

func (g *coupleGraph) degreeIn(u int, set []int) int {
	d := 0
	for _, v := range set {
		if g.adj[u][v] {
			d++
		}
	}
	return d
}

func (g *coupleGraph) intersectNeighbors(set []int, v int) []int {
	out := make([]int, 0, len(set))
	for _, u := range set {
		if g.adj[v][u] {
			out = append(out, u)
		}
	}
	return out
}

func remove(set []int, v int) []int {
	out := set[:0]
	for _, u := range set {
		if u != v {
			out = append(out, u)
		}
	}
	return out
}

// coupleUniverse lists every (link, alone-rate) couple of the given
// links under m.
func coupleUniverse(m conflict.Model, links []topology.LinkID) []conflict.Couple {
	var out []conflict.Couple
	for _, l := range dedupSorted(links) {
		for _, r := range m.Rates(l) {
			out = append(out, conflict.Couple{Link: l, Rate: r})
		}
	}
	return out
}

// MaximalCliques enumerates the paper's maximal cliques over the given
// links: cliques of couples to which no couple of a new link can be
// added (Sec. 3.1). Results are deterministic.
func MaximalCliques(m conflict.Model, links []topology.LinkID, opts Options) ([]Clique, error) {
	universe := coupleUniverse(m, links)
	g := newCoupleGraph(m, universe)
	raw, err := g.maximalCliques(opts.limit())
	if err != nil {
		return nil, err
	}
	out := make([]Clique, 0, len(raw))
	for _, idxs := range raw {
		cs := make([]conflict.Couple, 0, len(idxs))
		for _, i := range idxs {
			cs = append(cs, universe[i])
		}
		out = append(out, New(cs...))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// IsMaximal reports whether c is a maximal clique over the given links:
// a clique that no couple of a non-member link extends.
func IsMaximal(m conflict.Model, c Clique, links []topology.LinkID) bool {
	if c.Len() == 0 || !IsClique(m, c.Couples) {
		return false
	}
	for _, l := range dedupSorted(links) {
		if c.Contains(l) {
			continue
		}
		for _, r := range m.Rates(l) {
			cand := make([]conflict.Couple, 0, c.Len()+1)
			cand = append(cand, c.Couples...)
			cand = append(cand, conflict.Couple{Link: l, Rate: r})
			if IsClique(m, cand) {
				return false
			}
		}
	}
	return true
}

// MaximalWithMaxRates filters maximal cliques down to the paper's
// "maximal cliques with maximum rates": cliques that stop being maximal
// cliques when any member's rate is raised to a higher alone-rate.
func MaximalWithMaxRates(m conflict.Model, cliques []Clique, links []topology.LinkID) []Clique {
	var out []Clique
	for _, c := range cliques {
		if isMaxRates(m, c, links) {
			out = append(out, c)
		}
	}
	return out
}

func isMaxRates(m conflict.Model, c Clique, links []topology.LinkID) bool {
	for i, cp := range c.Couples {
		for _, r := range m.Rates(cp.Link) { // descending
			if r <= cp.Rate {
				break
			}
			cand := make([]conflict.Couple, c.Len())
			copy(cand, c.Couples)
			cand[i] = conflict.Couple{Link: cp.Link, Rate: r}
			if IsClique(m, cand) && IsMaximal(m, New(cand...), links) {
				return false
			}
		}
	}
	return true
}

// CliquesForRateVector enumerates the maximal cliques C_ij of Sec. 3.2:
// the rate of every link is fixed by the given assignment (one couple
// per link) and cliques are maximal within that restricted universe.
func CliquesForRateVector(m conflict.Model, assignment []conflict.Couple, opts Options) ([]Clique, error) {
	seen := make(map[topology.LinkID]bool, len(assignment))
	for _, cp := range assignment {
		if seen[cp.Link] {
			return nil, fmt.Errorf("clique: link %d assigned twice", cp.Link)
		}
		seen[cp.Link] = true
	}
	g := newCoupleGraph(m, assignment)
	raw, err := g.maximalCliques(opts.limit())
	if err != nil {
		return nil, err
	}
	out := make([]Clique, 0, len(raw))
	for _, idxs := range raw {
		cs := make([]conflict.Couple, 0, len(idxs))
		for _, i := range idxs {
			cs = append(cs, assignment[i])
		}
		out = append(out, New(cs...))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// LocalCliques returns the path's local interference cliques (Sec. 4):
// maximal runs of consecutive path links that pairwise interfere at the
// given per-hop rates. rates[i] is the rate of path[i].
func LocalCliques(m conflict.Model, path []topology.LinkID, rates []radio.Rate) ([]Clique, error) {
	if len(path) != len(rates) {
		return nil, fmt.Errorf("clique: path has %d links but %d rates", len(path), len(rates))
	}
	if len(path) == 0 {
		return nil, fmt.Errorf("clique: empty path")
	}
	couples := make([]conflict.Couple, len(path))
	for i := range path {
		couples[i] = conflict.Couple{Link: path[i], Rate: rates[i]}
	}
	// ext[i] = largest j such that path[i..j] pairwise interfere.
	ext := make([]int, len(path))
	for i := range path {
		j := i
		for j+1 < len(path) {
			ok := true
			for k := i; k <= j; k++ {
				if !conflict.Interferes(m, couples[k], couples[j+1]) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			j++
		}
		ext[i] = j
	}
	// Keep runs not contained in an earlier longer run.
	var out []Clique
	for i := range path {
		if i > 0 && ext[i-1] >= ext[i] {
			continue // contained in the previous run
		}
		out = append(out, New(couples[i:ext[i]+1]...))
	}
	return out, nil
}

func dedupSorted(links []topology.LinkID) []topology.LinkID {
	out := make([]topology.LinkID, 0, len(links))
	seen := make(map[topology.LinkID]bool, len(links))
	for _, l := range links {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
