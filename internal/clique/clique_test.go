package clique

import (
	"math"
	"testing"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/topology"
)

func TestScenarioIIMaximalCliques(t *testing.T) {
	s := scenario.NewScenarioII()
	cliques, err := MaximalCliques(s.Model, s.Links(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 8 four-link cliques with L1@54 (2^3 rate combos of L2..L4) plus 4
	// three-link cliques {L1@36, L2@*, L3@*}.
	if len(cliques) != 12 {
		t.Errorf("got %d maximal cliques, want 12: %v", len(cliques), cliqueKeys(cliques))
	}
	for _, c := range cliques {
		if !IsClique(s.Model, c.Couples) {
			t.Errorf("%v is not a clique", c)
		}
		if !IsMaximal(s.Model, c, s.Links()) {
			t.Errorf("%v is not maximal", c)
		}
	}
}

func TestScenarioIIMaximalWithMaxRates(t *testing.T) {
	// The paper's Sec. 3.1 example: both {(L1,54),(L2,54),(L3,54),(L4,54)}
	// and {(L1,36),(L2,54),(L3,54)} are maximal cliques with maximum
	// rates — and they are the only ones.
	s := scenario.NewScenarioII()
	cliques, err := MaximalCliques(s.Model, s.Links(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxRates := MaximalWithMaxRates(s.Model, cliques, s.Links())
	got := map[string]bool{}
	for _, c := range maxRates {
		got[c.Key()] = true
	}
	if !got["0@54|1@54|2@54|3@54"] {
		t.Errorf("missing all-54 clique; got %v", cliqueKeys(maxRates))
	}
	if !got["0@36|1@54|2@54"] {
		t.Errorf("missing {(L1,36),(L2,54),(L3,54)}; got %v", cliqueKeys(maxRates))
	}
	if len(maxRates) != 2 {
		t.Errorf("got %d maximal-with-max-rates cliques %v, want 2", len(maxRates), cliqueKeys(maxRates))
	}
}

func TestScenarioIIPaperCliqueExamples(t *testing.T) {
	// Direct checks of the three Sec. 3.1 statements.
	s := scenario.NewScenarioII()
	all54Three := []conflict.Couple{{Link: s.L1, Rate: 54}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}}
	if !IsClique(s.Model, all54Three) {
		t.Error("{(L1,54),(L2,54),(L3,54)} should be a clique")
	}
	if IsMaximal(s.Model, New(all54Three...), s.Links()) {
		t.Error("{(L1,54),(L2,54),(L3,54)} should NOT be maximal — (L4,54) extends it")
	}
	all36Three := []conflict.Couple{{Link: s.L1, Rate: 36}, {Link: s.L2, Rate: 36}, {Link: s.L3, Rate: 36}}
	if !IsMaximal(s.Model, New(all36Three...), s.Links()) {
		t.Error("{(L1,36),(L2,36),(L3,36)} should be maximal")
	}
	if len(MaximalWithMaxRates(s.Model, []Clique{New(all36Three...)}, s.Links())) != 0 {
		t.Error("{(L1,36),(L2,36),(L3,36)} should not have maximum rates")
	}
}

func TestUnitTransmissionTime(t *testing.T) {
	c := New(
		conflict.Couple{Link: 0, Rate: 36},
		conflict.Couple{Link: 1, Rate: 54},
		conflict.Couple{Link: 2, Rate: 54},
	)
	// 1/36 + 2/54 = 7/108: the paper's R2 clique bound denominator.
	want := 1.0/36 + 2.0/54
	if got := c.UnitTransmissionTime(); math.Abs(got-want) > 1e-12 {
		t.Errorf("UnitTransmissionTime = %v, want %v", got, want)
	}
	// The paper's bound: 1/T = 108/7 ~ 15.43.
	if got := 1 / c.UnitTransmissionTime(); math.Abs(got-108.0/7) > 1e-9 {
		t.Errorf("1/T = %v, want 108/7", got)
	}
}

func TestTransmissionTimeWithDemand(t *testing.T) {
	c := New(
		conflict.Couple{Link: 0, Rate: 54},
		conflict.Couple{Link: 1, Rate: 54},
		conflict.Couple{Link: 2, Rate: 54},
		conflict.Couple{Link: 3, Rate: 54},
	)
	// Scenario II optimum f = 16.2 on the all-54 clique: T = 4*16.2/54 = 1.2.
	got := c.TransmissionTime(func(topology.LinkID) float64 { return 16.2 })
	if math.Abs(got-1.2) > 1e-12 {
		t.Errorf("TransmissionTime = %v, want 1.2 (the paper's violated clique constraint)", got)
	}
}

func TestCliquesForRateVector(t *testing.T) {
	s := scenario.NewScenarioII()
	// R2 = {36, 54, 54, 54}: maximal cliques are {L1,L2,L3} and {L2,L3,L4}.
	assignment := []conflict.Couple{
		{Link: s.L1, Rate: 36}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}, {Link: s.L4, Rate: 54},
	}
	cliques, err := CliquesForRateVector(s.Model, assignment, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, c := range cliques {
		got[c.Key()] = true
	}
	if !got["0@36|1@54|2@54"] || !got["1@54|2@54|3@54"] || len(cliques) != 2 {
		t.Errorf("R2 cliques = %v, want {L1,L2,L3} and {L2,L3,L4}", cliqueKeys(cliques))
	}

	// R1 = all 54: single maximal clique of all four links.
	assignment54 := []conflict.Couple{
		{Link: s.L1, Rate: 54}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}, {Link: s.L4, Rate: 54},
	}
	cliques54, err := CliquesForRateVector(s.Model, assignment54, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques54) != 1 || cliques54[0].Len() != 4 {
		t.Errorf("R1 cliques = %v, want one clique of 4 links", cliqueKeys(cliques54))
	}
}

func TestCliquesForRateVectorDuplicateLink(t *testing.T) {
	s := scenario.NewScenarioII()
	_, err := CliquesForRateVector(s.Model, []conflict.Couple{
		{Link: s.L1, Rate: 36}, {Link: s.L1, Rate: 54},
	}, Options{})
	if err == nil {
		t.Error("duplicate link in assignment: expected error")
	}
}

func TestLocalCliquesScenarioII(t *testing.T) {
	s := scenario.NewScenarioII()
	// All-54 rates: one local clique spanning the whole chain.
	all54, err := LocalCliques(s.Model, s.Path, []radio.Rate{54, 54, 54, 54})
	if err != nil {
		t.Fatal(err)
	}
	if len(all54) != 1 || all54[0].Len() != 4 {
		t.Errorf("local cliques @54 = %v, want one 4-link clique", cliqueKeys(all54))
	}
	// R2 rates: {L1,L2,L3} and {L2,L3,L4}.
	r2, err := LocalCliques(s.Model, s.Path, []radio.Rate{36, 54, 54, 54})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2) != 2 {
		t.Fatalf("local cliques @R2 = %v, want 2", cliqueKeys(r2))
	}
	if r2[0].Key() != "0@36|1@54|2@54" || r2[1].Key() != "1@54|2@54|3@54" {
		t.Errorf("local cliques @R2 = %v", cliqueKeys(r2))
	}
}

func TestLocalCliquesValidation(t *testing.T) {
	s := scenario.NewScenarioII()
	if _, err := LocalCliques(s.Model, s.Path, []radio.Rate{54}); err == nil {
		t.Error("mismatched lengths: expected error")
	}
	if _, err := LocalCliques(s.Model, nil, nil); err == nil {
		t.Error("empty path: expected error")
	}
}

func TestIsCliqueRejectsBadSets(t *testing.T) {
	s := scenario.NewScenarioII()
	if IsClique(s.Model, []conflict.Couple{{Link: s.L1, Rate: 54}, {Link: s.L1, Rate: 36}}) {
		t.Error("duplicate link cannot form a clique")
	}
	if IsClique(s.Model, []conflict.Couple{{Link: s.L1, Rate: 0}}) {
		t.Error("zero-rate couple cannot form a clique")
	}
	// Non-interfering pair.
	if IsClique(s.Model, []conflict.Couple{{Link: s.L1, Rate: 36}, {Link: s.L4, Rate: 54}}) {
		t.Error("(L1,36) and (L4,54) do not interfere; not a clique")
	}
}

func TestMaximalCliquesPhysicalChain(t *testing.T) {
	net, path, err := topology.Chain(radio.NewProfile80211a(), 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	cliques, err := MaximalCliques(m, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) == 0 {
		t.Fatal("expected cliques on a short chain")
	}
	for _, c := range cliques {
		if !IsMaximal(m, c, path) {
			t.Errorf("%v not maximal", c)
		}
	}
}

func TestEnumerationLimit(t *testing.T) {
	s := scenario.NewScenarioII()
	if _, err := MaximalCliques(s.Model, s.Links(), Options{Limit: 1}); err == nil {
		t.Error("limit 1: expected ErrLimit")
	}
}

func TestCliqueAccessors(t *testing.T) {
	c := New(conflict.Couple{Link: 7, Rate: 18}, conflict.Couple{Link: 2, Rate: 54})
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	//lint:ignore abw/floateq Rate returns the stored couple verbatim; bit-exact by construction
	if c.Rate(7) != 18 || c.Rate(2) != 54 || c.Rate(5) != 0 {
		t.Error("Rate lookups wrong")
	}
	if !c.Contains(2) || c.Contains(5) {
		t.Error("Contains wrong")
	}
	if got := c.Links(); got[0] != 2 || got[1] != 7 {
		t.Errorf("Links = %v, want sorted [2 7]", got)
	}
	if c.String() != "{(L2, 54Mbps), (L7, 18Mbps)}" {
		t.Errorf("String = %q", c.String())
	}
}

func cliqueKeys(cs []Clique) []string {
	out := make([]string, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.Key())
	}
	return out
}
