// Package netjson serializes networks, flows and availability queries
// as JSON for the command-line tools: cmd/abwlp consumes a Spec and
// emits an Answer, so the whole model is scriptable without writing Go.
package netjson

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/geom"
	"abw/internal/lp"
	"abw/internal/memo"
	"abw/internal/obs"
	"abw/internal/radio"
	"abw/internal/routing"
	"abw/internal/topology"
)

// NodeSpec is one node position in meters.
type NodeSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// FlowSpec is a background flow: a node path and its demand in Mbps.
type FlowSpec struct {
	Path   []int   `json:"path"`
	Demand float64 `json:"demand"`
}

// QuerySpec asks for the available bandwidth of a path, given either
// explicitly (node IDs) or as endpoints plus a routing metric.
type QuerySpec struct {
	Path   []int  `json:"path,omitempty"`
	Src    *int   `json:"src,omitempty"`
	Dst    *int   `json:"dst,omitempty"`
	Metric string `json:"metric,omitempty"` // "hop count", "e2eTD", "average-e2eD"
}

// Spec is the abwlp input document.
type Spec struct {
	Nodes []NodeSpec `json:"nodes"`
	// CSRangeFactor optionally overrides the carrier-sense range factor.
	CSRangeFactor float64    `json:"csRangeFactor,omitempty"`
	Background    []FlowSpec `json:"background,omitempty"`
	Query         QuerySpec  `json:"query"`
	// Workers sets the enumeration worker count (see
	// indepset.Options.Workers; 0 = automatic, 1 = sequential). The
	// answer is identical at every setting.
	Workers int `json:"workers,omitempty"`
	// Cache enables the memo cache for the solve: set families
	// enumerated for the availability LP are reused by the background
	// schedule and estimates, and the answer reports the counters. The
	// numbers are identical either way.
	Cache bool `json:"cache,omitempty"`
	// CacheBytes bounds the bytes retained for cached set families
	// (0 = memo.DefaultMaxBytes). Setting it implies Cache.
	CacheBytes int64 `json:"cacheBytes,omitempty"`
	// CacheDir, when set, spills enumerated families to this directory
	// (crash-safe fingerprint-named files) and consults it before
	// enumerating, so repeated solves of the same network skip the
	// walk entirely across processes. Implies Cache.
	CacheDir string `json:"cacheDir,omitempty"`
	// QueryTimeoutMs bounds the whole solve in milliseconds (0 =
	// unbounded): enumeration workers and LP pivots poll the deadline,
	// and an expired solve fails with an error satisfying
	// errors.Is(err, context.DeadlineExceeded). The answer of a solve
	// that finishes in time is identical with or without a timeout.
	QueryTimeoutMs int64 `json:"queryTimeoutMs,omitempty"`
	// Trace records a per-stage trace of the solve (routing,
	// enumeration, memo lookups, LP pivots) into the answer's trace
	// block. The numeric answer is byte-identical either way; tracing
	// only observes the computation.
	Trace bool `json:"trace,omitempty"`

	// cache is the per-solve memo instance when Cache is set.
	cache *memo.Cache
}

func (s *Spec) coreOptions() core.Options {
	return core.Options{Workers: s.Workers, Cache: s.cache}
}

// SlotAnswer is one schedule slot of the answer.
type SlotAnswer struct {
	Share   float64           `json:"share"`
	Couples map[string]string `json:"couples"` // "L3" -> "54Mbps"
}

// Answer is the abwlp output document.
type Answer struct {
	Feasible  bool               `json:"feasible"`
	Bandwidth float64            `json:"bandwidthMbps"`
	PathNodes []int              `json:"pathNodes"`
	PathLinks []int              `json:"pathLinks"`
	Schedule  []SlotAnswer       `json:"schedule,omitempty"`
	Estimates map[string]float64 `json:"estimates,omitempty"`
	// CacheStats reports the memo-cache counters when the spec enabled
	// caching.
	CacheStats *memo.Stats `json:"cacheStats,omitempty"`
	// Trace is the per-stage trace when the spec asked for one.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// ParseSpec decodes a Spec from JSON.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("netjson: decoding spec: %w", err)
	}
	return &s, nil
}

// BuildNetwork materializes the spec's topology under the 802.11a
// profile.
func (s *Spec) BuildNetwork() (*topology.Network, error) {
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("netjson: spec has no nodes")
	}
	pts := make([]geom.Point, 0, len(s.Nodes))
	for _, n := range s.Nodes {
		pts = append(pts, geom.Point{X: n.X, Y: n.Y})
	}
	var opts []radio.Option
	if s.CSRangeFactor > 0 {
		opts = append(opts, radio.WithCSRangeFactor(s.CSRangeFactor))
	}
	net, err := topology.New(radio.NewProfile80211a(opts...), pts)
	if err != nil {
		return nil, fmt.Errorf("netjson: %w", err)
	}
	return net, nil
}

func (s *Spec) backgroundFlows(net *topology.Network) ([]core.Flow, error) {
	flows := make([]core.Flow, 0, len(s.Background))
	for i, f := range s.Background {
		path, err := nodePath(net, f.Path)
		if err != nil {
			return nil, fmt.Errorf("netjson: background flow %d: %w", i, err)
		}
		if f.Demand <= 0 {
			return nil, fmt.Errorf("netjson: background flow %d has demand %g", i, f.Demand)
		}
		flows = append(flows, core.Flow{Path: path, Demand: f.Demand})
	}
	return flows, nil
}

func parseMetric(name string) (routing.Metric, error) {
	for _, m := range routing.AllMetrics() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("netjson: unknown routing metric %q (want one of: hop count, e2eTD, average-e2eD)", name)
}

// queryPath resolves the query to a concrete link path, routing when
// only endpoints are given.
func (s *Spec) queryPath(ctx context.Context, net *topology.Network, m conflict.Model, background []core.Flow) (topology.Path, error) {
	if len(s.Query.Path) > 0 {
		return nodePath(net, s.Query.Path)
	}
	if s.Query.Src == nil || s.Query.Dst == nil {
		return nil, fmt.Errorf("netjson: query needs either a path or src+dst")
	}
	metric := routing.MetricAvgE2ED
	if s.Query.Metric != "" {
		var err error
		metric, err = parseMetric(s.Query.Metric)
		if err != nil {
			return nil, err
		}
	}
	idle, err := routing.BackgroundIdlenessContext(ctx, net, m, background, s.coreOptions())
	if err != nil {
		return nil, err
	}
	return routing.FindPath(net, m, metric, idle, topology.NodeID(*s.Query.Src), topology.NodeID(*s.Query.Dst))
}

// Solve answers the spec: exact available bandwidth (Eq. 6), the
// delivering schedule, and all five distributed estimates.
func Solve(s *Spec) (*Answer, error) {
	return SolveContext(context.Background(), s)
}

// SolveContext is Solve under a context: ctx (tightened by the spec's
// QueryTimeoutMs, if set) is threaded through routing, enumeration and
// every LP, so cancellation stops the solve promptly. Canceled solves
// never store or spill partial results.
func SolveContext(ctx context.Context, s *Spec) (*Answer, error) {
	if s.QueryTimeoutMs < 0 {
		return nil, fmt.Errorf("netjson: queryTimeoutMs must be non-negative, got %d", s.QueryTimeoutMs)
	}
	if s.QueryTimeoutMs > 0 {
		var cancelCtx context.CancelFunc
		ctx, cancelCtx = context.WithTimeout(ctx, time.Duration(s.QueryTimeoutMs)*time.Millisecond)
		defer cancelCtx()
	}
	var span *obs.Span
	if s.Trace {
		span = obs.NewSpan("")
		ctx = obs.WithSpan(ctx, span)
	}
	if s.CacheBytes != 0 || s.CacheDir != "" {
		s.Cache = true
	}
	if s.Cache && s.cache == nil {
		s.cache = memo.New(s.CacheBytes)
		if s.CacheDir != "" {
			store, err := memo.OpenStore(s.CacheDir, 0)
			if err != nil {
				return nil, fmt.Errorf("netjson: %w", err)
			}
			s.cache.SetStore(store)
		}
	}
	net, err := s.BuildNetwork()
	if err != nil {
		return nil, err
	}
	m := conflict.NewPhysical(net)
	background, err := s.backgroundFlows(net)
	if err != nil {
		return nil, err
	}
	path, err := s.queryPath(ctx, net, m, background)
	if err != nil {
		return nil, err
	}
	nodes, err := net.PathNodes(path)
	if err != nil {
		return nil, err
	}
	ans := &Answer{
		PathNodes: nodeInts(nodes),
		PathLinks: linkInts(path),
	}
	res, err := core.AvailableBandwidthContext(ctx, m, background, path, s.coreOptions())
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		// Infeasible background: Feasible stays false.
		ans.CacheStats = s.cacheStats()
		ans.Trace = span.Trace()
		return ans, nil
	}
	ans.Feasible = true
	ans.Bandwidth = res.Bandwidth
	for _, slot := range res.Schedule.Slots {
		sa := SlotAnswer{Share: slot.Share, Couples: make(map[string]string, slot.Set.Len())}
		for _, cp := range slot.Set.Couples {
			sa.Couples[fmt.Sprintf("L%d", cp.Link)] = cp.Rate.String()
		}
		ans.Schedule = append(ans.Schedule, sa)
	}

	sched, err := routing.BackgroundScheduleContext(ctx, m, background, s.coreOptions())
	if err != nil {
		return nil, err
	}
	ps, err := estimate.PathStateFromSchedule(net, m, sched, path)
	if err != nil {
		return nil, err
	}
	ests, err := estimate.EstimateAll(m, ps)
	if err != nil {
		return nil, err
	}
	ans.Estimates = make(map[string]float64, len(ests))
	for metric, v := range ests {
		ans.Estimates[metric.String()] = v
	}
	ans.CacheStats = s.cacheStats()
	ans.Trace = span.Trace()
	return ans, nil
}

// cacheStats flushes pending disk spills (so a one-shot process exits
// with its families durably written and the counters reflect them) and
// snapshots the counters; nil when the solve ran uncached.
func (s *Spec) cacheStats() *memo.Stats {
	if s.cache == nil {
		return nil
	}
	s.cache.FlushStore()
	st := s.cache.Stats()
	return &st
}

// WriteAnswer encodes the answer as indented JSON.
func WriteAnswer(w io.Writer, a *Answer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("netjson: encoding answer: %w", err)
	}
	return nil
}

func nodePath(net *topology.Network, ids []int) (topology.Path, error) {
	if len(ids) < 2 {
		return nil, fmt.Errorf("path needs at least two nodes, got %d", len(ids))
	}
	nodes := make([]topology.NodeID, 0, len(ids))
	for _, id := range ids {
		nodes = append(nodes, topology.NodeID(id))
	}
	return net.PathFromNodes(nodes)
}

func nodeInts(nodes []topology.NodeID) []int {
	out := make([]int, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, int(n))
	}
	return out
}

func linkInts(path topology.Path) []int {
	out := make([]int, 0, len(path))
	for _, l := range path {
		out = append(out, int(l))
	}
	return out
}
