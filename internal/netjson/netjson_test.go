package netjson

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"abw/internal/cancel"
)

// chainSpec is a 5-node 100m chain with a 2 Mbps background flow on the
// full path; the query asks about the same path.
const chainSpec = `{
  "nodes": [{"x":0,"y":0},{"x":100,"y":0},{"x":200,"y":0},{"x":300,"y":0},{"x":400,"y":0}],
  "background": [{"path":[0,1,2,3,4],"demand":2}],
  "query": {"path":[0,1,2,3,4]}
}`

func TestSolveExplicitPath(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(chainSpec))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Feasible {
		t.Fatal("expected feasible")
	}
	// Chain capacity 54/11 minus the 2 Mbps background.
	want := 54.0/11 - 2
	if math.Abs(ans.Bandwidth-want) > 1e-6 {
		t.Errorf("bandwidth = %.6f, want %.6f", ans.Bandwidth, want)
	}
	if len(ans.PathNodes) != 5 || len(ans.PathLinks) != 4 {
		t.Errorf("path sizes: %d nodes, %d links", len(ans.PathNodes), len(ans.PathLinks))
	}
	if len(ans.Schedule) == 0 {
		t.Error("expected a schedule")
	}
	if len(ans.Estimates) != 5 {
		t.Errorf("got %d estimates, want 5", len(ans.Estimates))
	}
}

func TestSolveRoutedQuery(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{
	  "nodes": [{"x":0,"y":0},{"x":100,"y":0},{"x":200,"y":0}],
	  "query": {"src":0,"dst":2,"metric":"e2eTD"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Feasible || ans.Bandwidth <= 0 {
		t.Errorf("answer = %+v", ans)
	}
	if ans.PathNodes[0] != 0 || ans.PathNodes[len(ans.PathNodes)-1] != 2 {
		t.Errorf("routed path endpoints wrong: %v", ans.PathNodes)
	}
}

func TestSolveInfeasibleBackground(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{
	  "nodes": [{"x":0,"y":0},{"x":100,"y":0}],
	  "background": [{"path":[0,1],"demand":100}],
	  "query": {"path":[0,1]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Feasible {
		t.Error("100 Mbps on an 18 Mbps link should be infeasible")
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"unknown": 1, "nodes": [], "query": {}}`,
	}
	for i, doc := range bad {
		if _, err := ParseSpec(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"no nodes", `{"nodes": [], "query": {"path":[0,1]}}`},
		{"no query", `{"nodes": [{"x":0,"y":0},{"x":50,"y":0}], "query": {}}`},
		{"bad metric", `{"nodes": [{"x":0,"y":0},{"x":50,"y":0}], "query": {"src":0,"dst":1,"metric":"bogus"}}`},
		{"short path", `{"nodes": [{"x":0,"y":0},{"x":50,"y":0}], "query": {"path":[0]}}`},
		{"broken hop", `{"nodes": [{"x":0,"y":0},{"x":500,"y":0}], "query": {"path":[0,1]}}`},
		{"zero demand", `{"nodes": [{"x":0,"y":0},{"x":50,"y":0}], "background":[{"path":[0,1],"demand":0}], "query": {"path":[0,1]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseSpec(strings.NewReader(tc.doc))
			if err != nil {
				t.Fatalf("spec itself should parse: %v", err)
			}
			if _, err := Solve(spec); err == nil {
				t.Error("expected solve error")
			}
		})
	}
}

func TestWriteAnswerRoundTrips(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(chainSpec))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAnswer(&buf, ans); err != nil {
		t.Fatal(err)
	}
	var back Answer
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("answer is not valid JSON: %v", err)
	}
	if math.Abs(back.Bandwidth-ans.Bandwidth) > 1e-12 {
		t.Error("bandwidth did not round-trip")
	}
}

func TestCSRangeFactorOverride(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{
	  "nodes": [{"x":0,"y":0},{"x":100,"y":0}],
	  "csRangeFactor": 3.0,
	  "query": {"path":[0,1]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	net, err := spec.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Profile().CSRange(); math.Abs(got-3*158) > 1e-9 {
		t.Errorf("CSRange = %g, want %g", got, 3*158.0)
	}
}

// TestCacheBytesImpliesCache pins the spec-level flag implication: a
// byte budget (or a spill directory) turns the cache on even when the
// "cache" field is absent, so the answer carries counters.
func TestCacheBytesImpliesCache(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(chainSpec))
	if err != nil {
		t.Fatal(err)
	}
	spec.CacheBytes = 1 << 20
	ans, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ans.CacheStats == nil {
		t.Fatal("cacheBytes alone should enable the cache and its stats")
	}
	if ans.CacheStats.Misses == 0 {
		t.Errorf("cache never engaged: %+v", ans.CacheStats)
	}
}

// TestCacheDirWarmsAcrossSpecs pins the on-disk spill end to end at the
// netjson layer: one spec populates the directory, a freshly parsed
// spec (a new in-memory cache, as a new process would have) answers
// from disk with zero enumerations and the identical bandwidth.
func TestCacheDirWarmsAcrossSpecs(t *testing.T) {
	dir := t.TempDir()
	cold, err := ParseSpec(strings.NewReader(chainSpec))
	if err != nil {
		t.Fatal(err)
	}
	cold.CacheDir = dir
	want, err := Solve(cold)
	if err != nil {
		t.Fatal(err)
	}
	if want.CacheStats == nil || want.CacheStats.DiskMisses == 0 {
		t.Fatalf("cold solve should record disk misses: %+v", want.CacheStats)
	}

	warm, err := ParseSpec(strings.NewReader(chainSpec))
	if err != nil {
		t.Fatal(err)
	}
	warm.CacheDir = dir
	got, err := Solve(warm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Bandwidth-want.Bandwidth) > 1e-12 {
		t.Errorf("warm bandwidth %.12g, cold %.12g", got.Bandwidth, want.Bandwidth)
	}
	st := got.CacheStats
	if st == nil || st.DiskHits == 0 {
		t.Fatalf("warm solve never hit the spill: %+v", st)
	}
	if st.Misses != 0 {
		t.Errorf("warm solve re-enumerated %d families: %+v", st.Misses, st)
	}
}

// TestCacheDirOpenErrorSurfaces pins that an unusable spill directory
// fails the solve up front rather than being silently dropped.
func TestCacheDirOpenErrorSurfaces(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(strings.NewReader(chainSpec))
	if err != nil {
		t.Fatal(err)
	}
	spec.CacheDir = file
	if _, err := Solve(spec); err == nil {
		t.Error("Solve accepted a file as the cache directory")
	}
}

// TestSolveContextCancellation pins the queryTimeoutMs plumbing: a
// negative timeout is a spec error, a pre-cancelled context stops the
// solve with ErrCanceled, and a generous timeout changes nothing about
// the answer.
func TestSolveContextCancellation(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(chainSpec))
	if err != nil {
		t.Fatal(err)
	}
	spec.QueryTimeoutMs = -1
	if _, err := Solve(spec); err == nil || !strings.Contains(err.Error(), "queryTimeoutMs") {
		t.Fatalf("negative timeout: err = %v, want a queryTimeoutMs spec error", err)
	}

	spec.QueryTimeoutMs = 0
	ctx, cancelCtx := context.WithCancel(context.Background())
	cancelCtx()
	if _, err := SolveContext(ctx, spec); !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("pre-cancelled solve: err = %v, want ErrCanceled", err)
	}

	ref, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.QueryTimeoutMs = 60_000
	timed, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if timed.Bandwidth != ref.Bandwidth || timed.Feasible != ref.Feasible {
		t.Fatalf("timeout changed the answer: %+v vs %+v", timed, ref)
	}
}

func TestTraceBlockInAnswer(t *testing.T) {
	parse := func(doc string) *Spec {
		t.Helper()
		spec, err := ParseSpec(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	plain, err := Solve(parse(chainSpec))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatalf("untraced answer carries a trace: %+v", plain.Trace)
	}

	spec := parse(chainSpec)
	spec.Trace = true
	traced, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil || traced.Trace.TotalNs <= 0 || len(traced.Trace.Stages) == 0 {
		t.Fatalf("traced answer missing trace detail: %+v", traced.Trace)
	}
	seen := map[string]bool{}
	for _, st := range traced.Trace.Stages {
		seen[string(st.Stage)] = true
	}
	// The library layers record enumeration and LP stages; the
	// server-side schedule/estimate stages are not on this path.
	for _, want := range []string{"enumerate", "lp_solve"} {
		if !seen[want] {
			t.Fatalf("trace missing stage %q: %v", want, seen)
		}
	}
	// Tracing only observes the solve: the numbers are identical.
	if math.Float64bits(traced.Bandwidth) != math.Float64bits(plain.Bandwidth) ||
		traced.Feasible != plain.Feasible {
		t.Fatalf("traced answer differs: %+v vs %+v", traced, plain)
	}
}
