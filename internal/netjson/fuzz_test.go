package netjson

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzNetjson asserts the spec codec's round-trip contract: parsing
// never panics on malformed input, every spec the parser accepts
// re-emits as JSON the parser accepts again, and the emitted form is a
// fixpoint (emit(parse(emit(s))) == emit(s)) — the canonical-form
// property cmd/abwlp relies on when specs are piped between tools.
func FuzzNetjson(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"nodes":[]}`))
	f.Add([]byte(`{"nodes":[{"x":0,"y":0},{"x":50,"y":0}],"query":{"path":[0,1]}}`))
	f.Add([]byte(`{"nodes":[{"x":0,"y":0},{"x":50,"y":0},{"x":100,"y":0}],` +
		`"csRangeFactor":1.5,"workers":2,` +
		`"background":[{"path":[0,1],"demand":2}],` +
		`"query":{"src":0,"dst":2,"metric":"average-e2eD"}}`))
	f.Add([]byte(`{"nodes":[{"x":1e308,"y":-1e308}],"query":{}}`))
	f.Add([]byte(`{"unknown":true}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(bytes.NewReader(data))
		if err != nil {
			return // malformed input is rejected, never a panic
		}
		first, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		spec2, err := ParseSpec(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("emitted spec is rejected by the parser: %v\n%s", err, first)
		}
		second, err := json.Marshal(spec2)
		if err != nil {
			t.Fatalf("re-parsed spec does not marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip is not a fixpoint:\n first: %s\nsecond: %s", first, second)
		}
	})
}
