package sim

import (
	"testing"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/topology"
)

func scenarioIHearing(s *scenario.ScenarioI) Hearing {
	return ModelHearing(s.Model, func(topology.LinkID) radio.Rate { return s.Rate })
}

// TestCSMAScenarioIIdleMeasurement reproduces the paper's E10 story: a
// listener at L3 hears both background links L1 and L2, which do not
// hear each other and therefore transmit independently. The measured
// idle ratio lands well below the true available share (1 - lambda_eff):
// idle-time admission is conservative.
func TestCSMAScenarioIIdleMeasurement(t *testing.T) {
	s := scenario.NewScenarioI(54)
	const offered = 16.2 // lambda=0.3 of a 54 Mbps channel
	links := []CSMALink{
		{Link: s.L1, Rate: 54, OfferedMbps: offered},
		{Link: s.L2, Rate: 54, OfferedMbps: offered},
		{Link: s.L3, Rate: 54, ListenOnly: true},
	}
	rep, err := RunCSMA(s.Model, scenarioIHearing(s), links, 2000, CSMAConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Background links are uncontended (they do not hear each other or
	// the silent listener): they must carry their offered load.
	for _, l := range []topology.LinkID{s.L1, s.L2} {
		if got := rep.Throughput[l]; got < 0.95*offered {
			t.Errorf("background link %d carried %.2f Mbps, want ~%.2f", l, got, offered)
		}
	}
	// Effective busy share per background link (slot-quantized airtime).
	busy1 := 1 - rep.IdleRatio[s.L1]
	idle3 := rep.IdleRatio[s.L3]
	// L3 hears both: idle3 is at most the non-overlap product and at
	// least the disjoint-share floor.
	floor := 1 - 2*busy1
	ceil := 1 - busy1 // what a globally optimal overlap would leave
	if idle3 < floor-0.05 {
		t.Errorf("idle(L3) = %.3f below the disjoint floor %.3f", idle3, floor)
	}
	if idle3 > ceil-0.02 {
		t.Errorf("idle(L3) = %.3f should sit clearly below the optimal-overlap ceiling %.3f", idle3, ceil)
	}
}

// TestCSMASaturatedNewcomerGrabsResidual lets L3 transmit with
// saturation: CSMA shares the channel and L3 obtains real residual
// bandwidth while the background keeps (most of) its load.
func TestCSMASaturatedNewcomerGrabsResidual(t *testing.T) {
	s := scenario.NewScenarioI(54)
	const offered = 10.0
	links := []CSMALink{
		{Link: s.L1, Rate: 54, OfferedMbps: offered},
		{Link: s.L2, Rate: 54, OfferedMbps: offered},
		{Link: s.L3, Rate: 54}, // saturated
	}
	rep, err := RunCSMA(s.Model, scenarioIHearing(s), links, 2000, CSMAConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Throughput[s.L3]; got < 5 {
		t.Errorf("saturated L3 got only %.2f Mbps of residual bandwidth", got)
	}
	for _, l := range []topology.LinkID{s.L1, s.L2} {
		if got := rep.Throughput[l]; got < 0.7*offered {
			t.Errorf("background link %d starved: %.2f of %.2f Mbps", l, got, offered)
		}
	}
}

// TestCSMAHiddenTerminalCollides builds two mutually conflicting links
// that cannot hear each other: both saturated, they collide massively.
func TestCSMAHiddenTerminalCollides(t *testing.T) {
	tb := conflict.NewTable()
	tb.SetRates(0, 54)
	tb.SetRates(1, 54)
	if err := tb.AddConflictAllRates(0, 1); err != nil {
		t.Fatal(err)
	}
	deaf := func(a, b topology.LinkID) bool { return false }
	links := []CSMALink{
		{Link: 0, Rate: 54},
		{Link: 1, Rate: 54},
	}
	rep, err := RunCSMA(tb, deaf, links, 500, CSMAConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Collisions[0] == 0 && rep.Collisions[1] == 0 {
		t.Error("hidden terminals should collide")
	}
	// With every overlap fatal and both saturated, goodput collapses
	// far below the channel rate.
	if rep.Throughput[0]+rep.Throughput[1] > 27 {
		t.Errorf("hidden-terminal goodput %.2f Mbps suspiciously high", rep.Throughput[0]+rep.Throughput[1])
	}
}

// TestCSMACoordinatedNeighborsAvoidCollisions is the control for the
// hidden-terminal case: same conflict, but the links hear each other.
func TestCSMACoordinatedNeighborsAvoidCollisions(t *testing.T) {
	tb := conflict.NewTable()
	tb.SetRates(0, 54)
	tb.SetRates(1, 54)
	if err := tb.AddConflictAllRates(0, 1); err != nil {
		t.Fatal(err)
	}
	hears := func(a, b topology.LinkID) bool { return true }
	links := []CSMALink{
		{Link: 0, Rate: 54},
		{Link: 1, Rate: 54},
	}
	rep, err := RunCSMA(tb, hears, links, 500, CSMAConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := rep.Throughput[0] + rep.Throughput[1]
	if total < 30 {
		t.Errorf("coordinated links should share the channel efficiently, got %.2f Mbps", total)
	}
	collisionRate := float64(rep.Collisions[0]+rep.Collisions[1]) /
		float64(maxInt(1, rep.Attempts[0]+rep.Attempts[1]))
	if collisionRate > 0.25 {
		t.Errorf("collision rate %.2f too high for carrier-sensing neighbors", collisionRate)
	}
}

func TestCSMAValidation(t *testing.T) {
	s := scenario.NewScenarioI(54)
	h := scenarioIHearing(s)
	if _, err := RunCSMA(s.Model, h, nil, 100, CSMAConfig{}); err == nil {
		t.Error("no links: expected error")
	}
	if _, err := RunCSMA(s.Model, nil, []CSMALink{{Link: s.L1, Rate: 54}}, 100, CSMAConfig{}); err == nil {
		t.Error("nil hearing: expected error")
	}
	if _, err := RunCSMA(s.Model, h, []CSMALink{{Link: s.L1, Rate: 54}}, 0, CSMAConfig{}); err == nil {
		t.Error("zero duration: expected error")
	}
	if _, err := RunCSMA(s.Model, h, []CSMALink{{Link: s.L1, Rate: 0}}, 100, CSMAConfig{}); err == nil {
		t.Error("zero rate: expected error")
	}
	dup := []CSMALink{{Link: s.L1, Rate: 54}, {Link: s.L1, Rate: 36}}
	if _, err := RunCSMA(s.Model, h, dup, 100, CSMAConfig{}); err == nil {
		t.Error("duplicate link: expected error")
	}
}

func TestCSMADeterministicAcrossSeeds(t *testing.T) {
	s := scenario.NewScenarioI(54)
	links := []CSMALink{
		{Link: s.L1, Rate: 54, OfferedMbps: 10},
		{Link: s.L3, Rate: 54},
	}
	a, err := RunCSMA(s.Model, scenarioIHearing(s), links, 200, CSMAConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCSMA(s.Model, scenarioIHearing(s), links, 200, CSMAConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput[s.L3] != b.Throughput[s.L3] || a.IdleRatio[s.L1] != b.IdleRatio[s.L1] {
		t.Error("identical seeds must reproduce identical results")
	}
}

func TestPhysicalHearing(t *testing.T) {
	net, path, err := topology.Chain(radio.NewProfile80211a(), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	h := PhysicalHearing(net)
	// Transmitters 0 and 1 are 100m apart: heard (CS range 237m).
	if !h(path[0], path[1]) {
		t.Error("adjacent transmitters should hear each other")
	}
	// Bogus links are silently unheard.
	if h(path[0], topology.LinkID(999)) {
		t.Error("bogus link should not be heard")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestCSMARTSCTSFixesHiddenTerminal repeats the hidden-terminal fixture
// with the virtual-carrier-sensing handshake: collisions drop sharply
// and goodput recovers.
func TestCSMARTSCTSFixesHiddenTerminal(t *testing.T) {
	tb := conflict.NewTable()
	tb.SetRates(0, 54)
	tb.SetRates(1, 54)
	if err := tb.AddConflictAllRates(0, 1); err != nil {
		t.Fatal(err)
	}
	deaf := func(a, b topology.LinkID) bool { return false }
	links := []CSMALink{
		{Link: 0, Rate: 54},
		{Link: 1, Rate: 54},
	}
	plain, err := RunCSMA(tb, deaf, links, 500, CSMAConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	protected, err := RunCSMA(tb, deaf, links, 500, CSMAConfig{Seed: 3, RTSCTS: true})
	if err != nil {
		t.Fatal(err)
	}
	plainGoodput := plain.Throughput[0] + plain.Throughput[1]
	protGoodput := protected.Throughput[0] + protected.Throughput[1]
	if protGoodput <= plainGoodput {
		t.Errorf("RTS/CTS goodput %.2f should beat plain %.2f under hidden terminals", protGoodput, plainGoodput)
	}
	plainColl := plain.Collisions[0] + plain.Collisions[1]
	protColl := protected.Collisions[0] + protected.Collisions[1]
	if protColl >= plainColl {
		t.Errorf("RTS/CTS collisions %d should be far below plain %d", protColl, plainColl)
	}
	if protGoodput < 25 {
		t.Errorf("RTS/CTS goodput %.2f Mbps too low for a 54 Mbps channel", protGoodput)
	}
}

// TestCSMARTSCTSOverheadCosts verifies the handshake is not free: with
// NO hidden terminals (everyone hears everyone) RTS/CTS only adds
// per-packet overhead and goodput drops slightly.
func TestCSMARTSCTSOverheadCosts(t *testing.T) {
	tb := conflict.NewTable()
	tb.SetRates(0, 54)
	tb.SetRates(1, 54)
	if err := tb.AddConflictAllRates(0, 1); err != nil {
		t.Fatal(err)
	}
	hears := func(a, b topology.LinkID) bool { return true }
	links := []CSMALink{
		{Link: 0, Rate: 54},
		{Link: 1, Rate: 54},
	}
	plain, err := RunCSMA(tb, hears, links, 500, CSMAConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	protected, err := RunCSMA(tb, hears, links, 500, CSMAConfig{Seed: 5, RTSCTS: true})
	if err != nil {
		t.Fatal(err)
	}
	plainGoodput := plain.Throughput[0] + plain.Throughput[1]
	protGoodput := protected.Throughput[0] + protected.Throughput[1]
	if protGoodput >= plainGoodput {
		t.Errorf("with no hidden terminals RTS/CTS goodput %.2f should be below plain %.2f (overhead)", protGoodput, plainGoodput)
	}
}

// TestCSMAMixedRatesShareAirtime checks the classic rate-anomaly
// effect: a slow link and a fast link that hear each other get roughly
// equal PACKET shares, so the fast link's goodput is dragged far below
// half its rate.
func TestCSMAMixedRatesShareAirtime(t *testing.T) {
	tb := conflict.NewTable()
	tb.SetRates(0, 54)
	tb.SetRates(1, 6)
	if err := tb.AddConflictAllRates(0, 1); err != nil {
		t.Fatal(err)
	}
	hears := func(a, b topology.LinkID) bool { return true }
	links := []CSMALink{
		{Link: 0, Rate: 54},
		{Link: 1, Rate: 6},
	}
	rep, err := RunCSMA(tb, hears, links, 2000, CSMAConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := rep.Throughput[0], rep.Throughput[1]
	if slow <= 0 || fast <= 0 {
		t.Fatalf("throughputs: fast %.2f slow %.2f", fast, slow)
	}
	// Packet parity: goodput ratio tracks the rate ratio only weakly;
	// the slow link eats most of the airtime. Fast goodput must be well
	// below half of 54.
	if fast > 20 {
		t.Errorf("fast link %.2f Mbps — rate anomaly should cap it well below 27", fast)
	}
	airFast := float64(rep.Attempts[0]) / float64(rep.Attempts[0]+rep.Attempts[1])
	if airFast < 0.35 || airFast > 0.65 {
		t.Errorf("attempt share %.2f should be near packet parity", airFast)
	}
}
