package sim

import (
	"testing"

	"abw/internal/core"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/topology"
)

func BenchmarkRunScheduleScenarioII(b *testing.B) {
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSchedule(s.Model, sched, TDMAConfig{MicroSlots: 1000, Periods: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunFlowsScenarioII(b *testing.B) {
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	flows := []core.Flow{{Path: s.Path, Demand: 16.2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFlows(s.Model, sched, flows, TDMAConfig{MicroSlots: 1000, Periods: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSMAScenarioI(b *testing.B) {
	s := scenario.NewScenarioI(54)
	h := ModelHearing(s.Model, func(topology.LinkID) radio.Rate { return s.Rate })
	links := []CSMALink{
		{Link: s.L1, Rate: 54, OfferedMbps: 16.2},
		{Link: s.L2, Rate: 54, OfferedMbps: 16.2},
		{Link: s.L3, Rate: 54},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCSMA(s.Model, h, links, 100, CSMAConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
