package sim

import (
	"math"
	"testing"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// paperScheduleII is the optimal Scenario II schedule from Sec. 5.1.
func paperScheduleII(s *scenario.ScenarioII) schedule.Schedule {
	return schedule.Schedule{Slots: []schedule.Slot{
		{Share: 0.1, Set: indepset.NewSet(conflict.Couple{Link: s.L1, Rate: 54})},
		{Share: 0.3, Set: indepset.NewSet(conflict.Couple{Link: s.L2, Rate: 54})},
		{Share: 0.3, Set: indepset.NewSet(conflict.Couple{Link: s.L3, Rate: 54})},
		{Share: 0.3, Set: indepset.NewSet(
			conflict.Couple{Link: s.L1, Rate: 36},
			conflict.Couple{Link: s.L4, Rate: 54},
		)},
	}}
}

func TestRunScheduleMatchesAnalytic(t *testing.T) {
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	rep, err := RunSchedule(s.Model, sched, TDMAConfig{MicroSlots: 1000, Periods: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Shares 0.1/0.3 quantize exactly into 1000 micro-slots: measured
	// throughput must equal the analytic 16.2 on every link.
	for _, l := range s.Links() {
		if got := rep.LinkThroughput[l]; math.Abs(got-16.2) > 1e-9 {
			t.Errorf("measured throughput on L%d = %.6f, want 16.2", l+1, got)
		}
	}
}

func TestRunScheduleRejectsInvalid(t *testing.T) {
	s := scenario.NewScenarioII()
	bad := schedule.Schedule{Slots: []schedule.Slot{{
		Share: 0.5,
		Set: indepset.NewSet(
			conflict.Couple{Link: s.L1, Rate: 54},
			conflict.Couple{Link: s.L2, Rate: 54},
		),
	}}}
	if _, err := RunSchedule(s.Model, bad, TDMAConfig{}); err == nil {
		t.Error("conflicting slot: expected error")
	}
}

func TestRunFlowsDeliversScenarioII(t *testing.T) {
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	flows := []core.Flow{{Path: s.Path, Demand: 16.2}}
	rep, err := RunFlows(s.Model, sched, flows, TDMAConfig{MicroSlots: 1000, Periods: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline fill means delivered < injected, but long runs approach
	// the demand.
	if rep.FlowDelivered[0] < 0.85*16.2 {
		t.Errorf("delivered %.3f Mbps, want close to 16.2", rep.FlowDelivered[0])
	}
	if rep.FlowDelivered[0] > 16.2+1e-9 {
		t.Errorf("delivered %.3f Mbps exceeds injected demand", rep.FlowDelivered[0])
	}
	if math.IsNaN(rep.FlowDelayPeriods[0]) || rep.FlowDelayPeriods[0] <= 0 {
		t.Errorf("delay = %v, want positive", rep.FlowDelayPeriods[0])
	}
	// Per-link carried traffic cannot exceed the schedule's capacity.
	for _, l := range s.Links() {
		if rep.LinkThroughput[l] > sched.Throughput(l)+1e-9 {
			t.Errorf("link L%d carried %.3f > scheduled %.3f", l+1, rep.LinkThroughput[l], sched.Throughput(l))
		}
	}
}

func TestRunFlowsOverload(t *testing.T) {
	// Demanding more than the schedule carries must deliver at most the
	// schedule's capacity.
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	flows := []core.Flow{{Path: s.Path, Demand: 30}}
	rep, err := RunFlows(s.Model, sched, flows, TDMAConfig{MicroSlots: 1000, Periods: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlowDelivered[0] > 16.2+1e-6 {
		t.Errorf("delivered %.3f Mbps from a 16.2 Mbps schedule", rep.FlowDelivered[0])
	}
}

func TestRunFlowsValidation(t *testing.T) {
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	if _, err := RunFlows(s.Model, sched, nil, TDMAConfig{}); err == nil {
		t.Error("no flows: expected error")
	}
	if _, err := RunFlows(s.Model, sched, []core.Flow{{Path: nil, Demand: 1}}, TDMAConfig{}); err == nil {
		t.Error("empty path: expected error")
	}
	if _, err := RunFlows(s.Model, sched, []core.Flow{{Path: s.Path, Demand: 0}}, TDMAConfig{}); err == nil {
		t.Error("zero demand: expected error")
	}
}

func TestFrameQuantization(t *testing.T) {
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	timeline := frame(sched, 1000)
	if len(timeline) != 1000 {
		t.Fatalf("timeline length %d, want 1000", len(timeline))
	}
	counts := map[int]int{}
	for _, si := range timeline {
		counts[si]++
	}
	if counts[0] != 100 || counts[1] != 300 || counts[2] != 300 || counts[3] != 300 {
		t.Errorf("slot counts = %v, want 100/300/300/300", counts)
	}
	// Irregular shares still fill exactly micro slots with the largest
	// remainder method.
	odd := schedule.Schedule{Slots: []schedule.Slot{
		{Share: 1.0 / 3, Set: indepset.NewSet(conflict.Couple{Link: s.L1, Rate: 54})},
		{Share: 1.0 / 3, Set: indepset.NewSet(conflict.Couple{Link: s.L2, Rate: 54})},
		{Share: 1.0 / 3, Set: indepset.NewSet(conflict.Couple{Link: s.L3, Rate: 54})},
	}}
	tl := frame(odd, 100)
	used := 0
	for _, si := range tl {
		if si >= 0 {
			used++
		}
	}
	if used != 100 {
		t.Errorf("thirds should fill all 100 micro-slots, used %d", used)
	}
}

func TestMeasuredNodeIdleMatchesAnalytic(t *testing.T) {
	net, path, err := topology.Chain(radio.NewProfile80211a(), 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	res, err := core.AvailableBandwidth(m, nil, path, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := res.Schedule
	analytic := estimate.NodeIdleRatios(net, sched)
	measured, err := MeasuredNodeIdle(net, sched, TDMAConfig{MicroSlots: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range analytic {
		if math.Abs(analytic[i]-measured[i]) > 5.0/2000 {
			t.Errorf("node %d: analytic idle %.4f vs measured %.4f", i, analytic[i], measured[i])
		}
	}
}

// TestRunFlowsMultiFlowSharing splits the Scenario II schedule between
// two flows on the same path: per-flow goodput sums to at most the
// schedule capacity and the earlier-listed flow is not starved.
func TestRunFlowsMultiFlowSharing(t *testing.T) {
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	flows := []core.Flow{
		{Path: s.Path, Demand: 8.1},
		{Path: s.Path, Demand: 8.1},
	}
	rep, err := RunFlows(s.Model, sched, flows, TDMAConfig{MicroSlots: 1000, Periods: 30})
	if err != nil {
		t.Fatal(err)
	}
	total := rep.FlowDelivered[0] + rep.FlowDelivered[1]
	if total > 16.2+1e-6 {
		t.Errorf("combined goodput %.3f exceeds schedule capacity 16.2", total)
	}
	if total < 0.85*16.2 {
		t.Errorf("combined goodput %.3f too low", total)
	}
	for i, d := range rep.FlowDelivered {
		if d < 0.8*8.1 {
			t.Errorf("flow %d starved: %.3f of 8.1 Mbps", i, d)
		}
	}
}

// TestRunFlowsPartialPathFlow exercises a flow using only a suffix of
// the scheduled links.
func TestRunFlowsPartialPathFlow(t *testing.T) {
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	flows := []core.Flow{{Path: s.Path[2:], Demand: 10}}
	rep, err := RunFlows(s.Model, sched, flows, TDMAConfig{MicroSlots: 1000, Periods: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlowDelivered[0] < 0.85*10 {
		t.Errorf("suffix flow delivered %.3f of 10 Mbps", rep.FlowDelivered[0])
	}
}
