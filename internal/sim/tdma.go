// Package sim provides the executable side of the model: a TDMA frame
// simulator that runs a link schedule micro-slot by micro-slot (packet
// queues, per-hop forwarding, measured throughput and idleness), and a
// slotted CSMA/CA simulator with binary exponential backoff used to
// reproduce the paper's carrier-sensing observations (Scenario I). The
// TDMA side validates that schedules produced by the LP actually deliver
// their promised throughput; the CSMA side validates the idleness
// measurements the distributed estimators rely on.
package sim

import (
	"fmt"
	"math"
	"sort"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// TDMAConfig configures a frame simulation.
type TDMAConfig struct {
	// MicroSlots is the number of micro-slots one schedule period is
	// quantized into (default 1000).
	MicroSlots int
	// Periods is how many periods to run (default 10).
	Periods int
}

func (c TDMAConfig) microSlots() int {
	if c.MicroSlots <= 0 {
		return 1000
	}
	return c.MicroSlots
}

func (c TDMAConfig) periods() int {
	if c.Periods <= 0 {
		return 10
	}
	return c.Periods
}

// TDMAReport is the outcome of a frame simulation.
type TDMAReport struct {
	// LinkThroughput is the measured long-run throughput per link in
	// Mbps (bits delivered / simulated time).
	LinkThroughput map[topology.LinkID]float64
	// FlowDelivered is the measured end-to-end throughput of each input
	// flow in Mbps, in input order (only set by RunFlows).
	FlowDelivered []float64
	// FlowDelayPeriods is the mean end-to-end delivery delay of each
	// flow in schedule periods (only set by RunFlows; NaN when a flow
	// delivered nothing).
	FlowDelayPeriods []float64
	// Periods and MicroSlots echo the configuration actually used.
	Periods    int
	MicroSlots int
}

// frame quantizes slot shares into micro-slot counts with the largest
// remainder method; idle micro-slots carry slot index -1.
func frame(sched schedule.Schedule, micro int) []int {
	type rem struct {
		idx  int
		frac float64
	}
	counts := make([]int, len(sched.Slots))
	used := 0
	rems := make([]rem, 0, len(sched.Slots))
	for i, slot := range sched.Slots {
		exact := slot.Share * float64(micro)
		c := int(math.Floor(exact + 1e-9))
		counts[i] = c
		used += c
		rems = append(rems, rem{idx: i, frac: exact - float64(c)})
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for _, r := range rems {
		if used >= micro {
			break
		}
		if r.frac > 1e-9 {
			counts[r.idx]++
			used++
		}
	}
	timeline := make([]int, 0, micro)
	for i, c := range counts {
		for k := 0; k < c; k++ {
			timeline = append(timeline, i)
		}
	}
	for len(timeline) < micro {
		timeline = append(timeline, -1)
	}
	return timeline
}

// RunSchedule executes a schedule and measures per-link throughput.
// The schedule is validated against the conflict model first (pass a nil
// model to skip validation).
func RunSchedule(m conflict.Model, sched schedule.Schedule, cfg TDMAConfig) (*TDMAReport, error) {
	if err := sched.Validate(m); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	micro := cfg.microSlots()
	periods := cfg.periods()
	timeline := frame(sched, micro)

	bits := make(map[topology.LinkID]float64)
	slotSeconds := 1.0 / float64(micro) // one period is one second
	for p := 0; p < periods; p++ {
		for _, si := range timeline {
			if si < 0 {
				continue
			}
			for _, cp := range sched.Slots[si].Set.Couples {
				bits[cp.Link] += float64(cp.Rate) * slotSeconds // Mbit
			}
		}
	}
	out := &TDMAReport{
		LinkThroughput: make(map[topology.LinkID]float64, len(bits)),
		Periods:        periods,
		MicroSlots:     micro,
	}
	total := float64(periods)
	for l, b := range bits {
		out.LinkThroughput[l] = b / total
	}
	return out, nil
}

// RunFlows executes a schedule while forwarding each flow's packets hop
// by hop through per-link FIFO queues: every period each source injects
// demand x period worth of traffic, each active micro-slot drains the
// scheduled link's queue at the slot rate, and delivery is measured at
// the last hop. It reports measured per-flow goodput and mean delivery
// delay.
func RunFlows(m conflict.Model, sched schedule.Schedule, flows []core.Flow, cfg TDMAConfig) (*TDMAReport, error) {
	if err := sched.Validate(m); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("sim: no flows")
	}
	for i, f := range flows {
		if len(f.Path) == 0 {
			return nil, fmt.Errorf("sim: flow %d has empty path", i)
		}
		if f.Demand <= 0 {
			return nil, fmt.Errorf("sim: flow %d has non-positive demand", i)
		}
	}
	micro := cfg.microSlots()
	periods := cfg.periods()
	timeline := frame(sched, micro)
	slotSeconds := 1.0 / float64(micro)

	// fifo[f][h] is flow f's backlog before hop h as fluid "age
	// buckets": each bucket records how much traffic (Mbit) was injected
	// at which time, so delivery delay can be measured.
	type bucket struct {
		mbit     float64
		injected float64 // time of injection in periods
	}
	fifo := make([][][]bucket, len(flows))
	for i, f := range flows {
		fifo[i] = make([][]bucket, len(f.Path))
	}
	delivered := make([]float64, len(flows))
	delaySum := make([]float64, len(flows))

	linkBits := make(map[topology.LinkID]float64)

	for p := 0; p < periods; p++ {
		// Inject one period of demand at every source.
		for i, f := range flows {
			fifo[i][0] = append(fifo[i][0], bucket{mbit: f.Demand, injected: float64(p)})
		}
		for s, si := range timeline {
			if si < 0 {
				continue
			}
			now := float64(p) + float64(s)/float64(micro)
			for _, cp := range sched.Slots[si].Set.Couples {
				capacity := float64(cp.Rate) * slotSeconds
				// Drain flows crossing this link at this hop, in flow
				// order.
				for i, f := range flows {
					for h, lid := range f.Path {
						if lid != cp.Link || capacity <= 1e-15 {
							continue
						}
						q := fifo[i][h]
						for len(q) > 0 && capacity > 1e-15 {
							take := math.Min(q[0].mbit, capacity)
							q[0].mbit -= take
							capacity -= take
							linkBits[cp.Link] += take
							if h+1 < len(f.Path) {
								fifo[i][h+1] = append(fifo[i][h+1], bucket{mbit: take, injected: q[0].injected})
							} else {
								delivered[i] += take
								delaySum[i] += take * (now - q[0].injected)
							}
							if q[0].mbit <= 1e-15 {
								q = q[1:]
							}
						}
						fifo[i][h] = q
					}
				}
			}
		}
	}

	out := &TDMAReport{
		LinkThroughput:   make(map[topology.LinkID]float64, len(linkBits)),
		FlowDelivered:    make([]float64, len(flows)),
		FlowDelayPeriods: make([]float64, len(flows)),
		Periods:          periods,
		MicroSlots:       micro,
	}
	total := float64(periods)
	for l, b := range linkBits {
		out.LinkThroughput[l] = b / total
	}
	for i := range flows {
		out.FlowDelivered[i] = delivered[i] / total
		if delivered[i] > 0 {
			out.FlowDelayPeriods[i] = delaySum[i] / delivered[i]
		} else {
			out.FlowDelayPeriods[i] = math.NaN()
		}
	}
	return out, nil
}

// MeasuredNodeIdle runs the schedule's frame and measures each node's
// carrier-sensed idle fraction micro-slot by micro-slot — the empirical
// counterpart of estimate.NodeIdleRatios, matching it up to
// quantization error.
func MeasuredNodeIdle(net *topology.Network, sched schedule.Schedule, cfg TDMAConfig) ([]float64, error) {
	if err := sched.Validate(nil); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	micro := cfg.microSlots()
	timeline := frame(sched, micro)
	prof := net.Profile()
	nodes := net.Nodes()
	idleSlots := make([]int, len(nodes))
	for _, si := range timeline {
		for i, n := range nodes {
			busy := false
			if si >= 0 {
				for _, cp := range sched.Slots[si].Set.Couples {
					link, err := net.Link(cp.Link)
					if err != nil {
						return nil, fmt.Errorf("sim: %w", err)
					}
					if link.Tx == n.ID || link.Rx == n.ID {
						busy = true
						break
					}
					tx, err := net.Node(link.Tx)
					if err != nil {
						return nil, fmt.Errorf("sim: %w", err)
					}
					if prof.Senses(tx.Pos.Dist(n.Pos)) {
						busy = true
						break
					}
				}
			}
			if !busy {
				idleSlots[i]++
			}
		}
	}
	out := make([]float64, len(nodes))
	for i, c := range idleSlots {
		out[i] = float64(c) / float64(micro)
	}
	return out, nil
}
