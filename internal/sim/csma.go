package sim

import (
	"fmt"
	"math"
	"math/rand"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// Hearing reports whether link a's transmitter senses link b's
// transmission — the carrier-sensing relation of Sec. 4. It need not be
// symmetric.
type Hearing func(a, b topology.LinkID) bool

// PhysicalHearing derives hearing from geometry: a transmitter senses
// any other transmitter within the profile's carrier-sense range.
func PhysicalHearing(net *topology.Network) Hearing {
	return func(a, b topology.LinkID) bool {
		la, err := net.Link(a)
		if err != nil {
			return false
		}
		lb, err := net.Link(b)
		if err != nil {
			return false
		}
		d, err := net.NodeDist(la.Tx, lb.Tx)
		if err != nil {
			return false
		}
		return net.Profile().Senses(d)
	}
}

// ModelHearing derives hearing from a conflict model with no geometry
// (table scenarios): a link hears exactly the transmissions that would
// interfere with it at the given rates.
func ModelHearing(m conflict.Model, rateOf func(topology.LinkID) radio.Rate) Hearing {
	return func(a, b topology.LinkID) bool {
		return conflict.Interferes(m,
			conflict.Couple{Link: a, Rate: rateOf(a)},
			conflict.Couple{Link: b, Rate: rateOf(b)})
	}
}

// CSMALink is one contender in a CSMA simulation.
type CSMALink struct {
	Link topology.LinkID
	// Rate is the channel rate the link transmits at.
	Rate radio.Rate
	// OfferedMbps is the arrival rate of traffic to send; zero or
	// negative means saturated (always backlogged).
	OfferedMbps float64
	// ListenOnly makes the link a passive observer: it never transmits
	// but still measures channel idleness — how a node probes the
	// channel before requesting admission (Sec. 4).
	ListenOnly bool
}

// CSMAConfig configures the slotted CSMA/CA MAC.
type CSMAConfig struct {
	// SlotMicros is the backoff slot duration in microseconds
	// (default 20, the 802.11a slot time rounded up).
	SlotMicros float64
	// PacketBits is the payload per transmission (default 8000 bits).
	PacketBits float64
	// CWMin and CWMax bound the binary-exponential contention window
	// (defaults 16 and 1024).
	CWMin, CWMax int
	// RetryLimit drops a packet after this many failed attempts
	// (default 7).
	RetryLimit int
	// RTSCTS enables the virtual-carrier-sensing handshake: a winning
	// transmission silences every link it would collide with for its
	// duration (hidden terminals included), at the cost of
	// RTSCTSOverheadSlots extra airtime per packet. Transmissions
	// starting in the same slot still collide (RTS collisions).
	RTSCTS bool
	// RTSCTSOverheadSlots is the handshake overhead in slots
	// (default 2 when RTSCTS is on).
	RTSCTSOverheadSlots int
	// Seed drives the backoff RNG.
	Seed int64
}

func (c CSMAConfig) withDefaults() CSMAConfig {
	if c.SlotMicros <= 0 {
		c.SlotMicros = 20
	}
	if c.PacketBits <= 0 {
		c.PacketBits = 8000
	}
	if c.CWMin <= 0 {
		c.CWMin = 16
	}
	if c.CWMax < c.CWMin {
		c.CWMax = 1024
	}
	if c.RetryLimit <= 0 {
		c.RetryLimit = 7
	}
	if c.RTSCTS && c.RTSCTSOverheadSlots <= 0 {
		c.RTSCTSOverheadSlots = 2
	}
	return c
}

// CSMAReport is the outcome of a CSMA simulation.
type CSMAReport struct {
	// Throughput is successfully delivered goodput per link in Mbps.
	Throughput map[topology.LinkID]float64
	// IdleRatio is the fraction of slots each link's transmitter sensed
	// the channel idle while not transmitting itself — the lambda_idle
	// the paper's distributed estimators measure.
	IdleRatio map[topology.LinkID]float64
	// Attempts and Collisions count transmissions started and failed.
	Attempts   map[topology.LinkID]int
	Collisions map[topology.LinkID]int
	// DurationMs echoes the simulated time.
	DurationMs float64
}

type csmaState struct {
	link     CSMALink
	slots    int // packet airtime in slots at this link's rate
	backlog  float64
	backoff  int
	cw       int
	retries  int
	txLeft   int  // slots remaining of the current transmission
	txFailed bool // the current transmission has already been corrupted
	nav      int  // RTS/CTS virtual-carrier-sense countdown
	idle     int
	bits     float64
	attempts int
	fails    int
}

// RunCSMA simulates slotted CSMA/CA with binary exponential backoff:
// each backlogged link counts down its backoff while it senses the
// channel idle, transmits a packet when the countdown hits zero, and
// succeeds iff the conflict model sustains its rate against every
// concurrent transmission in every slot of the packet (SINR capture).
func RunCSMA(m conflict.Model, hearing Hearing, links []CSMALink, durationMs float64, cfg CSMAConfig) (*CSMAReport, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("sim: no links")
	}
	if hearing == nil {
		return nil, fmt.Errorf("sim: nil hearing relation")
	}
	if durationMs <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration %g", durationMs)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	states := make([]*csmaState, 0, len(links))
	seen := make(map[topology.LinkID]bool, len(links))
	for i, l := range links {
		if l.Rate <= 0 {
			return nil, fmt.Errorf("sim: link %d has non-positive rate", i)
		}
		if seen[l.Link] {
			return nil, fmt.Errorf("sim: link %d listed twice", l.Link)
		}
		seen[l.Link] = true
		airMicros := cfg.PacketBits / float64(l.Rate) // bits / (Mbps) = microseconds
		st := &csmaState{
			link:  l,
			slots: int(math.Ceil(airMicros/cfg.SlotMicros)) + cfg.RTSCTSOverheadSlots,
			cw:    cfg.CWMin,
		}
		st.backoff = rng.Intn(st.cw)
		if l.OfferedMbps <= 0 {
			st.backlog = math.Inf(1)
		}
		states = append(states, st)
	}

	totalSlots := int(durationMs * 1000 / cfg.SlotMicros)
	bitsPerSlot := make([]float64, len(states)) // arrivals per slot
	for i, st := range states {
		if st.link.OfferedMbps > 0 {
			bitsPerSlot[i] = st.link.OfferedMbps * cfg.SlotMicros // Mbps * us = bits
		}
	}

	transmitting := make([]bool, len(states))
	for slot := 0; slot < totalSlots; slot++ {
		for i, st := range states {
			if bitsPerSlot[i] > 0 {
				st.backlog += bitsPerSlot[i]
			}
			transmitting[i] = st.txLeft > 0
		}
		// Sensing and backoff decisions use last slot's channel state;
		// links starting now all see the channel as it was.
		var starting []int
		for i, st := range states {
			if st.txLeft > 0 {
				continue
			}
			if st.nav > 0 {
				st.nav--
				continue // virtually reserved: defer, channel counts busy
			}
			busy := false
			for j, other := range states {
				if i == j || !transmitting[j] {
					continue
				}
				if hearing(st.link.Link, other.link.Link) {
					busy = true
					break
				}
			}
			if busy {
				continue
			}
			st.idle++
			if st.link.ListenOnly || st.backlog < cfg.PacketBits {
				continue
			}
			if st.backoff > 0 {
				st.backoff--
				continue
			}
			starting = append(starting, i)
		}
		for _, i := range starting {
			st := states[i]
			st.txLeft = st.slots
			st.txFailed = false
			st.attempts++
			transmitting[i] = true
		}
		// RTS/CTS: each fresh transmission silences every link it would
		// collide with (virtual carrier sensing reaches hidden
		// terminals). Same-slot starters are not protected — their RTS
		// frames collided already.
		if cfg.RTSCTS {
			for _, i := range starting {
				winner := states[i]
				for j, other := range states {
					if j == i || other.txLeft > 0 {
						continue
					}
					self := conflict.Couple{Link: winner.link.Link, Rate: winner.link.Rate}
					peer := conflict.Couple{Link: other.link.Link, Rate: other.link.Rate}
					if hearing(other.link.Link, winner.link.Link) || conflict.Interferes(m, self, peer) {
						if winner.txLeft > other.nav {
							other.nav = winner.txLeft
						}
					}
				}
			}
		}
		// Evaluate capture for every active transmission this slot.
		var active []conflict.Couple
		for _, st := range states {
			if st.txLeft > 0 {
				active = append(active, conflict.Couple{Link: st.link.Link, Rate: st.link.Rate})
			}
		}
		if len(active) > 1 {
			for _, st := range states {
				if st.txLeft <= 0 || st.txFailed {
					continue
				}
				others := make([]conflict.Couple, 0, len(active)-1)
				for _, c := range active {
					if c.Link != st.link.Link {
						others = append(others, c)
					}
				}
				if m.MaxRate(st.link.Link, others) < st.link.Rate {
					st.txFailed = true
				}
			}
		}
		// Advance transmissions; settle completions.
		for _, st := range states {
			if st.txLeft == 0 {
				continue
			}
			st.txLeft--
			if st.txLeft > 0 {
				continue
			}
			if st.txFailed {
				st.fails++
				st.retries++
				st.cw = minInt(st.cw*2, cfg.CWMax)
				if st.retries >= cfg.RetryLimit {
					// Drop the packet.
					st.backlog = math.Max(0, st.backlog-cfg.PacketBits)
					if math.IsInf(st.backlog, 1) {
						st.backlog = math.Inf(1)
					}
					st.retries = 0
					st.cw = cfg.CWMin
				}
			} else {
				st.bits += cfg.PacketBits
				if !math.IsInf(st.backlog, 1) {
					st.backlog = math.Max(0, st.backlog-cfg.PacketBits)
				}
				st.retries = 0
				st.cw = cfg.CWMin
			}
			st.backoff = rng.Intn(st.cw)
		}
	}

	durationUs := float64(totalSlots) * cfg.SlotMicros
	out := &CSMAReport{
		Throughput: make(map[topology.LinkID]float64, len(states)),
		IdleRatio:  make(map[topology.LinkID]float64, len(states)),
		Attempts:   make(map[topology.LinkID]int, len(states)),
		Collisions: make(map[topology.LinkID]int, len(states)),
		DurationMs: durationUs / 1000,
	}
	for _, st := range states {
		out.Throughput[st.link.Link] = st.bits / durationUs // bits/us = Mbps
		out.IdleRatio[st.link.Link] = float64(st.idle) / float64(totalSlots)
		out.Attempts[st.link.Link] = st.attempts
		out.Collisions[st.link.Link] = st.fails
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
