// Package radio models the multirate physical layer of the paper: a set
// of discrete channel rates, each with a receiver sensitivity and a SINR
// requirement (paper Eq. 1), over a log-distance path-loss channel.
//
// Powers are expressed in normalized linear units with transmit power 1.0
// unless configured otherwise; only power *ratios* matter to the model,
// so the normalization is lossless. Sensitivities are calibrated so each
// rate's maximum transmission distance matches the paper exactly
// (59/79/119/158 m for 54/36/18/6 Mbps with path-loss exponent 4); the
// noise floor is set to the largest value for which the noise-only SINR
// at every rate's boundary distance still meets that rate's requirement.
package radio

import (
	"fmt"
	"math"
	"sort"
)

// Rate is a channel rate in Mbps. The zero value means "no rate": the
// link cannot transmit at all under the current conditions.
type Rate float64

// String implements fmt.Stringer.
func (r Rate) String() string {
	return fmt.Sprintf("%gMbps", float64(r))
}

// RateClass describes one discrete rate supported by the PHY.
type RateClass struct {
	// Rate is the channel rate in Mbps.
	Rate Rate
	// Range is the maximum transmission distance in meters at which a
	// receiver can decode this rate with no interference.
	Range float64
	// SINRdB is the signal-to-interference-plus-noise requirement in dB.
	SINRdB float64
}

// Profile is a calibrated multirate PHY model. Construct one with
// NewProfile or NewProfile80211a; the zero value is not usable.
type Profile struct {
	classes  []RateClass // sorted by descending rate
	exponent float64
	txPower  float64
	noise    float64
	csRange  float64
	sens     []float64 // receiver sensitivity per class, same order
	sinrLin  []float64 // linear SINR threshold per class, same order
}

// Option configures a Profile.
type Option func(*options)

type options struct {
	txPower       float64
	csRangeFactor float64
	noiseMarginDB float64
}

// WithTxPower sets the transmit power in linear units (default 1.0).
func WithTxPower(p float64) Option {
	return func(o *options) { o.txPower = p }
}

// WithCSRangeFactor sets the carrier-sense range as a multiple of the
// longest rate range (default 1.5, i.e. 237 m for the paper profile).
func WithCSRangeFactor(f float64) Option {
	return func(o *options) { o.csRangeFactor = f }
}

// WithNoiseMarginDB lowers the calibrated noise floor by the given margin
// in dB, giving every rate extra SINR headroom at its boundary distance
// (default 0 dB).
func WithNoiseMarginDB(db float64) Option {
	return func(o *options) { o.noiseMarginDB = db }
}

// NewProfile builds a calibrated profile from rate classes and a
// path-loss exponent. Classes may be given in any order; they are sorted
// by descending rate. It returns an error if the classes are not
// physically consistent (a higher rate must have a shorter range).
func NewProfile(classes []RateClass, exponent float64, opts ...Option) (*Profile, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("radio: profile needs at least one rate class")
	}
	if exponent <= 0 {
		return nil, fmt.Errorf("radio: path-loss exponent must be positive, got %g", exponent)
	}
	o := options{txPower: 1.0, csRangeFactor: 1.5}
	for _, opt := range opts {
		opt(&o)
	}

	cs := make([]RateClass, len(classes))
	copy(cs, classes)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Rate > cs[j].Rate })
	for i, c := range cs {
		if c.Rate <= 0 || c.Range <= 0 {
			return nil, fmt.Errorf("radio: class %d has non-positive rate or range", i)
		}
		if i > 0 && cs[i-1].Range >= c.Range {
			return nil, fmt.Errorf("radio: rate %v (range %gm) must out-range higher rate %v (range %gm)",
				c.Rate, c.Range, cs[i-1].Rate, cs[i-1].Range)
		}
	}

	p := &Profile{
		classes:  cs,
		exponent: exponent,
		txPower:  o.txPower,
		csRange:  o.csRangeFactor * cs[len(cs)-1].Range,
		sens:     make([]float64, len(cs)),
		sinrLin:  make([]float64, len(cs)),
	}
	// Calibrate sensitivities so each rate decodes exactly out to its
	// published range, and the noise floor so the noise-only SINR at the
	// boundary still meets the per-rate requirement (paper Eq. 1 holds
	// with equality for the tightest rate).
	noise := math.Inf(1)
	for i, c := range cs {
		p.sens[i] = p.txPower * math.Pow(c.Range, -exponent)
		p.sinrLin[i] = math.Pow(10, c.SINRdB/10)
		if n := p.sens[i] / p.sinrLin[i]; n < noise {
			noise = n
		}
	}
	p.noise = noise * math.Pow(10, -o.noiseMarginDB/10)
	return p, nil
}

// NewProfile80211a returns the four-rate 802.11a profile used throughout
// the paper's evaluation (Sec. 5.2): rates 54/36/18/6 Mbps with maximum
// transmission distances 59/79/119/158 m, SINR requirements
// 24.56/18.80/10.79/6.02 dB, and path-loss exponent 4.
func NewProfile80211a(opts ...Option) *Profile {
	p, err := NewProfile([]RateClass{
		{Rate: 54, Range: 59, SINRdB: 24.56},
		{Rate: 36, Range: 79, SINRdB: 18.80},
		{Rate: 18, Range: 119, SINRdB: 10.79},
		{Rate: 6, Range: 158, SINRdB: 6.02},
	}, 4, opts...)
	if err != nil {
		// The constants above are valid by construction; reaching here
		// means the package itself is broken.
		panic(fmt.Sprintf("radio: building 802.11a profile: %v", err))
	}
	return p
}

// NewProfile80211b returns a four-rate 802.11b CCK profile
// (11/5.5/2/1 Mbps), useful for rate-diversity ablations against the
// 802.11a profile. Ranges follow the same path-loss law as the paper's
// 802.11a constants with the lower SINR requirements of CCK modulation.
func NewProfile80211b(opts ...Option) *Profile {
	p, err := NewProfile([]RateClass{
		{Rate: 11, Range: 115, SINRdB: 10.0},
		{Rate: 5.5, Range: 135, SINRdB: 8.0},
		{Rate: 2, Range: 155, SINRdB: 6.0},
		{Rate: 1, Range: 175, SINRdB: 4.0},
	}, 4, opts...)
	if err != nil {
		panic(fmt.Sprintf("radio: building 802.11b profile: %v", err))
	}
	return p
}

// NewSingleRateProfile returns a profile restricted to one rate class —
// the "fixed rate" regime used as an ablation baseline.
func NewSingleRateProfile(class RateClass, exponent float64, opts ...Option) (*Profile, error) {
	return NewProfile([]RateClass{class}, exponent, opts...)
}

// Rates returns the supported rates in descending order. The returned
// slice is a copy.
func (p *Profile) Rates() []Rate {
	out := make([]Rate, len(p.classes))
	for i, c := range p.classes {
		out[i] = c.Rate
	}
	return out
}

// Classes returns a copy of the profile's rate classes in descending
// rate order.
func (p *Profile) Classes() []RateClass {
	out := make([]RateClass, len(p.classes))
	copy(out, p.classes)
	return out
}

// NumClasses returns the number of rate classes.
func (p *Profile) NumClasses() int { return len(p.classes) }

// Class returns the i-th rate class in descending rate order. It is the
// allocation-free companion of Classes for hot loops.
func (p *Profile) Class(i int) RateClass { return p.classes[i] }

// Exponent returns the path-loss exponent.
func (p *Profile) Exponent() float64 { return p.exponent }

// TxPower returns the transmit power in linear units.
func (p *Profile) TxPower() float64 { return p.txPower }

// Noise returns the calibrated noise floor in linear units.
func (p *Profile) Noise() float64 { return p.noise }

// CSRange returns the carrier-sense range in meters: a node senses the
// channel busy whenever some transmitter is within this distance.
func (p *Profile) CSRange() float64 { return p.csRange }

// MaxRange returns the longest transmission range (that of the lowest
// rate) in meters.
func (p *Profile) MaxRange() float64 { return p.classes[len(p.classes)-1].Range }

// RxPower returns the received power at distance d meters from a
// transmitter using this profile's transmit power. Distances below one
// meter are clamped to one meter to keep the near field finite.
func (p *Profile) RxPower(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return p.txPower * math.Pow(d, -p.exponent)
}

// Sensitivity returns the receiver sensitivity of rate r in linear units
// and true, or 0 and false if r is not a rate of this profile.
func (p *Profile) Sensitivity(r Rate) (float64, bool) {
	for i, c := range p.classes {
		if c.Rate == r {
			return p.sens[i], true
		}
	}
	return 0, false
}

// SINRThreshold returns the linear SINR requirement of rate r and true,
// or 0 and false if r is not a rate of this profile.
func (p *Profile) SINRThreshold(r Rate) (float64, bool) {
	for i, c := range p.classes {
		if c.Rate == r {
			return p.sinrLin[i], true
		}
	}
	return 0, false
}

// MaxRateAtDistance returns the highest rate decodable at distance d with
// no interference (both conditions of paper Eq. 1 with zero interference
// power), or 0 and false if no rate reaches that far.
func (p *Profile) MaxRateAtDistance(d float64) (Rate, bool) {
	return p.MaxRate(p.RxPower(d), 0)
}

// MaxRate returns the highest rate whose receiver sensitivity and SINR
// requirement are both met for the given received signal power and total
// interference power (paper Eq. 1), or 0 and false if none is.
func (p *Profile) MaxRate(prSignal, prInterference float64) (Rate, bool) {
	sinr := prSignal / (prInterference + p.noise)
	for i, c := range p.classes {
		if prSignal >= p.sens[i] && sinr >= p.sinrLin[i] {
			return c.Rate, true
		}
	}
	return 0, false
}

// Supports reports whether rate r is met for the given received signal
// power and interference power.
func (p *Profile) Supports(r Rate, prSignal, prInterference float64) bool {
	sens, ok := p.Sensitivity(r)
	if !ok {
		return false
	}
	thr, _ := p.SINRThreshold(r)
	return prSignal >= sens && prSignal/(prInterference+p.noise) >= thr
}

// Senses reports whether a node at distance d from a transmitter senses
// the channel busy (carrier sensing, Sec. 4 of the paper).
func (p *Profile) Senses(d float64) bool {
	return d <= p.csRange
}
