package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewProfile80211aRanges(t *testing.T) {
	p := NewProfile80211a()
	tests := []struct {
		name string
		d    float64
		want Rate
		ok   bool
	}{
		{"point blank", 1, 54, true},
		{"54 boundary", 59, 54, true},
		{"just past 54", 59.5, 36, true},
		{"36 boundary", 79, 36, true},
		{"just past 36", 79.5, 18, true},
		{"18 boundary", 119, 18, true},
		{"just past 18", 119.5, 6, true},
		{"6 boundary", 158, 6, true},
		{"out of range", 158.5, 0, false},
		{"far out of range", 500, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := p.MaxRateAtDistance(tt.d)
			if got != tt.want || ok != tt.ok {
				t.Errorf("MaxRateAtDistance(%g) = (%v, %v), want (%v, %v)", tt.d, got, ok, tt.want, tt.ok)
			}
		})
	}
}

func TestNewProfile80211aRatesDescending(t *testing.T) {
	p := NewProfile80211a()
	rates := p.Rates()
	want := []Rate{54, 36, 18, 6}
	if len(rates) != len(want) {
		t.Fatalf("got %d rates, want %d", len(rates), len(want))
	}
	for i := range want {
		if rates[i] != want[i] {
			t.Errorf("rate %d = %v, want %v", i, rates[i], want[i])
		}
	}
}

func TestNoiseCalibration(t *testing.T) {
	// At every rate's boundary distance with zero interference, the
	// noise-only SINR must still meet that rate's requirement: the noise
	// floor is calibrated to the tightest rate.
	p := NewProfile80211a()
	for _, c := range p.Classes() {
		pr := p.RxPower(c.Range)
		thr, ok := p.SINRThreshold(c.Rate)
		if !ok {
			t.Fatalf("missing SINR threshold for %v", c.Rate)
		}
		if sinr := pr / p.Noise(); sinr < thr-1e-9 {
			t.Errorf("rate %v at boundary: noise-only SINR %.3f below threshold %.3f", c.Rate, sinr, thr)
		}
	}
}

func TestSensitivityAtExactRange(t *testing.T) {
	p := NewProfile80211a()
	for _, c := range p.Classes() {
		sens, ok := p.Sensitivity(c.Rate)
		if !ok {
			t.Fatalf("missing sensitivity for %v", c.Rate)
		}
		if pr := p.RxPower(c.Range); math.Abs(pr-sens)/sens > 1e-12 {
			t.Errorf("rate %v: RxPower(range)=%g != sensitivity %g", c.Rate, pr, sens)
		}
	}
}

func TestMaxRateWithInterference(t *testing.T) {
	p := NewProfile80211a()
	// Close receiver: signal power is high. With no interference it gets
	// 54 Mbps; with increasing interference the rate degrades stepwise.
	sig := p.RxPower(30)
	r0, ok := p.MaxRate(sig, 0)
	if !ok || r0 != 54 {
		t.Fatalf("MaxRate(no interference) = %v, want 54", r0)
	}
	// Find an interference level that kills 54 but not 36.
	thr54, _ := p.SINRThreshold(54)
	thr36, _ := p.SINRThreshold(36)
	inf := sig/thr54 - p.Noise() + sig*1e-9 // just above the 54 budget
	r1, ok := p.MaxRate(sig, inf)
	if !ok || r1 != 36 {
		t.Fatalf("MaxRate(mid interference) = %v (ok=%v), want 36", r1, ok)
	}
	// Massive interference kills everything.
	inf = sig / (0.5 * math.Min(thr36, 1))
	if r2, ok := p.MaxRate(sig, inf*1e6); ok {
		t.Fatalf("MaxRate(huge interference) = %v, want none", r2)
	}
}

func TestSupports(t *testing.T) {
	p := NewProfile80211a()
	sig := p.RxPower(70) // supports 36 at most by sensitivity
	if p.Supports(54, sig, 0) {
		t.Error("Supports(54) at 70m should be false (sensitivity)")
	}
	if !p.Supports(36, sig, 0) {
		t.Error("Supports(36) at 70m should be true")
	}
	if p.Supports(99, sig, 0) {
		t.Error("Supports(unknown rate) should be false")
	}
}

func TestMaxRateMonotoneInInterference(t *testing.T) {
	p := NewProfile80211a()
	f := func(dRaw, iRaw float64) bool {
		d := 1 + math.Abs(math.Mod(dRaw, 200))
		i1 := math.Abs(math.Mod(iRaw, 1))
		i2 := i1 * 2
		sig := p.RxPower(d)
		r1, _ := p.MaxRate(sig, i1)
		r2, _ := p.MaxRate(sig, i2)
		return r2 <= r1 // more interference never raises the rate
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxRateMonotoneInDistance(t *testing.T) {
	p := NewProfile80211a()
	f := func(dRaw float64) bool {
		d := 1 + math.Abs(math.Mod(dRaw, 300))
		r1, _ := p.MaxRateAtDistance(d)
		r2, _ := p.MaxRateAtDistance(d + 10)
		return r2 <= r1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSRangeDefault(t *testing.T) {
	p := NewProfile80211a()
	if got, want := p.CSRange(), 1.5*158.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("CSRange = %g, want %g", got, want)
	}
	if !p.Senses(200) {
		t.Error("Senses(200m) should be true with default CS range 237m")
	}
	if p.Senses(238) {
		t.Error("Senses(238m) should be false")
	}
}

func TestOptions(t *testing.T) {
	p := NewProfile80211a(WithTxPower(2), WithCSRangeFactor(2), WithNoiseMarginDB(3))
	if p.TxPower() != 2 {
		t.Errorf("TxPower = %g, want 2", p.TxPower())
	}
	if got, want := p.CSRange(), 2*158.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("CSRange = %g, want %g", got, want)
	}
	// Noise margin lowers the floor by 3 dB relative to the default.
	def := NewProfile80211a(WithTxPower(2))
	if ratio := def.Noise() / p.Noise(); math.Abs(ratio-math.Pow(10, 0.3)) > 1e-9 {
		t.Errorf("noise margin ratio = %g, want 10^0.3", ratio)
	}
}

func TestNewProfileValidation(t *testing.T) {
	tests := []struct {
		name    string
		classes []RateClass
		exp     float64
	}{
		{"empty", nil, 4},
		{"bad exponent", []RateClass{{Rate: 54, Range: 59, SINRdB: 24}}, 0},
		{"zero rate", []RateClass{{Rate: 0, Range: 59, SINRdB: 24}}, 4},
		{"zero range", []RateClass{{Rate: 54, Range: 0, SINRdB: 24}}, 4},
		{
			"inverted ranges",
			[]RateClass{{Rate: 54, Range: 100, SINRdB: 24}, {Rate: 36, Range: 50, SINRdB: 18}},
			4,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewProfile(tt.classes, tt.exp); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestRxPowerClampsNearField(t *testing.T) {
	p := NewProfile80211a()
	if p.RxPower(0) != p.RxPower(0.5) || p.RxPower(0) != p.RxPower(1) {
		t.Error("RxPower should clamp distances below 1m to 1m")
	}
	if math.IsInf(p.RxPower(0), 1) {
		t.Error("RxPower(0) must be finite")
	}
}

func TestRateString(t *testing.T) {
	if got := Rate(54).String(); got != "54Mbps" {
		t.Errorf("Rate.String = %q, want 54Mbps", got)
	}
}

func TestNewProfile80211b(t *testing.T) {
	p := NewProfile80211b()
	rates := p.Rates()
	want := []Rate{11, 5.5, 2, 1}
	if len(rates) != len(want) {
		t.Fatalf("rates = %v", rates)
	}
	for i := range want {
		if rates[i] != want[i] {
			t.Errorf("rate %d = %v, want %v", i, rates[i], want[i])
		}
	}
	if r, ok := p.MaxRateAtDistance(100); !ok || r != 11 {
		t.Errorf("MaxRateAtDistance(100) = (%v,%v), want 11", r, ok)
	}
	if r, ok := p.MaxRateAtDistance(170); !ok || r != 1 {
		t.Errorf("MaxRateAtDistance(170) = (%v,%v), want 1", r, ok)
	}
	if _, ok := p.MaxRateAtDistance(180); ok {
		t.Error("180m should be out of range")
	}
	// Noise calibration holds for b too.
	for _, c := range p.Classes() {
		thr, _ := p.SINRThreshold(c.Rate)
		if sinr := p.RxPower(c.Range) / p.Noise(); sinr < thr-1e-9 {
			t.Errorf("rate %v boundary SINR %.3f below threshold %.3f", c.Rate, sinr, thr)
		}
	}
}

func TestNewSingleRateProfile(t *testing.T) {
	p, err := NewSingleRateProfile(RateClass{Rate: 54, Range: 59, SINRdB: 24.56}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Rates(); len(got) != 1 || got[0] != 54 {
		t.Errorf("Rates = %v, want [54]", got)
	}
	if _, ok := p.MaxRateAtDistance(60); ok {
		t.Error("60m should be out of range for the single 54 class")
	}
	if _, err := NewSingleRateProfile(RateClass{Rate: 0, Range: 59, SINRdB: 24}, 4); err == nil {
		t.Error("invalid class: expected error")
	}
}
