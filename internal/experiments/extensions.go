package experiments

import (
	"fmt"
	"math"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/geom"
	"abw/internal/lp"
	"abw/internal/radio"
	"abw/internal/routing"
	"abw/internal/topology"
	"abw/internal/trace"

	"math/rand"
)

// DemandSweep (E11) extends Fig. 4 beyond the paper: the same
// estimation experiment run at several background demand levels, from
// light (0.5 Mbps flows) to heavy (4 Mbps). It reports each estimator's
// mean absolute error per level, confirming the paper's conclusion —
// conservative clique best — is not an artifact of the single 2 Mbps
// operating point.
func DemandSweep() (*Table, error) {
	net, m, baseReqs, err := Fig2Setup()
	if err != nil {
		return nil, err
	}
	demands := []float64{0.5, 1, 2, 4}
	tbl := &Table{
		ID:    "E11",
		Title: "Extension: Fig. 4 estimator error across background demand levels (MAE, Mbps)",
		Header: []string{
			"demand/flow", "clique", "bottleneck", "min", "conservative", "ECTT", "best",
		},
	}
	for _, sweep := range trace.DemandSweep(baseReqs, demands) {
		mae, n, err := estimationMAE(net, m, sweep)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			continue
		}
		best := estimate.MetricCliqueConstraint
		for _, metric := range estimate.AllMetrics() {
			if mae[metric] < mae[best] {
				best = metric
			}
		}
		tbl.AddRow(fmt.Sprintf("%.1f Mbps", sweep[0].Demand),
			fmt.Sprintf("%.3f", mae[estimate.MetricCliqueConstraint]/float64(n)),
			fmt.Sprintf("%.3f", mae[estimate.MetricBottleneckNode]/float64(n)),
			fmt.Sprintf("%.3f", mae[estimate.MetricMinOfBoth]/float64(n)),
			fmt.Sprintf("%.3f", mae[estimate.MetricConservativeClique]/float64(n)),
			fmt.Sprintf("%.3f", mae[estimate.MetricExpectedCliqueTime]/float64(n)),
			best.String())
	}
	tbl.AddNote("the paper evaluates a single 2 Mbps point; the ranking persists across the sweep")
	return tbl, nil
}

// estimationMAE runs the Fig. 4 pipeline for one request set and
// returns the summed absolute error per estimator plus the number of
// evaluated flows.
func estimationMAE(net *topology.Network, m *conflict.Physical, reqs []routing.Request) (map[estimate.Metric]float64, int, error) {
	mae := make(map[estimate.Metric]float64, 5)
	var admitted []core.Flow
	n := 0
	for _, req := range reqs {
		idle, err := routing.BackgroundIdleness(net, m, admitted, core.Options{})
		if err != nil {
			return nil, 0, err
		}
		path, err := routing.FindPath(net, m, routing.MetricAvgE2ED, idle, req.Src, req.Dst)
		if err != nil {
			return nil, 0, err
		}
		res, err := core.AvailableBandwidth(m, admitted, path, core.Options{})
		if err != nil {
			return nil, 0, err
		}
		if res.Status != lp.Optimal {
			break
		}
		sched, err := routing.BackgroundSchedule(m, admitted, core.Options{})
		if err != nil {
			return nil, 0, err
		}
		ps, err := estimate.PathStateFromSchedule(net, m, sched, path)
		if err != nil {
			return nil, 0, err
		}
		ests, err := estimate.EstimateAll(m, ps)
		if err != nil {
			return nil, 0, err
		}
		for metric, v := range ests {
			mae[metric] += math.Abs(v - res.Bandwidth)
		}
		n++
		if res.Bandwidth+1e-9 >= req.Demand {
			admitted = append(admitted, core.Flow{Path: path, Demand: req.Demand})
		}
	}
	return mae, n, nil
}

// RateDiversityAblation (E12) measures what the multirate capability
// itself buys at network scale: the Sec. 5.2 admission experiment run
// with the full four-rate 802.11a profile versus single-rate profiles
// (54 Mbps only — fast but short-ranged; 6 Mbps only — far but slow).
func RateDiversityAblation() (*Table, error) {
	type variant struct {
		name    string
		profile *radio.Profile
	}
	mk := func(class radio.RateClass) *radio.Profile {
		p, err := radio.NewSingleRateProfile(class, 4)
		if err != nil {
			// The classes below are the valid 802.11a constants.
			panic(err)
		}
		return p
	}
	variants := []variant{
		{name: "four rates (802.11a)", profile: radio.NewProfile80211a()},
		{name: "54 Mbps only", profile: mk(radio.RateClass{Rate: 54, Range: 59, SINRdB: 24.56})},
		{name: "18 Mbps only", profile: mk(radio.RateClass{Rate: 18, Range: 119, SINRdB: 10.79})},
		{name: "6 Mbps only", profile: mk(radio.RateClass{Rate: 6, Range: 158, SINRdB: 6.02})},
	}
	tbl := &Table{
		ID:     "E12",
		Title:  "Extension: rate diversity ablation on the Sec. 5.2 deployment (average-e2eD routing)",
		Header: []string{"profile", "links", "routable", "admitted", "total admitted demand"},
	}
	// One shared request set, drawn on the full multirate topology so
	// every variant faces the same workload; variants that cannot even
	// route a pair count it as rejected.
	baseNet, err := topology.New(radio.NewProfile80211a(), layoutPoints())
	if err != nil {
		return nil, err
	}
	reqs, err := trace.RandomRequests(baseNet, rand.New(rand.NewSource(RequestSeed)), NumFlows, FlowDemand)
	if err != nil {
		return nil, err
	}
	for _, v := range variants {
		net, err := topology.New(v.profile, layoutPoints())
		if err != nil {
			return nil, err
		}
		m := conflict.NewPhysical(net)
		decs, err := routing.SequentialAdmission(net, m, routing.MetricAvgE2ED, reqs,
			routing.AdmissionOptions{StopAtFirstFailure: false})
		if err != nil {
			return nil, err
		}
		routable := 0
		admitted := 0
		demand := 0.0
		for _, d := range decs {
			if d.Path != nil {
				routable++
			}
			if d.Admitted {
				admitted++
				demand += d.Request.Demand
			}
		}
		tbl.AddRow(v.name, fmt.Sprintf("%d", net.NumLinks()), fmt.Sprintf("%d/%d", routable, len(reqs)),
			fmt.Sprintf("%d", admitted), fmt.Sprintf("%.1f Mbps", demand))
	}
	tbl.AddNote("one shared 8-flow workload: 54-only fragments the topology (no routes at all);")
	tbl.AddNote("6-only keeps the same connectivity but saturates after two flows (later requests find")
	tbl.AddNote("every nearby link fully busy); the multirate profile dominates both")
	return tbl, nil
}

// layoutPoints regenerates the calibrated Fig. 2 node layout so every
// ablation variant sees the same geometry.
func layoutPoints() []geom.Point {
	rng := rand.New(rand.NewSource(TopologySeed))
	return geom.UniformPoints(rng, geom.Rect{W: AreaWidth, H: AreaHeight}, NumNodes)
}
