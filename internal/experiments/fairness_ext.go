package experiments

import (
	"fmt"

	"abw/internal/core"
	"abw/internal/lp"
	"abw/internal/routing"
	"abw/internal/scenario"
	"abw/internal/topology"
)

// FairAllocation (E15) applies the rate-coupled machinery to the
// resource-allocation question of the paper's reference [11]: max-min
// fair throughput shares. Three workloads: Scenario I (one contested
// and two compatible links), Scenario II twins, and the Sec. 5.2 random
// deployment's admitted flows freed from their 2 Mbps caps.
func FairAllocation() (*Table, error) {
	tbl := &Table{
		ID:     "E15",
		Title:  "Extension: max-min fair allocation over the exact feasibility polytope",
		Header: []string{"workload", "flow", "fair share (Mbps)", "note"},
	}

	// Scenario I: the fair point gives everyone 27 (overlap pays).
	s1 := scenario.NewScenarioI(54)
	flows1 := []core.Flow{
		{Path: topology.Path{s1.L1}},
		{Path: topology.Path{s1.L2}},
		{Path: topology.Path{s1.L3}},
	}
	alloc1, _, err := core.MaxMinFair(s1.Model, flows1, core.Options{})
	if err != nil {
		return nil, err
	}
	for j, a := range alloc1 {
		tbl.AddRow("Scenario I", fmt.Sprintf("L%d", j+1), fmt.Sprintf("%.3f", a),
			"L1+L2 overlap; L3 gets the other half")
	}

	// Scenario II: twin 4-hop flows split the 16.2 capacity.
	s2 := scenario.NewScenarioII()
	alloc2, _, err := core.MaxMinFair(s2.Model, []core.Flow{{Path: s2.Path}, {Path: s2.Path}}, core.Options{})
	if err != nil {
		return nil, err
	}
	for j, a := range alloc2 {
		tbl.AddRow("Scenario II twins", fmt.Sprintf("flow %d", j+1), fmt.Sprintf("%.3f", a),
			"half of the 16.2 multirate optimum")
	}

	// Random deployment: the flows the paper's Fig. 3 admitted under
	// average-e2eD, now sharing max-min fairly instead of first-come.
	net, m, reqs, err := Fig2Setup()
	if err != nil {
		return nil, err
	}
	var flows []core.Flow
	var admitted []core.Flow
	for _, req := range reqs[:4] { // the first four keep the LP small
		idle, err := routing.BackgroundIdleness(net, m, admitted, core.Options{})
		if err != nil {
			return nil, err
		}
		path, err := routing.FindPath(net, m, routing.MetricAvgE2ED, idle, req.Src, req.Dst)
		if err != nil {
			return nil, err
		}
		res, err := core.AvailableBandwidth(m, admitted, path, core.Options{})
		if err != nil {
			return nil, err
		}
		if res.Status == lp.Optimal && res.Bandwidth+1e-9 >= req.Demand {
			admitted = append(admitted, core.Flow{Path: path, Demand: req.Demand})
			flows = append(flows, core.Flow{Path: path}) // uncapped for fairness
		}
	}
	allocR, _, err := core.MaxMinFair(m, flows, core.Options{})
	if err != nil {
		return nil, err
	}
	for j, a := range allocR {
		tbl.AddRow("Sec. 5.2 deployment", fmt.Sprintf("flow %d", j+1), fmt.Sprintf("%.3f", a),
			"uncapped max-min share of the admitted routes")
	}
	tbl.AddNote("progressive filling freezes each flow at its true rate-coupled bottleneck;")
	tbl.AddNote("first-come admission (Fig. 3) gives early flows more than their fair share")
	return tbl, nil
}
