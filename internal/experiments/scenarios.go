package experiments

import (
	"fmt"
	"math"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/indepset"
	"abw/internal/lp"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// scenarioILambda is the background time share on L1 and L2 in the
// paper's introduction example.
const scenarioILambda = 0.3

// ScenarioI reproduces experiment E1 (Fig. 1 left, Sec. 1): the exact
// model admits (1-lambda)*r over L3 while channel-idle-time estimation
// admits only (1-2*lambda)*r.
func ScenarioI() (*Table, error) {
	s := scenario.NewScenarioI(54)
	rate := float64(s.Rate)
	bg := []core.Flow{
		{Path: topology.Path{s.L1}, Demand: scenarioILambda * rate},
		{Path: topology.Path{s.L2}, Demand: scenarioILambda * rate},
	}
	res, err := core.AvailableBandwidth(s.Model, bg, topology.Path{s.L3}, core.Options{})
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("scenario I LP %v", res.Status)
	}

	// The measured world: L1 and L2 in disjoint slots; L3 senses both.
	measured := schedule.Schedule{Slots: []schedule.Slot{
		{Share: scenarioILambda, Set: indepset.NewSet(conflict.Couple{Link: s.L1, Rate: s.Rate})},
		{Share: scenarioILambda, Set: indepset.NewSet(conflict.Couple{Link: s.L2, Rate: s.Rate})},
	}}
	idle := estimate.LinkIdleFromSchedule(s.Model, measured, s.L3, s.Rate)
	idleEstimate := idle * rate

	tbl := &Table{
		ID:     "E1",
		Title:  "Scenario I: available bandwidth over L3 with background lambda=0.3 on L1 and L2",
		Header: []string{"quantity", "value (Mbps)", "paper"},
	}
	tbl.AddRow("exact available bandwidth (Eq. 6)", fmt.Sprintf("%.2f", res.Bandwidth),
		fmt.Sprintf("(1-lambda)*r = %.2f", (1-scenarioILambda)*rate))
	tbl.AddRow("idle-time admission bound (Eq. 10)", fmt.Sprintf("%.2f", idleEstimate),
		fmt.Sprintf("(1-2*lambda)*r = %.2f", (1-2*scenarioILambda)*rate))
	tbl.AddNote("the optimal schedule overlaps L1 and L2 so their shares merge; carrier sensing cannot see that")
	if math.Abs(res.Bandwidth-(1-scenarioILambda)*rate) > 1e-6 {
		tbl.AddNote("MISMATCH: exact value deviates from the paper's closed form")
	}
	return tbl, nil
}

// ScenarioII reproduces experiment E2 (Fig. 1 right, Sec. 3.1 + 5.1):
// the multirate optimum f = 16.2 Mbps, the optimal schedule, the two
// fixed-rate clique bounds (13.5 and 108/7), and the violated clique
// constraints (load factors 1.2 and 1.05).
func ScenarioII() (*Table, error) {
	s := scenario.NewScenarioII()
	res, err := core.AvailableBandwidth(s.Model, nil, s.Path, core.Options{})
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("scenario II LP %v", res.Status)
	}
	b1, err := core.FixedRateCliqueBound(s.Model, s.Path, []radio.Rate{54, 54, 54, 54})
	if err != nil {
		return nil, err
	}
	b2, err := core.FixedRateCliqueBound(s.Model, s.Path, []radio.Rate{36, 54, 54, 54})
	if err != nil {
		return nil, err
	}
	y := map[topology.LinkID]float64{}
	for _, l := range s.Links() {
		y[l] = res.Bandwidth
	}
	t1, err := core.MaxCliqueLoadFactor(s.Model, []conflict.Couple{
		{Link: s.L1, Rate: 54}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}, {Link: s.L4, Rate: 54},
	}, y)
	if err != nil {
		return nil, err
	}
	t2, err := core.MaxCliqueLoadFactor(s.Model, []conflict.Couple{
		{Link: s.L1, Rate: 36}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}, {Link: s.L4, Rate: 54},
	}, y)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "E2",
		Title:  "Scenario II: the clique-constraint counterexample (4-link chain, rates {36,54})",
		Header: []string{"quantity", "measured", "paper"},
	}
	tbl.AddRow("exact end-to-end optimum f (Eq. 6)", fmt.Sprintf("%.4f", res.Bandwidth), "16.2")
	tbl.AddRow("fixed-rate clique bound, R1=(54,54,54,54) (Eq. 7)", fmt.Sprintf("%.4f", b1), "13.5")
	tbl.AddRow("fixed-rate clique bound, R2=(36,54,54,54) (Eq. 7)", fmt.Sprintf("%.4f", b2), "108/7 ~ 15.4286")
	tbl.AddRow("max clique load factor at optimum, R1", fmt.Sprintf("%.4f", t1), "1.2 (> 1: violated)")
	tbl.AddRow("max clique load factor at optimum, R2", fmt.Sprintf("%.4f", t2), "1.05 (> 1: violated)")
	tbl.AddRow("optimal schedule", res.Schedule.String(),
		"0.1:{L1@54} 0.3:{L2@54} 0.3:{L3@54} 0.3:{(L1,36),(L4,54)}")
	tbl.AddNote("both fixed-rate bounds sit BELOW the multirate optimum: the clique constraint is invalid under link adaptation")
	return tbl, nil
}

// Eq9UpperBound reproduces experiment E6: the rate-coupled clique LP of
// Eq. 9 on Scenario II (full Omega = 2^4 rate vectors) and its
// restricted variant on the paper's two discussed vectors.
func Eq9UpperBound() (*Table, error) {
	s := scenario.NewScenarioII()
	exact, err := core.AvailableBandwidth(s.Model, nil, s.Path, core.Options{})
	if err != nil {
		return nil, err
	}
	full, err := core.UpperBoundLP(s.Model, nil, s.Path, core.Options{})
	if err != nil {
		return nil, err
	}
	restricted, err := core.RestrictedUpperBoundLP(s.Model, nil, s.Path, [][]conflict.Couple{
		{{Link: s.L1, Rate: 54}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}, {Link: s.L4, Rate: 54}},
		{{Link: s.L1, Rate: 36}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}, {Link: s.L4, Rate: 54}},
	}, core.Options{})
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:     "E6",
		Title:  "Eq. 9 rate-coupled clique upper bound on Scenario II",
		Header: []string{"program", "bound (Mbps)", "relation"},
	}
	tbl.AddRow("exact optimum (Eq. 6)", fmt.Sprintf("%.4f", exact.Bandwidth), "reference")
	tbl.AddRow("Eq. 9, all 16 rate vectors", fmt.Sprintf("%.4f", full.Bandwidth), ">= exact")
	tbl.AddRow("Eq. 9 restricted to {R1, R2}", fmt.Sprintf("%.4f", restricted.Bandwidth), ">= exact, <= full")
	tbl.AddRow("best fixed-rate clique bound (Eq. 7)", fmt.Sprintf("%.4f", 108.0/7), "INVALID (< exact)")
	tbl.AddNote("the Eq. 9 bound stays valid where per-rate-vector clique bounds fail")
	return tbl, nil
}

// LowerBounds reproduces experiment E7 (Sec. 3.3): the Eq. 6 LP
// restricted to growing prefixes of the maximal independent sets yields
// monotone lower bounds reaching the optimum.
func LowerBounds() (*Table, error) {
	s := scenario.NewScenarioII()
	sets, err := indepset.Enumerate(s.Model, s.Links(), indepset.Options{})
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:     "E7",
		Title:  "Lower bounds from independent-set subsets on Scenario II",
		Header: []string{"sets used", "lower bound (Mbps)", "sets"},
	}
	for k := 1; k <= len(sets); k++ {
		res, err := core.AvailableBandwidthWithSets(s.Model, nil, s.Path, sets[:k])
		if err != nil {
			return nil, err
		}
		bw := 0.0
		if res.Status == lp.Optimal {
			bw = res.Bandwidth
		}
		names := ""
		for i, set := range sets[:k] {
			if i > 0 {
				names += " "
			}
			names += set.Key()
		}
		tbl.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.4f", bw), names)
	}
	tbl.AddNote("monotone non-decreasing; equals the exact 16.2 once all maximal sets are present")
	return tbl, nil
}

// AdaptationAblation reproduces experiment E8: the exact capacity under
// every fixed rate assignment versus free link adaptation on Scenario
// II. No fixed vector reaches the multirate optimum.
func AdaptationAblation() (*Table, error) {
	s := scenario.NewScenarioII()
	multirate, err := core.AvailableBandwidth(s.Model, nil, s.Path, core.Options{})
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:     "E8",
		Title:  "Ablation: link adaptation on/off (Scenario II)",
		Header: []string{"rate assignment", "exact capacity (Mbps)"},
	}
	best := 0.0
	rates := []radio.Rate{36, 54}
	assignment := make([]conflict.Couple, 4)
	var rec func(idx int) error
	rec = func(idx int) error {
		if idx == 4 {
			fixed := conflict.FixRates(s.Model, assignment)
			res, err := core.AvailableBandwidth(fixed, nil, s.Path, core.Options{})
			if err != nil {
				return err
			}
			bw := 0.0
			if res.Status == lp.Optimal {
				bw = res.Bandwidth
			}
			if bw > best {
				best = bw
			}
			tbl.AddRow(fmt.Sprintf("(%g,%g,%g,%g)",
				float64(assignment[0].Rate), float64(assignment[1].Rate),
				float64(assignment[2].Rate), float64(assignment[3].Rate)),
				fmt.Sprintf("%.4f", bw))
			return nil
		}
		for _, r := range rates {
			assignment[idx] = conflict.Couple{Link: s.Links()[idx], Rate: r}
			if err := rec(idx + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	tbl.AddRow("free link adaptation (multirate)", fmt.Sprintf("%.4f", multirate.Bandwidth))
	tbl.AddNote("best fixed assignment reaches %.4f Mbps; adaptation adds %.1f%%",
		best, 100*(multirate.Bandwidth-best)/best)
	return tbl, nil
}
