package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/routing"
	"abw/internal/topology"
	"abw/internal/trace"
)

// CSRangeSensitivity (E17) probes how the carrier-sense range shapes
// the distributed estimators — the knob the paper's reference [12]
// (physical carrier sensing and spatial reuse) optimizes. A short CS
// range under-hears interferers (idleness looks rosy, estimates climb);
// a long one over-hears (exposed-terminal pessimism). The conservative
// clique estimator's error is reported per CS-range factor on the
// Sec. 5.2 deployment.
func CSRangeSensitivity() (*Table, error) {
	tbl := &Table{
		ID:     "E17",
		Title:  "Extension: carrier-sense range vs estimator accuracy (conservative clique, MAE in Mbps)",
		Header: []string{"CS range factor", "CS range (m)", "mean idle ratio", "conservative MAE", "bottleneck MAE"},
	}
	for _, factor := range []float64{1.0, 1.25, 1.5, 2.0} {
		prof := radio.NewProfile80211a(radio.WithCSRangeFactor(factor))
		rng := rand.New(rand.NewSource(TopologySeed))
		net, err := topology.New(prof, geom.UniformPoints(rng, geom.Rect{W: AreaWidth, H: AreaHeight}, NumNodes))
		if err != nil {
			return nil, err
		}
		m := conflict.NewPhysical(net)
		reqs, err := trace.RandomRequests(net, rand.New(rand.NewSource(RequestSeed)), NumFlows, FlowDemand)
		if err != nil {
			return nil, err
		}
		mae, n, err := estimationMAE(net, m, reqs)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			continue
		}
		idleMean, err := meanIdleUnderLoad(net, m, reqs)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%.2f", factor),
			fmt.Sprintf("%.0f", prof.CSRange()),
			fmt.Sprintf("%.3f", idleMean),
			fmt.Sprintf("%.3f", mae[estimate.MetricConservativeClique]/float64(n)),
			fmt.Sprintf("%.3f", mae[estimate.MetricBottleneckNode]/float64(n)))
	}
	tbl.AddNote("longer CS ranges mark more of the network busy (lower idleness), pushing the")
	tbl.AddNote("idleness-based estimators conservative; the default 1.5x is a reasonable middle")
	return tbl, nil
}

// meanIdleUnderLoad admits the request sequence greedily (by the exact
// model) and returns the mean node idleness under the final background.
func meanIdleUnderLoad(net *topology.Network, m *conflict.Physical, reqs []routing.Request) (float64, error) {
	decs, err := routing.SequentialAdmission(net, m, routing.MetricAvgE2ED, reqs,
		routing.AdmissionOptions{StopAtFirstFailure: false})
	if err != nil {
		return 0, err
	}
	var admitted []core.Flow
	for _, d := range decs {
		if d.Admitted {
			admitted = append(admitted, core.Flow{Path: d.Path, Demand: d.Request.Demand})
		}
	}
	idle, err := routing.BackgroundIdleness(net, m, admitted, core.Options{})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, v := range idle {
		total += v
	}
	if len(idle) == 0 {
		return math.NaN(), nil
	}
	return total / float64(len(idle)), nil
}
