package experiments

import (
	"abw/internal/core"
	"abw/internal/memo"
)

// sharedCache amortizes set-family enumeration across the experiment
// suite: the admission-style experiments (E3, E4, E5, E13) re-query the
// same growing universes step after step, and the bench harness runs
// each experiment many times. Caching is answer-preserving by
// construction (memo property tests pin byte-identity), so the tables
// are identical with or without it.
var sharedCache = memo.New(0)

// queryOptions returns the core options the experiment loops use.
func queryOptions() core.Options {
	return core.Options{Cache: sharedCache}
}
