package experiments

import (
	"fmt"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/lp"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// GreedyVsOptimal (E14) quantifies the paper's standing assumption
// that "a global optimal link scheduling exists": how much of the LP
// optimum does a practical greedy scheduler actually deliver? For each
// workload, the exact model fixes the maximum equal per-link throughput
// f*, and greedy is asked to deliver increasing fractions of it; the
// largest fraction it satisfies is its efficiency.
func GreedyVsOptimal() (*Table, error) {
	tbl := &Table{
		ID:     "E14",
		Title:  "Extension: greedy TDMA scheduler vs the LP optimum",
		Header: []string{"workload", "LP optimum f* (Mbps)", "greedy best (Mbps)", "efficiency"},
	}

	type workload struct {
		name  string
		model conflict.Model
		path  topology.Path
	}
	s2 := scenario.NewScenarioII()
	var loads []workload
	loads = append(loads, workload{name: "Scenario II chain", model: s2.Model, path: s2.Path})

	for _, spacing := range []float64{80, 100} {
		net, path, err := topology.Chain(radio.NewProfile80211a(), 4, spacing)
		if err != nil {
			return nil, err
		}
		loads = append(loads, workload{
			name:  fmt.Sprintf("4-hop geometric chain, %gm", spacing),
			model: conflict.NewPhysical(net),
			path:  path,
		})
	}

	for _, wl := range loads {
		res, err := core.AvailableBandwidth(wl.model, nil, wl.path, core.Options{})
		if err != nil {
			return nil, err
		}
		if res.Status != lp.Optimal {
			return nil, fmt.Errorf("%s: LP %v", wl.name, res.Status)
		}
		fStar := res.Bandwidth
		best := greedyBest(wl.model, wl.path, fStar)
		tbl.AddRow(wl.name,
			fmt.Sprintf("%.4f", fStar),
			fmt.Sprintf("%.4f", best),
			fmt.Sprintf("%.1f%%", 100*best/fStar))
	}
	tbl.AddNote("greedy's fixed-point rate assignment lowers a member's rate when packing a slot,")
	tbl.AddNote("so it discovers the (L1,36)+(L4,54) adaptation slot and matches the LP on chains —")
	tbl.AddNote("evidence that the paper's optimal-scheduling assumption is approachable in practice")
	return tbl, nil
}

// greedyBest binary-searches the largest equal per-link throughput the
// greedy scheduler satisfies on the path.
func greedyBest(m conflict.Model, path topology.Path, upper float64) float64 {
	feasible := func(f float64) bool {
		demand := make(map[topology.LinkID]float64, len(path))
		for _, l := range path {
			demand[l] = f
		}
		_, ok, err := schedule.Greedy(m, demand)
		return err == nil && ok
	}
	lo, hi := 0.0, upper*1.001
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
