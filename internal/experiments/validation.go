package experiments

import (
	"fmt"
	"math"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/lp"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/sim"
	"abw/internal/topology"
)

// SimValidation reproduces experiment E9: the TDMA frame simulator
// executes LP-produced schedules and its measurements must match the
// analytic model — per-link throughput on the Scenario II optimum, and
// carrier-sensed node idleness on a geometric chain.
func SimValidation() (*Table, error) {
	tbl := &Table{
		ID:     "E9",
		Title:  "Validation: TDMA simulator vs analytic model",
		Header: []string{"check", "analytic", "measured", "max |err|"},
	}

	// Scenario II optimal schedule throughput.
	s := scenario.NewScenarioII()
	res, err := core.AvailableBandwidth(s.Model, nil, s.Path, core.Options{})
	if err != nil {
		return nil, err
	}
	rep, err := sim.RunSchedule(s.Model, res.Schedule, sim.TDMAConfig{MicroSlots: 2000, Periods: 5})
	if err != nil {
		return nil, err
	}
	maxErr := 0.0
	for _, l := range s.Links() {
		if e := math.Abs(rep.LinkThroughput[l] - res.Schedule.Throughput(l)); e > maxErr {
			maxErr = e
		}
	}
	tbl.AddRow("Scenario II per-link throughput", "16.2000 Mbps",
		fmt.Sprintf("%.4f Mbps", rep.LinkThroughput[s.L1]), fmt.Sprintf("%.2e", maxErr))

	// End-to-end delivery through queues.
	flowRep, err := sim.RunFlows(s.Model, res.Schedule, []core.Flow{{Path: s.Path, Demand: res.Bandwidth}},
		sim.TDMAConfig{MicroSlots: 2000, Periods: 40})
	if err != nil {
		return nil, err
	}
	tbl.AddRow("Scenario II end-to-end goodput (40 periods)",
		fmt.Sprintf("%.4f Mbps", res.Bandwidth),
		fmt.Sprintf("%.4f Mbps", flowRep.FlowDelivered[0]),
		fmt.Sprintf("%.4f (pipeline fill)", res.Bandwidth-flowRep.FlowDelivered[0]))

	// Node idleness on a geometric chain.
	net, path, err := topology.Chain(radio.NewProfile80211a(), 4, 100)
	if err != nil {
		return nil, err
	}
	pm := conflict.NewPhysical(net)
	chainRes, err := core.AvailableBandwidth(pm, nil, path, core.Options{})
	if err != nil {
		return nil, err
	}
	if chainRes.Status != lp.Optimal {
		return nil, fmt.Errorf("chain LP %v", chainRes.Status)
	}
	analytic := estimate.NodeIdleRatios(net, chainRes.Schedule)
	measured, err := sim.MeasuredNodeIdle(net, chainRes.Schedule, sim.TDMAConfig{MicroSlots: 2000})
	if err != nil {
		return nil, err
	}
	maxIdleErr := 0.0
	for i := range analytic {
		if e := math.Abs(analytic[i] - measured[i]); e > maxIdleErr {
			maxIdleErr = e
		}
	}
	tbl.AddRow("4-hop chain node idleness",
		fmt.Sprintf("node0 %.4f", analytic[0]),
		fmt.Sprintf("node0 %.4f", measured[0]),
		fmt.Sprintf("%.2e", maxIdleErr))
	tbl.AddNote("quantization bound: 1/2000 per slot share")
	return tbl, nil
}

// CSMAIdle reproduces experiment E10: under slotted CSMA/CA in Scenario
// I, the listener at L3 measures idleness near 1 - busy(L1) - busy(L2)
// (the background links transmit independently and rarely overlap),
// while the true available share after optimal overlap is 1 - busy —
// idle-time admission is conservative, as the paper's introduction
// argues.
func CSMAIdle() (*Table, error) {
	s := scenario.NewScenarioI(54)
	hearing := sim.ModelHearing(s.Model, func(topology.LinkID) radio.Rate { return s.Rate })
	const offered = scenarioILambda * 54
	rep, err := sim.RunCSMA(s.Model, hearing, []sim.CSMALink{
		{Link: s.L1, Rate: 54, OfferedMbps: offered},
		{Link: s.L2, Rate: 54, OfferedMbps: offered},
		{Link: s.L3, Rate: 54, ListenOnly: true},
	}, 4000, sim.CSMAConfig{Seed: 1})
	if err != nil {
		return nil, err
	}
	busy1 := 1 - rep.IdleRatio[s.L1]
	busy2 := 1 - rep.IdleRatio[s.L2]
	idle3 := rep.IdleRatio[s.L3]

	// Exact availability with the same effective background load.
	bg := []core.Flow{
		{Path: topology.Path{s.L1}, Demand: rep.Throughput[s.L1]},
		{Path: topology.Path{s.L2}, Demand: rep.Throughput[s.L2]},
	}
	exact, err := core.AvailableBandwidth(s.Model, bg, topology.Path{s.L3}, core.Options{})
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "E10",
		Title:  "CSMA/CA measured idleness in Scenario I (background lambda=0.3 each on L1, L2)",
		Header: []string{"quantity", "value"},
	}
	tbl.AddRow("measured busy share, L1", fmt.Sprintf("%.4f", busy1))
	tbl.AddRow("measured busy share, L2", fmt.Sprintf("%.4f", busy2))
	tbl.AddRow("measured idle ratio at L3", fmt.Sprintf("%.4f", idle3))
	tbl.AddRow("idle-time admission bound (idle * r)", fmt.Sprintf("%.4f Mbps", idle3*54))
	tbl.AddRow("exact available bandwidth (Eq. 6)", fmt.Sprintf("%.4f Mbps", exact.Bandwidth))
	tbl.AddRow("optimal-overlap idle share (1 - busy)", fmt.Sprintf("%.4f", 1-math.Max(busy1, busy2)))
	tbl.AddNote("idle-time admission (%.2f Mbps) is conservative against the exact %.2f Mbps", idle3*54, exact.Bandwidth)
	return tbl, nil
}
