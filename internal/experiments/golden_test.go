package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment tables")

// TestGoldenTables renders every registered experiment and compares it
// byte-for-byte against the committed golden under testdata/golden —
// the CI check that catches silent drift in the paper's reproduced
// numbers. Refresh the goldens after an intentional change with
//
//	go test -run TestGoldenTables ./internal/experiments/ -update
//
// (or `make golden`) and review the diff like any other code change.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration is the full evaluation; skipped in -short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatalf("%s: rendering: %v", e.ID, err)
			}
			path := filepath.Join("testdata", "golden", e.ID+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: missing golden (run `make golden` and commit): %v", e.ID, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s: output differs from %s.\ngot:\n%s\nwant:\n%s",
					e.ID, path, buf.String(), want)
			}
		})
	}
}
