package experiments

import (
	"fmt"
	"math/rand"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/geom"
	"abw/internal/lp"
	"abw/internal/radio"
	"abw/internal/routing"
	"abw/internal/topology"
	"abw/internal/trace"
)

// The Sec. 5.2 random-topology configuration: 30 nodes in a 400m x 600m
// rectangle, four 802.11a rates, 8 flows of 2 Mbps each. The paper does
// not publish its node layout; TopologySeed/RequestSeed are calibrated
// so the qualitative Fig. 3 result holds (hop count fails first, then
// e2eTD, then average-e2eD — here at flows 3, 5 and 7 versus the
// paper's 3, 5 and 8).
const (
	NumNodes     = 30
	AreaWidth    = 400.0
	AreaHeight   = 600.0
	NumFlows     = 8
	FlowDemand   = 2.0
	TopologySeed = 26
	RequestSeed  = 7
)

// Fig2Setup builds the evaluation topology and flow requests.
func Fig2Setup() (*topology.Network, *conflict.Physical, []routing.Request, error) {
	net, err := topology.Random(radio.NewProfile80211a(), geom.Rect{W: AreaWidth, H: AreaHeight}, NumNodes, TopologySeed)
	if err != nil {
		return nil, nil, nil, err
	}
	m := conflict.NewPhysical(net)
	reqs, err := trace.RandomRequests(net, rand.New(rand.NewSource(RequestSeed)), NumFlows, FlowDemand)
	if err != nil {
		return nil, nil, nil, err
	}
	return net, m, reqs, nil
}

// Fig2Topology reproduces experiment E3 (Fig. 2): the random topology
// and the routes chosen by average-e2eD versus e2eTD, highlighting where
// they differ (the paper's solid versus dotted arrows).
func Fig2Topology() (*Table, error) {
	net, m, reqs, err := Fig2Setup()
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:    "E3",
		Title: "Fig. 2: 30-node random topology and routes (average-e2eD solid vs e2eTD dotted)",
		Header: []string{
			"flow", "src->dst", "average-e2eD route", "e2eTD route", "differs",
		},
	}
	var admitted []core.Flow
	for i, req := range reqs {
		idle, err := routing.BackgroundIdleness(net, m, admitted, queryOptions())
		if err != nil {
			return nil, err
		}
		avgPath, err := routing.FindPath(net, m, routing.MetricAvgE2ED, idle, req.Src, req.Dst)
		if err != nil {
			return nil, err
		}
		tdPath, err := routing.FindPath(net, m, routing.MetricE2ETD, nil, req.Src, req.Dst)
		if err != nil {
			return nil, err
		}
		differs := "no"
		if pathKey(avgPath) != pathKey(tdPath) {
			differs = "YES"
		}
		avgNodes, err := net.PathNodes(avgPath)
		if err != nil {
			return nil, err
		}
		tdNodes, err := net.PathNodes(tdPath)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d->%d", req.Src, req.Dst),
			nodesString(avgNodes), nodesString(tdNodes), differs)
		// Admit along the average-e2eD path when feasible, to evolve
		// the background like the paper's run.
		res, err := core.AvailableBandwidth(m, admitted, avgPath, queryOptions())
		if err != nil {
			return nil, err
		}
		if res.Status == lp.Optimal && res.Bandwidth+1e-9 >= req.Demand {
			admitted = append(admitted, core.Flow{Path: avgPath, Demand: req.Demand})
		}
	}
	tbl.AddNote("%d nodes, %d links, area %gm x %gm, seed %d", net.NumNodes(), net.NumLinks(), AreaWidth, AreaHeight, TopologySeed)
	return tbl, nil
}

// Fig3Routing reproduces experiment E4 (Fig. 3): the available bandwidth
// of each flow's path under the three routing metrics, flows joining one
// by one until a demand cannot be met.
func Fig3Routing() (*Table, error) {
	net, m, reqs, err := Fig2Setup()
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:     "E4",
		Title:  "Fig. 3: available bandwidth per flow under each routing metric (2 Mbps demands)",
		Header: []string{"flow", "hop count", "e2eTD", "average-e2eD"},
	}
	results := make(map[routing.Metric][]routing.Decision, 3)
	firstFail := make(map[routing.Metric]int, 3)
	for _, metric := range routing.AllMetrics() {
		decs, err := routing.SequentialAdmission(net, m, metric, reqs, routing.AdmissionOptions{StopAtFirstFailure: true, Core: queryOptions()})
		if err != nil {
			return nil, err
		}
		results[metric] = decs
		firstFail[metric] = NumFlows + 1
		for i, d := range decs {
			if !d.Admitted {
				firstFail[metric] = i + 1
				break
			}
		}
	}
	cell := func(metric routing.Metric, i int) string {
		decs := results[metric]
		if i >= len(decs) {
			return "-"
		}
		d := decs[i]
		if d.Path == nil {
			return "no route"
		}
		mark := ""
		if !d.Admitted {
			mark = " (FAIL)"
		}
		return fmt.Sprintf("%.3f%s", d.Available, mark)
	}
	for i := 0; i < NumFlows; i++ {
		tbl.AddRow(fmt.Sprintf("%d", i+1),
			cell(routing.MetricHopCount, i),
			cell(routing.MetricE2ETD, i),
			cell(routing.MetricAvgE2ED, i))
	}
	tbl.AddRow("first failure",
		failString(firstFail[routing.MetricHopCount]),
		failString(firstFail[routing.MetricE2ETD]),
		failString(firstFail[routing.MetricAvgE2ED]))
	tbl.AddNote("paper: hop count fails at flow 3, e2eTD at 5, average-e2eD at 8; ordering reproduced (3, 5, 7 on this seed)")
	return tbl, nil
}

// FirstFailures runs the Fig. 3 admission and returns the first-failure
// index per metric (NumFlows+1 when every flow fits) — the headline
// ordering statistic, used by tests and benches.
func FirstFailures() (map[routing.Metric]int, error) {
	net, m, reqs, err := Fig2Setup()
	if err != nil {
		return nil, err
	}
	out := make(map[routing.Metric]int, 3)
	for _, metric := range routing.AllMetrics() {
		decs, err := routing.SequentialAdmission(net, m, metric, reqs, routing.AdmissionOptions{StopAtFirstFailure: true, Core: queryOptions()})
		if err != nil {
			return nil, err
		}
		out[metric] = NumFlows + 1
		for i, d := range decs {
			if !d.Admitted {
				out[metric] = i + 1
				break
			}
		}
	}
	return out, nil
}

// Fig4Estimation reproduces experiment E5 (Fig. 4): for the paths found
// by average-e2eD, the five distributed estimators versus the exact
// value as background traffic accumulates flow by flow.
func Fig4Estimation() (*Table, error) {
	rows, err := Fig4Series()
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:    "E5",
		Title: "Fig. 4: estimated vs exact available bandwidth on average-e2eD paths (Mbps)",
		Header: []string{
			"flow", "exact (Eq.6)", "clique (Eq.11)", "bottleneck (Eq.10)",
			"min (Eq.12)", "conservative (Eq.13)", "ECTT (Eq.15)",
		},
	}
	for _, r := range rows {
		tbl.AddRow(fmt.Sprintf("%d", r.Flow),
			fmt.Sprintf("%.3f", r.Exact),
			fmt.Sprintf("%.3f", r.Estimates[estimate.MetricCliqueConstraint]),
			fmt.Sprintf("%.3f", r.Estimates[estimate.MetricBottleneckNode]),
			fmt.Sprintf("%.3f", r.Estimates[estimate.MetricMinOfBoth]),
			fmt.Sprintf("%.3f", r.Estimates[estimate.MetricConservativeClique]),
			fmt.Sprintf("%.3f", r.Estimates[estimate.MetricExpectedCliqueTime]))
	}
	// Mean absolute error summary.
	mae := make(map[estimate.Metric]float64, 5)
	for _, r := range rows {
		for _, m := range estimate.AllMetrics() {
			d := r.Estimates[m] - r.Exact
			if d < 0 {
				d = -d
			}
			mae[m] += d
		}
	}
	n := float64(len(rows))
	tbl.AddRow("mean |err|", "-",
		fmt.Sprintf("%.3f", mae[estimate.MetricCliqueConstraint]/n),
		fmt.Sprintf("%.3f", mae[estimate.MetricBottleneckNode]/n),
		fmt.Sprintf("%.3f", mae[estimate.MetricMinOfBoth]/n),
		fmt.Sprintf("%.3f", mae[estimate.MetricConservativeClique]/n),
		fmt.Sprintf("%.3f", mae[estimate.MetricExpectedCliqueTime]/n))
	tbl.AddNote("paper: clique constraint under-estimates at light load and over-estimates at heavy load;")
	tbl.AddNote("bottleneck over-estimates at light load; conservative clique performs best; ECTT slightly lower")
	return tbl, nil
}

// Fig4Row is one point of the Fig. 4 series.
type Fig4Row struct {
	Flow      int
	Path      topology.Path
	Exact     float64
	Estimates map[estimate.Metric]float64
}

// Fig4Series computes the Fig. 4 data: flows join along their
// average-e2eD paths; before each join, the new path's exact available
// bandwidth and all five estimates are recorded against the accumulated
// background.
func Fig4Series() ([]Fig4Row, error) {
	net, m, reqs, err := Fig2Setup()
	if err != nil {
		return nil, err
	}
	var admitted []core.Flow
	var rows []Fig4Row
	for i, req := range reqs {
		idle, err := routing.BackgroundIdleness(net, m, admitted, queryOptions())
		if err != nil {
			return nil, err
		}
		path, err := routing.FindPath(net, m, routing.MetricAvgE2ED, idle, req.Src, req.Dst)
		if err != nil {
			return nil, err
		}
		res, err := core.AvailableBandwidth(m, admitted, path, queryOptions())
		if err != nil {
			return nil, err
		}
		if res.Status != lp.Optimal {
			return nil, fmt.Errorf("flow %d: availability LP %v", i+1, res.Status)
		}
		sched, err := routing.BackgroundSchedule(m, admitted, queryOptions())
		if err != nil {
			return nil, err
		}
		ps, err := estimate.PathStateFromSchedule(net, m, sched, path)
		if err != nil {
			return nil, err
		}
		ests, err := estimate.EstimateAll(m, ps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4Row{Flow: i + 1, Path: path, Exact: res.Bandwidth, Estimates: ests})
		if res.Bandwidth+1e-9 >= req.Demand {
			admitted = append(admitted, core.Flow{Path: path, Demand: req.Demand})
		}
	}
	return rows, nil
}

func pathKey(p topology.Path) string {
	out := ""
	for _, l := range p {
		out += fmt.Sprintf("%d,", l)
	}
	return out
}

func nodesString(nodes []topology.NodeID) string {
	out := ""
	for i, n := range nodes {
		if i > 0 {
			out += "-"
		}
		out += fmt.Sprintf("%d", n)
	}
	return out
}

func failString(idx int) string {
	if idx > NumFlows {
		return "none"
	}
	return fmt.Sprintf("flow %d", idx)
}
