package experiments

import (
	"fmt"

	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/lp"
	"abw/internal/radio"
	"abw/internal/topology"
)

// InterferenceModelAblation (E16) compares the paper's physical
// (cumulative SINR, Eq. 3) interference model against the cheaper
// pairwise protocol model on identical chains: exact path capacity
// under each. Protocol ignores power summation, so it admits
// concurrent sets the physical model rejects and its capacities are
// optimistic — the modeling gap that motivates the paper's SINR-based
// formulation.
func InterferenceModelAblation() (*Table, error) {
	tbl := &Table{
		ID:     "E16",
		Title:  "Extension: physical (SINR) vs protocol interference model, exact chain capacity",
		Header: []string{"chain", "physical (Mbps)", "protocol (Mbps)", "protocol optimism"},
	}
	for _, cfg := range []struct {
		hops    int
		spacing float64
	}{
		{4, 60}, {4, 80}, {4, 100}, {6, 100}, {8, 100},
	} {
		net, path, err := topology.Chain(radio.NewProfile80211a(), cfg.hops, cfg.spacing)
		if err != nil {
			return nil, err
		}
		phys, err := capacityUnder(conflict.NewPhysical(net), path)
		if err != nil {
			return nil, fmt.Errorf("physical %d@%g: %w", cfg.hops, cfg.spacing, err)
		}
		prot, err := capacityUnder(conflict.NewProtocol(net), path)
		if err != nil {
			return nil, fmt.Errorf("protocol %d@%g: %w", cfg.hops, cfg.spacing, err)
		}
		opt := "0.0%"
		if phys > 0 {
			opt = fmt.Sprintf("%+.1f%%", 100*(prot-phys)/phys)
		}
		tbl.AddRow(fmt.Sprintf("%d hops @ %gm", cfg.hops, cfg.spacing),
			fmt.Sprintf("%.4f", phys), fmt.Sprintf("%.4f", prot), opt)
	}
	tbl.AddNote("the protocol model never sums interference power, so distant concurrent")
	tbl.AddNote("transmitters are free; the physical model charges for every one of them")
	return tbl, nil
}

func capacityUnder(m conflict.Model, path topology.Path) (float64, error) {
	res, err := core.AvailableBandwidth(m, nil, path, core.Options{})
	if err != nil {
		return 0, err
	}
	if res.Status != lp.Optimal {
		return 0, fmt.Errorf("LP %v", res.Status)
	}
	return res.Bandwidth, nil
}
