package experiments

import (
	"fmt"

	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/lp"
	"abw/internal/routing"
)

// EstimatorAdmission (E13) puts the Fig. 4 estimators to operational
// use, which is what the paper proposes them for: admission control
// without global scheduling knowledge. Each 2 Mbps flow is routed with
// average-e2eD; the estimator decides admit/reject from carrier-sensed
// idleness; the exact Eq. 6 model is the oracle. A false admit lets a
// flow in that the network cannot actually carry; a false reject turns
// away a flow that would have fit.
func EstimatorAdmission() (*Table, error) {
	net, m, reqs, err := Fig2Setup()
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:     "E13",
		Title:  "Extension: estimator-driven admission vs the exact oracle (2 Mbps flows)",
		Header: []string{"estimator", "admitted", "false admits", "false rejects", "verdict"},
	}
	for _, metric := range estimate.AllMetrics() {
		admittedCount := 0
		falseAdmit := 0
		falseReject := 0
		var admitted []core.Flow
		for _, req := range reqs {
			idle, err := routing.BackgroundIdleness(net, m, admitted, queryOptions())
			if err != nil {
				return nil, err
			}
			path, err := routing.FindPath(net, m, routing.MetricAvgE2ED, idle, req.Src, req.Dst)
			if err != nil {
				continue // unroutable under current load: skip
			}
			sched, err := routing.BackgroundSchedule(m, admitted, queryOptions())
			if err != nil {
				return nil, err
			}
			ps, err := estimate.PathStateFromSchedule(net, m, sched, path)
			if err != nil {
				return nil, err
			}
			est, err := estimate.Estimate(metric, m, ps)
			if err != nil {
				return nil, err
			}
			res, err := core.AvailableBandwidth(m, admitted, path, queryOptions())
			if err != nil {
				return nil, err
			}
			truth := res.Status == lp.Optimal && res.Bandwidth+1e-9 >= req.Demand
			decision := est+1e-9 >= req.Demand
			switch {
			case decision && !truth:
				falseAdmit++
			case !decision && truth:
				falseReject++
			}
			// The network state evolves by the ORACLE's truth — flows
			// that genuinely fit are carried (the estimator only gates
			// them); this keeps every estimator judged against the same
			// load sequence.
			if truth {
				admitted = append(admitted, core.Flow{Path: path, Demand: req.Demand})
			}
			if decision && truth {
				admittedCount++
			}
		}
		verdict := "safe but lossy"
		if falseAdmit > 0 {
			verdict = "UNSAFE (over-admits)"
		} else if falseReject == 0 {
			verdict = "matches oracle"
		}
		tbl.AddRow(metric.String(),
			fmt.Sprintf("%d", admittedCount),
			fmt.Sprintf("%d", falseAdmit),
			fmt.Sprintf("%d", falseReject),
			verdict)
	}
	tbl.AddNote("over-estimating metrics (clique constraint, bottleneck) admit flows the network cannot carry;")
	tbl.AddNote("the conservative clique constraint trades a few false rejects for zero false admits")
	return tbl, nil
}
