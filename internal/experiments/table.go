// Package experiments reproduces every table and figure of the paper's
// evaluation (and the worked numeric examples embedded in its text) as
// runnable drivers. Each driver returns a Table that renders the same
// rows/series the paper reports; the bench harness at the repository
// root and cmd/abwsim both execute them. See DESIGN.md Sec. 2 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a commentary line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			w := len(c)
			if i < len(widths) {
				w = widths[i]
			}
			parts = append(parts, fmt.Sprintf("%-*s", w, c))
		}
		return strings.Join(parts, "  ")
	}
	if len(t.Header) > 0 {
		if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
			return err
		}
		total := len(t.Header) - 1
		for _, wd := range widths {
			total += wd + 1
		}
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderMarkdown writes the table as GitHub-flavored Markdown.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	if len(t.Header) > 0 {
		cells := make([]string, 0, len(t.Header))
		for _, h := range t.Header {
			cells = append(cells, esc(h))
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
		seps := make([]string, len(t.Header))
		for i := range seps {
			seps[i] = "---"
		}
		if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(seps, "|")); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		cells := make([]string, 0, len(row))
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner produces one experiment table.
type Runner func() (*Table, error)

// Registry maps experiment IDs (DESIGN.md Sec. 2) to their drivers, in
// run order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{ID: "E1", Run: ScenarioI},
		{ID: "E2", Run: ScenarioII},
		{ID: "E3", Run: Fig2Topology},
		{ID: "E4", Run: Fig3Routing},
		{ID: "E5", Run: Fig4Estimation},
		{ID: "E6", Run: Eq9UpperBound},
		{ID: "E7", Run: LowerBounds},
		{ID: "E8", Run: AdaptationAblation},
		{ID: "E9", Run: SimValidation},
		{ID: "E10", Run: CSMAIdle},
		{ID: "E11", Run: DemandSweep},
		{ID: "E12", Run: RateDiversityAblation},
		{ID: "E13", Run: EstimatorAdmission},
		{ID: "E14", Run: GreedyVsOptimal},
		{ID: "E15", Run: FairAllocation},
		{ID: "E16", Run: InterferenceModelAblation},
		{ID: "E17", Run: CSRangeSensitivity},
	}
}

// Run executes one experiment by ID.
func Run(id string) (*Table, error) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e.Run()
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll executes every experiment in order.
func RunAll() ([]*Table, error) {
	var out []*Table
	for _, e := range Registry() {
		tbl, err := e.Run()
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// RunAllParallel executes every experiment concurrently with at most
// workers goroutines (0 means GOMAXPROCS) and returns the tables in
// registry order. Experiments are independent and deterministic, so the
// output is identical to RunAll.
func RunAllParallel(workers int) ([]*Table, error) {
	reg := Registry()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reg) {
		workers = len(reg)
	}
	tables := make([]*Table, len(reg))
	errs := make([]error, len(reg))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				tables[i], errs[i] = reg[i].Run()
			}
		}()
	}
	for i := range reg {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", reg[i].ID, err)
		}
	}
	return tables, nil
}
