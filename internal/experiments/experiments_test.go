package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"abw/internal/estimate"
	"abw/internal/routing"
)

// TestScenarioIPaperNumbers asserts E1 reproduces the introduction's
// closed forms exactly.
func TestScenarioIPaperNumbers(t *testing.T) {
	tbl, err := ScenarioI()
	if err != nil {
		t.Fatal(err)
	}
	assertCell(t, tbl, 0, 1, "37.80")
	assertCell(t, tbl, 1, 1, "21.60")
}

// TestScenarioIIPaperNumbers asserts E2 reproduces Sec. 5.1 exactly:
// 16.2 / 13.5 / 108/7 / 1.2 / 1.05.
func TestScenarioIIPaperNumbers(t *testing.T) {
	tbl, err := ScenarioII()
	if err != nil {
		t.Fatal(err)
	}
	assertCell(t, tbl, 0, 1, "16.2000")
	assertCell(t, tbl, 1, 1, "13.5000")
	assertCell(t, tbl, 2, 1, "15.4286")
	assertCell(t, tbl, 3, 1, "1.2000")
	assertCell(t, tbl, 4, 1, "1.0500")
	// The schedule must use the paper's link-adaptation slot.
	if !strings.Contains(tbl.Rows[5][1], "(L0, 36Mbps), (L3, 54Mbps)") {
		t.Errorf("schedule cell %q lacks the (L1,36)+(L4,54) slot", tbl.Rows[5][1])
	}
}

// TestFig3Ordering asserts E4's headline: hop count fails first, then
// e2eTD, then average-e2eD (paper: flows 3, 5, 8; this seed: 3, 5, 7).
func TestFig3Ordering(t *testing.T) {
	fails, err := FirstFailures()
	if err != nil {
		t.Fatal(err)
	}
	h := fails[routing.MetricHopCount]
	e := fails[routing.MetricE2ETD]
	a := fails[routing.MetricAvgE2ED]
	if !(h < e && e < a) {
		t.Errorf("failure ordering broken: hop=%d e2eTD=%d avg=%d", h, e, a)
	}
	if h != 3 || e != 5 || a != 7 {
		t.Errorf("calibrated seed drifted: got (%d,%d,%d), want (3,5,7)", h, e, a)
	}
}

// TestFig4Shape asserts the paper's Fig. 4 qualitative claims on the
// calibrated run.
func TestFig4Shape(t *testing.T) {
	rows, err := Fig4Series()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != NumFlows {
		t.Fatalf("got %d rows, want %d", len(rows), NumFlows)
	}
	type agg struct{ mae float64 }
	maes := map[estimate.Metric]*agg{}
	for _, m := range estimate.AllMetrics() {
		maes[m] = &agg{}
	}
	for _, r := range rows {
		for _, m := range estimate.AllMetrics() {
			maes[m].mae += math.Abs(r.Estimates[m] - r.Exact)
		}
	}
	// Conservative clique performs best (paper's conclusion).
	cons := maes[estimate.MetricConservativeClique].mae
	for _, m := range estimate.AllMetrics() {
		if m == estimate.MetricConservativeClique {
			continue
		}
		if maes[m].mae < cons-1e-9 {
			t.Errorf("%v (MAE %.3f) beats conservative clique (MAE %.3f)", m, maes[m].mae/float64(len(rows)), cons/float64(len(rows)))
		}
	}
	// ECTT sits at or below conservative clique pointwise (Sec. 5.3:
	// "obtains lower values").
	for _, r := range rows {
		if r.Estimates[estimate.MetricExpectedCliqueTime] > r.Estimates[estimate.MetricConservativeClique]+1e-9 {
			t.Errorf("flow %d: ECTT %.3f above conservative %.3f", r.Flow,
				r.Estimates[estimate.MetricExpectedCliqueTime], r.Estimates[estimate.MetricConservativeClique])
		}
	}
	// Clique constraint ignores background: over-estimates under heavy
	// load (last flows) and under-estimates the multirate optimum under
	// light load (early flows where background is thin).
	last := rows[len(rows)-1]
	if last.Estimates[estimate.MetricCliqueConstraint] <= last.Exact {
		t.Errorf("heavy load: clique constraint %.3f should over-estimate exact %.3f",
			last.Estimates[estimate.MetricCliqueConstraint], last.Exact)
	}
	underLight := false
	for _, r := range rows[:3] {
		if r.Estimates[estimate.MetricCliqueConstraint] < r.Exact-1e-9 {
			underLight = true
		}
	}
	if !underLight {
		t.Error("light load: clique constraint never under-estimated the exact value in the first flows")
	}
	// Bottleneck ignores intra-path interference: over-estimates under
	// light load.
	first := rows[0]
	if first.Estimates[estimate.MetricBottleneckNode] <= first.Exact {
		t.Errorf("light load: bottleneck %.3f should over-estimate exact %.3f",
			first.Estimates[estimate.MetricBottleneckNode], first.Exact)
	}
}

func TestEq9AndLowerBoundTables(t *testing.T) {
	up, err := Eq9UpperBound()
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Rows) != 4 {
		t.Errorf("E6 rows = %d, want 4", len(up.Rows))
	}
	lb, err := LowerBounds()
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Rows) != 4 {
		t.Errorf("E7 rows = %d, want 4", len(lb.Rows))
	}
	assertCell(t, lb, 3, 1, "16.2000")
}

func TestAdaptationAblationTable(t *testing.T) {
	tbl, err := AdaptationAblation()
	if err != nil {
		t.Fatal(err)
	}
	// 16 fixed assignments + multirate row.
	if len(tbl.Rows) != 17 {
		t.Fatalf("rows = %d, want 17", len(tbl.Rows))
	}
	// Every fixed capacity must be strictly below 16.2.
	for _, row := range tbl.Rows[:16] {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("unparseable capacity %q: %v", row[1], err)
		}
		if v >= 16.2-1e-9 {
			t.Errorf("fixed assignment %s reached %.4f", row[0], v)
		}
	}
	assertCell(t, tbl, 16, 1, "16.2000")
}

func TestValidationTables(t *testing.T) {
	sv, err := SimValidation()
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Rows) != 3 {
		t.Errorf("E9 rows = %d, want 3", len(sv.Rows))
	}
	ci, err := CSMAIdle()
	if err != nil {
		t.Fatal(err)
	}
	if len(ci.Rows) != 6 {
		t.Errorf("E10 rows = %d, want 6", len(ci.Rows))
	}
}

func TestRegistryAndRun(t *testing.T) {
	reg := Registry()
	if len(reg) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(reg))
	}
	tbl, err := Run("e1")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "E1" {
		t.Errorf("Run(e1) returned %s", tbl.ID)
	}
	if _, err := Run("nope"); err == nil {
		t.Error("unknown id: expected error")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("n=%d", 1)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "a  bb", "1  2", "note: n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func assertCell(t *testing.T, tbl *Table, row, col int, want string) {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d)", tbl.ID, row, col)
	}
	if got := tbl.Rows[row][col]; got != want {
		t.Errorf("table %s cell (%d,%d) = %q, want %q", tbl.ID, row, col, got, want)
	}
}

// TestEstimatorAdmissionSafety asserts E13's operational claim: the
// conservative clique constraint never over-admits, while the bare
// clique constraint does.
func TestEstimatorAdmissionSafety(t *testing.T) {
	tbl, err := EstimatorAdmission()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	cells := map[string][]string{}
	for _, row := range tbl.Rows {
		cells[row[0]] = row
	}
	if cells["clique constraint"][2] == "0" {
		t.Error("clique constraint should over-admit on this workload")
	}
	if got := cells["conservative clique constraint"][2]; got != "0" {
		t.Errorf("conservative clique false admits = %s, want 0", got)
	}
	if got := cells["expected clique transmission time"][2]; got != "0" {
		t.Errorf("ECTT false admits = %s, want 0", got)
	}
}

// TestGreedyVsOptimalEfficiency asserts E14: greedy reaches the LP
// optimum on all chain workloads (within binary-search tolerance) and
// never exceeds it.
func TestGreedyVsOptimalEfficiency(t *testing.T) {
	tbl, err := GreedyVsOptimal()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		opt, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if greedy > opt+1e-6 {
			t.Errorf("%s: greedy %.4f exceeds the optimum %.4f", row[0], greedy, opt)
		}
		if greedy < 0.99*opt {
			t.Errorf("%s: greedy %.4f far below the optimum %.4f", row[0], greedy, opt)
		}
	}
}

// TestFairAllocationShapes asserts E15's workload results.
func TestFairAllocationShapes(t *testing.T) {
	tbl, err := FairAllocation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 7 {
		t.Fatalf("rows = %d, want at least 7", len(tbl.Rows))
	}
	// Scenario I: all three at 27.
	for i := 0; i < 3; i++ {
		assertCell(t, tbl, i, 2, "27.000")
	}
	// Scenario II twins at 8.1.
	assertCell(t, tbl, 3, 2, "8.100")
	assertCell(t, tbl, 4, 2, "8.100")
	// Random deployment: every share at least the 2 Mbps the admission
	// experiment demanded (fairness should not undercut admitted flows).
	for i := 5; i < len(tbl.Rows); i++ {
		v, err := strconv.ParseFloat(tbl.Rows[i][2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 2 {
			t.Errorf("row %d fair share %.3f below the admitted 2 Mbps", i, v)
		}
	}
}

// TestRunAllProducesEveryTable smoke-runs the complete registry — the
// exact pipeline cmd/abwsim executes.
func TestRunAllProducesEveryTable(t *testing.T) {
	tables, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Registry()) {
		t.Fatalf("got %d tables, want %d", len(tables), len(Registry()))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", tbl.ID)
		}
		if tbl.Title == "" || len(tbl.Header) == 0 {
			t.Errorf("%s missing title or header", tbl.ID)
		}
	}
}

// TestInterferenceModelAblation asserts E16: the pairwise protocol
// model is never less optimistic than the cumulative physical model.
func TestInterferenceModelAblation(t *testing.T) {
	tbl, err := InterferenceModelAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	sawGap := false
	for _, row := range tbl.Rows {
		phys, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		prot, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if prot < phys-1e-6 {
			t.Errorf("%s: protocol %.4f below physical %.4f", row[0], prot, phys)
		}
		if prot > phys+1e-6 {
			sawGap = true
		}
	}
	if !sawGap {
		t.Error("expected at least one chain where the models disagree")
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Header: []string{"a", "b|c"}}
	tbl.AddRow("1", "2|3")
	tbl.AddNote("watch out")
	var buf bytes.Buffer
	if err := tbl.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## X — demo", "| a | b\\|c |", "|---|---|", "| 1 | 2\\|3 |", "> watch out"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

// TestRunAllParallelMatchesSequential checks the concurrent runner
// produces byte-identical tables in the same order.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	seq, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		var a, b bytes.Buffer
		if err := seq[i].Render(&a); err != nil {
			t.Fatal(err)
		}
		if err := par[i].Render(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("table %s differs between sequential and parallel runs", seq[i].ID)
		}
	}
}

// TestCSRangeSensitivityShape asserts E17: longer carrier-sense ranges
// lower the mean idleness monotonically.
func TestCSRangeSensitivityShape(t *testing.T) {
	tbl, err := CSRangeSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	prev := 2.0
	for _, row := range tbl.Rows {
		idle, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if idle > prev+1e-9 {
			t.Errorf("mean idleness rose to %.3f as CS range grew (row %s)", idle, row[0])
		}
		prev = idle
	}
}

// TestFig2RouteDivergence asserts E3: the calibrated run shows exactly
// the paper's Fig. 2 pattern — routes mostly shared, with a divergence
// between average-e2eD and e2eTD (flow 5 on this seed).
func TestFig2RouteDivergence(t *testing.T) {
	tbl, err := Fig2Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != NumFlows {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), NumFlows)
	}
	diverged := 0
	for _, row := range tbl.Rows {
		if row[4] == "YES" {
			diverged++
		}
	}
	if diverged == 0 {
		t.Error("expected at least one route divergence (the paper's dotted arrows)")
	}
	if diverged == NumFlows {
		t.Error("all routes diverged — metrics should mostly agree at low load")
	}
	if tbl.Rows[4][4] != "YES" {
		t.Errorf("calibrated seed drifted: flow 5 should diverge, got %v", tbl.Rows[4])
	}
}

// TestDemandSweepConservativeAlwaysBest asserts E11's conclusion at
// every load level.
func TestDemandSweepConservativeAlwaysBest(t *testing.T) {
	tbl, err := DemandSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[6] != "conservative clique constraint" {
			t.Errorf("level %s: best = %q, want conservative clique", row[0], row[6])
		}
	}
}

// TestRateDiversityDominance asserts E12: the multirate profile admits
// at least as much demand as every single-rate variant.
func TestRateDiversityDominance(t *testing.T) {
	tbl, err := RateDiversityAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	multi, err := strconv.Atoi(tbl.Rows[0][3])
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows[1:] {
		single, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatal(err)
		}
		if single > multi {
			t.Errorf("%s admitted %d > multirate %d", row[0], single, multi)
		}
	}
}
