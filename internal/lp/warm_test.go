package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// warmTol bounds the disagreement we accept between a warm resolve and
// a from-scratch cold solve of the same program. The property tests
// draw dyadic-rational data (k/8), so simplex arithmetic is near-exact
// and the two paths agree to pivot-tolerance scale.
const warmTol = 1e-8

// dyadic returns a random dyadic rational in [-4, 4] with denominator 8.
func dyadic(rng *rand.Rand) float64 { return float64(rng.Intn(65)-32) / 8 }

// randomWarmLP builds a random LP with mixed relations. Every variable
// sits under a box row sum(x) <= bound, so the program is never
// unbounded; feasibility is left to chance (infeasible programs are a
// case the warm path must get right too).
func randomWarmLP(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(4)
	m := 2 + rng.Intn(4)
	sense := Minimize
	if rng.Intn(2) == 1 {
		sense = Maximize
	}
	p := NewProblem(sense)
	xs := make([]Var, n)
	for j := 0; j < n; j++ {
		xs[j] = p.AddVar(fmt.Sprintf("x%d", j), dyadic(rng))
	}
	for i := 0; i < m; i++ {
		row := make(map[Var]float64, n)
		for j := 0; j < n; j++ {
			row[xs[j]] = dyadic(rng)
		}
		rel := LE
		switch rng.Intn(4) { // LE-heavy mix keeps most programs feasible
		case 0:
			rel = GE
		case 1:
			rel = EQ
		}
		rhs := float64(rng.Intn(33)) / 8
		if rel == GE {
			rhs = -rhs // x=0 satisfies sum >= negative rhs more often
		}
		if err := p.AddConstraint(fmt.Sprintf("c%d", i), row, rel, rhs); err != nil {
			panic(err)
		}
	}
	box := make(map[Var]float64, n)
	for _, v := range xs {
		box[v] = 1
	}
	if err := p.AddConstraint("box", box, LE, float64(16+rng.Intn(65))/8); err != nil {
		panic(err)
	}
	return p
}

// cloneProblem deep-copies a problem so the cold reference solve sees
// the same data the warm solver mutated via SetRHS.
func cloneProblem(p *Problem) *Problem {
	q := NewProblem(p.sense)
	for j := range p.obj {
		q.AddVar(p.varNames[j], p.obj[j])
	}
	for _, c := range p.cons {
		coefs := make(map[Var]float64, len(c.coefs))
		for v, co := range c.coefs {
			coefs[v] = co
		}
		if err := q.AddOwnedConstraint(c.name, coefs, c.rel, c.rhs); err != nil {
			panic(err)
		}
	}
	return q
}

// assertAgrees checks a warm (or fallback) resolve against a cold
// solve of an identical problem: same status, and objectives within
// warmTol when both are Optimal.
func assertAgrees(t *testing.T, trial, step int, warm, cold *Solution) {
	t.Helper()
	if warm.Status != cold.Status {
		t.Fatalf("trial %d step %d: warm status %v, cold %v", trial, step, warm.Status, cold.Status)
	}
	if warm.Status != Optimal {
		return
	}
	if math.Abs(warm.Objective-cold.Objective) > warmTol {
		t.Fatalf("trial %d step %d: warm objective %.12g, cold %.12g (diff %g)",
			trial, step, warm.Objective, cold.Objective, warm.Objective-cold.Objective)
	}
}

// TestWarmMatchesColdOnBoundChanges is the Sec. 8-style warm-start
// invariant: over randomized programs and randomized bound-change
// sequences, every Resolve answer equals a from-scratch solve of the
// same data — same status, same optimum within warmTol.
func TestWarmMatchesColdOnBoundChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	warmResolves := 0
	for trial := 0; trial < 120; trial++ {
		p := randomWarmLP(rng)
		w := NewWarmSolver(p)
		sol, err := w.Solve()
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		coldRef, err := cloneProblem(p).Solve()
		if err != nil {
			t.Fatalf("trial %d: reference solve: %v", trial, err)
		}
		assertAgrees(t, trial, -1, sol, coldRef)

		steps := 1 + rng.Intn(6)
		for step := 0; step < steps; step++ {
			k := rng.Intn(p.NumConstraints())
			if err := w.SetRHS(k, dyadic(rng)+2); err != nil {
				t.Fatalf("trial %d step %d: SetRHS: %v", trial, step, err)
			}
			got, warm, err := w.Resolve()
			if err != nil {
				t.Fatalf("trial %d step %d: resolve: %v", trial, step, err)
			}
			if warm {
				warmResolves++
			}
			want, err := cloneProblem(p).Solve()
			if err != nil {
				t.Fatalf("trial %d step %d: reference solve: %v", trial, step, err)
			}
			assertAgrees(t, trial, step, got, want)
		}
	}
	// The point of the exercise: the warm path must actually fire, not
	// silently fall back to cold on every step.
	if warmResolves == 0 {
		t.Fatal("no resolve ever took the warm path")
	}
	t.Logf("warm resolves: %d", warmResolves)
}

// TestWarmPivotSavings pins the performance claim on a representative
// availability-shaped LP: maximize f subject to capacity rows whose
// rhs drifts. Warm resolves must do strictly fewer pivots than cold
// solves of the same sequence in aggregate.
func TestWarmPivotSavings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	build := func() *Problem {
		p := NewProblem(Maximize)
		f := p.AddVar("f", 1)
		lambdas := make([]Var, 12)
		for i := range lambdas {
			lambdas[i] = p.AddVar(fmt.Sprintf("l%d", i), 0)
		}
		shares := make(map[Var]float64, len(lambdas))
		for _, v := range lambdas {
			shares[v] = 1
		}
		if err := p.AddConstraint("total", shares, LE, 1); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 8; r++ {
			row := map[Var]float64{f: -1}
			for _, v := range lambdas {
				if rng.Intn(2) == 1 {
					row[v] = float64(6 * (1 + rng.Intn(9)))
				}
			}
			if err := p.AddConstraint(fmt.Sprintf("link%d", r), row, GE, float64(rng.Intn(9))/4); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	p := build()
	w := NewWarmSolver(p)
	if _, err := w.Solve(); err != nil {
		t.Fatal(err)
	}
	warmPivots, coldPivots := 0, 0
	for step := 0; step < 20; step++ {
		k := 1 + rng.Intn(8) // a link row, not the total-share row
		if err := w.SetRHS(k, float64(rng.Intn(13))/4); err != nil {
			t.Fatal(err)
		}
		got, _, err := w.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := cloneProblem(p).Solve()
		if err != nil {
			t.Fatal(err)
		}
		assertAgrees(t, 0, step, got, want)
		warmPivots += w.LastPivots()
		coldPivots += want.Pivots
	}
	if w.WarmResolves() == 0 {
		t.Fatal("no warm resolves on the availability-shaped sequence")
	}
	if warmPivots >= coldPivots {
		t.Fatalf("warm path saved nothing: %d warm pivots vs %d cold", warmPivots, coldPivots)
	}
	t.Logf("pivots: warm %d vs cold %d over 20 resolves (%d warm)", warmPivots, coldPivots, w.WarmResolves())
}

// TestWarmStructuralGrowthFallsBackCold: adding a variable or a
// constraint after the first solve must not poison the retained
// tableau — the next Resolve goes cold and is still correct.
func TestWarmStructuralGrowthFallsBackCold(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	if err := p.AddConstraint("cap", map[Var]float64{x: 1}, LE, 4); err != nil {
		t.Fatal(err)
	}
	w := NewWarmSolver(p)
	sol, err := w.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-4) > warmTol {
		t.Fatalf("objective %g, want 4", sol.Objective)
	}
	y := p.AddVar("y", 2)
	if err := p.AddConstraint("capY", map[Var]float64{y: 1}, LE, 3); err != nil {
		t.Fatal(err)
	}
	got, warm, err := w.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("resolve after structural growth must run cold")
	}
	if math.Abs(got.Objective-10) > warmTol {
		t.Fatalf("objective %g, want 10", got.Objective)
	}
	// And the fresh tableau warms the step after.
	if err := w.SetRHS(0, 5); err != nil {
		t.Fatal(err)
	}
	got, _, err = w.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Objective-11) > warmTol {
		t.Fatalf("objective %g, want 11", got.Objective)
	}
}

// TestWarmInfeasibleTransitions drives a program across the
// feasible/infeasible boundary in both directions; the warm solver
// must track the status a cold solve reports at every step.
func TestWarmInfeasibleTransitions(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	if err := p.AddConstraint("cap", map[Var]float64{x: 1}, LE, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("floor", map[Var]float64{x: 1}, GE, 1); err != nil {
		t.Fatal(err)
	}
	w := NewWarmSolver(p)
	if _, err := w.Solve(); err != nil {
		t.Fatal(err)
	}
	for step, tc := range []struct {
		rhs  float64 // new floor
		want Status
	}{
		{3, Infeasible}, // floor above cap
		{1.5, Optimal},  // back inside
		{2.5, Infeasible},
		{0, Optimal},
	} {
		if err := w.SetRHS(1, tc.rhs); err != nil {
			t.Fatal(err)
		}
		got, _, err := w.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != tc.want {
			t.Fatalf("step %d (floor=%g): status %v, want %v", step, tc.rhs, got.Status, tc.want)
		}
		want, err := cloneProblem(p).Solve()
		if err != nil {
			t.Fatal(err)
		}
		assertAgrees(t, 0, step, got, want)
	}
}
