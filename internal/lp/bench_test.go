package lp

import (
	"math/rand"
	"testing"
)

// benchProblem builds a dense random bounded LP with n variables and m
// constraints.
func benchProblem(n, m int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem(Maximize)
	xs := make([]Var, n)
	for j := 0; j < n; j++ {
		xs[j] = p.AddVar("x", rng.Float64()*2)
	}
	for i := 0; i < m; i++ {
		row := make(map[Var]float64, n)
		for j := 0; j < n; j++ {
			row[xs[j]] = rng.Float64()
		}
		if err := p.AddConstraint("c", row, LE, 1+rng.Float64()*9); err != nil {
			panic(err)
		}
	}
	return p
}

func benchSolve(b *testing.B, n, m int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := benchProblem(n, m, int64(i))
		b.StartTimer()
		sol, err := p.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkSolveSmall(b *testing.B)  { benchSolve(b, 10, 8) }
func BenchmarkSolveMedium(b *testing.B) { benchSolve(b, 50, 30) }
func BenchmarkSolveLarge(b *testing.B)  { benchSolve(b, 200, 60) }

// BenchmarkSolveEq6Shape mirrors the availability LP's shape: many
// columns (independent sets), few rows (links).
func BenchmarkSolveEq6Shape(b *testing.B) { benchSolve(b, 400, 25) }
