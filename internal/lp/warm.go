package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"abw/internal/cancel"
	"abw/internal/obs"
)

// WarmSolver re-solves one Problem across a sequence of right-hand-side
// changes without starting the simplex from scratch each time. The
// admission loop's availability LPs have exactly that shape: the
// constraint matrix (set rate vectors, path membership) is fixed while
// the per-link background demands — pure RHS — move between steps.
//
// After a cold Solve, the final tableau is retained. Its rows are
// B⁻¹·A with the rhs column B⁻¹·b, and each row's original identity
// column (the LE slack, or the GE/EQ artificial, kept in the tableau
// even though barred from the basis) currently holds B⁻¹·e_row. A
// change Δ to constraint k's rhs therefore updates the whole rhs
// column in one saxpy: rhs += Δ·column(unitCol[k]). The retained basis
// stays dual-feasible — the reduced costs don't involve b — so a few
// dual-simplex pivots restore primal feasibility, followed by a primal
// cleanup pass that re-establishes the exact optimality criterion the
// cold path uses. When anything about the warm path is off — structure
// grew, the dual loop stalls, a basic artificial resurfaces above
// tolerance, or dual simplex claims infeasibility — Resolve falls back
// to a cold solve, so its answers always match Problem.Solve within
// pivotTol-scale arithmetic noise.
//
// A WarmSolver owns its Problem between calls: the caller may change
// bounds through SetRHS and objective coefficients through the
// Problem's SetObjCoef (the next Resolve then runs cold), but must not
// add variables or constraints after the first Solve without expecting
// cold re-solves.
//
// WarmSolver is not safe for concurrent use.
type WarmSolver struct {
	p   *Problem
	tab *tableau

	// Dimensions at tableau build time; growth forces a cold rebuild.
	nVars, nCons int

	lastPivots int
	lastWarm   bool
	warmCount  int
}

// NewWarmSolver wraps p. The first Solve (or Resolve) runs cold and
// retains the tableau.
func NewWarmSolver(p *Problem) *WarmSolver {
	return &WarmSolver{p: p}
}

// Problem returns the wrapped problem.
func (w *WarmSolver) Problem() *Problem { return w.p }

// Solve runs a cold two-phase solve and retains the final tableau for
// later warm resolves. Only an Optimal tableau is retained: that is
// the dual-feasibility precondition warm-starting needs.
func (w *WarmSolver) Solve() (*Solution, error) {
	return w.SolveContext(context.Background())
}

// SolveContext is Solve under a context; see Problem.SolveContext. A
// cancelled solve retains no tableau, so the next call rebuilds cold.
func (w *WarmSolver) SolveContext(ctx context.Context) (*Solution, error) {
	tm := obs.SpanFrom(ctx).StartStage(obs.StageLPSolve)
	defer tm.End()
	sol, tb, err := w.p.solve(cancel.NewChecker(ctx, pivotCheckEvery))
	if err != nil {
		w.tab = nil
		return nil, err
	}
	w.retain(tb)
	w.lastPivots = sol.Pivots
	w.lastWarm = false
	tm.AddPivots(int64(sol.Pivots))
	return sol, nil
}

func (w *WarmSolver) retain(tb *tableau) {
	w.tab = tb
	if tb != nil {
		w.nVars = w.p.NumVars()
		w.nCons = w.p.NumConstraints()
	}
}

// SetRHS changes the right-hand side of constraint k and, when a
// tableau is retained, pushes the change through the retained inverse
// so the next Resolve can start warm.
func (w *WarmSolver) SetRHS(k int, rhs float64) error {
	old := w.p.RHS(k)
	if err := w.p.SetRHS(k, rhs); err != nil {
		return err
	}
	if w.tab == nil {
		return nil
	}
	if k >= len(w.tab.t) {
		// A constraint added after the build; the tableau no longer
		// describes the problem.
		w.tab = nil
		return nil
	}
	// Normalized-system delta: the row was scaled by rowSign at build
	// time, and stays scaled that way forever (re-normalizing on a sign
	// flip would be a different but equivalent system; keeping the
	// original sign keeps the feasible region and lets the rhs column
	// go negative, which is exactly what dual simplex repairs).
	delta := w.tab.rowSign[k] * (rhs - old)
	//lint:ignore abw/floateq exact no-op skip: an unchanged bound must not dirty the rhs column at all
	if delta == 0 {
		return nil
	}
	tb := w.tab
	for i := range tb.t {
		//lint:ignore abw/floateq exact-zero saxpy skip: true zeros contribute nothing
		if v := tb.t[i][tb.unitCol[k]]; v != 0 {
			tb.t[i][tb.total] += delta * v
		}
	}
	return nil
}

// Resolve solves the problem as it currently stands. When the retained
// tableau is usable it runs the warm path — dual simplex to restore
// primal feasibility, then a primal cleanup — and reports warm=true;
// otherwise (no tableau, structural growth, or any warm-path bailout)
// it re-solves cold and retains the fresh tableau.
func (w *WarmSolver) Resolve() (*Solution, bool, error) {
	return w.ResolveContext(context.Background())
}

// ResolveContext is Resolve under a context: both the warm dual loop
// and any cold fallback poll ctx between pivots. A cancelled resolve
// discards the retained tableau (it may be mid-pivot-sequence), so the
// next call after cancellation simply runs cold — correctness is never
// entrusted to a half-repaired basis.
func (w *WarmSolver) ResolveContext(ctx context.Context) (*Solution, bool, error) {
	// The timer starts on the warm stage and is re-labeled lp_solve if
	// the attempt falls through to a cold solve, so each resolve is
	// accounted exactly once under the path it actually took.
	tm := obs.SpanFrom(ctx).StartStage(obs.StageLPWarm)
	defer tm.End()
	chk := cancel.NewChecker(ctx, pivotCheckEvery)
	if w.tab != nil && (w.p.NumVars() != w.nVars || w.p.NumConstraints() != w.nCons) {
		w.tab = nil
	}
	if w.tab != nil {
		sol, ok, err := w.tab.dualResolve(w.p, chk)
		if err != nil {
			w.tab = nil
			return nil, false, err
		}
		if ok {
			w.lastPivots = sol.Pivots
			w.lastWarm = true
			w.warmCount++
			tm.SetWarm(true)
			tm.AddPivots(int64(sol.Pivots))
			return sol, true, nil
		}
		// Warm path bailed out (stall, surviving artificial, or a
		// dual-infeasibility verdict we only trust from a cold solve).
		w.tab = nil
	}
	tm.SetStage(obs.StageLPSolve)
	sol, tb, err := w.p.solve(chk)
	if err != nil {
		return nil, false, err
	}
	w.retain(tb)
	w.lastPivots = sol.Pivots
	w.lastWarm = false
	tm.AddPivots(int64(sol.Pivots))
	return sol, false, nil
}

// LastPivots returns the pivot count of the most recent Solve/Resolve.
func (w *WarmSolver) LastPivots() int { return w.lastPivots }

// LastWarm reports whether the most recent Resolve took the warm path.
func (w *WarmSolver) LastWarm() bool { return w.lastWarm }

// WarmResolves returns how many Resolve calls took the warm path.
func (w *WarmSolver) WarmResolves() int { return w.warmCount }

// dualResolve runs dual simplex on the retained tableau to repair
// primal feasibility after rhs changes, then a primal cleanup pass.
// ok=false means the warm path cannot vouch for the result (the caller
// re-solves cold); err is reserved for malformed problems.
func (tb *tableau) dualResolve(p *Problem, chk *cancel.Checker) (*Solution, bool, error) {
	if p.sense != Minimize && p.sense != Maximize {
		return nil, false, fmt.Errorf("lp: invalid sense %d", int(p.sense))
	}
	t, basis, total := tb.t, tb.basis, tb.total
	c2 := tb.phase2Costs(p)
	startPivots := tb.pivots

	for iter := 0; ; iter++ {
		if iter >= maxPivots {
			return nil, false, nil // stalled; cold solve decides
		}
		if err := chk.Check(); err != nil {
			return nil, false, err
		}
		// Leaving row: most negative rhs.
		leaving := -1
		worst := -feasTol
		for i := range t {
			if v := t[i][total]; v < worst {
				worst = v
				leaving = i
			}
		}
		if leaving < 0 {
			break // primal feasible again
		}
		// Entering column: dual ratio test. Among eligible columns
		// (negative entry in the leaving row, artificials barred) pick
		// the one minimizing reduced-cost / |entry|, so the reduced
		// costs stay non-negative — dual feasibility is the loop
		// invariant. Ties break toward the lowest column index
		// (Bland-style, prevents cycling on degenerate duals).
		red := tb.reducedCosts(c2)
		entering := -1
		bestRatio := math.Inf(1)
		for j := 0; j < total; j++ {
			if tb.isArt[j] {
				continue
			}
			a := t[leaving][j]
			if a >= -pivotTol {
				continue
			}
			rc := red[j]
			if rc < 0 {
				rc = 0 // clamp tolerance-scale dual noise
			}
			ratio := rc / -a
			if ratio < bestRatio-pivotTol {
				bestRatio = ratio
				entering = j
			}
		}
		if entering < 0 {
			// Dual simplex says infeasible. Sound in exact arithmetic,
			// but we only report Infeasible from the cold path so warm
			// answers can never disagree with it.
			return nil, false, nil
		}
		pivot(t, basis, leaving, entering)
		tb.pivots++
	}

	// A basic artificial above tolerance means the repaired point does
	// not satisfy the original constraints; only phase 1 can judge that.
	for i, b := range basis {
		if tb.isArt[b] && math.Abs(t[i][total]) > feasTol {
			return nil, false, nil
		}
	}

	// Primal cleanup: rhs changes don't touch reduced costs, but the
	// clamp above can hide tolerance-scale dual infeasibility. Finish
	// with the same primal loop the cold path ends on, so warm and cold
	// optima satisfy the identical termination criterion.
	status, err := tb.primal(chk, c2, tb.isArt)
	if err != nil {
		if errors.Is(err, cancel.ErrCanceled) {
			return nil, false, err // cancelled: no cold retry, caller aborts
		}
		return nil, false, nil // stalled; cold solve decides
	}
	if status != Optimal {
		return nil, false, nil // unbounded from a warm basis: distrust, go cold
	}
	sol := tb.solution(p)
	sol.Pivots = tb.pivots - startPivots
	return sol, true, nil
}

// reducedCosts computes r_j = c_j − c_B·B⁻¹·A_j into the shared
// scratch vector. The tableau rows already are B⁻¹·A, so the basis
// multiplier c[basis[i]] is fixed per row; accumulation order matches
// the primal loop's for bit-identical values.
func (tb *tableau) reducedCosts(c []float64) []float64 {
	red := tb.red
	copy(red, c)
	for i := 0; i < len(tb.t); i++ {
		//lint:ignore abw/floateq exact-zero multiplier skip: omitting true-zero terms keeps the sum bit-identical
		if cb := c[tb.basis[i]]; cb != 0 {
			ti := tb.t[i]
			for j := 0; j < tb.total; j++ {
				red[j] -= cb * ti[j]
			}
		}
	}
	return red
}
