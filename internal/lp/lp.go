// Package lp is a self-contained dense linear-programming solver used by
// the availability model: a two-phase primal simplex over a full
// tableau, with a small modeling layer (named variables, relational
// constraints). The paper's LPs are tiny by LP standards — tens of rows,
// up to a few thousand columns — so a dense tableau with Dantzig pricing
// (falling back to Bland's rule to break cycling) is exact and fast.
//
// All variables are non-negative; encode free variables as differences
// if ever needed. Infeasibility and unboundedness are reported through
// Solution.Status, not errors: they are expected outcomes of the
// admission-control questions this package answers.
package lp

import (
	"context"
	"fmt"
	"math"

	"abw/internal/cancel"
	"abw/internal/obs"
)

// Sense is the optimization direction.
type Sense int

// Optimization senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	// LE is <=.
	LE Rel = iota + 1
	// GE is >=.
	GE
	// EQ is =.
	EQ
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Var identifies a decision variable within one Problem.
type Var int

type constraint struct {
	name  string
	coefs map[Var]float64
	rel   Rel
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; call NewProblem.
type Problem struct {
	sense    Sense
	varNames []string
	obj      []float64
	cons     []constraint
}

// NewProblem returns an empty problem with the given sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVar adds a non-negative decision variable with the given objective
// coefficient and returns its handle.
func (p *Problem) AddVar(name string, objCoef float64) Var {
	p.varNames = append(p.varNames, name)
	p.obj = append(p.obj, objCoef)
	return Var(len(p.obj) - 1)
}

// Reserve pre-sizes internal storage for an expected number of
// variables and constraints, avoiding repeated growth when the caller
// knows the problem shape up front. It never shrinks.
func (p *Problem) Reserve(nVars, nCons int) {
	if nVars > cap(p.varNames) {
		names := make([]string, len(p.varNames), nVars)
		copy(names, p.varNames)
		p.varNames = names
		obj := make([]float64, len(p.obj), nVars)
		copy(obj, p.obj)
		p.obj = obj
	}
	if nCons > cap(p.cons) {
		cons := make([]constraint, len(p.cons), nCons)
		copy(cons, p.cons)
		p.cons = cons
	}
}

// SetObjCoef replaces the objective coefficient of v.
func (p *Problem) SetObjCoef(v Var, c float64) error {
	if int(v) < 0 || int(v) >= len(p.obj) {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	p.obj[v] = c
	return nil
}

// VarName returns the name given to v at creation.
func (p *Problem) VarName(v Var) string {
	if int(v) < 0 || int(v) >= len(p.varNames) {
		return fmt.Sprintf("x%d", int(v))
	}
	return p.varNames[v]
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddConstraint adds sum(coefs[v]*v) rel rhs. The coefficient map is
// copied. Unknown variables are rejected.
func (p *Problem) AddConstraint(name string, coefs map[Var]float64, rel Rel, rhs float64) error {
	if rel != LE && rel != GE && rel != EQ {
		return fmt.Errorf("lp: constraint %q has invalid relation %d", name, int(rel))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: constraint %q has non-finite rhs %g", name, rhs)
	}
	cp := make(map[Var]float64, len(coefs))
	for v, c := range coefs {
		if int(v) < 0 || int(v) >= len(p.obj) {
			//lint:ignore abw/maporder rejection is all-or-nothing; any one offending variable names the error
			return fmt.Errorf("lp: constraint %q references unknown variable %d", name, v)
		}
		if math.IsNaN(c) || math.IsInf(c, 0) {
			//lint:ignore abw/maporder rejection is all-or-nothing; any one offending coefficient names the error
			return fmt.Errorf("lp: constraint %q has non-finite coefficient %g for %s", name, c, p.VarName(v))
		}
		//lint:ignore abw/floateq exact-zero sparsity skip: dropping only true zeros leaves the tableau bit-identical
		if c != 0 {
			cp[v] = c
		}
	}
	p.cons = append(p.cons, constraint{name: name, coefs: cp, rel: rel, rhs: rhs})
	return nil
}

// AddOwnedConstraint is AddConstraint without the defensive copy: the
// problem takes ownership of coefs (zero coefficients are deleted in
// place) and the caller must not touch the map afterwards. Row builders
// that assemble a fresh map per constraint use this to skip one map
// allocation per row.
func (p *Problem) AddOwnedConstraint(name string, coefs map[Var]float64, rel Rel, rhs float64) error {
	if rel != LE && rel != GE && rel != EQ {
		return fmt.Errorf("lp: constraint %q has invalid relation %d", name, int(rel))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: constraint %q has non-finite rhs %g", name, rhs)
	}
	for v, c := range coefs {
		if int(v) < 0 || int(v) >= len(p.obj) {
			//lint:ignore abw/maporder rejection is all-or-nothing; any one offending variable names the error
			return fmt.Errorf("lp: constraint %q references unknown variable %d", name, v)
		}
		if math.IsNaN(c) || math.IsInf(c, 0) {
			//lint:ignore abw/maporder rejection is all-or-nothing; any one offending coefficient names the error
			return fmt.Errorf("lp: constraint %q has non-finite coefficient %g for %s", name, c, p.VarName(v))
		}
		//lint:ignore abw/floateq exact-zero sparsity skip: dropping only true zeros leaves the tableau bit-identical
		if c == 0 {
			delete(coefs, v)
		}
	}
	p.cons = append(p.cons, constraint{name: name, coefs: coefs, rel: rel, rhs: rhs})
	return nil
}

// Solution is the result of a solve.
type Solution struct {
	// Status reports whether an optimum was found.
	Status Status
	// Objective is the optimal objective value in the problem's own
	// sense; meaningful only when Status is Optimal.
	Objective float64
	// X holds the variable values; meaningful only when Status is
	// Optimal.
	X []float64
	// Pivots counts the simplex pivots this solve performed (both
	// phases; for a warm resolve, the dual pivots plus any primal
	// cleanup). It feeds the cache-stats surface (internal/memo).
	Pivots int
}

// Value returns the optimal value of v (0 for out-of-range handles).
func (s *Solution) Value(v Var) float64 {
	if s == nil || int(v) < 0 || int(v) >= len(s.X) {
		return 0
	}
	return s.X[v]
}

// Tolerances and iteration limits of the simplex loop.
const (
	pivotTol    = 1e-9
	feasTol     = 1e-7
	blandAfter  = 5000
	maxPivots   = 200000
	reducedCost = 1e-9
)

// pivotCheckEvery is the countdown interval of the per-pivot
// cancellation check: one channel poll per 16 pivots keeps the simplex
// loop responsive (pivots on the paper's LPs are microseconds) while
// the uncancellable path pays only the nil-Checker branch.
const pivotCheckEvery = 16

// Solve runs two-phase primal simplex. It returns an error only on
// malformed problems or on an internal failure to converge; infeasible
// and unbounded programs come back as Solutions with the matching
// Status.
func (p *Problem) Solve() (*Solution, error) {
	sol, _, err := p.solve(nil)
	return sol, err
}

// SolveContext is Solve under a context: the simplex loop polls
// ctx.Done() between pivots and abandons the solve with an error
// satisfying errors.Is(err, cancel.ErrCanceled) once ctx is cancelled.
// An uncancelled solve returns exactly what Solve would.
func (p *Problem) SolveContext(ctx context.Context) (*Solution, error) {
	tm := obs.SpanFrom(ctx).StartStage(obs.StageLPSolve)
	defer tm.End()
	sol, _, err := p.solve(cancel.NewChecker(ctx, pivotCheckEvery))
	if sol != nil {
		tm.AddPivots(int64(sol.Pivots))
	}
	return sol, err
}

// solve is Solve returning the final tableau alongside the solution so
// WarmSolver (warm.go) can retain it across right-hand-side changes.
// The tableau is nil unless phase 2 ran to optimality (only then is the
// retained basis dual-feasible, the warm-start precondition). A nil chk
// means the solve cannot be cancelled.
func (p *Problem) solve(chk *cancel.Checker) (*Solution, *tableau, error) {
	if p.sense != Minimize && p.sense != Maximize {
		return nil, nil, fmt.Errorf("lp: invalid sense %d", int(p.sense))
	}
	if len(p.obj) == 0 {
		return nil, nil, fmt.Errorf("lp: no variables")
	}

	tb := p.newTableau()

	// Phase 1: minimize the sum of artificials.
	if tb.nArt > 0 {
		feasible, err := tb.phase1(chk)
		if err != nil {
			return nil, nil, err
		}
		if !feasible {
			return &Solution{Status: Infeasible, Pivots: tb.pivots}, nil, nil
		}
	}

	// Phase 2: original objective (as minimization).
	status, err := tb.primal(chk, tb.phase2Costs(p), tb.isArt)
	if err != nil {
		return nil, nil, fmt.Errorf("lp: phase 2: %w", err)
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded, Pivots: tb.pivots}, nil, nil
	}
	return tb.solution(p), tb, nil
}

// SetRHS replaces the right-hand side of constraint k (in insertion
// order). WarmSolver turns this into an incremental tableau update;
// a plain Solve simply rebuilds from the new value.
func (p *Problem) SetRHS(k int, rhs float64) error {
	if k < 0 || k >= len(p.cons) {
		return fmt.Errorf("lp: constraint %d out of range", k)
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: constraint %q given non-finite rhs %g", p.cons[k].name, rhs)
	}
	p.cons[k].rhs = rhs
	return nil
}

// RHS returns the current right-hand side of constraint k.
func (p *Problem) RHS(k int) float64 {
	if k < 0 || k >= len(p.cons) {
		return 0
	}
	return p.cons[k].rhs
}

// tableau is the dense simplex state: rows are B^-1·A with the rhs
// column B^-1·b appended, in constraint order. Solve builds one per
// call; WarmSolver keeps the final tableau alive so a bound change can
// update the rhs column through the retained inverse (see warm.go).
type tableau struct {
	t     [][]float64
	basis []int
	isArt []bool

	// rowSign records the ±1 each row was normalized by at build time
	// (negative-rhs rows are negated); unitCol names the column that
	// started as the row's identity column (the LE slack, or the GE/EQ
	// artificial), whose current contents are exactly B^-1·e_row.
	rowSign []float64
	unitCol []int

	n     int // structural variables
	total int // structural + slack + artificial columns
	nArt  int

	cbuf []float64 // phase-1 costs, phase-2 costs, reduced costs
	red  []float64

	// pivots counts every pivot performed on this tableau, across
	// phases and warm resolves.
	pivots int
}

// newTableau builds the initial tableau for p: rows normalized to a
// non-negative rhs, slack columns first, artificial columns last, the
// starting basis on the identity columns.
func (p *Problem) newTableau() *tableau {
	n := len(p.obj)
	m := len(p.cons)

	// Count auxiliary columns.
	nSlack := 0
	nArt := 0
	for _, c := range p.cons {
		rhs, rel := c.rhs, c.rel
		if rhs < 0 { // normalized below: row negation flips the relation
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	total := n + nSlack + nArt

	tb := &tableau{
		t:       make([][]float64, m),
		basis:   make([]int, m),
		isArt:   make([]bool, total),
		rowSign: make([]float64, m),
		unitCol: make([]int, m),
		n:       n,
		total:   total,
		nArt:    nArt,
	}

	// Dense tableau rows plus rhs column, in one backing allocation.
	back := make([]float64, m*(total+1))
	slackCol := n
	artCol := n + nSlack
	for i, c := range p.cons {
		row := back[i*(total+1) : (i+1)*(total+1)]
		sign := 1.0
		rel := c.rel
		if c.rhs < 0 {
			sign = -1
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for v, coef := range c.coefs {
			row[v] = sign * coef
		}
		row[total] = sign * c.rhs
		tb.rowSign[i] = sign
		switch rel {
		case LE:
			row[slackCol] = 1
			tb.basis[i] = slackCol
			tb.unitCol[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			tb.isArt[artCol] = true
			tb.basis[i] = artCol
			tb.unitCol[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			tb.isArt[artCol] = true
			tb.basis[i] = artCol
			tb.unitCol[i] = artCol
			artCol++
		}
		tb.t[i] = row
	}

	// Scratch buffers shared by both phases: phase-1/phase-2 costs and
	// the reduced-cost vector.
	tb.cbuf = make([]float64, 3*total)
	tb.red = tb.cbuf[2*total:]
	return tb
}

// phase1 minimizes the sum of artificials and drives any degenerate
// survivors out of the basis. It reports whether the problem is
// feasible.
func (tb *tableau) phase1(chk *cancel.Checker) (bool, error) {
	t, basis, total := tb.t, tb.basis, tb.total
	c1 := tb.cbuf[:total]
	for j := range c1 {
		if tb.isArt[j] {
			c1[j] = 1
		}
	}
	status, err := tb.primal(chk, c1, nil)
	if err != nil {
		return false, fmt.Errorf("lp: phase 1: %w", err)
	}
	if status == Unbounded {
		return false, fmt.Errorf("lp: phase 1 unbounded (internal error)")
	}
	// Phase-1 objective value.
	p1 := 0.0
	for i, b := range basis {
		if tb.isArt[b] {
			p1 += t[i][total]
		}
	}
	if p1 > feasTol {
		return false, nil
	}
	// Drive any remaining (degenerate) artificials out of the basis.
	for i, b := range basis {
		if !tb.isArt[b] {
			continue
		}
		pivoted := false
		for j := 0; j < total; j++ {
			if tb.isArt[j] {
				continue
			}
			if math.Abs(t[i][j]) > pivotTol {
				pivot(t, basis, i, j)
				tb.pivots++
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: the artificial stays basic at zero; it
			// is harmless because artificial columns are barred from
			// entering in phase 2.
			t[i][total] = 0
		}
	}
	return true, nil
}

// phase2Costs fills and returns the phase-2 cost vector: the problem's
// objective in minimization form over the structural columns.
func (tb *tableau) phase2Costs(p *Problem) []float64 {
	c2 := tb.cbuf[tb.total : 2*tb.total]
	for j := 0; j < tb.n; j++ {
		if p.sense == Maximize {
			c2[j] = -p.obj[j]
		} else {
			c2[j] = p.obj[j]
		}
	}
	return c2
}

// solution extracts the optimal solution from the tableau.
func (tb *tableau) solution(p *Problem) *Solution {
	x := make([]float64, tb.n)
	for i, b := range tb.basis {
		if b < tb.n {
			x[b] = tb.t[i][tb.total]
		}
	}
	obj := 0.0
	for j := 0; j < tb.n; j++ {
		obj += p.obj[j] * x[j]
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Pivots: tb.pivots}
}

// primal runs the primal simplex loop on the tableau, minimizing cost
// c, counting pivots into tb.pivots.
func (tb *tableau) primal(chk *cancel.Checker, c []float64, barred []bool) (Status, error) {
	status, pivots, err := simplex(tb.t, tb.basis, c, barred, tb.red, chk)
	tb.pivots += pivots
	return status, err
}

// simplex runs the primal simplex loop on the tableau, minimizing cost
// c. Columns with barred[j] true may not enter the basis (artificials
// in phase 2). It returns Optimal or Unbounded plus the pivot count. A
// non-nil chk is polled once per iteration (amortized by its countdown)
// and aborts the loop with the cancellation cause.
func simplex(t [][]float64, basis []int, c []float64, barred []bool, red []float64, chk *cancel.Checker) (Status, int, error) {
	m := len(t)
	if m == 0 {
		// With no rows, any variable with negative cost increases without
		// bound.
		for j := range c {
			if (barred == nil || !barred[j]) && c[j] < -reducedCost {
				return Unbounded, 0, nil
			}
		}
		return Optimal, 0, nil
	}
	total := len(c)
	rhs := total

	for iter := 0; iter < maxPivots; iter++ {
		if err := chk.Check(); err != nil {
			return 0, iter, err
		}
		// Reduced costs: r_j = c_j - c_B . B^-1 A_j. The tableau rows
		// already are B^-1 A, so r_j = c_j - sum_i c[basis[i]] * t[i][j].
		// The dual multiplier c[basis[i]] is fixed per row, so accumulate
		// row-major across all columns at once instead of re-reading it
		// inside a per-column loop. Summation order over i (ascending,
		// zero multipliers skipped) matches the per-column form, so the
		// reduced costs are bit-identical.
		copy(red, c)
		for i := 0; i < m; i++ {
			//lint:ignore abw/floateq exact-zero multiplier skip: omitting true-zero terms keeps the sum bit-identical
			if cb := c[basis[i]]; cb != 0 {
				ti := t[i]
				for j := 0; j < total; j++ {
					red[j] -= cb * ti[j]
				}
			}
		}
		entering := -1
		best := -reducedCost
		useBland := iter >= blandAfter
		for j := 0; j < total; j++ {
			if barred != nil && barred[j] {
				continue
			}
			if r := red[j]; r < -reducedCost {
				if useBland {
					entering = j
					break
				}
				if r < best {
					best = r
					entering = j
				}
			}
		}
		if entering < 0 {
			return Optimal, iter, nil
		}

		leaving := ratioTest(t, basis, entering, rhs)
		if leaving < 0 {
			return Unbounded, iter, nil
		}
		pivot(t, basis, leaving, entering)
	}
	return 0, maxPivots, fmt.Errorf("simplex did not converge within %d pivots", maxPivots)
}

// ratioTest picks the leaving row for the given entering column: the row
// minimizing t[i][rhs] / t[i][entering] over rows with a positive pivot
// candidate, breaking near-ties (within pivotTol) toward the lowest
// basis index for Bland-style anti-cycling. Returns -1 when no row has a
// positive entry (the column is unbounded).
//
// The true minimum is established in a first pass before any tie-break
// runs: folding both into one pass can leave minRatio stale — or drag it
// upward through a chain of within-tolerance tie wins — so that a later,
// genuinely smaller ratio is compared against the wrong bound and the
// chosen pivot drives basic variables negative.
func ratioTest(t [][]float64, basis []int, entering, rhs int) int {
	minRatio := math.Inf(1)
	for i := range t {
		if a := t[i][entering]; a > pivotTol {
			if ratio := t[i][rhs] / a; ratio < minRatio {
				minRatio = ratio
			}
		}
	}
	leaving := -1
	for i := range t {
		if a := t[i][entering]; a > pivotTol {
			if ratio := t[i][rhs] / a; ratio < minRatio+pivotTol &&
				(leaving < 0 || basis[i] < basis[leaving]) {
				leaving = i
			}
		}
	}
	return leaving
}

// pivot performs a Gauss-Jordan pivot on t[row][col] and updates the
// basis.
func pivot(t [][]float64, basis []int, row, col int) {
	pr := t[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		//lint:ignore abw/floateq exact-zero row skip: a true-zero multiplier contributes nothing; tolerance here would zero real entries
		if f == 0 {
			continue
		}
		ri := t[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0 // clean residual error
	}
	basis[row] = col
}
