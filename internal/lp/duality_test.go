package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestStrongDuality builds random bounded-feasible primal programs
//
//	max c.x  s.t.  Ax <= b, x >= 0   (b >= 0, so x = 0 is feasible)
//
// and their duals
//
//	min b.y  s.t.  A'y >= c, y >= 0,
//
// solves both with the same simplex, and checks the objectives agree —
// a stringent end-to-end correctness check, since any pivoting or
// tolerance bug breaks the equality.
func TestStrongDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4) // variables
		m := 2 + rng.Intn(4) // constraints
		a := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		for i := 0; i < m; i++ {
			a[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				a[i][j] = rng.Float64()*4 - 1
			}
			b[i] = rng.Float64() * 10
		}
		for j := 0; j < n; j++ {
			c[j] = rng.Float64()*4 - 1
		}
		// Ensure boundedness: add a row of ones with positive rhs is not
		// enough if some a columns are all negative; add the box row
		// sum(x) <= 20 which bounds everything.
		box := make([]float64, n)
		for j := range box {
			box[j] = 1
		}
		a = append(a, box)
		b = append(b, 20)
		m++

		primal := NewProblem(Maximize)
		xs := make([]Var, n)
		for j := 0; j < n; j++ {
			xs[j] = primal.AddVar("x", c[j])
		}
		for i := 0; i < m; i++ {
			row := make(map[Var]float64, n)
			for j := 0; j < n; j++ {
				row[xs[j]] = a[i][j]
			}
			if err := primal.AddConstraint("p", row, LE, b[i]); err != nil {
				t.Fatal(err)
			}
		}
		psol, err := primal.Solve()
		if err != nil {
			t.Fatalf("trial %d primal: %v", trial, err)
		}
		if psol.Status != Optimal {
			t.Fatalf("trial %d: primal status %v (should be bounded and feasible)", trial, psol.Status)
		}

		dual := NewProblem(Minimize)
		ys := make([]Var, m)
		for i := 0; i < m; i++ {
			ys[i] = dual.AddVar("y", b[i])
		}
		for j := 0; j < n; j++ {
			row := make(map[Var]float64, m)
			for i := 0; i < m; i++ {
				row[ys[i]] = a[i][j]
			}
			if err := dual.AddConstraint("d", row, GE, c[j]); err != nil {
				t.Fatal(err)
			}
		}
		dsol, err := dual.Solve()
		if err != nil {
			t.Fatalf("trial %d dual: %v", trial, err)
		}
		if dsol.Status != Optimal {
			t.Fatalf("trial %d: dual status %v (strong duality demands optimal)", trial, dsol.Status)
		}
		if math.Abs(psol.Objective-dsol.Objective) > 1e-6*(1+math.Abs(psol.Objective)) {
			t.Errorf("trial %d: duality gap %.9f (primal %.6f, dual %.6f)",
				trial, psol.Objective-dsol.Objective, psol.Objective, dsol.Objective)
		}
	}
}

// TestComplementarySlackness spot-checks one solved pair: active primal
// constraints may carry dual weight, inactive ones must not (verified
// via the duality gap decomposition).
func TestComplementarySlackness(t *testing.T) {
	// max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18: optimum (2,6).
	p := NewProblem(Maximize)
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 5)
	rows := []struct {
		coefs map[Var]float64
		rhs   float64
	}{
		{map[Var]float64{x: 1}, 4},
		{map[Var]float64{y: 2}, 12},
		{map[Var]float64{x: 3, y: 2}, 18},
	}
	for _, r := range rows {
		if err := p.AddConstraint("r", r.coefs, LE, r.rhs); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Constraint 0 is slack at (2,6): x=2 < 4. Constraints 1 and 2 are
	// tight. Verify directly from the solution.
	if got := sol.Value(x); math.Abs(got-2) > 1e-9 {
		t.Fatalf("x = %g", got)
	}
	slack0 := 4 - sol.Value(x)
	tight1 := 12 - 2*sol.Value(y)
	tight2 := 18 - 3*sol.Value(x) - 2*sol.Value(y)
	if slack0 <= 1e-9 {
		t.Error("constraint 0 should be slack")
	}
	if math.Abs(tight1) > 1e-9 || math.Abs(tight2) > 1e-9 {
		t.Errorf("constraints 1,2 should be tight: %g, %g", tight1, tight2)
	}
}
