package lp

import (
	"math"
	"testing"
)

// FuzzSimplex feeds the two-phase simplex random small LPs decoded from
// raw bytes and asserts the solver's safety contract: it terminates
// without an internal error, and any solution it reports Optimal is
// primal-feasible — every constraint satisfied within feasTol-scale
// slack, all variables non-negative, objective equal to c·x.
//
// Coefficients are dyadic rationals (int8/8), which makes degenerate
// ties and exactly-zero pivots common — the regime the two-pass ratio
// test and Bland fallback exist for.
func FuzzSimplex(f *testing.F) {
	f.Add([]byte{2, 3, 1, 8, 16, 24, 0, 40, 1, 2, 3, 100, 1, 80, 2, 8, 8})
	f.Add([]byte{1, 1, 0, 248, 1, 8, 200})               // minimize -x st x <= trouble
	f.Add([]byte{3, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // all-zero degenerate
	f.Add([]byte{2, 2, 0, 8, 8, 1, 8, 248, 0, 2, 248, 8, 0, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := decodeProblem(data)
		if !ok {
			return
		}
		sol, err := p.Solve()
		if err != nil {
			// Malformed inputs are screened out by the decoder, so the
			// only sanctioned error is the pivot-limit bailout.
			t.Fatalf("solve failed: %v", err)
		}
		if sol.Status != Optimal {
			return
		}
		checkPrimalFeasible(t, p, sol)
	})
}

// decodeProblem builds an LP with up to 6 variables and 6 constraints
// from the fuzz payload. Returns ok=false when the payload is too
// short to name a shape.
func decodeProblem(data []byte) (*Problem, bool) {
	if len(data) < 3 {
		return nil, false
	}
	nVars := 1 + int(data[0])%6
	nCons := int(data[1]) % 7
	sense := Minimize
	if data[2]%2 == 1 {
		sense = Maximize
	}
	next := 3
	byteAt := func() byte {
		if next >= len(data) {
			return 0
		}
		b := data[next]
		next++
		return b
	}
	// Dyadic coefficients in [-16, 15.875]: exact in float64, tie-rich.
	coefAt := func() float64 { return float64(int8(byteAt())) / 8 }

	p := NewProblem(sense)
	vars := make([]Var, nVars)
	for i := range vars {
		vars[i] = p.AddVar("x", coefAt())
	}
	for c := 0; c < nCons; c++ {
		rel := []Rel{LE, GE, EQ}[byteAt()%3]
		coefs := make(map[Var]float64, nVars)
		for _, v := range vars {
			coefs[v] = coefAt()
		}
		rhs := coefAt()
		if err := p.AddConstraint("c", coefs, rel, rhs); err != nil {
			return nil, false
		}
	}
	return p, true
}

// checkPrimalFeasible verifies a reported optimum against the problem
// it came from.
func checkPrimalFeasible(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	const slack = 1e-6
	if len(sol.X) != p.NumVars() {
		t.Fatalf("solution has %d values for %d variables", len(sol.X), p.NumVars())
	}
	for i, x := range sol.X {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("x[%d] = %g is not finite", i, x)
		}
		if x < -slack {
			t.Fatalf("x[%d] = %g violates non-negativity", i, x)
		}
	}
	obj := 0.0
	for i, x := range sol.X {
		obj += p.obj[i] * x
	}
	scale := 1.0 + math.Abs(sol.Objective)
	if math.Abs(obj-sol.Objective) > slack*scale {
		t.Fatalf("objective %g does not match c.x = %g", sol.Objective, obj)
	}
	for _, c := range p.cons {
		lhs := 0.0
		for v, coef := range c.coefs {
			lhs += coef * sol.X[v]
		}
		rowScale := 1.0 + math.Abs(c.rhs)
		switch c.rel {
		case LE:
			if lhs > c.rhs+slack*rowScale {
				t.Fatalf("constraint violated: %g <= %g", lhs, c.rhs)
			}
		case GE:
			if lhs < c.rhs-slack*rowScale {
				t.Fatalf("constraint violated: %g >= %g", lhs, c.rhs)
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > slack*rowScale {
				t.Fatalf("constraint violated: %g = %g", lhs, c.rhs)
			}
		}
	}
}
