package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOrFatal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestMaximizeSimple(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 5)
	mustCons(t, p, "c1", map[Var]float64{x: 1}, LE, 4)
	mustCons(t, p, "c2", map[Var]float64{y: 2}, LE, 12)
	mustCons(t, p, "c3", map[Var]float64{x: 3, y: 2}, LE, 18)
	sol := solveOrFatal(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-36) > 1e-9 {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
	if math.Abs(sol.Value(x)-2) > 1e-9 || math.Abs(sol.Value(y)-6) > 1e-9 {
		t.Errorf("x=%g y=%g, want 2, 6", sol.Value(x), sol.Value(y))
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2 => x=10? obj: put all weight
	// on x: x=10,y=0 -> 20; but x>=2 anyway. Optimal 20.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 2)
	y := p.AddVar("y", 3)
	mustCons(t, p, "sum", map[Var]float64{x: 1, y: 1}, GE, 10)
	mustCons(t, p, "xmin", map[Var]float64{x: 1}, GE, 2)
	sol := solveOrFatal(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-20) > 1e-9 {
		t.Errorf("status=%v obj=%g, want optimal 20", sol.Status, sol.Objective)
	}
}

func TestEquality(t *testing.T) {
	// max x + y s.t. x + y = 5, x <= 3 -> obj 5.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	mustCons(t, p, "eq", map[Var]float64{x: 1, y: 1}, EQ, 5)
	mustCons(t, p, "cap", map[Var]float64{x: 1}, LE, 3)
	sol := solveOrFatal(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-9 {
		t.Errorf("status=%v obj=%g, want optimal 5", sol.Status, sol.Objective)
	}
	if got := sol.Value(x) + sol.Value(y); math.Abs(got-5) > 1e-9 {
		t.Errorf("x+y = %g, want exactly 5", got)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	mustCons(t, p, "lo", map[Var]float64{x: 1}, GE, 5)
	mustCons(t, p, "hi", map[Var]float64{x: 1}, LE, 3)
	sol := solveOrFatal(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	mustCons(t, p, "a", map[Var]float64{x: 1, y: 1}, EQ, 4)
	mustCons(t, p, "b", map[Var]float64{x: 1, y: 1}, EQ, 6)
	sol := solveOrFatal(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 0)
	mustCons(t, p, "c", map[Var]float64{y: 1}, LE, 1)
	_ = x
	sol := solveOrFatal(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 is y - x >= 2. max x s.t. x - y <= -2, y <= 5 -> x=3.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 0)
	mustCons(t, p, "neg", map[Var]float64{x: 1, y: -1}, LE, -2)
	mustCons(t, p, "cap", map[Var]float64{y: 1}, LE, 5)
	sol := solveOrFatal(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-9 {
		t.Errorf("status=%v obj=%g, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestNegativeRHSGE(t *testing.T) {
	// -x >= -4  <=>  x <= 4. max x -> 4.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	mustCons(t, p, "c", map[Var]float64{x: -1}, GE, -4)
	sol := solveOrFatal(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-9 {
		t.Errorf("status=%v obj=%g, want optimal 4", sol.Status, sol.Objective)
	}
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's cycling example; must terminate via Bland fallback.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
	//      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
	//      x6 <= 1
	// Optimum: -0.05.
	p := NewProblem(Minimize)
	x4 := p.AddVar("x4", -0.75)
	x5 := p.AddVar("x5", 150)
	x6 := p.AddVar("x6", -0.02)
	x7 := p.AddVar("x7", 6)
	mustCons(t, p, "r1", map[Var]float64{x4: 0.25, x5: -60, x6: -0.04, x7: 9}, LE, 0)
	mustCons(t, p, "r2", map[Var]float64{x4: 0.5, x5: -90, x6: -0.02, x7: 3}, LE, 0)
	mustCons(t, p, "r3", map[Var]float64{x6: 1}, LE, 1)
	sol := solveOrFatal(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-(-0.05)) > 1e-9 {
		t.Errorf("status=%v obj=%g, want optimal -0.05", sol.Status, sol.Objective)
	}
}

func TestZeroConstraints(t *testing.T) {
	// No constraints: max is unbounded, min is 0 at origin.
	pMax := NewProblem(Maximize)
	pMax.AddVar("x", 1)
	sol := solveOrFatal(t, pMax)
	if sol.Status != Unbounded {
		t.Errorf("max no constraints: status = %v, want unbounded", sol.Status)
	}
	pMin := NewProblem(Minimize)
	x := pMin.AddVar("x", 1)
	sol = solveOrFatal(t, pMin)
	//lint:ignore abw/floateq a variable the simplex never pivots in is exactly 0.0
	if sol.Status != Optimal || sol.Value(x) != 0 {
		t.Errorf("min no constraints: status=%v x=%g, want optimal 0", sol.Status, sol.Value(x))
	}
}

func TestValidation(t *testing.T) {
	p := NewProblem(Maximize)
	if _, err := p.Solve(); err == nil {
		t.Error("no variables: expected error")
	}
	x := p.AddVar("x", 1)
	if err := p.AddConstraint("bad-var", map[Var]float64{Var(99): 1}, LE, 1); err == nil {
		t.Error("unknown variable: expected error")
	}
	if err := p.AddConstraint("bad-rel", map[Var]float64{x: 1}, Rel(0), 1); err == nil {
		t.Error("invalid relation: expected error")
	}
	if err := p.AddConstraint("nan-rhs", map[Var]float64{x: 1}, LE, math.NaN()); err == nil {
		t.Error("NaN rhs: expected error")
	}
	if err := p.AddConstraint("inf-coef", map[Var]float64{x: math.Inf(1)}, LE, 1); err == nil {
		t.Error("Inf coefficient: expected error")
	}
	if err := p.SetObjCoef(Var(99), 1); err == nil {
		t.Error("SetObjCoef out of range: expected error")
	}
	bad := &Problem{}
	bad.AddVar("x", 1)
	if _, err := bad.Solve(); err == nil {
		t.Error("zero-value sense: expected error")
	}
}

func TestVarName(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("flow", 1)
	if p.VarName(x) != "flow" {
		t.Errorf("VarName = %q", p.VarName(x))
	}
	if p.VarName(Var(42)) != "x42" {
		t.Errorf("VarName(out of range) = %q", p.VarName(Var(42)))
	}
}

func TestSetObjCoef(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0)
	mustCons(t, p, "cap", map[Var]float64{x: 1}, LE, 7)
	if err := p.SetObjCoef(x, 2); err != nil {
		t.Fatal(err)
	}
	sol := solveOrFatal(t, p)
	if math.Abs(sol.Objective-14) > 1e-9 {
		t.Errorf("objective = %g, want 14", sol.Objective)
	}
}

func TestStatusAndRelStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status strings wrong")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Rel strings wrong")
	}
	if Status(9).String() != "Status(9)" || Rel(9).String() != "Rel(9)" {
		t.Error("unknown enum strings wrong")
	}
}

// TestRandomBoundedLPs generates random LPs with a guaranteed-feasible
// bounded region (box + random extra constraints satisfied by a known
// point) and checks that the returned optimum is feasible and at least
// as good as the known point and a cloud of random feasible points.
func TestRandomBoundedLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		p := NewProblem(Maximize)
		obj := make([]float64, n)
		vars := make([]Var, n)
		for j := 0; j < n; j++ {
			obj[j] = rng.Float64()*4 - 1 // mostly positive
			vars[j] = p.AddVar("x", obj[j])
		}
		// Box: x_j <= 10 keeps everything bounded.
		for j := 0; j < n; j++ {
			mustCons(t, p, "box", map[Var]float64{vars[j]: 1}, LE, 10)
		}
		// A known interior point.
		point := make([]float64, n)
		for j := range point {
			point[j] = rng.Float64() * 5
		}
		// Random extra constraints that the known point satisfies.
		type row struct {
			coefs map[Var]float64
			rel   Rel
			rhs   float64
		}
		var rows []row
		for k := 0; k < 1+rng.Intn(4); k++ {
			coefs := make(map[Var]float64, n)
			lhs := 0.0
			for j := 0; j < n; j++ {
				c := rng.Float64()*2 - 0.5
				coefs[vars[j]] = c
				lhs += c * point[j]
			}
			slackAmt := rng.Float64() * 3
			rel := LE
			rhs := lhs + slackAmt
			if rng.Intn(2) == 0 {
				rel = GE
				rhs = lhs - slackAmt
			}
			mustCons(t, p, "extra", coefs, rel, rhs)
			rows = append(rows, row{coefs: coefs, rel: rel, rhs: rhs})
		}
		sol := solveOrFatal(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v for a feasible bounded LP", trial, sol.Status)
		}
		// Solution must satisfy every constraint.
		for j := 0; j < n; j++ {
			x := sol.Value(vars[j])
			if x < -1e-7 || x > 10+1e-7 {
				t.Errorf("trial %d: x%d = %g outside [0,10]", trial, j, x)
			}
		}
		for ri, r := range rows {
			lhs := 0.0
			for v, c := range r.coefs {
				lhs += c * sol.Value(v)
			}
			switch r.rel {
			case LE:
				if lhs > r.rhs+1e-6 {
					t.Errorf("trial %d: row %d violated: %g > %g", trial, ri, lhs, r.rhs)
				}
			case GE:
				if lhs < r.rhs-1e-6 {
					t.Errorf("trial %d: row %d violated: %g < %g", trial, ri, lhs, r.rhs)
				}
			}
		}
		// Optimality vs the known point.
		known := 0.0
		for j := 0; j < n; j++ {
			known += obj[j] * point[j]
		}
		if sol.Objective < known-1e-6 {
			t.Errorf("trial %d: objective %g worse than known feasible %g", trial, sol.Objective, known)
		}
	}
}

func mustCons(t *testing.T, p *Problem, name string, coefs map[Var]float64, rel Rel, rhs float64) {
	t.Helper()
	if err := p.AddConstraint(name, coefs, rel, rhs); err != nil {
		t.Fatalf("AddConstraint(%s): %v", name, err)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Linearly dependent but consistent equalities exercise the
	// redundant-row handling after phase 1 (an artificial stays basic at
	// zero and must not corrupt phase 2).
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	mustCons(t, p, "eq1", map[Var]float64{x: 1, y: 1}, EQ, 6)
	mustCons(t, p, "eq2", map[Var]float64{x: 2, y: 2}, EQ, 12) // 2x the first
	mustCons(t, p, "cap", map[Var]float64{x: 1}, LE, 4)
	sol := solveOrFatal(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-6) > 1e-9 {
		t.Errorf("status=%v obj=%g, want optimal 6", sol.Status, sol.Objective)
	}
	if got := sol.Value(x) + sol.Value(y); math.Abs(got-6) > 1e-9 {
		t.Errorf("x+y = %g, want 6", got)
	}
}

func TestDuplicateConstraints(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	for i := 0; i < 5; i++ {
		mustCons(t, p, "dup", map[Var]float64{x: 1}, LE, 3)
	}
	sol := solveOrFatal(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-9 {
		t.Errorf("status=%v obj=%g, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestZeroCoefficientDropped(t *testing.T) {
	// Zero coefficients are pruned at AddConstraint; the row must behave
	// as if the variable were absent.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	mustCons(t, p, "c", map[Var]float64{x: 1, y: 0}, LE, 2)
	mustCons(t, p, "cy", map[Var]float64{y: 1}, LE, 5)
	sol := solveOrFatal(t, p)
	if math.Abs(sol.Objective-7) > 1e-9 {
		t.Errorf("obj = %g, want 7 (y unconstrained by the zero-coef row)", sol.Objective)
	}
}

// TestRatioTestStaleMinimum pins the two-pass ratio test against a
// tableau crafted so a single-pass test with folded-in tie-breaking
// goes wrong: the true minimum ratio appears on a row that loses the
// Bland tie-break, so minRatio is never tightened, and a later row
// whose ratio is genuinely larger (but within pivotTol of the stale
// bound) wins on basis index. Pivoting there drives the amplified
// first row's basic variable to about -5e-4 — far past any tolerance —
// while the correct pivot keeps every basic variable within ~1e-9 of
// feasibility.
func TestRatioTestStaleMinimum(t *testing.T) {
	const rhs = 6
	tab := [][]float64{
		// col:  0     1    2    3    4    5    rhs        ratio
		{1e6, 0, 1, 0, 0, 0, 1e6},      // 1.0        basis 2
		{1, 0, 0, 0, 0, 1, 1 - 0.8e-9}, // 1 - 0.8e-9 basis 5 (true min)
		{1, 1, 0, 0, 0, 0, 1 + 0.5e-9}, // 1 + 0.5e-9 basis 1
	}
	basis := []int{2, 5, 1}

	if got := ratioTest(tab, basis, 0, rhs); got != 0 {
		t.Fatalf("ratioTest picked row %d, want 0 (lowest basis index among near-minimum ratios)", got)
	}

	c := []float64{-1, 0, 0, 0, 0, 0}
	status, _, err := simplex(tab, basis, c, nil, make([]float64, len(c)), nil)
	if err != nil {
		t.Fatalf("simplex: %v", err)
	}
	if status != Optimal {
		t.Fatalf("status = %v, want Optimal", status)
	}
	for i := range tab {
		if tab[i][rhs] < -1e-6 {
			t.Errorf("row %d: basic variable driven to %g by a bad leaving-row choice", i, tab[i][rhs])
		}
	}
}

// TestDegenerateTieBreakSolve exercises the public solver on a
// degenerate LP whose optimum sits on several coincident basic
// solutions, so the ratio test repeatedly faces exact and near ties.
func TestDegenerateTieBreakSolve(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	// x <= 1, y <= 1, x+y <= 2 (redundant: optimum vertex is degenerate).
	mustCons(t, p, "c1", map[Var]float64{x: 1}, LE, 1)
	mustCons(t, p, "c2", map[Var]float64{y: 1}, LE, 1)
	mustCons(t, p, "c3", map[Var]float64{x: 1, y: 1}, LE, 2)
	sol := solveOrFatal(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want Optimal", sol.Status)
	}
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("objective = %g, want 2", sol.Objective)
	}
	for i, v := range sol.X {
		if v < -1e-9 {
			t.Fatalf("x[%d] = %g, want nonnegative", i, v)
		}
	}
}
