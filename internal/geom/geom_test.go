package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{name: "same point", p: Point{1, 2}, q: Point{1, 2}, want: 0},
		{name: "unit x", p: Point{0, 0}, q: Point{1, 0}, want: 1},
		{name: "unit y", p: Point{0, 0}, q: Point{0, 1}, want: 1},
		{name: "3-4-5 triangle", p: Point{0, 0}, q: Point{3, 4}, want: 5},
		{name: "negative coords", p: Point{-1, -1}, q: Point{2, 3}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestPointDistSymmetric(t *testing.T) {
	f := func(x1, y1, x2, y2 float64) bool {
		p := Point{X: math.Mod(x1, 1e6), Y: math.Mod(y1, 1e6)}
		q := Point{X: math.Mod(x2, 1e6), Y: math.Mod(y2, 1e6)}
		return math.Abs(p.Dist(q)-q.Dist(p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointDistTriangleInequality(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3 float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{clamp(x1), clamp(y1)}
		b := Point{clamp(x2), clamp(y2)}
		c := Point{clamp(x3), clamp(y3)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointAddScale(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v, want (4,-2)", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{W: 400, H: 600}
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"origin", Point{0, 0}, true},
		{"far corner", Point{400, 600}, true},
		{"center", Point{200, 300}, true},
		{"outside x", Point{401, 0}, false},
		{"outside y", Point{0, 601}, false},
		{"negative", Point{-1, 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestRectArea(t *testing.T) {
	r := Rect{W: 400, H: 600}
	if got := r.Area(); got != 240000 {
		t.Errorf("Area = %v, want 240000", got)
	}
}

func TestUniformPointsInArea(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Rect{W: 400, H: 600}
	pts := UniformPoints(rng, r, 500)
	if len(pts) != 500 {
		t.Fatalf("got %d points, want 500", len(pts))
	}
	for i, p := range pts {
		if !r.Contains(p) {
			t.Errorf("point %d = %v outside %v", i, p, r)
		}
	}
}

func TestUniformPointsDeterministic(t *testing.T) {
	a := UniformPoints(rand.New(rand.NewSource(42)), Rect{W: 100, H: 100}, 50)
	b := UniformPoints(rand.New(rand.NewSource(42)), Rect{W: 100, H: 100}, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUniformPointsMinDist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, err := UniformPointsMinDist(rng, Rect{W: 400, H: 600}, 30, 20, 10000)
	if err != nil {
		t.Fatalf("UniformPointsMinDist: %v", err)
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < 20 {
				t.Errorf("points %d,%d too close: %.2f < 20", i, j, d)
			}
		}
	}
}

func TestUniformPointsMinDistImpossible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := UniformPointsMinDist(rng, Rect{W: 10, H: 10}, 100, 50, 100); err == nil {
		t.Fatal("expected error for impossible spacing, got nil")
	}
}

func TestLinePoints(t *testing.T) {
	pts := LinePoints(4, 50)
	want := []Point{{0, 0}, {50, 0}, {100, 0}, {150, 0}}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestGridPoints(t *testing.T) {
	pts := GridPoints(6, 3, 10)
	want := []Point{{0, 0}, {10, 0}, {20, 0}, {0, 10}, {10, 10}, {20, 10}}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
	// cols <= 0 falls back to a single row.
	line := GridPoints(3, 0, 5)
	if line[2] != (Point{10, 0}) {
		t.Errorf("GridPoints cols=0: point 2 = %v, want (10,0)", line[2])
	}
}
