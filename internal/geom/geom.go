// Package geom provides the 2-D geometry primitives used to place sensor
// nodes and measure distances between them. All randomness is driven by
// explicit sources so topologies are reproducible.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location on the deployment plane, in meters.
type Point struct {
	X float64
	Y float64
}

// Dist returns the Euclidean distance in meters between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point {
	return Point{X: p.X + q.X, Y: p.Y + q.Y}
}

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point {
	return Point{X: p.X * k, Y: p.Y * k}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y)
}

// Rect is an axis-aligned deployment area.
type Rect struct {
	W float64 // width in meters (x extent)
	H float64 // height in meters (y extent)
}

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.W && p.Y >= 0 && p.Y <= r.H
}

// Area returns the area of r in square meters.
func (r Rect) Area() float64 {
	return r.W * r.H
}

// UniformPoints places n points uniformly at random inside r using rng.
func UniformPoints(rng *rand.Rand, r Rect, n int) []Point {
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, Point{X: rng.Float64() * r.W, Y: rng.Float64() * r.H})
	}
	return pts
}

// UniformPointsMinDist places n points uniformly inside r, rejecting
// candidates closer than minDist to an already placed point. It gives up
// and returns an error if maxTries successive rejections occur, which
// indicates the area is too crowded for the requested spacing.
func UniformPointsMinDist(rng *rand.Rand, r Rect, n int, minDist float64, maxTries int) ([]Point, error) {
	pts := make([]Point, 0, n)
	tries := 0
	for len(pts) < n {
		cand := Point{X: rng.Float64() * r.W, Y: rng.Float64() * r.H}
		ok := true
		for _, p := range pts {
			if p.Dist(cand) < minDist {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
			tries = 0
			continue
		}
		tries++
		if tries >= maxTries {
			return nil, fmt.Errorf("geom: could not place %d points with min distance %.1fm after %d tries (placed %d)",
				n, minDist, maxTries, len(pts))
		}
	}
	return pts, nil
}

// GridPoints places points on a regular grid with the given spacing,
// row-major from the origin, stopping after n points. It is useful for
// deterministic chain and lattice test topologies.
func GridPoints(n int, cols int, spacing float64) []Point {
	if cols <= 0 {
		cols = n
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		row := i / cols
		col := i % cols
		pts = append(pts, Point{X: float64(col) * spacing, Y: float64(row) * spacing})
	}
	return pts
}

// LinePoints places n points on a horizontal line with the given spacing,
// starting at the origin. Chain topologies use this.
func LinePoints(n int, spacing float64) []Point {
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, Point{X: float64(i) * spacing})
	}
	return pts
}
