package memo

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/topology"
)

// fuzzStoreRates is the rate alphabet fuzzed families draw from.
var fuzzStoreRates = []radio.Rate{54, 36, 18, 6}

// fuzzStoreFamily decodes a canonical set family from raw bytes: links
// strictly ascending within each set, set keys strictly ascending
// across the family — exactly the invariants a complete enumeration
// guarantees and decodeFamily enforces.
func fuzzStoreFamily(data []byte) []indepset.Set {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nsets := int(next()) % 9
	sets := make([]indepset.Set, 0, nsets)
	for i := 0; i < nsets; i++ {
		ncouples := 1 + int(next())%4
		couples := make([]conflict.Couple, 0, ncouples)
		link := topology.LinkID(0)
		for j := 0; j < ncouples; j++ {
			link += 1 + topology.LinkID(next())%5
			couples = append(couples, conflict.Couple{
				Link: link,
				Rate: fuzzStoreRates[int(next())%len(fuzzStoreRates)],
			})
		}
		sets = append(sets, indepset.NewSet(couples...))
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Key() < sets[j].Key() })
	dedup := sets[:0]
	for i, s := range sets {
		if i == 0 || s.Key() != sets[i-1].Key() {
			dedup = append(dedup, s)
		}
	}
	indepset.CacheKeys(dedup)
	return dedup
}

// FuzzStoreRoundTrip pins the two properties DESIGN.md Sec. 11 demands
// of the on-disk family format:
//
//  1. round trip — a spilled family reloads byte-identical (decode
//     then re-encode reproduces the blob exactly); and
//  2. rejection — any single corrupted byte, any alien key, and any
//     arbitrary byte soup are rejected by revalidation with an error,
//     never a panic and never a silently wrong family.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add([]byte{2, 1, 3, 0, 2, 1, 1, 2, 0, 3}, uint32(0), byte(0x01))
	f.Add([]byte{0}, uint32(7), byte(0xFF))
	f.Add([]byte{8, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, uint32(40), byte(0))
	f.Add([]byte(storeMagic), uint32(3), byte(0x80))
	f.Fuzz(func(t *testing.T, data []byte, corruptAt uint32, mask byte) {
		key := fmt.Sprintf("fuzz:%d:%x", len(data), mask)
		sets := fuzzStoreFamily(data)
		// Any count >= len(sets) is valid; derive one from the fuzz input
		// so the explored field itself gets fuzzed.
		explored := int64(len(sets)) + int64(corruptAt%1024)

		blob := encodeFamily(key, sets, explored)
		decoded, decodedExplored, err := decodeFamily(key, blob)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if len(decoded) != len(sets) {
			t.Fatalf("reload: %d sets, stored %d", len(decoded), len(sets))
		}
		if decodedExplored != explored {
			t.Fatalf("reload: explored %d, stored %d", decodedExplored, explored)
		}
		for i := range sets {
			if decoded[i].Key() != sets[i].Key() {
				t.Fatalf("set %d: reload key %q, stored %q", i, decoded[i].Key(), sets[i].Key())
			}
		}
		if again := encodeFamily(key, decoded, decodedExplored); !bytes.Equal(again, blob) {
			t.Fatal("decode/re-encode is not byte-identical")
		}

		// Any single flipped byte must fail revalidation: the checksum
		// covers everything after itself, and corrupting the checksum
		// or magic is caught directly.
		corrupted := append([]byte(nil), blob...)
		m := mask
		if m == 0 {
			m = 0xFF
		}
		corrupted[int(corruptAt)%len(corrupted)] ^= m
		if _, _, err := decodeFamily(key, corrupted); err == nil {
			t.Fatalf("corrupted byte %d (mask %#x) accepted", int(corruptAt)%len(blob), m)
		}

		// A valid blob under a different key is alien, not reusable.
		if _, _, err := decodeFamily(key+"'", blob); err == nil {
			t.Fatal("blob accepted under an alien key")
		}

		// Arbitrary byte soup must never panic.
		if got, _, err := decodeFamily(key, data); err == nil && len(data) < storeHeaderLen {
			t.Fatalf("undersized blob accepted: %d sets", len(got))
		}
	})
}
