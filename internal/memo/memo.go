// Package memo is the query-plan cache of the admission pipeline: it
// amortizes the combinatorial work a long-lived controller repeats
// while answering a stream of admit/teardown/availability queries over
// a slowly-changing network.
//
// Its centerpiece is the set-family cache: enumerated rate-coupled
// maximal independent-set families keyed by a canonical fingerprint of
// (conflict-model identity, link universe, enumeration limit). Complete
// families are deterministic — byte-identical across worker counts
// (DESIGN.md Sec. 8) — so a cached family is bit-for-bit the family a
// fresh enumeration would produce, and the cache is invisible to every
// result. Three mechanisms keep it cheap and bounded:
//
//   - LRU eviction by retained-set bytes: every entry is charged its
//     approximate retained size and the least recently used families
//     are dropped once the configured budget is exceeded;
//   - singleflight deduplication: concurrent enumerations of the same
//     key collapse into one walk, with the waiters counted as merges;
//   - plain sync/atomic counters (hits, misses, evictions, merges,
//     pivots saved by LP warm-starting, cached bytes) exposed through
//     Stats for the abwd GET /stats surface and the -cachestats flags.
//
// The cache also carries the warm-start counters of the sequential
// admission session (internal/core.Session): the session reports cold
// and warm simplex pivot counts here so one stats surface covers the
// whole amortization layer. Truncated (partial) enumerations are never
// stored: their content depends on scheduling, so caching them would
// break the byte-identity contract.
package memo

import (
	"container/list"
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/obs"
	"abw/internal/topology"
)

// DefaultMaxBytes is the retained-set budget used when New is given a
// non-positive size: 64 MiB, a few thousand mid-size families.
const DefaultMaxBytes = 64 << 20

// Cache is the set-family cache. Create with New; a nil *Cache is valid
// and bypasses caching entirely (every call enumerates fresh), so
// callers can thread an optional cache without branching.
type Cache struct {
	maxBytes int64

	// store, when non-nil, is the on-disk spill (store.go): misses
	// consult it before enumerating, complete families are written
	// behind the query path. Attach with SetStore before first use; a
	// store must back exactly one cache or the disk counters stop
	// reconciling.
	store *Store

	mu       sync.Mutex
	entries  map[string]*list.Element //guards: mu — key -> *entry element
	ll       *list.List               //guards: mu — front = most recently used
	bytes    int64                    //guards: mu — retained bytes
	inflight map[string]*flight       //guards: mu

	// Counters. Every access goes through sync/atomic (the
	// abw/atomicfield lint rule enforces it): Stats() must be callable
	// concurrently with enumerations without taking mu. Exception:
	// evictions only changes under mu (insertLocked), so Stats loads it
	// inside the same critical section as entries/bytes — the three
	// describe one shape and must tear together or not at all.
	lookups        int64
	hits           int64
	misses         int64
	deltaHits      int64
	deltaFallbacks int64
	bypasses       int64
	evictions      int64
	merges         int64
	cancellations  int64
	deltaOff       int32
	coldPivots     int64
	warmPivots     int64
	warmResolves   int64
	pivotsSaved    int64
}

// enumerateFn is the enumeration the cache falls back to on a miss, and
// deltaFn the warm-start walk the delta path tries first. Tests swap
// them to inject errors and to hold flights open deterministically;
// production always points at the real walks.
var (
	enumerateFn = indepset.EnumeratePartialCountedContext
	deltaFn     = indepset.EnumerateDelta
)

// maxDeltaLinks bounds how many links a delta chain may add to a cached
// base family: each added link is one warm-start walk, and past a
// handful of links a fresh enumeration is usually no slower than the
// chain (the l-containing slice of the lattice stops being small).
const maxDeltaLinks = 8

type entry struct {
	key      string
	universe []topology.LinkID // canonical universe the family was enumerated over
	sets     []indepset.Set
	explored int64 // exact exploration count (indepset.DeltaBase.Explored)
	size     int64
}

// flight is one in-progress enumeration other goroutines may join.
type flight struct {
	done      chan struct{}
	sets      []indepset.Set
	truncated bool
	err       error
}

// New returns a cache with the given retained-bytes budget; sizes <= 0
// use DefaultMaxBytes.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		ll:       list.New(),
		inflight: make(map[string]*flight),
	}
}

// SetStore attaches the on-disk spill: misses consult it before
// enumerating and complete families are written behind the query path.
// Attach before the cache is shared between goroutines; a store must
// back exactly one cache. Nil-safe on both sides.
func (c *Cache) SetStore(s *Store) {
	if c == nil {
		return
	}
	c.store = s
}

// DiskStore returns the attached on-disk spill, or nil.
func (c *Cache) DiskStore() *Store {
	if c == nil {
		return nil
	}
	return c.store
}

// FlushStore blocks until every family enqueued for spilling so far is
// on disk (or dropped). No-op without a store; nil-safe.
func (c *Cache) FlushStore() {
	if c == nil {
		return
	}
	c.store.Flush()
}

// Close flushes and releases the attached on-disk store; the in-memory
// cache keeps working (further spills are dropped and counted).
// Nil-safe and idempotent.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	return c.store.Close()
}

// Key derives the canonical cache key for an enumeration of links under
// m with the given options, and reports whether the model supports
// keying at all. The key is insensitive to the order (and duplication)
// of links, embeds the effective enumeration limit, and deliberately
// excludes Workers: complete families are byte-identical at every
// worker count. The second return is false when m does not implement
// conflict.Fingerprinter — such enumerations bypass the cache.
func Key(m conflict.Model, links []topology.LinkID, opts indepset.Options) (string, bool) {
	key, _, _, ok := keyParts(m, links, opts)
	return key, ok
}

// keyParts derives the cache key plus the pieces the delta path indexes
// by: the key's universe-independent prefix (fingerprint and limit — two
// keys share it exactly when they differ only in universe) and the
// canonical universe itself. The prefix ends with the "|u" terminator,
// so a prefix match can never straddle the limit digits.
func keyParts(m conflict.Model, links []topology.LinkID, opts indepset.Options) (key, prefix string, universe []topology.LinkID, ok bool) {
	fp := conflict.FallbackFingerprint(m)
	if fp == "" {
		return "", "", nil, false
	}
	universe = canonicalUniverse(links)
	var b strings.Builder
	b.Grow(len(fp) + 16 + 8*len(universe))
	b.WriteString(fp)
	b.WriteString("|l")
	b.WriteString(strconv.Itoa(opts.EffectiveLimit()))
	b.WriteString("|u")
	prefix = b.String()
	return prefix + universeSuffix(universe), prefix, universe, true
}

// universeSuffix renders the canonical universe as the key's trailing
// ":<link>" segments.
func universeSuffix(universe []topology.LinkID) string {
	var b strings.Builder
	b.Grow(8 * len(universe))
	for _, l := range universe {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(l)))
	}
	return b.String()
}

// canonicalUniverse sorts and deduplicates links, matching the
// canonicalization enumeration itself performs.
func canonicalUniverse(links []topology.LinkID) []topology.LinkID {
	out := make([]topology.LinkID, len(links))
	copy(out, links)
	for i := 1; i < len(out); i++ { // insertion sort: universes are small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	w := 0
	for i, l := range out {
		if i == 0 || l != out[w-1] {
			out[w] = l
			w++
		}
	}
	return out[:w]
}

// Enumerate is indepset.Enumerate through the cache: a complete family
// previously enumerated for the same key is returned without walking.
// The returned slice is a fresh header over shared Set values; callers
// must treat the sets as read-only (they already must — core hands the
// same backing to every Result).
func (c *Cache) Enumerate(m conflict.Model, links []topology.LinkID, opts indepset.Options) ([]indepset.Set, error) {
	return c.EnumerateContext(context.Background(), m, links, opts)
}

// EnumerateContext is Enumerate under a context. Cancelled enumerations
// return an error satisfying errors.Is(err, cancel.ErrCanceled) and are
// never stored — not in memory, not on disk. A waiter merged into
// another goroutine's flight honors its own context: its cancellation
// detaches only that waiter, the leader's walk (and the cached result)
// is unaffected.
func (c *Cache) EnumerateContext(ctx context.Context, m conflict.Model, links []topology.LinkID, opts indepset.Options) ([]indepset.Set, error) {
	sets, truncated, err := c.enumerate(ctx, m, links, opts)
	if err != nil {
		return nil, err
	}
	if truncated {
		return nil, indepset.ErrLimit
	}
	return sets, nil
}

// EnumeratePartial is indepset.EnumeratePartial through the cache.
// Complete cached families satisfy partial lookups too; truncated
// results are handed back but never stored (their content depends on
// scheduling).
func (c *Cache) EnumeratePartial(m conflict.Model, links []topology.LinkID, opts indepset.Options) ([]indepset.Set, bool, error) {
	return c.enumerate(context.Background(), m, links, opts)
}

// EnumeratePartialContext is EnumeratePartial under a context; see
// EnumerateContext for the cancellation contract.
func (c *Cache) EnumeratePartialContext(ctx context.Context, m conflict.Model, links []topology.LinkID, opts indepset.Options) ([]indepset.Set, bool, error) {
	return c.enumerate(ctx, m, links, opts)
}

// enumerate is the one lookup path. Counter identity, asserted by the
// tests on every path including errors and truncation:
//
//	Lookups == Hits + DiskHits + DeltaHits + Misses + Bypasses + SingleflightMerges
//
// Every lookup on a non-nil cache increments Lookups exactly once and
// exactly one of the right-hand counters: a memory hit, a disk hit
// (the leader found the family spilled on disk), a delta hit (the
// leader grew a smaller cached family by warm-start walks instead of
// enumerating from scratch), a miss (the leader really walked —
// successfully or not; this includes delta chains that fell back or
// were cancelled mid-chain), a bypass (unkeyable model), or a merge
// (joined another goroutine's flight, whatever its outcome).
// Cancellations is orthogonal to the identity: it counts every lookup
// that returned a cancel.ErrCanceled error, whichever path it took.
// DeltaFallbacks is likewise a sub-count of Misses: lookups that found
// a delta base but had to fall back to the full walk.
func (c *Cache) enumerate(ctx context.Context, m conflict.Model, links []topology.LinkID, opts indepset.Options) ([]indepset.Set, bool, error) {
	if c == nil {
		sets, truncated, _, err := enumerateFn(ctx, m, links, opts)
		return sets, truncated, err
	}
	// The memo timer measures the lookup itself and tags its outcome;
	// on a miss the leader's walk shows up separately under the
	// enumerate stage, so trace wall times stay attributable. (A delta
	// chain stays inside the memo timer, with its walks additionally
	// recorded under the delta stage.)
	tm := obs.SpanFrom(ctx).StartStage(obs.StageMemo)
	defer tm.End()
	atomic.AddInt64(&c.lookups, 1)
	key, prefix, universe, ok := keyParts(m, links, opts)
	if !ok {
		atomic.AddInt64(&c.bypasses, 1)
		tm.SetOutcome("bypass")
		tm.End() // before the walk: bypass time is the keying attempt, not the DFS
		sets, truncated, _, err := enumerateFn(ctx, m, links, opts)
		return c.countCanceled(sets, truncated, err)
	}

	c.mu.Lock()
	if el, hit := c.entries[key]; hit {
		c.ll.MoveToFront(el)
		sets := el.Value.(*entry).sets
		c.mu.Unlock()
		atomic.AddInt64(&c.hits, 1)
		tm.SetOutcome("hit")
		tm.AddSets(int64(len(sets)))
		return copyFamily(sets), false, nil
	}
	if fl, joined := c.inflight[key]; joined {
		c.mu.Unlock()
		atomic.AddInt64(&c.merges, 1)
		tm.SetOutcome("merge")
		// Honor the waiter's own context: cancellation detaches this
		// waiter without touching the leader's walk or its result. The
		// nil Done channel of an uncancellable context blocks that case
		// forever, leaving the plain fl.done wait.
		select {
		case <-fl.done:
		case <-ctx.Done():
			atomic.AddInt64(&c.cancellations, 1)
			return nil, false, cancel.Cause(ctx)
		}
		return c.countCanceled(copyFlight(fl))
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	// Leader: consult the disk spill before paying for a walk. load is
	// nil-safe and never errors — a bad file degrades to a fresh
	// enumeration with DiskErrors counted (store.go).
	if sets, explored, ok := c.store.load(key); ok {
		fl.sets = sets
		c.mu.Lock()
		delete(c.inflight, key)
		c.insertLocked(key, universe, sets, explored)
		c.mu.Unlock()
		close(fl.done)
		tm.SetOutcome("diskHit")
		tm.AddSets(int64(len(sets)))
		return copyFamily(sets), false, nil
	}

	// Delta path: grow a smaller cached family of the same model and
	// limit link by link instead of enumerating from scratch. Every
	// cached entry is a complete family with an exact exploration count
	// (truncated and cancelled walks are never stored), so any entry is
	// a sound base and the result is byte-identical to a full walk.
	if c.deltaEnabled() {
		sets, explored, derr := c.tryDelta(ctx, m, prefix, universe, opts)
		switch {
		case derr == nil:
			fl.sets = sets
			c.mu.Lock()
			delete(c.inflight, key)
			c.insertLocked(key, universe, sets, explored)
			c.mu.Unlock()
			close(fl.done)
			atomic.AddInt64(&c.deltaHits, 1)
			tm.SetOutcome("delta")
			tm.AddSets(int64(len(sets)))
			c.store.enqueue(key, sets, explored)
			return copyFamily(sets), false, nil
		case errors.Is(derr, cancel.ErrCanceled):
			// Cancelled mid-chain: the lookup ends here, as a cancelled
			// miss — running the full walk against a dead context would
			// only fail the same way.
			atomic.AddInt64(&c.misses, 1)
			tm.SetOutcome("miss")
			fl.err = derr
			c.mu.Lock()
			delete(c.inflight, key)
			c.mu.Unlock()
			close(fl.done)
			return c.countCanceled(nil, false, derr)
		case errors.Is(derr, errNoDeltaBase):
			// Nothing to warm-start from: a plain miss, not a fallback.
		default:
			// A base existed but the chain could not serve it (model
			// without a delta walk, >64 rate classes, a limit the grown
			// universe trips, ...): fall back to the full walk.
			atomic.AddInt64(&c.deltaFallbacks, 1)
		}
	}

	atomic.AddInt64(&c.misses, 1)
	tm.SetOutcome("miss")
	tm.End() // before the walk: the DFS accounts under the enumerate stage
	var explored int64
	fl.sets, fl.truncated, explored, fl.err = enumerateFn(ctx, m, links, opts)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil && !fl.truncated {
		c.insertLocked(key, universe, fl.sets, explored)
	}
	c.mu.Unlock()
	close(fl.done)

	if fl.err == nil && !fl.truncated {
		// Write-behind: spill the family off the query path. Only
		// complete families reach disk, mirroring the memory rule —
		// and in particular a cancelled walk (fl.err != nil) never
		// reaches memory or disk.
		c.store.enqueue(key, fl.sets, explored)
	}

	return c.countCanceled(copyFlight(fl))
}

// errNoDeltaBase reports that the delta path found no cached family to
// warm-start from; the lookup proceeds as a plain miss.
var errNoDeltaBase = errors.New("memo: no delta base cached")

// tryDelta builds the requested family by chaining per-link delta
// enumerations from the closest smaller cached family. nil error means
// the returned family is complete and byte-identical to a full walk,
// with its exact exploration count. Intermediate families grown along
// the chain are inserted memory-only — they are complete families in
// their own right and make likely future growth steps one-link deltas.
func (c *Cache) tryDelta(ctx context.Context, m conflict.Model, prefix string, universe []topology.LinkID, opts indepset.Options) ([]indepset.Set, int64, error) {
	base, found := c.findDeltaBase(prefix, universe)
	if !found {
		return nil, 0, errNoDeltaBase
	}
	dtm := obs.SpanFrom(ctx).StartStage(obs.StageDelta)
	defer dtm.End()
	missing := linksNotIn(universe, base.Universe)
	for i, l := range missing {
		sets, explored, err := deltaFn(ctx, m, base, l, opts)
		if err != nil {
			return nil, 0, err
		}
		grown := insertLink(base.Universe, l)
		base = indepset.DeltaBase{Universe: grown, Sets: sets, Explored: explored}
		if i < len(missing)-1 {
			c.mu.Lock()
			c.insertLocked(prefix+universeSuffix(grown), grown, sets, explored)
			c.mu.Unlock()
		}
	}
	dtm.AddSets(int64(len(base.Sets)))
	return base.Sets, base.Explored, nil
}

// findDeltaBase picks the cached family to warm-start from: same key
// prefix (model fingerprint and limit), universe a strict subset of the
// target missing at most maxDeltaLinks links. Among candidates the
// smallest diff wins (fewest chain steps), ties broken by key so the
// choice is deterministic whatever the LRU order. The linear scan is
// fine where it sits: the lookup already missed memory and disk, so it
// is about to pay for enumeration walks either way.
func (c *Cache) findDeltaBase(prefix string, universe []topology.LinkID) (indepset.DeltaBase, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *entry
	bestDiff := maxDeltaLinks + 1
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if !strings.HasPrefix(e.key, prefix) {
			continue
		}
		diff, sub := universeDiff(e.universe, universe)
		if !sub || diff < 1 || diff > maxDeltaLinks {
			continue
		}
		if diff < bestDiff || (diff == bestDiff && e.key < best.key) {
			best, bestDiff = e, diff
		}
	}
	if best == nil {
		return indepset.DeltaBase{}, false
	}
	// The entry's universe and sets are immutable once cached, so they
	// are safe to use after mu is released.
	return indepset.DeltaBase{Universe: best.universe, Sets: best.sets, Explored: best.explored}, true
}

// universeDiff reports how many links of target are missing from base,
// and whether base is a subset of target. Both must be canonical
// (sorted, deduplicated).
func universeDiff(base, target []topology.LinkID) (int, bool) {
	i, diff := 0, 0
	for _, l := range target {
		if i < len(base) && base[i] == l {
			i++
		} else {
			diff++
		}
	}
	if i != len(base) {
		return 0, false
	}
	return diff, true
}

// linksNotIn returns the links of target missing from base, ascending.
func linksNotIn(target, base []topology.LinkID) []topology.LinkID {
	out := make([]topology.LinkID, 0, len(target)-len(base))
	i := 0
	for _, l := range target {
		if i < len(base) && base[i] == l {
			i++
		} else {
			out = append(out, l)
		}
	}
	return out
}

// insertLink returns a new canonical universe with l inserted.
func insertLink(universe []topology.LinkID, l topology.LinkID) []topology.LinkID {
	out := make([]topology.LinkID, 0, len(universe)+1)
	placed := false
	for _, u := range universe {
		if !placed && l < u {
			out = append(out, l)
			placed = true
		}
		out = append(out, u)
	}
	if !placed {
		out = append(out, l)
	}
	return out
}

// SetDeltaEnabled toggles the delta path (on by default). Off, every
// lookup that misses memory and disk runs a full enumeration — the
// behavior is identical either way (delta results are byte-identical);
// the knob exists for benchmarks and diagnostics that need the two
// regimes separately.
func (c *Cache) SetDeltaEnabled(on bool) {
	if c == nil {
		return
	}
	var v int32
	if !on {
		v = 1
	}
	atomic.StoreInt32(&c.deltaOff, v)
}

func (c *Cache) deltaEnabled() bool {
	return atomic.LoadInt32(&c.deltaOff) == 0
}

// copyFlight extracts a finished flight's outcome, copying the family
// header like every other return path.
func copyFlight(fl *flight) ([]indepset.Set, bool, error) {
	if fl.err != nil {
		return nil, false, fl.err
	}
	return copyFamily(fl.sets), fl.truncated, nil
}

// countCanceled bumps the cancellations counter when the outcome it
// passes through is a cancellation.
func (c *Cache) countCanceled(sets []indepset.Set, truncated bool, err error) ([]indepset.Set, bool, error) {
	if err != nil && errors.Is(err, cancel.ErrCanceled) {
		atomic.AddInt64(&c.cancellations, 1)
	}
	return sets, truncated, err
}

// insertLocked stores a complete family and evicts LRU entries until
// the byte budget holds again. An entry larger than the whole budget is
// inserted and immediately evicted, so it never displaces useful state
// for long. A key already present is only refreshed (delta chains can
// insert an intermediate universe another lookup cached concurrently).
// Caller holds mu.
func (c *Cache) insertLocked(key string, universe []topology.LinkID, sets []indepset.Set, explored int64) {
	if el, dup := c.entries[key]; dup {
		c.ll.MoveToFront(el)
		return
	}
	e := &entry{
		key:      key,
		universe: universe,
		sets:     sets,
		explored: explored,
		size:     familyBytes(key, sets) + int64(8*len(universe)),
	}
	c.entries[key] = c.ll.PushFront(e)
	c.bytes += e.size
	for c.bytes > c.maxBytes && c.ll.Len() > 0 {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, ev.key)
		c.bytes -= ev.size
		atomic.AddInt64(&c.evictions, 1)
	}
}

// familyBytes approximates the retained size of a cached family: the
// key, each set's couples and cached key string, and fixed per-set
// overhead for the Set header and bookkeeping.
func familyBytes(key string, sets []indepset.Set) int64 {
	const (
		coupleBytes   = 16 // LinkID + Rate
		setOverhead   = 48 // Set header + slice header + key header
		entryOverhead = 96 // entry struct + list element + map slot
	)
	n := int64(entryOverhead + len(key))
	for i := range sets {
		n += setOverhead + int64(len(sets[i].Couples))*coupleBytes + int64(len(sets[i].Key()))
	}
	return n
}

// copyFamily returns a fresh slice header over the shared Set values,
// so callers appending to or re-sorting the family cannot corrupt the
// cached copy.
func copyFamily(sets []indepset.Set) []indepset.Set {
	out := make([]indepset.Set, len(sets))
	copy(out, sets)
	return out
}

// AddSolvePivots accounts one LP solve of the warm-start layer: a cold
// (from-scratch) solve contributes its pivot count to ColdPivots; a
// warm re-solve contributes to WarmPivots and WarmResolves, plus the
// estimated pivots it saved versus the last cold solve of the same
// problem shape. A nil cache ignores the report.
func (c *Cache) AddSolvePivots(warm bool, pivots, saved int) {
	if c == nil {
		return
	}
	if warm {
		atomic.AddInt64(&c.warmPivots, int64(pivots))
		atomic.AddInt64(&c.warmResolves, 1)
		if saved > 0 {
			atomic.AddInt64(&c.pivotsSaved, int64(saved))
		}
	} else {
		atomic.AddInt64(&c.coldPivots, int64(pivots))
	}
}

// Stats is a point-in-time snapshot of the cache counters, shaped for
// the abwd GET /stats endpoint and the -cachestats CLI flags.
type Stats struct {
	// Lookups counts every cache lookup. The counters below reconcile
	// exactly on every path, including errors and truncation:
	// Lookups == Hits + DiskHits + DeltaHits + Misses + Bypasses + SingleflightMerges.
	Lookups int64 `json:"lookups"`
	// Hits counts lookups answered from a family retained in memory.
	Hits int64 `json:"hits"`
	// Misses counts enumerations this cache had to run.
	Misses int64 `json:"misses"`
	// DeltaHits counts lookups answered by delta enumeration: a smaller
	// cached family of the same model and limit was grown link by link
	// (indepset.EnumerateDelta) into the requested one, byte-identical
	// to a full walk.
	DeltaHits int64 `json:"deltaHits"`
	// DeltaFallbacks counts lookups that found a delta base but had to
	// fall back to the full walk (unsupported model or universe shape,
	// or a tripped limit). A sub-count of Misses, outside the identity.
	DeltaFallbacks int64 `json:"deltaFallbacks"`
	// Bypasses counts enumerations of models with no fingerprint.
	Bypasses int64 `json:"bypasses"`
	// Evictions counts families dropped by the LRU byte budget.
	Evictions int64 `json:"evictions"`
	// SingleflightMerges counts concurrent duplicate enumerations that
	// joined another goroutine's walk instead of running their own.
	SingleflightMerges int64 `json:"singleflightMerges"`
	// Cancellations counts lookups abandoned by context cancellation —
	// a cancelled leader walk, a cancelled waiter detaching from a
	// flight, or a cancelled bypass enumeration. Orthogonal to the
	// Lookups identity above (a cancelled lookup still counted as a
	// miss, merge, or bypass); cancelled results are never stored.
	Cancellations int64 `json:"cancellations"`
	// Entries and Bytes describe the currently retained families.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the configured retention budget.
	MaxBytes int64 `json:"maxBytes"`
	// DiskHits/DiskMisses count lookups the on-disk store answered or
	// could not answer; DiskErrors counts store IO failures of every
	// kind (corrupt/stale/alien files, failed or dropped writes) — all
	// degraded to fresh enumeration, none surfaced to a query.
	// DiskBytes is the bytes currently spilled. All zero without a
	// store.
	DiskHits   int64 `json:"diskHits"`
	DiskMisses int64 `json:"diskMisses"`
	DiskErrors int64 `json:"diskErrors"`
	DiskBytes  int64 `json:"diskBytes"`
	// ColdPivots and WarmPivots count simplex pivots spent by cold
	// solves and warm re-solves in the LP warm-start layer;
	// WarmResolves counts the re-solves. PivotsSaved estimates pivots
	// avoided: for each warm re-solve, the last cold solve's pivot
	// count for the same problem shape minus the warm pivot count.
	ColdPivots   int64 `json:"coldPivots"`
	WarmPivots   int64 `json:"warmPivots"`
	WarmResolves int64 `json:"warmResolves"`
	PivotsSaved  int64 `json:"pivotsSaved"`
}

// Stats returns a snapshot of the counters. Safe to call concurrently
// with enumerations; a nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	// All cache-shape fields — entries, their bytes, and the evictions
	// that shaped them (evictions only changes under mu) — are read in
	// ONE critical section: a poll racing an insert must never see the
	// new entry counted without its bytes, or an eviction without its
	// byte decrement.
	c.mu.Lock()
	entries := len(c.entries)
	bytes := c.bytes
	evictions := atomic.LoadInt64(&c.evictions)
	c.mu.Unlock()
	diskHits, diskMisses, diskErrors, diskBytes := c.store.statsSnapshot()
	return Stats{
		Lookups:            atomic.LoadInt64(&c.lookups),
		Hits:               atomic.LoadInt64(&c.hits),
		Misses:             atomic.LoadInt64(&c.misses),
		DeltaHits:          atomic.LoadInt64(&c.deltaHits),
		DeltaFallbacks:     atomic.LoadInt64(&c.deltaFallbacks),
		Bypasses:           atomic.LoadInt64(&c.bypasses),
		Evictions:          evictions,
		SingleflightMerges: atomic.LoadInt64(&c.merges),
		Cancellations:      atomic.LoadInt64(&c.cancellations),
		Entries:            entries,
		Bytes:              bytes,
		MaxBytes:           c.maxBytes,
		DiskHits:           diskHits,
		DiskMisses:         diskMisses,
		DiskErrors:         diskErrors,
		DiskBytes:          diskBytes,
		ColdPivots:         atomic.LoadInt64(&c.coldPivots),
		WarmPivots:         atomic.LoadInt64(&c.warmPivots),
		WarmResolves:       atomic.LoadInt64(&c.warmResolves),
		PivotsSaved:        atomic.LoadInt64(&c.pivotsSaved),
	}
}
