package memo

import (
	"testing"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/topology"
)

// FuzzCacheKey decodes a rate-table conflict model from raw bytes and
// asserts the two properties DESIGN.md Sec. 10 pins on the cache key:
//
//  1. order-insensitivity — the key does not depend on the order the
//     table was declared in, nor on the order (or duplication) of the
//     universe slice; and
//  2. injectivity on perturbations — flipping any single declared rate
//     or conflict pair, or dropping a universe link, changes the key.
//
// Together these are exactly "equal inputs share an entry, different
// inputs never do" exercised over machine-generated tables rather than
// the handful of hand-built ones in the property tests.
func FuzzCacheKey(f *testing.F) {
	f.Add([]byte{3, 0b011, 0b101, 0b110, 1, 0x12, 2, 0x23})
	f.Add([]byte{2, 0b001, 0b111, 0, 0x01})
	f.Add([]byte{5, 1, 2, 3, 4, 5, 6, 0x12, 0x34, 0x15, 0x25, 0x13, 0x24})
	f.Add([]byte{1, 0b111, 0})
	f.Add([]byte{4, 0b1111, 0b1111, 0b1111, 0b1111, 3, 0x12, 0x21, 0x34})
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, ok := decodeTableSpec(data)
		if !ok {
			return
		}
		opts := indepset.Options{}
		base := spec.build(false)
		keyBase, okKey := Key(base, spec.universe(), opts)
		if !okKey {
			t.Fatal("table model must be fingerprintable")
		}

		// 1a. Declaration order must not matter.
		if k, _ := Key(spec.build(true), spec.universe(), opts); k != keyBase {
			t.Fatalf("key depends on declaration order: %q vs %q", k, keyBase)
		}
		// 1b. Universe order and duplication must not matter.
		uni := spec.universe()
		rev := make([]topology.LinkID, len(uni))
		for i, l := range uni {
			rev[len(uni)-1-i] = l
		}
		dup := append(append([]topology.LinkID{}, rev...), uni...)
		if k, _ := Key(base, dup, opts); k != keyBase {
			t.Fatalf("key depends on universe order: %q vs %q", k, keyBase)
		}

		// 2a. Flipping one rate must change the key.
		if mut, changed := spec.mutateRate(); changed {
			if k, _ := Key(mut.build(false), mut.universe(), opts); k == keyBase {
				t.Fatal("rate flip did not change the key")
			}
		}
		// 2b. Flipping one conflict pair must change the key.
		if mut, changed := spec.mutateConflict(); changed {
			if k, _ := Key(mut.build(false), mut.universe(), opts); k == keyBase {
				t.Fatal("conflict flip did not change the key")
			}
		}
		// 2c. Shrinking the universe must change the key.
		if len(uni) > 1 {
			if k, _ := Key(base, uni[:len(uni)-1], opts); k == keyBase {
				t.Fatal("dropped universe link did not change the key")
			}
		}
		// 2d. A different enumeration limit must change the key.
		if k, _ := Key(base, uni, indepset.Options{Limit: 3}); k == keyBase {
			t.Fatal("enumeration limit not part of the key")
		}
	})
}

// fuzzRates is the rate alphabet fuzz tables draw from; bit i of a
// link's rate mask enables fuzzRates[i].
var fuzzRates = []radio.Rate{54, 36, 18, 6}

// tableSpec is a decoded, canonicalized description of a Table model:
// per-link rate masks plus undirected all-rates conflict pairs.
type tableSpec struct {
	masks []byte   // masks[i] is the rate mask of link i+1, low 4 bits
	pairs [][2]int // 1-based link index pairs, a < b
}

// decodeTableSpec parses up to 6 links and their pairwise conflicts
// from the payload. Returns ok=false when the payload cannot name at
// least one link with at least one rate.
func decodeTableSpec(data []byte) (tableSpec, bool) {
	if len(data) < 2 {
		return tableSpec{}, false
	}
	n := 1 + int(data[0])%6
	if len(data) < 1+n {
		return tableSpec{}, false
	}
	var s tableSpec
	for i := 0; i < n; i++ {
		m := data[1+i] & 0x0f
		if m == 0 {
			m = 1
		}
		s.masks = append(s.masks, m)
	}
	seen := map[[2]int]bool{}
	for _, b := range data[1+n:] {
		a, c := 1+int(b>>4)%n, 1+int(b)%n
		if a == c {
			continue
		}
		if a > c {
			a, c = c, a
		}
		p := [2]int{a, c}
		if !seen[p] {
			seen[p] = true
			s.pairs = append(s.pairs, p)
		}
	}
	return s, true
}

func (s tableSpec) universe() []topology.LinkID {
	out := make([]topology.LinkID, len(s.masks))
	for i := range s.masks {
		out[i] = topology.LinkID(i + 1)
	}
	return out
}

func (s tableSpec) rates(i int) []radio.Rate {
	var rs []radio.Rate
	for bit, r := range fuzzRates {
		if s.masks[i]&(1<<bit) != 0 {
			rs = append(rs, r)
		}
	}
	return rs
}

// build materializes the spec as a Table; reversed declares links and
// conflicts in the opposite order to probe order-insensitivity.
func (s tableSpec) build(reversed bool) *conflict.Table {
	tab := conflict.NewTable()
	n := len(s.masks)
	for i := 0; i < n; i++ {
		idx := i
		if reversed {
			idx = n - 1 - i
		}
		tab.SetRates(topology.LinkID(idx+1), s.rates(idx)...)
	}
	for i := range s.pairs {
		idx := i
		if reversed {
			idx = len(s.pairs) - 1 - i
		}
		p := s.pairs[idx]
		a, b := topology.LinkID(p[0]), topology.LinkID(p[1])
		if reversed {
			a, b = b, a
		}
		if err := tab.AddConflictAllRates(a, b); err != nil {
			panic(err) // both links are declared above
		}
	}
	return tab
}

// mutateRate flips the lowest absent rate bit of the first link that
// has one; changed=false when every link already supports all rates.
func (s tableSpec) mutateRate() (tableSpec, bool) {
	out := s.clone()
	for i, m := range out.masks {
		for bit := 0; bit < len(fuzzRates); bit++ {
			if m&(1<<bit) == 0 {
				out.masks[i] = m | 1<<bit
				return out, true
			}
		}
	}
	return out, false
}

// mutateConflict toggles one pair: removes the first declared pair, or
// adds (1,2) when none are declared and at least two links exist.
func (s tableSpec) mutateConflict() (tableSpec, bool) {
	out := s.clone()
	if len(out.pairs) > 0 {
		out.pairs = out.pairs[1:]
		return out, true
	}
	if len(out.masks) >= 2 {
		out.pairs = append(out.pairs, [2]int{1, 2})
		return out, true
	}
	return out, false
}

func (s tableSpec) clone() tableSpec {
	out := tableSpec{masks: append([]byte{}, s.masks...)}
	out.pairs = append([][2]int{}, s.pairs...)
	return out
}
