package memo

import (
	"sync"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/topology"
)

func testNetwork(t *testing.T, n int, seed int64) *topology.Network {
	t.Helper()
	net, err := topology.Random(radio.NewProfile80211a(), geom.Rect{W: 400, H: 400}, n, seed)
	if err != nil {
		t.Fatalf("building network: %v", err)
	}
	return net
}

func allLinks(net *topology.Network) []topology.LinkID {
	out := make([]topology.LinkID, 0, net.NumLinks())
	for _, l := range net.Links() {
		out = append(out, l.ID)
	}
	return out
}

func TestHitMissAndIdentity(t *testing.T) {
	net := testNetwork(t, 7, 3)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	c := New(0)

	fresh, err := indepset.Enumerate(m, links, indepset.Options{})
	if err != nil {
		t.Fatalf("fresh enumerate: %v", err)
	}
	first, err := c.Enumerate(m, links, indepset.Options{})
	if err != nil {
		t.Fatalf("cache enumerate (miss): %v", err)
	}
	second, err := c.Enumerate(m, links, indepset.Options{})
	if err != nil {
		t.Fatalf("cache enumerate (hit): %v", err)
	}
	assertFamiliesEqual(t, fresh, first, "miss vs fresh")
	assertFamiliesEqual(t, fresh, second, "hit vs fresh")

	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("got hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("got entries=%d bytes=%d, want one charged entry", st.Entries, st.Bytes)
	}
}

func TestOrderInsensitiveKeyAndLookup(t *testing.T) {
	net := testNetwork(t, 6, 5)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	if len(links) < 2 {
		t.Skip("degenerate topology")
	}
	reversed := make([]topology.LinkID, len(links))
	for i, l := range links {
		reversed[len(links)-1-i] = l
	}
	duplicated := append(append([]topology.LinkID{}, links...), links[0], links[1])

	k1, ok1 := Key(m, links, indepset.Options{})
	k2, ok2 := Key(m, reversed, indepset.Options{})
	k3, ok3 := Key(m, duplicated, indepset.Options{})
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("physical model should be fingerprintable")
	}
	if k1 != k2 || k1 != k3 {
		t.Fatalf("key not canonical: %q vs %q vs %q", k1, k2, k3)
	}

	c := New(0)
	if _, err := c.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Enumerate(m, reversed, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("reversed universe should hit: hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestLimitInKey(t *testing.T) {
	net := testNetwork(t, 6, 7)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	kDefault, _ := Key(m, links, indepset.Options{})
	kSmall, _ := Key(m, links, indepset.Options{Limit: 8})
	if kDefault == kSmall {
		t.Fatal("different limits must not share a key")
	}
	kWorkers, _ := Key(m, links, indepset.Options{Workers: 4})
	if kDefault != kWorkers {
		t.Fatal("worker count must not affect the key (families are byte-identical)")
	}
}

func TestTruncatedNeverStored(t *testing.T) {
	net := testNetwork(t, 8, 11)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	c := New(0)
	opts := indepset.Options{Limit: 2, Workers: 1}
	_, truncated, err := c.EnumeratePartial(m, links, opts)
	if err != nil {
		t.Fatalf("partial: %v", err)
	}
	if !truncated {
		t.Skip("limit did not trip on this topology")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("truncated family was stored: %d entries", st.Entries)
	}
	if _, err := c.Enumerate(m, links, opts); err == nil {
		t.Fatal("Enumerate through cache should report the limit error")
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	net := testNetwork(t, 7, 13)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	if len(links) < 4 {
		t.Skip("degenerate topology")
	}
	// A budget only big enough for roughly one family forces eviction.
	probe := New(0)
	if _, err := probe.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	budget := probe.Stats().Bytes + probe.Stats().Bytes/2
	c := New(budget)
	if _, err := c.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Enumerate(m, links[:len(links)-2], indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under a %d-byte budget, stats %+v", budget, st)
	}
	if st.Bytes > budget {
		t.Fatalf("retained %d bytes over the %d budget", st.Bytes, budget)
	}
	// The most recent family must have survived and hit.
	before := c.Stats().Hits
	if _, err := c.Enumerate(m, links[:len(links)-2], indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != before+1 {
		t.Fatal("most recently used family should have survived eviction")
	}
}

func TestSingleflightMerges(t *testing.T) {
	net := testNetwork(t, 9, 17)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	c := New(0)

	const goroutines = 8
	var wg sync.WaitGroup
	results := make([][]indepset.Set, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = c.Enumerate(m, links, indepset.Options{Workers: 1})
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		assertFamiliesEqual(t, results[0], results[i], "concurrent result")
	}
	st := c.Stats()
	// Every goroutine either performed the walk, merged into it, or hit
	// the stored entry afterwards — but the walk ran at most... exactly
	// once for hits+merges+misses == goroutines.
	if st.Misses+st.Hits+st.SingleflightMerges != goroutines {
		t.Fatalf("accounting mismatch: %+v", st)
	}
	if st.Misses != 1 {
		t.Fatalf("expected exactly one real walk, got %d (stats %+v)", st.Misses, st)
	}
}

func TestNilCacheBypasses(t *testing.T) {
	net := testNetwork(t, 5, 19)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	var c *Cache
	fresh, err := indepset.Enumerate(m, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(m, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, fresh, got, "nil cache")
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats should be zero, got %+v", st)
	}
	c.AddSolvePivots(true, 3, 2) // must not panic
}

// unkeyedModel wraps a model, hiding its Fingerprinter implementation.
type unkeyedModel struct{ conflict.Model }

func TestUnfingerprintableModelBypasses(t *testing.T) {
	net := testNetwork(t, 5, 23)
	m := unkeyedModel{conflict.NewPhysical(net)}
	links := allLinks(net)
	c := New(0)
	fresh, err := indepset.Enumerate(m, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(m, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, fresh, got, "bypass")
	st := c.Stats()
	if st.Bypasses != 1 || st.Entries != 0 {
		t.Fatalf("expected one bypass and no entries, got %+v", st)
	}
}

func TestSolvePivotCounters(t *testing.T) {
	c := New(0)
	c.AddSolvePivots(false, 10, 0)
	c.AddSolvePivots(true, 2, 8)
	c.AddSolvePivots(true, 3, -1) // negative savings are clamped out
	st := c.Stats()
	if st.ColdPivots != 10 || st.WarmPivots != 5 || st.WarmResolves != 2 || st.PivotsSaved != 8 {
		t.Fatalf("pivot counters wrong: %+v", st)
	}
}

// assertFamiliesEqual requires byte-for-byte identical families: same
// length, same order, same couples, same keys.
func assertFamiliesEqual(t *testing.T, want, got []indepset.Set, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: family size %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			t.Fatalf("%s: set %d key %q != %q", label, i, got[i].Key(), want[i].Key())
		}
		if len(want[i].Couples) != len(got[i].Couples) {
			t.Fatalf("%s: set %d couple count differs", label, i)
		}
		for j := range want[i].Couples {
			if want[i].Couples[j] != got[i].Couples[j] {
				t.Fatalf("%s: set %d couple %d %v != %v",
					label, i, j, got[i].Couples[j], want[i].Couples[j])
			}
		}
	}
}
