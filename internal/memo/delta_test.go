package memo

import (
	"context"
	"errors"
	"testing"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/topology"
)

// swapDelta installs fn as the cache's delta walk for the test.
func swapDelta(t *testing.T, fn func(context.Context, conflict.Model, indepset.DeltaBase, topology.LinkID, indepset.Options) ([]indepset.Set, int64, error)) {
	t.Helper()
	orig := deltaFn
	deltaFn = fn
	t.Cleanup(func() { deltaFn = orig })
}

// deltaTopology returns a physical model and at least five links, the
// smallest universe the growth tests below need.
func deltaTopology(t *testing.T) (conflict.Model, []topology.LinkID) {
	t.Helper()
	net := testNetwork(t, 8, 3)
	links := allLinks(net)
	if len(links) < 5 {
		t.Skip("degenerate topology")
	}
	return conflict.NewPhysical(net), links
}

// TestDeltaHitOnUniverseGrowth is the tentpole acceptance at the cache
// layer: looking up a universe one link larger than a cached one is
// answered by the delta path — counted as a DeltaHit, not a Miss — and
// the served family is byte-identical to a fresh full enumeration.
func TestDeltaHitOnUniverseGrowth(t *testing.T) {
	m, links := deltaTopology(t)
	small, big := links[:len(links)-1], links

	fresh, err := indepset.Enumerate(m, big, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}

	c := New(0)
	if _, err := c.Enumerate(m, small, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(m, big, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, fresh, got, "delta growth")

	st := c.Stats()
	if st.DeltaHits != 1 || st.Misses != 1 || st.Hits != 0 || st.DeltaFallbacks != 0 {
		t.Fatalf("growth lookup not a delta hit: %+v", st)
	}
	assertIdentity(t, st, "delta growth")

	// The grown family is now a first-class cached entry: the same
	// lookup again is a plain memory hit.
	if _, err := c.Enumerate(m, big, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.DeltaHits != 1 {
		t.Fatalf("delta result not retained for hits: %+v", st)
	}
}

// TestDeltaChainInsertsIntermediates grows by three links in one
// lookup: still one DeltaHit, and the intermediate universes along the
// chain are cached too (memory-only), so future growth steps are
// one-link deltas.
func TestDeltaChainInsertsIntermediates(t *testing.T) {
	m, links := deltaTopology(t)
	small, big := links[:len(links)-3], links

	fresh, err := indepset.Enumerate(m, big, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}

	c := New(0)
	if _, err := c.Enumerate(m, small, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(m, big, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, fresh, got, "three-link chain")
	st := c.Stats()
	if st.DeltaHits != 1 || st.Misses != 1 {
		t.Fatalf("chain accounting: %+v", st)
	}
	// base + two intermediates + target.
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want 4 (base, two intermediates, target)", st.Entries)
	}
	// An intermediate universe is a complete cached family: looking it
	// up is a plain hit, no walk.
	failEnumerate(t)
	if _, err := c.Enumerate(m, links[:len(links)-2], indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("intermediate universe lookup not a hit: %+v", st)
	}
	assertIdentity(t, c.Stats(), "three-link chain")
}

// TestDeltaDisabledFallsBackToFullWalk pins the SetDeltaEnabled knob:
// with the path off, the same growth lookup is a plain miss with
// byte-identical results.
func TestDeltaDisabledFallsBackToFullWalk(t *testing.T) {
	m, links := deltaTopology(t)
	small, big := links[:len(links)-1], links

	fresh, err := indepset.Enumerate(m, big, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(0)
	c.SetDeltaEnabled(false)
	if _, err := c.Enumerate(m, small, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(m, big, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, fresh, got, "delta off")
	st := c.Stats()
	if st.DeltaHits != 0 || st.DeltaFallbacks != 0 || st.Misses != 2 {
		t.Fatalf("delta-off growth lookup: %+v", st)
	}
	assertIdentity(t, st, "delta off")
}

// TestDeltaShrinkIsNotABase pins the subset direction: a cached
// SUPERSET universe cannot serve a smaller lookup (dropping a link can
// unlock sets the bigger family suppressed), so shrinking is a plain
// miss, never a delta hit or fallback.
func TestDeltaShrinkIsNotABase(t *testing.T) {
	m, links := deltaTopology(t)
	c := New(0)
	if _, err := c.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	fresh, err := indepset.Enumerate(m, links[:len(links)-1], indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(m, links[:len(links)-1], indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, fresh, got, "shrink")
	st := c.Stats()
	if st.DeltaHits != 0 || st.DeltaFallbacks != 0 || st.Misses != 2 {
		t.Fatalf("shrink lookup must be a plain miss: %+v", st)
	}
	assertIdentity(t, st, "shrink")
}

// TestDeltaFallbackCounted injects an unsupported-model verdict from
// the delta walk: the lookup found a base but falls back to the full
// walk, counted as DeltaFallbacks + a Miss, with the result unharmed.
func TestDeltaFallbackCounted(t *testing.T) {
	m, links := deltaTopology(t)
	small, big := links[:len(links)-1], links

	fresh, err := indepset.Enumerate(m, big, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(0)
	if _, err := c.Enumerate(m, small, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	swapDelta(t, func(context.Context, conflict.Model, indepset.DeltaBase, topology.LinkID, indepset.Options) ([]indepset.Set, int64, error) {
		return nil, 0, indepset.ErrDeltaUnsupported
	})
	got, err := c.Enumerate(m, big, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, fresh, got, "fallback")
	st := c.Stats()
	if st.DeltaFallbacks != 1 || st.DeltaHits != 0 || st.Misses != 2 {
		t.Fatalf("fallback accounting: %+v", st)
	}
	assertIdentity(t, st, "fallback")
}

// TestDeltaNeverSeededFromTruncation pins the never-on-truncated rule
// from the other side: truncated families are not stored, so a
// truncated walk of a smaller universe leaves nothing for the delta
// path to warm-start from — the grown lookup is a plain miss with zero
// delta counters.
func TestDeltaNeverSeededFromTruncation(t *testing.T) {
	m, links := deltaTopology(t)
	small, big := links[:len(links)-1], links
	opts := indepset.Options{Limit: 2, Workers: 1}

	c := New(0)
	if _, truncated, err := c.EnumeratePartial(m, small, opts); err != nil {
		t.Fatal(err)
	} else if !truncated {
		t.Skip("limit did not trip on this topology")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("truncated family stored: %+v", st)
	}
	if _, _, err := c.EnumeratePartial(m, big, opts); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DeltaHits != 0 || st.DeltaFallbacks != 0 || st.Misses != 2 {
		t.Fatalf("truncated base must not seed delta: %+v", st)
	}
	assertIdentity(t, st, "truncated seed")
}

// TestDeltaCancelledMidChainCountsMiss pins the cancellation contract
// of the delta path: a context that fires during the chain surfaces
// ErrCanceled, counts as a miss plus a cancellation (never a fallback),
// and stores nothing for the target universe.
func TestDeltaCancelledMidChainCountsMiss(t *testing.T) {
	m, links := deltaTopology(t)
	small, big := links[:len(links)-1], links

	c := New(0)
	if _, err := c.Enumerate(m, small, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	entriesBefore := c.Stats().Entries
	ctx, cancelCtx := context.WithCancel(context.Background())
	cancelCtx()
	if _, err := c.EnumerateContext(ctx, m, big, indepset.Options{}); !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("cancelled delta chain: err = %v, want ErrCanceled", err)
	}
	st := c.Stats()
	if st.Misses != 2 || st.Cancellations != 1 || st.DeltaFallbacks != 0 || st.DeltaHits != 0 {
		t.Fatalf("cancelled chain accounting: %+v", st)
	}
	if st.Entries != entriesBefore {
		t.Fatalf("cancelled chain stored an entry: %+v", st)
	}
	assertIdentity(t, st, "cancelled chain")

	// The cancel poisoned nothing: a live retry is served by delta.
	if _, err := c.Enumerate(m, big, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DeltaHits != 1 {
		t.Fatalf("retry after cancel not a delta hit: %+v", st)
	}
}

// TestDeltaResultSpillsToDisk closes the loop with the store: a family
// served by delta is written behind the query like any other complete
// family, so a restarted process disk-hits it with zero enumeration.
func TestDeltaResultSpillsToDisk(t *testing.T) {
	m, links := deltaTopology(t)
	small, big := links[:len(links)-1], links
	dir := t.TempDir()

	fresh, err := indepset.Enumerate(m, big, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c1 := New(0)
	c1.SetStore(openTestStore(t, dir, 0))
	if _, err := c1.Enumerate(m, small, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Enumerate(m, big, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.DeltaHits != 1 {
		t.Fatalf("second lookup not a delta hit: %+v", st)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	failEnumerate(t)
	c2 := New(0)
	c2.SetStore(openTestStore(t, dir, 0))
	got, err := c2.Enumerate(m, big, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, fresh, got, "delta spill restart")
	if st := c2.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("restart should disk-hit the delta-served family: %+v", st)
	}
}

// TestDeltaBaseTooFarAway pins the maxDeltaLinks bound: a cached base
// missing more links than the chain budget is not a base at all, so the
// lookup is a plain miss (no fallback counted).
func TestDeltaBaseTooFarAway(t *testing.T) {
	m, links := deltaTopology(t)
	if len(links) < maxDeltaLinks+2 {
		t.Skipf("need %d links, have %d", maxDeltaLinks+2, len(links))
	}
	small, big := links[:1], links[:maxDeltaLinks+2]

	c := New(0)
	if _, err := c.Enumerate(m, small, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Enumerate(m, big, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DeltaHits != 0 || st.DeltaFallbacks != 0 || st.Misses != 2 {
		t.Fatalf("distant base must not warm-start: %+v", st)
	}
	assertIdentity(t, st, "distant base")
}
