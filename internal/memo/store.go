// The on-disk set-family store: a crash-safe spill of the memo cache
// that lets a restarted process warm up instantly on an unchanged
// network. The content-fingerprint keys (Key) are position-independent
// — they hash model semantics, not pointers — so a family written by
// one process is valid input for any later one, as long as the bytes
// can be proven untouched. Everything here is built around that proof:
//
//   - every family lives in its own file named by the sha256 of its
//     cache key, written via temp file + fsync + atomic rename so a
//     crash leaves either the old content or the new, never a tear;
//   - each file carries a header (format magic + version, the full
//     cache key, a sha256 over the remainder) and a reload revalidates
//     all three before trusting a byte: wrong version (stale), wrong
//     key (alien), wrong checksum or malformed payload (corrupt) are
//     skipped AND deleted, never fatal;
//   - the store is strictly fallible: any IO error on the query path
//     degrades to a fresh enumeration and a DiskErrors increment —
//     Load and the write-behind never surface an error to a query;
//   - writes happen behind the query path on a dedicated goroutine
//     (enqueue is non-blocking; a full queue drops the write and
//     counts it), and an LRU-style byte budget prunes the oldest
//     files, so the directory never grows without bound.
//
// Recency: in memory the store keeps a true LRU list. On disk,
// ordering persists via file mtimes — writes get their natural
// filesystem timestamp, and a load bumps the hit file just past the
// newest known mtime (derived from observed stamps, not the Go clock,
// which DESIGN.md Sec. 8 invariant 8 keeps out of result-producing
// packages). After a restart the scan rebuilds the LRU order from
// those mtimes.
package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/topology"
)

// DefaultStoreMaxBytes is the on-disk budget used when OpenStore is
// given a non-positive size: 256 MiB, a few times the in-memory
// default so evicted families usually remain reloadable.
const DefaultStoreMaxBytes = 256 << 20

// storeMagic identifies a store file and pins the format version; a
// version bump changes the last byte, making every older file stale.
// Version 2 added the exploration count (the delta path's accounting
// seed) to the payload; v1 files are deleted as stale on load.
const storeMagic = "ABWFAM\x00\x02"

// storeExt is the extension of family files; anything in the cache
// directory not shaped like <64 hex>.fam is ignored entirely (the
// store never deletes files it did not name).
const storeExt = ".fam"

// storeHeaderLen is magic + payload checksum + key length.
const storeHeaderLen = len(storeMagic) + sha256.Size + 4

// writeQueueDepth bounds the write-behind queue; stores beyond it are
// dropped (and counted as disk errors) rather than blocking a query.
const writeQueueDepth = 128

// Store is the on-disk spill. Create with OpenStore and attach to one
// Cache with Cache.SetStore; a nil *Store is valid everywhere and does
// nothing. Every method is safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex
	files    map[string]*storeFile //guards: mu — filename -> metadata
	order    []*storeFile          //guards: mu — LRU: oldest first, newest last
	bytes    int64                 //guards: mu — total file bytes
	maxMtime time.Time             //guards: mu — newest stamp observed; recency bumps go just past it

	qmu    sync.Mutex
	closed bool //guards: qmu
	queue  chan storeReq
	idle   chan struct{} // closed when the writer goroutine exits

	// Counters, sync/atomic like the Cache's (abw/atomicfield).
	hits   int64
	misses int64
	errors int64
	prunes int64
}

type storeFile struct {
	name  string
	size  int64
	mtime time.Time
}

// storeReq is one write-behind item; a nil sets slice with a non-nil
// flush channel is a barrier the writer closes when reached.
type storeReq struct {
	key      string
	sets     []indepset.Set
	explored int64
	flush    chan struct{}
}

// OpenStore opens (creating if necessary) the cache directory and
// indexes the family files already present, pruning immediately if
// they exceed maxBytes (<= 0 picks DefaultStoreMaxBytes). Files that
// are not store files are left untouched. The returned store owns a
// background writer goroutine; Close releases it.
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("memo: empty cache directory")
	}
	if maxBytes <= 0 {
		maxBytes = DefaultStoreMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: opening cache directory: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		files:    make(map[string]*storeFile),
		queue:    make(chan storeReq, writeQueueDepth),
		idle:     make(chan struct{}),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	go s.writer()
	return s, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// scan indexes existing family files, restoring LRU order from mtimes
// (ties broken by name so the order is deterministic), and enforces
// the byte budget on what it finds.
func (s *Store) scan() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("memo: scanning cache directory: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if e.IsDir() || !isStoreName(e.Name()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			// Raced with a concurrent deletion; skip.
			continue
		}
		f := &storeFile{name: e.Name(), size: info.Size(), mtime: info.ModTime()}
		s.files[f.name] = f
		s.order = append(s.order, f)
		s.bytes += f.size
		if f.mtime.After(s.maxMtime) {
			s.maxMtime = f.mtime
		}
	}
	// Sort through a local so the closure (which the lockguard dataflow
	// treats as escaping mu's critical section) never touches the
	// guarded field; it shares s.order's backing array.
	order := s.order
	sort.Slice(order, func(i, j int) bool {
		if !order[i].mtime.Equal(order[j].mtime) {
			return order[i].mtime.Before(order[j].mtime)
		}
		return order[i].name < order[j].name
	})
	s.pruneLocked()
	return nil
}

// isStoreName reports whether name is shaped like a family file:
// 64 hex digits + the extension.
func isStoreName(name string) bool {
	if len(name) != 2*sha256.Size+len(storeExt) || name[2*sha256.Size:] != storeExt {
		return false
	}
	for i := 0; i < 2*sha256.Size; i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// fileName derives the family file name for a cache key.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + storeExt
}

// load reads, revalidates and decodes the family stored for key, along
// with its exact exploration count. A missing file is a disk miss; any
// other failure (unreadable, stale version, alien key, checksum
// mismatch, malformed payload) counts a disk error and deletes the
// offending file. Nil-safe: a nil store reports a plain miss without
// counting. load never returns an error — the caller's fallback is
// always a fresh enumeration.
func (s *Store) load(key string) ([]indepset.Set, int64, bool) {
	if s == nil {
		return nil, 0, false
	}
	name := fileName(key)
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			atomic.AddInt64(&s.misses, 1)
		} else {
			atomic.AddInt64(&s.errors, 1)
		}
		return nil, 0, false
	}
	sets, explored, err := decodeFamily(key, data)
	if err != nil {
		atomic.AddInt64(&s.errors, 1)
		s.remove(name)
		return nil, 0, false
	}
	atomic.AddInt64(&s.hits, 1)
	s.touch(name, int64(len(data)))
	return sets, explored, true
}

// touch moves a loaded file to the most-recent end of the LRU order
// and best-effort persists that recency as an mtime bump just past the
// newest stamp the store has seen (no wall-clock read).
func (s *Store) touch(name string, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.files[name]
	if f == nil {
		// Written by another process since the scan; adopt it.
		f = &storeFile{name: name, size: size}
		s.files[name] = f
		s.order = append(s.order, f)
		s.bytes += size
	}
	s.maxMtime = s.maxMtime.Add(time.Millisecond)
	f.mtime = s.maxMtime
	// Best effort: recency survives a restart when it sticks, the
	// in-memory order is authoritative meanwhile.
	_ = os.Chtimes(filepath.Join(s.dir, name), s.maxMtime, s.maxMtime)
	s.moveToBackLocked(f)
	s.pruneLocked()
}

func (s *Store) moveToBackLocked(f *storeFile) {
	for i, o := range s.order {
		if o == f {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), f)
			return
		}
	}
	s.order = append(s.order, f)
}

// remove deletes a file and drops it from the index.
func (s *Store) remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeLocked(name)
}

func (s *Store) removeLocked(name string) {
	_ = os.Remove(filepath.Join(s.dir, name))
	f := s.files[name]
	if f == nil {
		return
	}
	delete(s.files, name)
	s.bytes -= f.size
	for i, o := range s.order {
		if o == f {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// pruneLocked deletes oldest files until the byte budget holds. Like
// the in-memory cache, a file larger than the whole budget is written
// and immediately pruned rather than rejected up front.
func (s *Store) pruneLocked() {
	for s.bytes > s.maxBytes && len(s.order) > 0 {
		victim := s.order[0]
		s.removeLocked(victim.name)
		atomic.AddInt64(&s.prunes, 1)
	}
}

// enqueue hands a family to the write-behind goroutine. It never
// blocks: with the queue full (or the store closed) the write is
// dropped and counted as a disk error. Nil-safe.
func (s *Store) enqueue(key string, sets []indepset.Set, explored int64) {
	if s == nil {
		return
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.closed {
		atomic.AddInt64(&s.errors, 1)
		return
	}
	select {
	case s.queue <- storeReq{key: key, sets: sets, explored: explored}:
	default:
		atomic.AddInt64(&s.errors, 1)
	}
}

// writer drains the write-behind queue until Close.
func (s *Store) writer() {
	defer close(s.idle)
	for req := range s.queue {
		if req.flush != nil {
			close(req.flush)
			continue
		}
		s.put(req.key, req.sets, req.explored)
	}
}

// put writes one family crash-safely: encode, temp file, fsync,
// atomic rename, directory fsync, then index + prune. Failures are
// counted, the temp file is removed, and nothing is surfaced.
func (s *Store) put(key string, sets []indepset.Set, explored int64) {
	name := fileName(key)
	data := encodeFamily(key, sets, explored)
	if err := s.writeAtomic(name, data); err != nil {
		atomic.AddInt64(&s.errors, 1)
		return
	}
	info, err := os.Stat(filepath.Join(s.dir, name))
	if err != nil {
		atomic.AddInt64(&s.errors, 1)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Keep on-disk stamps strictly increasing in write order: rapid
	// successive writes can land inside one filesystem-timestamp tick,
	// which would make the scan's restored LRU order ambiguous. The
	// bump is derived from observed stamps, never from the Go clock.
	mtime := info.ModTime()
	if !mtime.After(s.maxMtime) {
		mtime = s.maxMtime.Add(time.Millisecond)
		_ = os.Chtimes(filepath.Join(s.dir, name), mtime, mtime)
	}
	s.maxMtime = mtime
	if old := s.files[name]; old != nil {
		// Overwrite: the rename replaced the old bytes.
		s.bytes -= old.size
		old.size = info.Size()
		old.mtime = mtime
		s.bytes += old.size
		s.moveToBackLocked(old)
	} else {
		f := &storeFile{name: name, size: info.Size(), mtime: mtime}
		s.files[name] = f
		s.order = append(s.order, f)
		s.bytes += f.size
	}
	s.pruneLocked()
}

func (s *Store) writeAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, name+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Make the rename itself durable. Not every platform lets a
	// directory be fsynced; degrade silently where it cannot.
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Flush blocks until every write enqueued before the call has been
// written (or dropped). Nil-safe; a closed store returns immediately.
func (s *Store) Flush() {
	if s == nil {
		return
	}
	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		return
	}
	barrier := make(chan struct{})
	s.queue <- storeReq{flush: barrier}
	s.qmu.Unlock()
	<-barrier
}

// Close drains pending writes and stops the writer goroutine. The
// store drops (and counts) writes enqueued after Close; loads keep
// working. Nil-safe and idempotent.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.qmu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.qmu.Unlock()
	<-s.idle
	return nil
}

// statsLocked-free snapshot of the store-side counters and shape.
func (s *Store) statsSnapshot() (hits, misses, errors, bytes int64) {
	if s == nil {
		return 0, 0, 0, 0
	}
	hits = atomic.LoadInt64(&s.hits)
	misses = atomic.LoadInt64(&s.misses)
	errors = atomic.LoadInt64(&s.errors)
	s.mu.Lock()
	bytes = s.bytes
	s.mu.Unlock()
	return hits, misses, errors, bytes
}

// --- Family encoding -------------------------------------------------
//
// Layout (all integers little-endian):
//
//	magic+version  8 bytes   "ABWFAM\x00" + format version
//	checksum      32 bytes   sha256 over every byte after this field
//	keyLen         4 bytes   uint32
//	key            keyLen    the full cache key (revalidated on load)
//	explored       8 bytes   int64: exact exploration count of the walk
//	nsets          4 bytes   uint32
//	per set:
//	  ncouples     4 bytes   uint32
//	  per couple: 16 bytes   link as uint64, rate as IEEE-754 bits
//
// Rates round-trip exactly (bit patterns, not decimal), so a reloaded
// family is byte-identical to the enumeration that produced it, and the
// exploration count makes a reloaded family a valid delta base
// (indepset.DeltaBase) exactly like a freshly enumerated one.

// encodeFamily serializes a family under its cache key.
func encodeFamily(key string, sets []indepset.Set, explored int64) []byte {
	n := storeHeaderLen + len(key) + 8 + 4
	for i := range sets {
		n += 4 + 16*len(sets[i].Couples)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, storeMagic...)
	buf = append(buf, make([]byte, sha256.Size)...) // checksum placeholder
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(explored))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sets)))
	for i := range sets {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sets[i].Couples)))
		for _, cp := range sets[i].Couples {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(cp.Link)))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(cp.Rate)))
		}
	}
	sum := sha256.Sum256(buf[len(storeMagic)+sha256.Size:])
	copy(buf[len(storeMagic):], sum[:])
	return buf
}

// decodeFamily revalidates and decodes a stored family for the given
// key. Any deviation — wrong version, wrong key, checksum mismatch,
// malformed or unsorted payload — is an error; the caller treats every
// error identically (delete the file, count it, enumerate fresh).
func decodeFamily(key string, data []byte) ([]indepset.Set, int64, error) {
	if len(data) < storeHeaderLen {
		return nil, 0, fmt.Errorf("memo: store file truncated (%d bytes)", len(data))
	}
	if string(data[:len(storeMagic)]) != storeMagic {
		return nil, 0, fmt.Errorf("memo: store file has wrong magic/version")
	}
	body := data[len(storeMagic)+sha256.Size:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(data[len(storeMagic):len(storeMagic)+sha256.Size]) {
		return nil, 0, fmt.Errorf("memo: store file checksum mismatch")
	}
	keyLen := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if uint64(keyLen) > uint64(len(body)) {
		return nil, 0, fmt.Errorf("memo: store file key overruns payload")
	}
	if string(body[:keyLen]) != key {
		return nil, 0, fmt.Errorf("memo: store file keyed for a different family")
	}
	body = body[keyLen:]
	if len(body) < 12 {
		return nil, 0, fmt.Errorf("memo: store file missing exploration count")
	}
	explored := int64(binary.LittleEndian.Uint64(body))
	body = body[8:]
	nsets := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if uint64(nsets) > uint64(len(body))/4 {
		return nil, 0, fmt.Errorf("memo: store file set count %d overruns payload", nsets)
	}
	if explored < int64(nsets) {
		// Every returned set was one charged exploration, so a count
		// below the family size cannot be genuine.
		return nil, 0, fmt.Errorf("memo: store file exploration count %d below set count %d", explored, nsets)
	}
	sets := make([]indepset.Set, 0, nsets)
	for i := uint32(0); i < nsets; i++ {
		if len(body) < 4 {
			return nil, 0, fmt.Errorf("memo: store file set %d missing couple count", i)
		}
		ncouples := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if uint64(ncouples) > uint64(len(body))/16 {
			return nil, 0, fmt.Errorf("memo: store file couple count %d overruns payload", ncouples)
		}
		couples := make([]conflict.Couple, 0, ncouples)
		prevLink := int64(-1)
		for j := uint32(0); j < ncouples; j++ {
			link := int64(binary.LittleEndian.Uint64(body))
			rate := math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
			body = body[16:]
			if link < 0 || link <= prevLink {
				return nil, 0, fmt.Errorf("memo: store file couples not strictly link-sorted")
			}
			if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
				return nil, 0, fmt.Errorf("memo: store file rate out of range")
			}
			prevLink = link
			couples = append(couples, conflict.Couple{Link: topology.LinkID(link), Rate: radio.Rate(rate)})
		}
		sets = append(sets, indepset.Set{Couples: couples})
	}
	if len(body) != 0 {
		return nil, 0, fmt.Errorf("memo: store file has %d trailing bytes", len(body))
	}
	// Refill the cached canonical keys (enumeration ships families with
	// them precomputed; a reloaded family must be byte-identical in
	// behavior too), then use them to revalidate the family ordering.
	indepset.CacheKeys(sets)
	for i := 1; i < len(sets); i++ {
		if sets[i].Key() <= sets[i-1].Key() {
			return nil, 0, fmt.Errorf("memo: store file family not key-sorted")
		}
	}
	return sets, explored, nil
}
