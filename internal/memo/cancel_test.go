package memo

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/topology"
)

// TestCanceledEnumerationNotStoredOrSpilled pins the no-store-on-cancel
// rule end to end: a cancelled enumeration returns ErrCanceled, leaves
// no in-memory cache entry, writes no spill file, and is counted in
// Stats.Cancellations — while the next uncancelled lookup of the same
// family computes, stores and spills normally.
func TestCanceledEnumerationNotStoredOrSpilled(t *testing.T) {
	net := testNetwork(t, 7, 3)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(0)
	c.SetStore(st)
	t.Cleanup(func() { c.Close() })

	ctx, cancelCtx := context.WithCancel(context.Background())
	cancelCtx() // the workers' first poll fires deterministically
	if _, err := c.EnumerateContext(ctx, m, links, indepset.Options{}); !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("cancelled enumeration: err = %v, want ErrCanceled", err)
	}
	stats := c.Stats()
	if stats.Cancellations != 1 {
		t.Fatalf("cancellations = %d, want 1 (stats %+v)", stats.Cancellations, stats)
	}
	if stats.Entries != 0 || stats.Bytes != 0 {
		t.Fatalf("cancelled result was stored: %+v", stats)
	}
	c.FlushStore()
	if files := familyFiles(t, dir); len(files) != 0 {
		t.Fatalf("cancelled result was spilled: %v", files)
	}

	// The family is still computable: the cancel poisoned nothing.
	sets, err := c.EnumerateContext(context.Background(), m, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) == 0 {
		t.Fatal("no sets after uncancelled retry")
	}
	stats = c.Stats()
	if stats.Entries != 1 {
		t.Fatalf("uncancelled retry not stored: %+v", stats)
	}
	if stats.Hits != 0 {
		t.Fatalf("retry must be a miss, not a hit off cancelled state: %+v", stats)
	}
	c.FlushStore()
	if files := familyFiles(t, dir); len(files) != 1 {
		t.Fatalf("uncancelled retry not spilled: %v", files)
	}
}

// TestWaiterCancelDoesNotPoisonLeader pins the singleflight contract:
// a waiter whose context fires while merged onto an in-flight
// enumeration returns ErrCanceled immediately, but the leader — whose
// context is alive — finishes, stores its family, and serves hits.
func TestWaiterCancelDoesNotPoisonLeader(t *testing.T) {
	net := testNetwork(t, 7, 3)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	c := New(0)

	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	orig := enumerateFn
	swapEnumerate(t, func(ctx context.Context, m conflict.Model, links []topology.LinkID, opts indepset.Options) ([]indepset.Set, bool, int64, error) {
		once.Do(func() { close(leaderIn) })
		<-release
		return orig(ctx, m, links, opts)
	})

	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.EnumerateContext(context.Background(), m, links, indepset.Options{})
		leaderDone <- err
	}()
	<-leaderIn

	// The waiter merges onto the held flight, then its context fires.
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.EnumerateContext(waiterCtx, m, links, indepset.Options{})
		waiterDone <- err
	}()
	for c.Stats().SingleflightMerges == 0 {
		runtime.Gosched()
	}
	cancelWaiter()
	if err := <-waiterDone; !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("cancelled waiter: err = %v, want ErrCanceled", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader poisoned by waiter cancel: %v", err)
	}
	stats := c.Stats()
	if stats.Entries != 1 {
		t.Fatalf("leader result not stored: %+v", stats)
	}
	if stats.Cancellations != 1 {
		t.Fatalf("cancellations = %d, want 1 (the waiter)", stats.Cancellations)
	}
	// The stored family now serves hits.
	if _, err := c.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("post-cancel lookup must hit the leader's entry: %+v", st)
	}
	assertIdentity(t, c.Stats(), "waiter-cancel")
}
