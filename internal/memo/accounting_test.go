package memo

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/topology"
)

// swapEnumerate installs fn as the cache's enumeration for the test.
func swapEnumerate(t *testing.T, fn func(context.Context, conflict.Model, []topology.LinkID, indepset.Options) ([]indepset.Set, bool, int64, error)) {
	t.Helper()
	orig := enumerateFn
	enumerateFn = fn
	t.Cleanup(func() { enumerateFn = orig })
}

// TestOversizedEntrySelfEvicts pins the insert-then-self-evict path of
// insertLocked: a family larger than the whole byte budget is inserted
// and immediately evicted, so it never displaces state, and the next
// identical lookup is a miss again.
func TestOversizedEntrySelfEvicts(t *testing.T) {
	net := testNetwork(t, 7, 3)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	c := New(1) // no real family fits in one byte
	if _, err := c.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry retained: %+v", st)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (the entry itself)", st.Evictions)
	}
	if _, err := c.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("second lookup of a self-evicted family must miss: %+v", st)
	}
	assertIdentity(t, st, "oversized")
}

// TestEvictionOrderUnderInterleavedHits pins LRU ordering: a hit moves
// a family to the most-recent end, so a later insert past the budget
// evicts the family that was NOT recently hit, regardless of insert
// order.
func TestEvictionOrderUnderInterleavedHits(t *testing.T) {
	net := testNetwork(t, 7, 13)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	if len(links) < 4 {
		t.Skip("degenerate topology")
	}
	uniA, uniB, uniC := links, links[:len(links)-1], links[:len(links)-2]
	// This test pins which entry LRU eviction removes by observing the
	// re-lookup as a miss. With delta enumeration on, the evicted uniB
	// would instead be served as a delta growth of the cached uniC
	// (uniC ⊂ uniB), masking the very miss under observation — so the
	// caches here run with the warm-start path off.
	size := func(uni []topology.LinkID) int64 {
		probe := New(0)
		if _, err := probe.Enumerate(m, uni, indepset.Options{}); err != nil {
			t.Fatal(err)
		}
		return probe.Stats().Bytes
	}
	sA, sB, sC := size(uniA), size(uniB), size(uniC)
	if sC/2 > sB {
		t.Skip("family sizes too skewed for the budget arithmetic")
	}
	// A and B fit together; adding C must evict exactly one family.
	c := New(sA + sB + sC/2)
	c.SetDeltaEnabled(false)
	mustEnum := func(uni []topology.LinkID) {
		t.Helper()
		if _, err := c.Enumerate(m, uni, indepset.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	mustEnum(uniA) // miss
	mustEnum(uniB) // miss
	mustEnum(uniA) // hit: A becomes most recent, B is now LRU
	mustEnum(uniC) // miss; evicts B, not A

	base := c.Stats()
	if base.Evictions == 0 {
		t.Fatalf("expected an eviction, stats %+v", base)
	}
	mustEnum(uniA)
	if st := c.Stats(); st.Hits != base.Hits+1 {
		t.Fatalf("recently hit family A was evicted: %+v", st)
	}
	mustEnum(uniC)
	if st := c.Stats(); st.Hits != base.Hits+2 {
		t.Fatalf("most recent family C was evicted: %+v", st)
	}
	before := c.Stats()
	mustEnum(uniB)
	if st := c.Stats(); st.Misses != before.Misses+1 {
		t.Fatalf("least recently used family B should have been the victim: %+v", st)
	}
	assertIdentity(t, c.Stats(), "interleaved")
}

// TestLookupIdentityAcrossAllPaths drives every terminal counter —
// memory hit, miss, bypass, truncation, enumeration error — and
// requires the satellite identity
//
//	Lookups == Hits + DiskHits + DeltaHits + Misses + Bypasses + SingleflightMerges
//
// to hold after each step, error paths included. (No step here grows a
// cached universe, so DeltaHits stays zero; the delta terms are driven
// in delta_test.go.)
func TestLookupIdentityAcrossAllPaths(t *testing.T) {
	net := testNetwork(t, 8, 11)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	c := New(0)

	step := 0
	check := func(label string, wantLookups int64) {
		t.Helper()
		st := c.Stats()
		assertIdentity(t, st, label)
		if st.Lookups != wantLookups {
			t.Fatalf("%s: lookups = %d, want %d (stats %+v)", label, st.Lookups, wantLookups, st)
		}
	}

	if _, err := c.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	step++
	check("miss", int64(step))
	if _, err := c.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	step++
	check("hit", int64(step))

	if _, err := c.Enumerate(unkeyedModel{m}, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	step++
	check("bypass", int64(step))

	// Truncated flight: counted as a miss, never stored.
	if _, truncated, err := c.EnumeratePartial(m, links, indepset.Options{Limit: 2, Workers: 1}); err != nil {
		t.Fatal(err)
	} else if !truncated {
		t.Skip("limit did not trip on this topology")
	}
	step++
	check("truncation", int64(step))

	// Erroring flight: the walk itself fails; the error surfaces but
	// the totals still reconcile.
	boom := errors.New("injected enumeration failure")
	swapEnumerate(t, func(context.Context, conflict.Model, []topology.LinkID, indepset.Options) ([]indepset.Set, bool, int64, error) {
		return nil, false, 0, boom
	})
	if _, err := c.Enumerate(m, links[:1], indepset.Options{}); !errors.Is(err, boom) {
		t.Fatalf("injected error not surfaced: %v", err)
	}
	step++
	check("error", int64(step))

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Bypasses != 1 || st.SingleflightMerges != 0 {
		t.Fatalf("per-path counts wrong: %+v", st)
	}
}

// TestSingleflightMergeAccountingOnError joins waiters onto a flight
// that is then failed: every waiter is counted as a merge, every
// caller sees the error, and the counter identity still reconciles —
// the bug this pins had hits+misses+bypasses+merges drift from the
// lookup total on error paths.
func TestSingleflightMergeAccountingOnError(t *testing.T) {
	net := testNetwork(t, 6, 5)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	c := New(0)

	const waiters = 4
	started := make(chan struct{})
	release := make(chan struct{})
	boom := errors.New("injected flight failure")
	swapEnumerate(t, func(context.Context, conflict.Model, []topology.LinkID, indepset.Options) ([]indepset.Set, bool, int64, error) {
		close(started)
		<-release
		return nil, false, 0, boom
	})

	errs := make([]error, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the leader
		defer wg.Done()
		_, errs[0] = c.Enumerate(m, links, indepset.Options{})
	}()
	<-started // the flight is open; everyone below must join it
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Enumerate(m, links, indepset.Options{})
		}(i)
	}
	// Wait until all waiters are accounted as merges, then fail the
	// flight.
	deadline := time.After(5 * time.Second)
	for c.Stats().SingleflightMerges < waiters {
		select {
		case <-deadline:
			t.Fatalf("waiters never joined: %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: error = %v, want the flight failure", i, err)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.SingleflightMerges != waiters || st.Hits != 0 {
		t.Fatalf("singleflight error accounting: %+v", st)
	}
	if st.Lookups != waiters+1 {
		t.Fatalf("lookups = %d, want %d", st.Lookups, waiters+1)
	}
	assertIdentity(t, st, "singleflight error")
	if st.Entries != 0 {
		t.Fatalf("failed flight must not be stored: %+v", st)
	}
}

// TestStatsShapeSnapshotConsistent hammers Stats while inserts and
// evictions churn the cache and requires every snapshot's shape fields
// — Entries, Bytes, Evictions, read under ONE lock acquisition — to be
// mutually consistent: bytes and entries are zero together, every
// entry carries at least its fixed overhead, and the budget is never
// exceeded. A torn snapshot (entries counted without their bytes, or
// an eviction without its byte decrement) violates one of these.
func TestStatsShapeSnapshotConsistent(t *testing.T) {
	net := testNetwork(t, 7, 13)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	if len(links) < 4 {
		t.Skip("degenerate topology")
	}
	probe := New(0)
	if _, err := probe.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	budget := probe.Stats().Bytes + probe.Stats().Bytes/2 // ~one family: constant churn
	c := New(budget)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		universes := [][]topology.LinkID{links, links[:len(links)-1], links[:len(links)-2]}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Enumerate(m, universes[i%len(universes)], indepset.Options{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	const (
		coupleBytes   = 16
		entryOverhead = 96
	)
	for i := 0; i < 2000; i++ {
		st := c.Stats()
		if (st.Entries == 0) != (st.Bytes == 0) {
			t.Fatalf("torn shape: entries=%d bytes=%d", st.Entries, st.Bytes)
		}
		if st.Bytes < int64(st.Entries)*entryOverhead {
			t.Fatalf("torn shape: %d entries but only %d bytes", st.Entries, st.Bytes)
		}
		if st.Bytes > budget {
			t.Fatalf("shape over budget: bytes=%d > %d", st.Bytes, budget)
		}
	}
	close(stop)
	wg.Wait()
	assertIdentity(t, c.Stats(), "shape hammer")
}
