package memo

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/topology"
)

// failEnumerate swaps the cache's enumeration for one that fails the
// test if reached, restoring the real walk on cleanup — the strongest
// possible form of "this lookup ran zero enumeration".
func failEnumerate(t *testing.T) {
	t.Helper()
	orig := enumerateFn
	enumerateFn = func(ctx context.Context, m conflict.Model, links []topology.LinkID, opts indepset.Options) ([]indepset.Set, bool, int64, error) {
		t.Error("enumeration ran where a disk hit was required")
		return orig(ctx, m, links, opts)
	}
	t.Cleanup(func() { enumerateFn = orig })
}

func openTestStore(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	st, err := OpenStore(dir, maxBytes)
	if err != nil {
		t.Fatalf("OpenStore(%q): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// familyFiles lists the family files currently in dir.
func familyFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if isStoreName(e.Name()) {
			out = append(out, e.Name())
		}
	}
	return out
}

// assertIdentity pins the satellite counter identity on a snapshot.
func assertIdentity(t *testing.T, st Stats, label string) {
	t.Helper()
	if st.Lookups != st.Hits+st.DiskHits+st.DeltaHits+st.Misses+st.Bypasses+st.SingleflightMerges {
		t.Fatalf("%s: counter identity broken: lookups=%d != hits=%d + diskHits=%d + deltaHits=%d + misses=%d + bypasses=%d + merges=%d",
			label, st.Lookups, st.Hits, st.DiskHits, st.DeltaHits, st.Misses, st.Bypasses, st.SingleflightMerges)
	}
}

// TestKillAndRestartWarmsFromDisk is the acceptance scenario: populate
// the cache with a spill directory, drop the in-memory Cache entirely
// (the "kill"), rebuild against the same directory, and require the
// first lookup to be a disk hit returning a byte-identical family with
// zero enumeration.
func TestKillAndRestartWarmsFromDisk(t *testing.T) {
	net := testNetwork(t, 7, 3)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	dir := t.TempDir()

	fresh, err := indepset.Enumerate(m, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Process one: miss, enumerate, write-behind.
	c1 := New(0)
	c1.SetStore(openTestStore(t, dir, 0))
	if _, err := c1.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	st1 := c1.Stats()
	if st1.Misses != 1 || st1.DiskHits != 0 || st1.DiskMisses != 1 {
		t.Fatalf("first process stats: %+v", st1)
	}
	assertIdentity(t, st1, "first process")
	if err := c1.Close(); err != nil { // flush + release: the "kill"
		t.Fatal(err)
	}
	if st := c1.Stats(); st.DiskBytes <= 0 {
		t.Fatalf("family not spilled before the kill: %+v", st)
	}
	if n := familyFiles(t, dir); len(n) != 1 {
		t.Fatalf("expected one family file, found %v", n)
	}

	// Process two: same directory, fresh Cache, zero enumeration.
	failEnumerate(t)
	c2 := New(0)
	c2.SetStore(openTestStore(t, dir, 0))
	got, err := c2.Enumerate(m, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, fresh, got, "restart warm-up")
	st2 := c2.Stats()
	if st2.DiskHits != 1 || st2.Misses != 0 || st2.Hits != 0 {
		t.Fatalf("restart stats: %+v", st2)
	}
	assertIdentity(t, st2, "restart")

	// The disk hit also warmed the in-memory cache.
	if _, err := c2.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Hits != 1 {
		t.Fatalf("second lookup should be a memory hit: %+v", st)
	}
}

// TestCorruptionDegradesToFreshEnumeration injects every corruption
// class the header guards against — truncation, a flipped payload
// byte, a wrong format version, an alien key — and requires each to
// degrade to a fresh enumeration with DiskErrors incremented, the bad
// file deleted, and no error surfaced to the query.
func TestCorruptionDegradesToFreshEnumeration(t *testing.T) {
	net := testNetwork(t, 7, 3)
	m := conflict.NewPhysical(net)
	links := allLinks(net)

	fresh, err := indepset.Enumerate(m, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data := readFile(t, path)
			writeFile(t, path, data[:len(data)/2])
		}},
		{"flipped byte", func(t *testing.T, path string) {
			data := readFile(t, path)
			data[len(data)-1] ^= 0xFF // inside the payload
			writeFile(t, path, data)
		}},
		{"wrong version", func(t *testing.T, path string) {
			data := readFile(t, path)
			data[len(storeMagic)-1]++ // future format version
			writeFile(t, path, data)
		}},
		{"flipped header byte", func(t *testing.T, path string) {
			data := readFile(t, path)
			data[len(storeMagic)+3] ^= 0x01 // inside the checksum
			writeFile(t, path, data)
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seed := New(0)
			seed.SetStore(openTestStore(t, dir, 0))
			if _, err := seed.Enumerate(m, links, indepset.Options{}); err != nil {
				t.Fatal(err)
			}
			seed.FlushStore()
			files := familyFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("expected one family file, found %v", files)
			}
			tc.corrupt(t, filepath.Join(dir, files[0]))

			c := New(0)
			c.SetStore(openTestStore(t, dir, 0))
			got, err := c.Enumerate(m, links, indepset.Options{})
			if err != nil {
				t.Fatalf("corruption surfaced as a query error: %v", err)
			}
			assertFamiliesEqual(t, fresh, got, tc.name)
			st := c.Stats()
			if st.DiskErrors != 1 || st.DiskHits != 0 || st.Misses != 1 {
				t.Fatalf("%s stats: %+v", tc.name, st)
			}
			assertIdentity(t, st, tc.name)
			// The bad file is gone; the re-enumerated family was
			// re-spilled behind the query.
			c.FlushStore()
			refreshed := familyFiles(t, dir)
			if len(refreshed) != 1 || refreshed[0] != files[0] {
				t.Fatalf("bad file not replaced by a fresh spill: %v", refreshed)
			}
			if _, _, err := decodeFamily(mustKey(t, m, links), readFile(t, filepath.Join(dir, refreshed[0]))); err != nil {
				t.Fatalf("re-spilled family does not revalidate: %v", err)
			}
		})
	}
}

// TestAlienKeyedFileRejected renames a valid family file to the name
// of a different key: the content checksum still passes, but the
// embedded key must not — the file is alien, deleted, and counted.
func TestAlienKeyedFileRejected(t *testing.T) {
	net := testNetwork(t, 7, 3)
	m := conflict.NewPhysical(net)
	links := allLinks(net)
	if len(links) < 3 {
		t.Skip("degenerate topology")
	}
	dir := t.TempDir()
	seed := New(0)
	seed.SetStore(openTestStore(t, dir, 0))
	if _, err := seed.Enumerate(m, links, indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	seed.FlushStore()
	files := familyFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected one family file, found %v", files)
	}
	otherKey := mustKey(t, m, links[:len(links)-1])
	alien := filepath.Join(dir, fileName(otherKey))
	if err := os.Rename(filepath.Join(dir, files[0]), alien); err != nil {
		t.Fatal(err)
	}

	c := New(0)
	c.SetStore(openTestStore(t, dir, 0))
	if _, err := c.Enumerate(m, links[:len(links)-1], indepset.Options{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DiskErrors != 1 || st.DiskHits != 0 {
		t.Fatalf("alien file stats: %+v", st)
	}
	assertIdentity(t, st, "alien")
}

// TestDiskBudgetPrunesOldest pins the on-disk byte budget: writing
// families past the budget deletes the oldest files first, and a load
// refreshes a file's recency so it survives the next prune.
func TestDiskBudgetPrunesOldest(t *testing.T) {
	famA := syntheticFamily(1, 3)
	famB := syntheticFamily(100, 3)
	famC := syntheticFamily(200, 3)
	keyA, keyB, keyC := "key-A", "key-B", "key-C"
	one := int64(len(encodeFamily(keyA, famA, 5)))

	// Budget for two families (the keys share a length, so sizes match).
	dir := t.TempDir()
	st := openTestStore(t, dir, 2*one+one/2)
	st.put(keyA, famA, 5)
	st.put(keyB, famB, 5)
	// Touch A: it becomes most recent, so the next prune must take B.
	if _, _, ok := st.load(keyA); !ok {
		t.Fatal("load A after put")
	}
	st.put(keyC, famC, 5)

	if _, _, _, bytes := st.statsSnapshot(); bytes > 2*one+one/2 {
		t.Fatalf("disk bytes %d over budget", bytes)
	}
	if got := len(familyFiles(t, dir)); got != 2 {
		t.Fatalf("expected 2 files after pruning, got %d", got)
	}
	if _, _, ok := st.load(keyB); ok {
		t.Fatal("oldest unreferenced family (B) should have been pruned")
	}
	if _, _, ok := st.load(keyA); !ok {
		t.Fatal("recently loaded family (A) should have survived the prune")
	}
	if _, _, ok := st.load(keyC); !ok {
		t.Fatal("newest family (C) should have survived the prune")
	}
}

// TestDiskBudgetOversizedFamily mirrors the in-memory rule: a family
// larger than the whole disk budget is written and immediately pruned,
// leaving the directory within budget (here: empty).
func TestDiskBudgetOversizedFamily(t *testing.T) {
	fam := syntheticFamily(1, 64)
	key := "oversized"
	dir := t.TempDir()
	st := openTestStore(t, dir, 16) // far below one encoded family
	st.put(key, fam, 64)
	if got := familyFiles(t, dir); len(got) != 0 {
		t.Fatalf("oversized family not self-pruned: %v", got)
	}
	if _, _, _, bytes := st.statsSnapshot(); bytes != 0 {
		t.Fatalf("disk bytes %d after self-prune, want 0", bytes)
	}
}

// TestOpenStorePrunesExistingOverBudget seeds a directory beyond the
// budget and reopens it: the scan must prune oldest-first down to the
// budget without touching non-store files.
func TestOpenStorePrunesExistingOverBudget(t *testing.T) {
	dir := t.TempDir()
	seed := openTestStore(t, dir, 0)
	var one int64
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("key-%d", i)
		seed.put(key, syntheticFamily(topology.LinkID(10*i+1), 3), 5)
		one = int64(len(encodeFamily(key, syntheticFamily(topology.LinkID(10*i+1), 3), 5)))
	}
	bystander := filepath.Join(dir, "README.txt")
	writeFile(t, bystander, []byte("not a family file"))
	seed.Close()

	st := openTestStore(t, dir, 2*one+one/2)
	if got := len(familyFiles(t, dir)); got != 2 {
		t.Fatalf("reopen kept %d family files, want 2", got)
	}
	if _, _, ok := st.load("key-3"); !ok {
		t.Fatal("newest seeded family should survive the reopen prune")
	}
	if _, _, ok := st.load("key-0"); ok {
		t.Fatal("oldest seeded family should have been pruned at reopen")
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Fatalf("non-store file was touched: %v", err)
	}
}

// TestStoreRoundTripBytes pins the encoding contract directly: encode
// → decode is identity, including exact rate bit patterns and cached
// set keys.
func TestStoreRoundTripBytes(t *testing.T) {
	fam := []indepset.Set{
		indepset.NewSet(conflict.Couple{Link: 2, Rate: 5.5}, conflict.Couple{Link: 7, Rate: 54}),
		indepset.NewSet(conflict.Couple{Link: 3, Rate: 0.25}),
	}
	indepset.CacheKeys(fam)
	if fam[1].Key() < fam[0].Key() {
		fam[0], fam[1] = fam[1], fam[0]
	}
	const key = "some|cache|key"
	const explored = int64(17)
	got, gotExplored, err := decodeFamily(key, encodeFamily(key, fam, explored))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	assertFamiliesEqual(t, fam, got, "round trip")
	if gotExplored != explored {
		t.Fatalf("exploration count round trip: got %d, want %d", gotExplored, explored)
	}

	if _, _, err := decodeFamily("different|key", encodeFamily(key, fam, explored)); err == nil {
		t.Fatal("decode under a different key must fail (alien)")
	}
	if _, _, err := decodeFamily(key, encodeFamily(key, nil, 0)); err != nil {
		t.Fatalf("empty family must round-trip: %v", err)
	}
	// An exploration count below the set count cannot come from a real
	// walk (every emitted set was itself explored) — revalidation rejects
	// it rather than seeding delta chains with a bogus accounting base.
	if _, _, err := decodeFamily(key, encodeFamily(key, fam, 1)); err == nil {
		t.Fatal("exploration count below set count must fail revalidation")
	}
}

// TestWriteBehindDoesNotBlockQueries floods the write queue far past
// its depth: enqueue must never block, drops are counted as disk
// errors, and the store stays consistent.
func TestWriteBehindDropsWhenSaturated(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, 0)
	const n = 4 * writeQueueDepth
	for i := 0; i < n; i++ {
		st.enqueue(fmt.Sprintf("key-%d", i), syntheticFamily(topology.LinkID(i*10+1), 2), 3)
	}
	st.Flush()
	_, _, errors, _ := st.statsSnapshot()
	written := int64(len(familyFiles(t, dir)))
	if written+errors < n {
		t.Fatalf("%d written + %d dropped < %d enqueued", written, errors, n)
	}
	if written == 0 {
		t.Fatal("write-behind wrote nothing")
	}
}

// TestEnqueueAfterCloseCountsError pins the lifecycle rule: spills
// enqueued after Close are dropped and counted, never panic.
func TestEnqueueAfterCloseCountsError(t *testing.T) {
	st := openTestStore(t, t.TempDir(), 0)
	st.Close()
	st.Close() // idempotent
	st.enqueue("key", syntheticFamily(1, 2), 3)
	if _, _, errors, _ := st.statsSnapshot(); errors != 1 {
		t.Fatalf("post-close enqueue errors = %d, want 1", errors)
	}
	st.Flush() // must not hang on a closed store
}

// syntheticFamily builds a small valid family (strictly link-sorted
// couples, strictly key-sorted sets) without running an enumeration.
func syntheticFamily(base topology.LinkID, nsets int) []indepset.Set {
	sets := make([]indepset.Set, 0, nsets)
	for i := 0; i < nsets; i++ {
		sets = append(sets, indepset.NewSet(
			conflict.Couple{Link: base + topology.LinkID(2*i), Rate: radio.Rate(6 * (i + 1))},
			conflict.Couple{Link: base + topology.LinkID(2*i+1), Rate: 54},
		))
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Key() < sets[j].Key() })
	indepset.CacheKeys(sets)
	return sets
}

func mustKey(t *testing.T, m conflict.Model, links []topology.LinkID) string {
	t.Helper()
	key, ok := Key(m, links, indepset.Options{})
	if !ok {
		t.Fatal("model not fingerprintable")
	}
	return key
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
