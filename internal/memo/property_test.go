package memo

import (
	"fmt"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/topology"
)

// scenarioTable builds the paper's Scenario II chain as a Table model:
// four links, multirate, with the rate-dependent conflicts that make
// L1@54 clash with L4 while L1@36 does not.
func scenarioTable(t *testing.T) (*conflict.Table, []topology.LinkID) {
	t.Helper()
	tab := conflict.NewTable()
	links := []topology.LinkID{1, 2, 3, 4}
	for _, l := range links {
		tab.SetRates(l, 54, 36, 18, 6)
	}
	mustConflict := func(la topology.LinkID, ra radio.Rate, lb topology.LinkID, rb radio.Rate) {
		t.Helper()
		if err := tab.AddConflict(la, ra, lb, rb); err != nil {
			t.Fatalf("AddConflict: %v", err)
		}
	}
	if err := tab.AddConflictAllRates(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddConflictAllRates(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddConflictAllRates(3, 4); err != nil {
		t.Fatal(err)
	}
	for _, r := range []radio.Rate{54, 36, 18, 6} {
		mustConflict(1, 54, 4, r)
		mustConflict(4, 54, 1, r)
	}
	return tab, links
}

// TestCachedVsFreshByteIdentity is the tentpole invariant: for every
// conflict model kind and worker count, the family served from the
// cache is byte-for-byte the family a fresh enumeration produces.
func TestCachedVsFreshByteIdentity(t *testing.T) {
	net := testNetwork(t, 9, 42)
	models := []struct {
		name string
		m    conflict.Model
	}{
		{"Physical", conflict.NewPhysical(net)},
		{"Protocol", conflict.NewProtocol(net)},
	}
	tab, tabLinks := scenarioTable(t)
	models = append(models, struct {
		name string
		m    conflict.Model
	}{"Table", tab})

	for _, tc := range models {
		links := allLinks(net)
		if tc.name == "Table" {
			links = tabLinks
		}
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				opts := indepset.Options{Workers: workers}
				fresh, err := indepset.Enumerate(tc.m, links, opts)
				if err != nil {
					t.Fatalf("fresh: %v", err)
				}
				c := New(0)
				// Populate the entry with a *different* worker count than
				// the lookup: identity must hold across worker settings.
				warmOpts := indepset.Options{Workers: 1}
				if _, err := c.Enumerate(tc.m, links, warmOpts); err != nil {
					t.Fatalf("populate: %v", err)
				}
				cached, err := c.Enumerate(tc.m, links, opts)
				if err != nil {
					t.Fatalf("cached: %v", err)
				}
				if st := c.Stats(); st.Hits != 1 {
					t.Fatalf("lookup did not hit: %+v", st)
				}
				assertFamiliesEqual(t, fresh, cached, tc.name)
			})
		}
	}
}

// TestCacheKeyCollision pins the injectivity requirement: two models
// differing in a single link rate must not share a cache entry.
func TestCacheKeyCollision(t *testing.T) {
	build := func(lastRates ...radio.Rate) *conflict.Table {
		tab := conflict.NewTable()
		tab.SetRates(1, 54, 36)
		tab.SetRates(2, 54, 36)
		tab.SetRates(3, lastRates...)
		if err := tab.AddConflictAllRates(1, 2); err != nil {
			t.Fatal(err)
		}
		return tab
	}
	a := build(54, 36)
	b := build(54, 18) // one link rate differs
	links := []topology.LinkID{1, 2, 3}

	ka, ok := Key(a, links, indepset.Options{})
	if !ok {
		t.Fatal("table should be fingerprintable")
	}
	kb, _ := Key(b, links, indepset.Options{})
	if ka == kb {
		t.Fatal("models differing in one link rate share a cache key")
	}

	// End to end: populating with one model must not leak into the other.
	c := New(0)
	fa, err := c.Enumerate(a, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := c.Enumerate(b, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("second model should miss, got %+v", st)
	}
	freshB, err := indepset.Enumerate(b, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, freshB, fb, "model b")
	freshA, err := indepset.Enumerate(a, links, indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFamiliesEqual(t, freshA, fa, "model a")
}

// TestPhysicalVsProtocolKeysDiffer guards the model-kind tag: the two
// geometric models over the same network answer differently and must
// key differently.
func TestPhysicalVsProtocolKeysDiffer(t *testing.T) {
	net := testNetwork(t, 6, 99)
	links := allLinks(net)
	kp, _ := Key(conflict.NewPhysical(net), links, indepset.Options{})
	kr, _ := Key(conflict.NewProtocol(net), links, indepset.Options{})
	if kp == kr {
		t.Fatal("Physical and Protocol over the same network share a key")
	}
}

// TestMovedNodeChangesKey: a one-node geometry change is a different
// network and must not reuse cached families.
func TestMovedNodeChangesKey(t *testing.T) {
	prof := radio.NewProfile80211a()
	pts := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}
	netA, err := topology.New(prof, pts)
	if err != nil {
		t.Fatal(err)
	}
	pts[2].X = 210
	netB, err := topology.New(prof, pts)
	if err != nil {
		t.Fatal(err)
	}
	ka, _ := Key(conflict.NewPhysical(netA), allLinks(netA), indepset.Options{})
	kb, _ := Key(conflict.NewPhysical(netB), allLinks(netB), indepset.Options{})
	if ka == kb {
		t.Fatal("moved node did not change the cache key")
	}
}
