package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"abw/internal/netjson"
)

// Client is a typed HTTP client for the admission-control API — the
// programmatic counterpart of curl against cmd/abwd.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the daemon at base (e.g.
// "http://localhost:8080"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// InstallNetwork installs/replaces the daemon's topology.
func (c *Client) InstallNetwork(nodes []netjson.NodeSpec, csRangeFactor float64) (NetworkInfo, error) {
	var out NetworkInfo
	err := c.do(http.MethodPut, "/v1/network", networkRequest{Nodes: nodes, CSRangeFactor: csRangeFactor}, &out)
	return out, err
}

// NetworkInfo mirrors the daemon's network summary.
type NetworkInfo struct {
	Nodes     int  `json:"nodes"`
	Links     int  `json:"links"`
	Flows     int  `json:"flows"`
	Installed bool `json:"installed"`
}

// Network fetches the current topology summary.
func (c *Client) Network() (NetworkInfo, error) {
	var out NetworkInfo
	err := c.do(http.MethodGet, "/v1/network", nil, &out)
	return out, err
}

// QueryResult mirrors the daemon's availability answer.
type QueryResult struct {
	Feasible  bool               `json:"feasible"`
	Bandwidth float64            `json:"bandwidthMbps"`
	Admit     *bool              `json:"wouldAdmit"`
	PathNodes []int              `json:"pathNodes"`
	Estimates map[string]float64 `json:"estimates"`
}

// Query asks for the availability between src and dst (optionally with
// a demand to get an admit verdict) without changing daemon state.
func (c *Client) Query(src, dst int, demand float64) (QueryResult, error) {
	var out QueryResult
	err := c.do(http.MethodPost, "/v1/query", queryRequest{Src: &src, Dst: &dst, Demand: demand}, &out)
	return out, err
}

// FlowInfo mirrors an admitted flow record.
type FlowInfo struct {
	ID     int     `json:"id"`
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Demand float64 `json:"demandMbps"`
	Nodes  []int   `json:"pathNodes"`
}

// AdmitResult mirrors the daemon's admission answer.
type AdmitResult struct {
	Admitted  bool      `json:"admitted"`
	Reason    string    `json:"reason"`
	Available float64   `json:"availableMbps"`
	Flow      *FlowInfo `json:"flow"`
}

// Admit requests admission of a new flow.
func (c *Client) Admit(src, dst int, demand float64) (AdmitResult, error) {
	var out AdmitResult
	err := c.do(http.MethodPost, "/v1/flows", flowRequest{Src: src, Dst: dst, Demand: demand}, &out)
	return out, err
}

// Flows lists the admitted flows.
func (c *Client) Flows() ([]FlowInfo, error) {
	var out []FlowInfo
	err := c.do(http.MethodGet, "/v1/flows", nil, &out)
	return out, err
}

// Teardown removes an admitted flow, freeing its bandwidth.
func (c *Client) Teardown(id int) (FlowInfo, error) {
	var out FlowInfo
	err := c.do(http.MethodDelete, fmt.Sprintf("/v1/flows/%d", id), nil, &out)
	return out, err
}

// FairShare is one row of the fairshare report.
type FairShare struct {
	Flow      int     `json:"flow"`
	FairShare float64 `json:"fairShareMbps"`
	Demand    float64 `json:"demandMbps"`
}

// Fairshares reports every admitted flow's max-min fair share.
func (c *Client) Fairshares() ([]FairShare, error) {
	var out []FairShare
	err := c.do(http.MethodGet, "/v1/fairshare", nil, &out)
	return out, err
}

func (c *Client) do(method, path string, in, out interface{}) error {
	var body *bytes.Buffer
	if in != nil {
		body = &bytes.Buffer{}
		if err := json.NewEncoder(body).Encode(in); err != nil {
			return fmt.Errorf("server client: encoding request: %w", err)
		}
	} else {
		body = &bytes.Buffer{}
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("server client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("server client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e errorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("server client: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server client: decoding response: %w", err)
	}
	return nil
}
