package server

import (
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"abw/internal/obs"
)

// Observability wiring: metrics, request logging, per-query tracing and
// the liveness/readiness probes. Everything here is opt-in — a server
// with no registry, no logger and no slow-query threshold serves the
// exact byte stream it served before this layer existed (the nil
// fast-path invariant of DESIGN.md Sec. 14).

// SetMetrics installs the metrics registry. Handlers record HTTP
// series into it, completed query spans fold into the stage series,
// and GET /metrics exposes it (404 without one). Call before serving
// requests.
func (s *Server) SetMetrics(r *obs.Registry) { s.metrics = r }

// Metrics returns the installed registry (nil when disabled).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// SetLogger installs the structured request logger (nil disables
// request logging). Call before serving requests.
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

// SetSlowQuery sets the slow-query threshold: computations that take
// longer are logged with their per-stage trace and counted on
// abw_slow_queries_total. Zero (the default) disables the log. Call
// before serving requests.
func (s *Server) SetSlowQuery(d time.Duration) { s.slowQuery = d }

// obsActive reports whether any per-request observability is on.
func (s *Server) obsActive() bool {
	return s.metrics != nil || s.logger != nil || s.slowQuery > 0
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// handleReadyz is the readiness probe: ready once a network is
// installed (before that every query answers 409, so sending traffic
// is pointless).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	s.mu.Lock()
	ready := s.net != nil
	s.mu.Unlock()
	status, msg := http.StatusOK, "ready"
	if !ready {
		status, msg = http.StatusServiceUnavailable, "no network installed"
	}
	writeJSON(w, status, struct {
		Status string `json:"status"`
	}{Status: msg})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if s.metrics == nil {
		writeError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	s.refreshCacheMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// refreshCacheMetrics mirrors the memo-cache counters into gauges at
// scrape time, so /metrics and /v1/stats expose the same numbers from
// the same snapshot source instead of maintaining parallel counters.
func (s *Server) refreshCacheMetrics() {
	st := s.CacheStats()
	set := func(name, help string, v int64) {
		s.metrics.Gauge(name, help).Set(v)
	}
	set("abw_cache_lookups", "memo-cache lookups (mirrors /v1/stats cache.lookups)", st.Lookups)
	set("abw_cache_hits", "memo-cache memory hits", st.Hits)
	set("abw_cache_misses", "memo-cache misses (enumerations run)", st.Misses)
	set("abw_cache_delta_hits", "memo-cache lookups served by delta enumeration", st.DeltaHits)
	set("abw_cache_delta_fallbacks", "delta chains that fell back to a full enumeration", st.DeltaFallbacks)
	set("abw_cache_bypasses", "memo-cache bypasses (unkeyable models)", st.Bypasses)
	set("abw_cache_merges", "memo-cache singleflight merges", st.SingleflightMerges)
	set("abw_cache_evictions", "memo-cache LRU evictions", st.Evictions)
	set("abw_cache_cancellations", "memo-cache lookups abandoned by cancellation", st.Cancellations)
	set("abw_cache_entries", "families currently retained in memory", int64(st.Entries))
	set("abw_cache_bytes", "bytes currently retained in memory", st.Bytes)
	set("abw_cache_disk_hits", "memo-cache disk-store hits", st.DiskHits)
	set("abw_cache_disk_bytes", "bytes currently spilled on disk", st.DiskBytes)
	set("abw_lp_cold_pivots", "simplex pivots spent by cold solves", st.ColdPivots)
	set("abw_lp_warm_pivots", "simplex pivots spent by warm re-solves", st.WarmPivots)
	set("abw_lp_warm_resolves", "LP re-solves answered from a warm basis", st.WarmResolves)
	set("abw_lp_pivots_saved", "estimated pivots avoided by warm-starting", st.PivotsSaved)
}

// handlerLabel names the route for the HTTP series: bounded cardinality
// (one label per endpoint), never the raw path.
func handlerLabel(path string) string {
	switch {
	case strings.HasPrefix(path, "/v1/flows"):
		return "flows"
	case path == "/v1/network":
		return "network"
	case path == "/v1/query":
		return "query"
	case path == "/v1/schedule":
		return "schedule"
	case path == "/v1/fairshare":
		return "fairshare"
	case path == "/v1/stats", path == "/stats":
		return "stats"
	case path == "/metrics":
		return "metrics"
	case path == "/healthz", path == "/readyz":
		return "probe"
	default:
		return "other"
	}
}

// statusWriter captures the response code for the request series.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps the API mux with request-id minting, HTTP metrics
// and request logging. With observability fully disabled it returns
// the inner handler untouched, so the uninstrumented server is the
// same handler chain (and the same bytes) as before.
func (s *Server) instrument(inner http.Handler) http.Handler {
	if !s.obsActive() {
		return inner
	}
	inflight := s.metrics.Gauge("abw_http_in_flight", "requests currently being served")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = obs.NextRequestID()
		}
		w.Header().Set("X-Request-Id", reqID)
		r = r.WithContext(obs.WithRequestID(r.Context(), reqID))

		label := handlerLabel(r.URL.Path)
		watch := obs.StartWatch()
		inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		inner.ServeHTTP(sw, r)
		inflight.Add(-1)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if s.metrics != nil {
			s.metrics.Counter("abw_http_requests_total", "HTTP requests served",
				obs.L{K: "handler", V: label}, obs.L{K: "code", V: strconv.Itoa(sw.status)}).Inc()
			s.metrics.Histogram("abw_http_request_seconds", "HTTP request latency", nil,
				obs.L{K: "handler", V: label}).Observe(watch.Seconds())
		}
		if s.logger != nil {
			s.logger.Info("request",
				slog.String("requestId", reqID),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("handler", label),
				slog.Int("status", sw.status),
				slog.Duration("elapsed", watch.Elapsed()),
			)
		}
	})
}

// querySpan mints a trace span for one computation when anything will
// consume it: the client asked for the trace block, the stage series
// are live, or the slow-query log is armed. Returns nil otherwise —
// the nil span disables every instrumentation point downstream.
func (s *Server) querySpan(reqID string, traceRequested bool) *obs.Span {
	if !traceRequested && s.metrics == nil && s.slowQuery <= 0 {
		return nil
	}
	return obs.NewSpan(reqID)
}

// finishQuerySpan folds a completed span into the registry's stage
// series, applies the slow-query policy, and returns the trace block
// when the client asked for it (nil otherwise).
func (s *Server) finishQuerySpan(span *obs.Span, wantTrace bool) *obs.TraceData {
	td := span.Trace()
	if td == nil {
		return nil
	}
	if s.metrics != nil {
		for _, rec := range td.Stages {
			stage := obs.L{K: "stage", V: string(rec.Stage)}
			s.metrics.Histogram("abw_stage_seconds", "per-query stage wall time", nil, stage).
				Observe(float64(rec.WallNs) / 1e9)
			if rec.Sets > 0 {
				s.metrics.Counter("abw_enumerated_sets_total",
					"independent sets enumerated or served from cache", stage).Add(rec.Sets)
			}
			if rec.Pivots > 0 {
				mode := "cold"
				if rec.Stage == obs.StageLPWarm {
					mode = "warm"
				}
				s.metrics.Counter("abw_lp_pivots_total", "simplex pivots spent",
					obs.L{K: "mode", V: mode}).Add(rec.Pivots)
			}
			for _, oc := range outcomeKeys(rec.Cache) {
				s.metrics.Counter("abw_memo_outcomes_total", "memo-cache lookup outcomes",
					obs.L{K: "outcome", V: oc}).Add(rec.Cache[oc])
			}
		}
	}
	if s.slowQuery > 0 && time.Duration(td.TotalNs) > s.slowQuery {
		s.metrics.Counter("abw_slow_queries_total",
			"queries slower than the -slowquery threshold").Inc()
		if s.logger != nil {
			attrs := []any{
				slog.String("requestId", td.RequestID),
				slog.Duration("elapsed", time.Duration(td.TotalNs)),
				slog.Duration("threshold", s.slowQuery),
			}
			for _, rec := range td.Stages {
				attrs = append(attrs, slog.Group(string(rec.Stage),
					slog.Int64("calls", rec.Calls),
					slog.Duration("wall", time.Duration(rec.WallNs)),
				))
			}
			s.logger.Warn("slow query", attrs...)
		}
	}
	if !wantTrace {
		return nil
	}
	return td
}

// outcomeKeys returns a cache-outcome map's keys sorted, so metric
// folding (and therefore first-registration order) is deterministic.
func outcomeKeys(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
