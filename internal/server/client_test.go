package server

import (
	"math"
	"strings"
	"testing"

	"abw/internal/netjson"
)

func chainNodes() []netjson.NodeSpec {
	return []netjson.NodeSpec{
		{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}, {X: 300, Y: 0}, {X: 400, Y: 0},
	}
}

func TestClientEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	c := NewClient(ts.URL, nil)

	// Install and inspect.
	info, err := c.InstallNetwork(chainNodes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != 5 || info.Links != 8 || !info.Installed {
		t.Fatalf("install info: %+v", info)
	}
	info, err = c.Network()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Installed {
		t.Fatalf("network info: %+v", info)
	}

	// Query.
	q, err := c.Query(0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Feasible || math.Abs(q.Bandwidth-54.0/11) > 1e-6 {
		t.Errorf("query = %+v", q)
	}
	if q.Admit == nil || !*q.Admit {
		t.Errorf("wouldAdmit = %v", q.Admit)
	}
	if len(q.Estimates) != 5 {
		t.Errorf("estimates = %v", q.Estimates)
	}

	// Admit two flows; the third fails.
	first, err := c.Admit(0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Admitted || first.Flow == nil {
		t.Fatalf("first admit: %+v", first)
	}
	if _, err := c.Admit(0, 4, 2); err != nil {
		t.Fatal(err)
	}
	third, err := c.Admit(0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if third.Admitted || third.Reason == "" {
		t.Errorf("third admit: %+v", third)
	}

	// List, fairshare, teardown.
	flows, err := c.Flows()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("flows: %+v", flows)
	}
	shares, err := c.Fairshares()
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 2 {
		t.Fatalf("fairshares: %+v", shares)
	}
	for _, s := range shares {
		if math.Abs(s.FairShare-54.0/22) > 1e-6 {
			t.Errorf("fair share = %+v, want 54/22", s)
		}
	}
	gone, err := c.Teardown(first.Flow.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gone.ID != first.Flow.ID {
		t.Errorf("teardown returned %+v", gone)
	}
	flows, err = c.Flows()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 {
		t.Errorf("flows after teardown: %+v", flows)
	}
}

func TestClientErrorsSurfaceServerMessages(t *testing.T) {
	ts := newTestServer(t)
	c := NewClient(ts.URL, nil)
	// No network installed yet.
	_, err := c.Query(0, 4, 0)
	if err == nil || !strings.Contains(err.Error(), "no network installed") {
		t.Errorf("err = %v, want the server's message", err)
	}
	if _, err := c.Teardown(9); err == nil {
		t.Error("teardown of a missing flow: expected error")
	}
	if _, err := c.InstallNetwork(nil, 0); err == nil {
		t.Error("empty install: expected error")
	}
}
