package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestParallelSlowQueriesDontBlockCheapRequests pins the snapshot
// concurrency design: availability computation runs outside the state
// mutex, so two in-flight slow queries must not stop a cheap request
// (network summary, flow listing) from completing. The computeHook
// holds both query computations at a barrier while the cheap requests
// run.
func TestParallelSlowQueriesDontBlockCheapRequests(t *testing.T) {
	srv := New()
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	srv.computeHook = func(context.Context) {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(release) })

	code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/network", chainNetworkBody)
	if code != http.StatusOK {
		t.Fatalf("install: %d %v", code, body)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query",
				bytes.NewBufferString(`{"src":0,"dst":4}`))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("slow query: %d", resp.StatusCode)
			}
		}()
	}
	// Wait until both queries are inside their (held) computation.
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("slow queries never reached the compute stage")
		}
	}

	// With both computations held, cheap requests must still finish.
	cheap := func(method, path string) {
		done := make(chan int, 1)
		go func() {
			req, _ := http.NewRequest(method, ts.URL+path, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				done <- -1
				return
			}
			resp.Body.Close()
			done <- resp.StatusCode
		}()
		select {
		case code := <-done:
			if code != http.StatusOK {
				t.Errorf("%s %s while queries in flight: %d", method, path, code)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s %s blocked behind in-flight slow queries", method, path)
		}
	}
	cheap(http.MethodGet, "/v1/network")
	cheap(http.MethodGet, "/v1/flows")
	cheap(http.MethodGet, "/v1/stats")

	release <- struct{}{}
	release <- struct{}{}
	wg.Wait()
}

type statsBody struct {
	CacheEnabled bool `json:"cacheEnabled"`
	Cache        struct {
		Hits         int64 `json:"hits"`
		Misses       int64 `json:"misses"`
		Entries      int64 `json:"entries"`
		Bytes        int64 `json:"bytes"`
		WarmResolves int64 `json:"warmResolves"`
		ColdPivots   int64 `json:"coldPivots"`
		WarmPivots   int64 `json:"warmPivots"`
		PivotsSaved  int64 `json:"pivotsSaved"`
		Evictions    int64 `json:"evictions"`
		Bypasses     int64 `json:"bypasses"`
		SingleMerges int64 `json:"singleflightMerges"`
		MaxBytes     int64 `json:"maxBytes"`
		Lookups      int64 `json:"lookups"`
		DiskHits     int64 `json:"diskHits"`
		DiskMisses   int64 `json:"diskMisses"`
		DiskErrors   int64 `json:"diskErrors"`
		DiskBytes    int64 `json:"diskBytes"`
	} `json:"cache"`
}

func getStats(t *testing.T, url string) statsBody {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var out statsBody
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStatsEndpoint checks the served counters: disabled → zeros with
// cacheEnabled=false; enabled → queries move hits/misses and repeated
// admissions produce warm resolves.
func TestStatsEndpoint(t *testing.T) {
	plain := newTestServer(t)
	install(t, plain)
	st := getStats(t, plain.URL)
	if st.CacheEnabled {
		t.Error("cacheEnabled = true on a cache-less server")
	}
	if st.Cache.Hits != 0 || st.Cache.Misses != 0 {
		t.Errorf("cache-less server reports activity: %+v", st.Cache)
	}

	srv := New()
	srv.SetCacheBytes(0) // default budget
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/network", chainNetworkBody)
	if code != http.StatusOK {
		t.Fatalf("install: %d %v", code, body)
	}
	st = getStats(t, ts.URL)
	if !st.CacheEnabled {
		t.Fatal("cacheEnabled = false after SetCacheBytes")
	}

	// Repeated admissions over the same chain: the second and third
	// solves reuse the first one's set family and warm-start its LP.
	for i := 0; i < 3; i++ {
		code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/flows", `{"src":0,"dst":4,"demandMbps":1}`)
		if code != http.StatusCreated || body["admitted"] != true {
			t.Fatalf("admit %d: %d %v", i, code, body)
		}
	}
	st = getStats(t, ts.URL)
	if st.Cache.Misses == 0 {
		t.Errorf("no cache misses recorded: %+v", st.Cache)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("repeated admissions never hit the set-family cache: %+v", st.Cache)
	}
	if st.Cache.WarmResolves == 0 {
		t.Errorf("repeated admissions never warm-started the LP: %+v", st.Cache)
	}
	if st.Cache.Entries == 0 || st.Cache.Bytes == 0 {
		t.Errorf("cache holds nothing after admissions: %+v", st.Cache)
	}

	// Method check: stats is GET-only.
	codePost, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/stats", "{}")
	if codePost != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats: %d, want 405", codePost)
	}
}

// TestCachedServerMatchesUncached runs the same admission sequence on a
// cached and an uncached server: every decision and reported bandwidth
// must agree — the served form of the warm-start invariant.
func TestCachedServerMatchesUncached(t *testing.T) {
	plain := newTestServer(t)
	install(t, plain)

	srv := New()
	srv.SetCacheBytes(0)
	cached := httptest.NewServer(srv.Handler())
	t.Cleanup(cached.Close)
	code, body := doJSON(t, http.MethodPut, cached.URL+"/v1/network", chainNetworkBody)
	if code != http.StatusOK {
		t.Fatalf("install: %d %v", code, body)
	}

	requests := []string{
		`{"src":0,"dst":4,"demandMbps":1.5}`,
		`{"src":1,"dst":3,"demandMbps":1.0}`,
		`{"src":0,"dst":4,"demandMbps":1.5}`,
		`{"src":0,"dst":2,"demandMbps":1.0}`,
		`{"src":0,"dst":4,"demandMbps":1.5}`,
	}
	for i, req := range requests {
		codeP, bodyP := doJSON(t, http.MethodPost, plain.URL+"/v1/flows", req)
		codeC, bodyC := doJSON(t, http.MethodPost, cached.URL+"/v1/flows", req)
		if codeP != codeC {
			t.Fatalf("request %d: status %d plain, %d cached", i, codeP, codeC)
		}
		if bodyP["admitted"] != bodyC["admitted"] {
			t.Fatalf("request %d: admitted %v plain, %v cached", i, bodyP["admitted"], bodyC["admitted"])
		}
		availP := bodyP["availableMbps"].(float64)
		availC := bodyC["availableMbps"].(float64)
		if math.Abs(availP-availC) > 1e-7 {
			t.Fatalf("request %d: available %.12g plain, %.12g cached", i, availP, availC)
		}
	}
}

// TestSetCacheDirWarmsRestartedServer pins the daemon restart story: a
// server with an attached cache directory spills what it enumerates,
// and a second server pointed at the same directory (a restarted abwd)
// serves its first query from disk with zero enumerations and the
// identical answer.
func TestSetCacheDirWarmsRestartedServer(t *testing.T) {
	dir := t.TempDir()
	query := `{"src":0,"dst":4}`

	boot := func() (*Server, *httptest.Server) {
		srv := New()
		if err := srv.SetCacheDir(dir); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/network", chainNetworkBody)
		if code != http.StatusOK {
			t.Fatalf("install: %d %v", code, body)
		}
		return srv, ts
	}

	srv1, ts1 := boot()
	code, cold := doJSON(t, http.MethodPost, ts1.URL+"/v1/query", query)
	if code != http.StatusOK {
		t.Fatalf("cold query: %d %v", code, cold)
	}
	st := getStats(t, ts1.URL)
	if st.Cache.Misses == 0 || st.Cache.DiskMisses == 0 {
		t.Fatalf("cold server should enumerate and miss the disk: %+v", st.Cache)
	}
	if err := srv1.Close(); err != nil { // flush the spill, as abwd does on shutdown
		t.Fatal(err)
	}

	_, ts2 := boot()
	code, warm := doJSON(t, http.MethodPost, ts2.URL+"/v1/query", query)
	if code != http.StatusOK {
		t.Fatalf("warm query: %d %v", code, warm)
	}
	if math.Abs(warm["bandwidthMbps"].(float64)-cold["bandwidthMbps"].(float64)) > 1e-12 {
		t.Errorf("warm answer %v differs from cold %v", warm["bandwidthMbps"], cold["bandwidthMbps"])
	}
	st = getStats(t, ts2.URL)
	if st.Cache.DiskHits == 0 {
		t.Errorf("restarted server never hit the spill: %+v", st.Cache)
	}
	if st.Cache.Misses != 0 {
		t.Errorf("restarted server re-enumerated %d families: %+v", st.Cache.Misses, st.Cache)
	}
	if st.Cache.DiskBytes == 0 {
		t.Errorf("stats hide the on-disk footprint: %+v", st.Cache)
	}
}

// TestSetCacheBytesCarriesStoreOver pins that resizing the budget after
// attaching a directory keeps the spill: the store survives the cache
// rebuild, so disk counters keep moving.
func TestSetCacheBytesCarriesStoreOver(t *testing.T) {
	srv := New()
	if err := srv.SetCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	srv.SetCacheBytes(1 << 20) // rebuilds the cache; must keep the store
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/network", chainNetworkBody)
	if code != http.StatusOK {
		t.Fatalf("install: %d %v", code, body)
	}
	if code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/query", `{"src":0,"dst":4}`); code != http.StatusOK {
		t.Fatalf("query: %d %v", code, body)
	}
	st := getStats(t, ts.URL)
	if st.Cache.DiskMisses == 0 {
		t.Errorf("store detached by SetCacheBytes: %+v", st.Cache)
	}
}
