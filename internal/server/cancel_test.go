package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestQueryDeadlineReapsHungComputation pins the -querytimeout
// contract: a query whose computation hangs is reaped at the deadline
// with 504 Gateway Timeout, and cheap requests keep flowing while it
// hangs. The computeHook holds the slow query's computation until its
// own context — carrying the per-request deadline — fires.
func TestQueryDeadlineReapsHungComputation(t *testing.T) {
	srv := New()
	srv.SetQueryTimeout(150 * time.Millisecond)
	entered := make(chan struct{}, 1)
	srv.computeHook = func(ctx context.Context) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-ctx.Done() // hang until the deadline reaps us
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/network", chainNetworkBody)
	if code != http.StatusOK {
		t.Fatalf("install: %d %v", code, body)
	}

	type result struct {
		code int
		body string
	}
	slow := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			bytes.NewBufferString(`{"src":0,"dst":4}`))
		if err != nil {
			slow <- result{code: -1, body: err.Error()}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		slow <- result{code: resp.StatusCode, body: buf.String()}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("slow query never reached the compute stage")
	}
	// While the slow query hangs, a cheap request must still answer.
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/network", ""); code != http.StatusOK {
		t.Fatalf("cheap request blocked behind hung query: %d", code)
	}

	select {
	case res := <-slow:
		if res.code != http.StatusGatewayTimeout {
			t.Fatalf("hung query answered %d (%s), want 504", res.code, res.body)
		}
		var eb errorBody
		if err := json.Unmarshal([]byte(res.body), &eb); err != nil {
			t.Fatalf("504 body is not the JSON error shape: %s", res.body)
		}
		if !strings.Contains(eb.Error, "deadline") {
			t.Fatalf("504 error does not mention the deadline: %q", eb.Error)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hung query was never reaped")
	}
}

// TestClientDisconnectCancelsComputation pins the other cancellation
// source: when the client abandons the request, the computation's
// context fires even without a configured deadline — the handler
// derives it from the request's.
func TestClientDisconnectCancelsComputation(t *testing.T) {
	srv := New()
	entered := make(chan struct{}, 1)
	reaped := make(chan struct{})
	srv.computeHook = func(ctx context.Context) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-ctx.Done()
		close(reaped)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/network", chainNetworkBody)
	if code != http.StatusOK {
		t.Fatalf("install: %d %v", code, body)
	}

	reqCtx, abandon := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
		ts.URL+"/v1/query", bytes.NewBufferString(`{"src":0,"dst":4}`))
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errs <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached the compute stage")
	}
	abandon()
	if err := <-errs; err == nil {
		t.Fatal("abandoned request unexpectedly completed")
	}
	select {
	case <-reaped:
	case <-time.After(5 * time.Second):
		t.Fatal("client disconnect did not cancel the computation")
	}
}
