package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"abw/internal/obs"
)

func newObsServer(t *testing.T) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	s := New()
	reg := obs.NewRegistry()
	s.SetMetrics(reg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

func TestHealthzAlwaysOK(t *testing.T) {
	ts := newTestServer(t)
	code, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", "")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
	resp, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("healthz POST: %d, want 405", resp.StatusCode)
	}
}

func TestReadyzTracksNetworkInstall(t *testing.T) {
	ts := newTestServer(t)
	code, body := doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before install: %d %v, want 503", code, body)
	}
	install(t, ts)
	code, body = doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
	if code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz after install: %d %v", code, body)
	}
}

func TestMetricsEndpointDisabled(t *testing.T) {
	ts := newTestServer(t)
	code, _ := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	if code != http.StatusNotFound {
		t.Fatalf("metrics without registry: %d, want 404", code)
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape content type: %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts one series' value from an exposition body.
func metricValue(t *testing.T, body, series string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			if _, err := fmtSscan(strings.TrimPrefix(line, series+" "), &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

func fmtSscan(s string, v *float64) (int, error) {
	var err error
	*v, err = parseFloat(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func parseFloat(s string) (float64, error) {
	var v float64
	err := json.Unmarshal([]byte(s), &v)
	return v, err
}

func TestMetricsExposeHTTPAndStageSeries(t *testing.T) {
	s, ts, _ := newObsServer(t)
	s.SetCacheBytes(0) // enable the memo cache so the cache series move
	install(t, ts)

	const queries = 3
	for i := 0; i < queries; i++ {
		code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/query", `{"src":0,"dst":4}`)
		if code != http.StatusOK {
			t.Fatalf("query %d: %d %v", i, code, body)
		}
	}

	exp := scrape(t, ts.URL)
	if v, ok := metricValue(t, exp, `abw_http_request_seconds_count{handler="query"}`); !ok || v != queries {
		t.Fatalf("query histogram count = %v (ok=%v), want %d\n%s", v, ok, queries, exp)
	}
	if v, ok := metricValue(t, exp, `abw_http_requests_total{code="200",handler="query"}`); !ok || v != queries {
		t.Fatalf("query request counter = %v (ok=%v), want %d", v, ok, queries)
	}
	// Stage series recorded through the folded spans.
	for _, series := range []string{
		`abw_stage_seconds_count{stage="enumerate"}`,
		`abw_stage_seconds_count{stage="lp_warm"}`,
		`abw_stage_seconds_count{stage="schedule"}`,
		`abw_stage_seconds_count{stage="estimate"}`,
	} {
		if v, ok := metricValue(t, exp, series); !ok || v <= 0 {
			t.Fatalf("%s = %v (ok=%v), want > 0\n%s", series, v, ok, exp)
		}
	}
	if v, ok := metricValue(t, exp, `abw_enumerated_sets_total{stage="enumerate"}`); !ok || v <= 0 {
		t.Fatalf("enumerated sets = %v (ok=%v), want > 0", v, ok)
	}

	// The cache gauges reconcile with /v1/stats: same counters, same
	// snapshot source.
	_, stats := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", "")
	cache := stats["cache"].(map[string]interface{})
	exp = scrape(t, ts.URL) // re-scrape: the stats request itself is not in the old body
	if v, ok := metricValue(t, exp, "abw_cache_lookups"); !ok || v != cache["lookups"].(float64) {
		t.Fatalf("abw_cache_lookups = %v, /v1/stats lookups = %v", v, cache["lookups"])
	}
	if v, ok := metricValue(t, exp, "abw_cache_hits"); !ok || v != cache["hits"].(float64) {
		t.Fatalf("abw_cache_hits = %v, /v1/stats hits = %v", v, cache["hits"])
	}

	// /v1/stats carries the metrics snapshot when observability is on.
	if _, ok := stats["metrics"]; !ok {
		t.Fatalf("stats missing metrics snapshot: %v", stats)
	}
}

func TestQueryTraceBlock(t *testing.T) {
	s, ts, _ := newObsServer(t)
	s.SetCacheBytes(0)
	install(t, ts)

	// Untraced query: no trace key in the response.
	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/query", `{"src":0,"dst":4}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, body)
	}
	if _, present := body["trace"]; present {
		t.Fatalf("untraced response carries a trace block: %v", body)
	}

	// Traced query: stages present, request id echoed.
	code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/query", `{"src":0,"dst":4,"trace":true}`)
	if code != http.StatusOK {
		t.Fatalf("traced query: %d %v", code, body)
	}
	trace, ok := body["trace"].(map[string]interface{})
	if !ok {
		t.Fatalf("no trace block: %v", body)
	}
	if trace["totalNs"].(float64) <= 0 {
		t.Fatalf("trace totalNs: %v", trace)
	}
	if trace["requestId"].(string) == "" {
		t.Fatalf("trace missing request id: %v", trace)
	}
	stages := trace["stages"].([]interface{})
	seen := map[string]bool{}
	for _, st := range stages {
		seen[st.(map[string]interface{})["stage"].(string)] = true
	}
	// The earlier untraced query warmed the memo cache, so this trace
	// shows the hit path: memo lookups but no fresh enumeration.
	for _, want := range []string{"route", "memo", "schedule", "estimate"} {
		if !seen[want] {
			t.Fatalf("trace missing stage %q: %v", want, seen)
		}
	}
	if seen["enumerate"] {
		t.Fatalf("cache-hit trace should not re-enumerate: %v", seen)
	}
}

// TestUntracedResponseByteIdenticalToPlainServer pins the wire-level
// invariant: the same query against an instrumented server and a bare
// one produces the same body bytes (headers differ: X-Request-Id).
func TestUntracedResponseByteIdenticalToPlainServer(t *testing.T) {
	plain := newTestServer(t)
	install(t, plain)
	s, instrumented, _ := newObsServer(t)
	s.SetSlowQuery(time.Nanosecond) // arm everything that must not leak into the body
	install(t, instrumented)

	body := `{"src":0,"dst":4,"demandMbps":1.0}`
	read := func(url string) string {
		resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := read(plain.URL), read(instrumented.URL)
	if a != b {
		t.Fatalf("instrumented body differs from plain:\n%s\nvs\n%s", a, b)
	}
}

func TestSlowQueryLog(t *testing.T) {
	s := New()
	reg := obs.NewRegistry()
	var logBuf syncBuffer
	s.SetMetrics(reg)
	s.SetLogger(obs.NewLogger(&logBuf, "info"))
	s.SetSlowQuery(time.Nanosecond) // everything is slow
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	install(t, ts)

	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/query", `{"src":0,"dst":4}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, body)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, `"msg":"slow query"`) {
		t.Fatalf("no slow-query log line in:\n%s", logged)
	}
	if !strings.Contains(logged, `"requestId"`) || !strings.Contains(logged, "enumerate") {
		t.Fatalf("slow-query line missing trace detail:\n%s", logged)
	}
	exp := scrape(t, ts.URL)
	if v, ok := metricValue(t, exp, "abw_slow_queries_total"); !ok || v <= 0 {
		t.Fatalf("abw_slow_queries_total = %v (ok=%v), want > 0", v, ok)
	}
	// Request logging rides the same logger.
	if !strings.Contains(logged, `"msg":"request"`) || !strings.Contains(logged, `"handler":"query"`) {
		t.Fatalf("no request log line in:\n%s", logged)
	}
}

func TestRequestIDEchoedAndPropagated(t *testing.T) {
	_, ts, _ := newObsServer(t)
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-chosen-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-chosen-7" {
		t.Fatalf("request id not echoed: %q", got)
	}
	// Minted when absent.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("no request id minted")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log capture.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
