// Package server exposes the availability model as an admission-control
// service: an HTTP/JSON API that owns a network, tracks the admitted
// flows, and answers routing, availability and admission queries — the
// deployable form of the paper's QoS admission pipeline.
//
// Endpoints (all JSON):
//
//	PUT    /v1/network        install/replace the network (netjson node list)
//	GET    /v1/network        topology summary
//	POST   /v1/query          availability + estimates for a path or pair, no state change
//	POST   /v1/flows          route, check and admit a flow
//	GET    /v1/flows          list admitted flows
//	DELETE /v1/flows/{id}     tear a flow down, freeing its bandwidth
//	GET    /v1/stats          memo-cache and warm-start counters (also /stats)
//
// The server is safe for concurrent use. The state mutex is held only
// long enough to snapshot or mutate state — availability computation
// (enumeration + LP) runs unlocked, so slow queries never block cheap
// requests. Admissions serialize on a separate admission mutex and
// re-check the network generation before committing, so decisions stay
// consistent without holding the state lock across the solve.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"abw/internal/cancel"
	"abw/internal/conflict"
	"abw/internal/core"
	"abw/internal/estimate"
	"abw/internal/geom"
	"abw/internal/lp"
	"abw/internal/memo"
	"abw/internal/netjson"
	"abw/internal/obs"
	"abw/internal/radio"
	"abw/internal/routing"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// Server is the admission-control service state. Create with New; the
// zero value serves errors until a network is installed.
type Server struct {
	mu      sync.Mutex
	net     *topology.Network   //guards: mu
	model   *conflict.Physical  //guards: mu
	flows   map[int]*flowRecord //guards: mu
	nextID  int                 //guards: mu
	gen     int                 //guards: mu — bumped on every network install; guards admissions
	maxBody int64
	workers int
	cache   *memo.Cache
	sess    *core.Session

	// queryTimeout bounds each request's computation (0 = unbounded).
	// Handlers derive their context from the request's, so a client
	// disconnect cancels the same way a deadline does.
	queryTimeout time.Duration

	// Observability (obs.go): all three default off, and the nil fast
	// path keeps the uninstrumented server byte-identical.
	metrics   *obs.Registry
	logger    *slog.Logger
	slowQuery time.Duration

	// admitMu serializes admission decisions (snapshot → compute →
	// commit) without blocking read-only queries on the state mutex.
	admitMu sync.Mutex

	// computeHook, when non-nil, runs at the start of every unlocked
	// availability computation with that computation's context. Tests
	// use it to hold queries in flight deterministically; production
	// leaves it nil.
	computeHook func(context.Context)
}

// coreOptions returns the core options every computation uses.
func (s *Server) coreOptions() core.Options {
	return core.Options{Workers: s.workers, Cache: s.cache}
}

// snapshot is an immutable view of the server state: the network and
// model are immutable by construction, the background slice is a copy,
// and the session is internally synchronized — everything a
// computation needs without holding the state mutex.
type snapshot struct {
	net        *topology.Network
	model      *conflict.Physical
	sess       *core.Session
	background []core.Flow
	gen        int
	opts       core.Options
}

// snapshot captures the state under the mutex; ok is false when no
// network is installed.
func (s *Server) snapshot() (*snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.net == nil {
		return nil, false
	}
	return &snapshot{
		net:        s.net,
		model:      s.model,
		sess:       s.sess,
		background: s.backgroundLocked(),
		gen:        s.gen,
		opts:       s.coreOptions(),
	}, true
}

type flowRecord struct {
	ID     int           `json:"id"`
	Src    int           `json:"src"`
	Dst    int           `json:"dst"`
	Demand float64       `json:"demandMbps"`
	Nodes  []int         `json:"pathNodes"`
	path   topology.Path `json:"-"`
}

// New returns an empty server.
func New() *Server {
	return &Server{flows: make(map[int]*flowRecord), nextID: 1, maxBody: 1 << 20}
}

// SetWorkers sets the enumeration worker count used by every
// computation (see indepset.Options.Workers; 0 = automatic). Call
// before serving requests.
func (s *Server) SetWorkers(n int) { s.workers = n }

// SetQueryTimeout bounds the computation of every request: contexts
// derived from incoming requests gain the deadline, enumeration and LP
// workers poll it, and a request that exceeds it answers 504 Gateway
// Timeout. Zero (the default) leaves computations unbounded. Call
// before serving requests.
func (s *Server) SetQueryTimeout(d time.Duration) { s.queryTimeout = d }

// queryContext derives the computation context for a request: the
// request's own context (so a client disconnect cancels the work) plus
// the configured per-request deadline, if any.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.queryTimeout > 0 {
		return context.WithTimeout(ctx, s.queryTimeout)
	}
	return ctx, func() {}
}

// statusClientClosedRequest is nginx's conventional status for requests
// abandoned by the client before a response was produced. The write
// almost certainly goes nowhere — the client is gone — but keeps logs
// and middleware honest about why the computation stopped.
const statusClientClosedRequest = 499

// writeComputeError maps a computation error to an HTTP answer:
// deadline exceeded → 504, canceled by client disconnect → 499,
// anything else → 500.
func writeComputeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "query deadline exceeded: %v", err)
	case errors.Is(err, cancel.ErrCanceled):
		writeError(w, statusClientClosedRequest, "client closed request: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// SetCacheBytes enables the memo cache — set-family memoization, LP
// warm-starting across queries, and the /v1/stats counters — with the
// given retained-bytes budget (0 picks memo.DefaultMaxBytes; negative
// disables caching). An on-disk store attached by a prior SetCacheDir
// carries over to the new cache (and is closed when caching is
// disabled). Call before serving requests.
func (s *Server) SetCacheBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	store := s.cache.DiskStore()
	if n < 0 {
		_ = store.Close()
		s.cache = nil
		s.sess = nil
		return
	}
	s.cache = memo.New(n)
	s.cache.SetStore(store)
	if s.model != nil {
		s.sess = core.NewSession(s.model, s.coreOptions())
	}
}

// SetCacheDir attaches a crash-safe on-disk spill of the set-family
// cache rooted at dir, enabling the cache (with the default byte
// budget) if it is not already on: a restarted daemon pointed at the
// same directory answers its first enumerations from disk instead of
// re-walking an unchanged network. Call before serving requests.
func (s *Server) SetCacheDir(dir string) error {
	store, err := memo.OpenStore(dir, 0)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		s.cache = memo.New(0)
		if s.model != nil {
			s.sess = core.NewSession(s.model, s.coreOptions())
		}
	}
	s.cache.SetStore(store)
	return nil
}

// CacheStats returns the memo-cache counters (zero when caching is
// disabled).
func (s *Server) CacheStats() memo.Stats { return s.cache.Stats() }

// Close flushes and closes the cache's on-disk store, if any, so every
// family enumerated so far survives to warm the next process. The
// server keeps answering requests afterwards; only the spill stops.
func (s *Server) Close() error {
	s.mu.Lock()
	cache := s.cache
	s.mu.Unlock()
	return cache.Close()
}

// Handler returns the HTTP handler for the API. With observability
// configured (SetMetrics/SetLogger/SetSlowQuery) the mux is wrapped by
// the instrumentation middleware; otherwise it is returned as-is.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/network", s.handleNetwork)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/flows", s.handleFlows)
	mux.HandleFunc("/v1/flows/", s.handleFlowByID)
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	mux.HandleFunc("/v1/fairshare", s.handleFairshare)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return s.instrument(mux)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client;
	// they surface as a truncated body.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// networkRequest installs a topology.
type networkRequest struct {
	Nodes         []netjson.NodeSpec `json:"nodes"`
	CSRangeFactor float64            `json:"csRangeFactor,omitempty"`
}

type networkSummary struct {
	Nodes     int  `json:"nodes"`
	Links     int  `json:"links"`
	Flows     int  `json:"flows"`
	Installed bool `json:"installed"`
}

func (s *Server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPut:
		var req networkRequest
		if err := s.decode(w, r, &req); err != nil {
			return
		}
		if len(req.Nodes) == 0 {
			writeError(w, http.StatusBadRequest, "network needs at least one node")
			return
		}
		pts := make([]geom.Point, 0, len(req.Nodes))
		for _, n := range req.Nodes {
			pts = append(pts, geom.Point{X: n.X, Y: n.Y})
		}
		var opts []radio.Option
		if req.CSRangeFactor > 0 {
			opts = append(opts, radio.WithCSRangeFactor(req.CSRangeFactor))
		}
		net, err := topology.New(radio.NewProfile80211a(opts...), pts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "building network: %v", err)
			return
		}
		s.mu.Lock()
		s.net = net
		s.model = conflict.NewPhysical(net)
		s.flows = make(map[int]*flowRecord)
		s.gen++
		if s.cache != nil {
			// Fresh session: the old network's warm LPs are useless and
			// its set families age out of the (shared) cache by LRU.
			s.sess = core.NewSession(s.model, s.coreOptions())
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, networkSummary{
			Nodes: net.NumNodes(), Links: net.NumLinks(), Installed: true,
		})
	case http.MethodGet:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.net == nil {
			writeJSON(w, http.StatusOK, networkSummary{})
			return
		}
		writeJSON(w, http.StatusOK, networkSummary{
			Nodes: s.net.NumNodes(), Links: s.net.NumLinks(), Flows: len(s.flows), Installed: true,
		})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// queryRequest asks about availability without changing state.
type queryRequest struct {
	Path   []int   `json:"path,omitempty"`
	Src    *int    `json:"src,omitempty"`
	Dst    *int    `json:"dst,omitempty"`
	Metric string  `json:"metric,omitempty"`
	Demand float64 `json:"demandMbps,omitempty"`
	// Trace asks for the per-stage trace block in the response.
	Trace bool `json:"trace,omitempty"`
}

type queryResponse struct {
	Feasible  bool               `json:"feasible"`
	Bandwidth float64            `json:"bandwidthMbps"`
	Admit     *bool              `json:"wouldAdmit,omitempty"`
	PathNodes []int              `json:"pathNodes"`
	Estimates map[string]float64 `json:"estimates"`
	// Trace is present only when the request asked for it; its absence
	// keeps untraced responses byte-identical to the pre-obs wire form.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req queryRequest
	if err := s.decode(w, r, &req); err != nil {
		return
	}
	snap, ok := s.snapshot()
	if !ok {
		writeError(w, http.StatusConflict, "no network installed")
		return
	}
	ctx, cancelCtx := s.queryContext(r)
	defer cancelCtx()
	span := s.querySpan(obs.RequestIDFrom(r.Context()), req.Trace)
	ctx = obs.WithSpan(ctx, span)
	// Everything below runs unlocked: queries never block state access.
	path, err := s.resolvePath(ctx, snap, req.Path, req.Src, req.Dst, req.Metric)
	if err != nil {
		s.finishQuerySpan(span, false)
		if errors.Is(err, cancel.ErrCanceled) {
			writeComputeError(w, err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.availability(ctx, snap, path)
	if err != nil {
		s.finishQuerySpan(span, false)
		writeComputeError(w, err)
		return
	}
	if req.Demand > 0 {
		admit := resp.Feasible && resp.Bandwidth+1e-9 >= req.Demand
		resp.Admit = &admit
	}
	resp.Trace = s.finishQuerySpan(span, req.Trace)
	writeJSON(w, http.StatusOK, resp)
}

// flowRequest admits a flow.
type flowRequest struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Demand float64 `json:"demandMbps"`
	Metric string  `json:"metric,omitempty"`
}

type flowResponse struct {
	Admitted  bool        `json:"admitted"`
	Reason    string      `json:"reason,omitempty"`
	Available float64     `json:"availableMbps"`
	Flow      *flowRecord `json:"flow,omitempty"`
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make([]*flowRecord, 0, len(s.flows))
		for id := 1; id < s.nextID; id++ {
			if f, ok := s.flows[id]; ok {
				out = append(out, f)
			}
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req flowRequest
		if err := s.decode(w, r, &req); err != nil {
			return
		}
		if req.Demand <= 0 {
			writeError(w, http.StatusBadRequest, "demandMbps must be positive")
			return
		}
		// Admissions serialize on admitMu — not the state mutex — so the
		// expensive solve below never blocks queries or flow listings.
		// Snapshot → compute → commit; the commit re-checks the network
		// generation, and flow additions can't race (they all hold
		// admitMu). A concurrent DELETE only frees capacity, so deciding
		// against the snapshot's (super)set of flows stays sound.
		s.admitMu.Lock()
		defer s.admitMu.Unlock()
		snap, ok := s.snapshot()
		if !ok {
			writeError(w, http.StatusConflict, "no network installed")
			return
		}
		ctx, cancelCtx := s.queryContext(r)
		defer cancelCtx()
		span := s.querySpan(obs.RequestIDFrom(r.Context()), false)
		ctx = obs.WithSpan(ctx, span)
		defer func() { s.finishQuerySpan(span, false) }()
		path, err := s.resolvePath(ctx, snap, nil, &req.Src, &req.Dst, req.Metric)
		if err != nil {
			if errors.Is(err, cancel.ErrCanceled) {
				writeComputeError(w, err)
				return
			}
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		avail, err := s.availability(ctx, snap, path)
		if err != nil {
			writeComputeError(w, err)
			return
		}
		resp := flowResponse{Available: avail.Bandwidth}
		if !avail.Feasible {
			resp.Reason = "existing flows are not schedulable with this path's constraints"
			writeJSON(w, http.StatusOK, resp)
			return
		}
		if avail.Bandwidth+1e-9 < req.Demand {
			resp.Reason = fmt.Sprintf("available %.3f Mbps < demand %.3f Mbps", avail.Bandwidth, req.Demand)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		s.mu.Lock()
		if s.gen != snap.gen {
			s.mu.Unlock()
			writeError(w, http.StatusConflict, "network replaced during admission")
			return
		}
		rec := &flowRecord{
			ID: s.nextID, Src: req.Src, Dst: req.Dst, Demand: req.Demand,
			Nodes: avail.PathNodes, path: path,
		}
		s.nextID++
		s.flows[rec.ID] = rec
		s.mu.Unlock()
		resp.Admitted = true
		resp.Flow = rec
		writeJSON(w, http.StatusCreated, resp)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *Server) handleFlowByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/flows/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id <= 0 {
		writeError(w, http.StatusBadRequest, "invalid flow id %q", idStr)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.flows[id]
	if !ok {
		writeError(w, http.StatusNotFound, "flow %d not found", id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, rec)
	case http.MethodDelete:
		delete(s.flows, id)
		writeJSON(w, http.StatusOK, rec)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// handleSchedule returns the minimal-airtime schedule delivering the
// admitted flows — what the network's TDMA layer should execute.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	snap, ok := s.snapshot()
	if !ok {
		writeError(w, http.StatusConflict, "no network installed")
		return
	}
	ctx, cancelCtx := s.queryContext(r)
	defer cancelCtx()
	sched, err := s.backgroundSchedule(ctx, snap)
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		TotalShare float64           `json:"totalShare"`
		Schedule   schedule.Schedule `json:"schedule"`
	}{TotalShare: sched.TotalShare(), Schedule: sched})
}

type fairShareEntry struct {
	Flow      int     `json:"flow"`
	FairShare float64 `json:"fairShareMbps"`
	Demand    float64 `json:"demandMbps"`
}

// handleFairshare computes each admitted flow's max-min fair share with
// demands lifted — how much every flow could get if the schedulable
// capacity were divided fairly instead of first-come.
func (s *Server) handleFairshare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	s.mu.Lock()
	if s.net == nil {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "no network installed")
		return
	}
	model := s.model
	opts := s.coreOptions()
	var flows []core.Flow
	var ids []int
	var demands []float64
	for id := 1; id < s.nextID; id++ {
		if f, ok := s.flows[id]; ok {
			flows = append(flows, core.Flow{Path: f.path}) // uncapped
			ids = append(ids, f.ID)
			demands = append(demands, f.Demand)
		}
	}
	s.mu.Unlock()
	if len(flows) == 0 {
		writeJSON(w, http.StatusOK, []fairShareEntry{})
		return
	}
	// The max-min LP cascade runs unlocked like every other computation.
	ctx, cancelCtx := s.queryContext(r)
	defer cancelCtx()
	alloc, _, err := core.MaxMinFairContext(ctx, model, flows, opts)
	if err != nil {
		writeComputeError(w, err)
		return
	}
	out := make([]fairShareEntry, 0, len(alloc))
	for i, a := range alloc {
		out = append(out, fairShareEntry{Flow: ids[i], FairShare: a, Demand: demands[i]})
	}
	writeJSON(w, http.StatusOK, out)
}

// resolvePath turns a query into a concrete path: either explicit node
// IDs or a routed src/dst pair under the snapshot's background. Runs
// without the state mutex.
func (s *Server) resolvePath(ctx context.Context, snap *snapshot, nodeIDs []int, src, dst *int, metricName string) (topology.Path, error) {
	if len(nodeIDs) > 0 {
		nodes := make([]topology.NodeID, 0, len(nodeIDs))
		for _, id := range nodeIDs {
			nodes = append(nodes, topology.NodeID(id))
		}
		return snap.net.PathFromNodes(nodes)
	}
	if src == nil || dst == nil {
		return nil, fmt.Errorf("need either path or src+dst")
	}
	metric := routing.MetricAvgE2ED
	if metricName != "" {
		found := false
		for _, m := range routing.AllMetrics() {
			if m.String() == metricName {
				metric = m
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown metric %q", metricName)
		}
	}
	idle, err := s.idleness(ctx, snap)
	if err != nil {
		return nil, err
	}
	tm := obs.SpanFrom(ctx).StartStage(obs.StageRoute)
	defer tm.End()
	return routing.FindPath(snap.net, snap.model, metric, idle, topology.NodeID(*src), topology.NodeID(*dst))
}

// idleness derives per-node idle ratios for the snapshot's background,
// going through the session's memo when one is active.
func (s *Server) idleness(ctx context.Context, snap *snapshot) ([]float64, error) {
	if snap.sess != nil {
		return snap.sess.IdleRatiosContext(ctx, snap.net, snap.background)
	}
	return routing.BackgroundIdlenessContext(ctx, snap.net, snap.model, snap.background, snap.opts)
}

// backgroundSchedule returns the minimal-airtime schedule for the
// snapshot's background, memoized through the session when one is
// active.
func (s *Server) backgroundSchedule(ctx context.Context, snap *snapshot) (schedule.Schedule, error) {
	tm := obs.SpanFrom(ctx).StartStage(obs.StageSchedule)
	defer tm.End()
	if snap.sess == nil {
		return routing.BackgroundScheduleContext(ctx, snap.model, snap.background, snap.opts)
	}
	if len(snap.background) == 0 {
		return schedule.Schedule{}, nil
	}
	ok, sched, err := snap.sess.FeasibleDemandsContext(ctx, snap.background)
	if err != nil {
		return schedule.Schedule{}, fmt.Errorf("background schedule: %w", err)
	}
	if !ok {
		return schedule.Schedule{}, fmt.Errorf("background not schedulable")
	}
	return sched, nil
}

// availability computes exact availability and estimates for the path
// against the snapshot's background. Runs without the state mutex, so
// slow solves never block other requests.
func (s *Server) availability(ctx context.Context, snap *snapshot, path topology.Path) (*queryResponse, error) {
	if s.computeHook != nil {
		s.computeHook(ctx)
	}
	nodes, err := snap.net.PathNodes(path)
	if err != nil {
		return nil, err
	}
	resp := &queryResponse{PathNodes: make([]int, 0, len(nodes)), Estimates: map[string]float64{}}
	for _, n := range nodes {
		resp.PathNodes = append(resp.PathNodes, int(n))
	}
	var res *core.Result
	if snap.sess != nil {
		res, err = snap.sess.AvailableBandwidthContext(ctx, snap.background, path)
	} else {
		res, err = core.AvailableBandwidthContext(ctx, snap.model, snap.background, path, snap.opts)
	}
	if err != nil {
		return nil, err
	}
	if res.Status == lp.Optimal {
		resp.Feasible = true
		resp.Bandwidth = res.Bandwidth
	}
	sched, err := s.backgroundSchedule(ctx, snap)
	if err != nil {
		return nil, err
	}
	et := obs.SpanFrom(ctx).StartStage(obs.StageEstimate)
	ps, err := estimate.PathStateFromSchedule(snap.net, snap.model, sched, path)
	if err != nil {
		et.End()
		return nil, err
	}
	ests, err := estimate.EstimateAll(snap.model, ps)
	et.End()
	if err != nil {
		return nil, err
	}
	for m, v := range ests {
		resp.Estimates[m.String()] = v
	}
	return resp, nil
}

// handleStats serves the memo-cache and warm-start counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	s.mu.Lock()
	cache := s.cache
	s.mu.Unlock()
	// Metrics is nil when observability is off, and the omitempty keeps
	// the stats body byte-identical to the pre-obs wire form then.
	writeJSON(w, http.StatusOK, struct {
		CacheEnabled bool          `json:"cacheEnabled"`
		Cache        memo.Stats    `json:"cache"`
		Metrics      *obs.Snapshot `json:"metrics,omitempty"`
	}{CacheEnabled: cache != nil, Cache: cache.Stats(), Metrics: s.metrics.Snapshot()})
}

func (s *Server) backgroundLocked() []core.Flow {
	out := make([]core.Flow, 0, len(s.flows))
	for id := 1; id < s.nextID; id++ {
		if f, ok := s.flows[id]; ok {
			out = append(out, core.Flow{Path: f.path, Demand: f.Demand})
		}
	}
	return out
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return err
	}
	return nil
}
