package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// chainNetworkBody is a 5-node 100m chain (capacity 54/11 ~ 4.909 Mbps
// end to end).
const chainNetworkBody = `{
  "nodes": [{"x":0,"y":0},{"x":100,"y":0},{"x":200,"y":0},{"x":300,"y":0},{"x":400,"y":0}]
}`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url, body string) (int, map[string]interface{}) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&out); err != nil {
		// Arrays decode separately; callers needing arrays use doJSONArray.
		return resp.StatusCode, nil
	}
	return resp.StatusCode, out
}

func doJSONArray(t *testing.T, method, url string) (int, []map[string]interface{}) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding array: %v", err)
	}
	return resp.StatusCode, out
}

func install(t *testing.T, ts *httptest.Server) {
	t.Helper()
	code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/network", chainNetworkBody)
	if code != http.StatusOK {
		t.Fatalf("install: %d %v", code, body)
	}
	if body["nodes"].(float64) != 5 {
		t.Fatalf("install summary: %v", body)
	}
}

func TestNetworkLifecycle(t *testing.T) {
	ts := newTestServer(t)
	// Before install: empty summary, queries rejected.
	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/network", "")
	if code != http.StatusOK || body["installed"] != false {
		t.Fatalf("pre-install summary: %d %v", code, body)
	}
	code, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/query", `{"src":0,"dst":4}`)
	if code != http.StatusConflict {
		t.Errorf("query without network: %d, want 409", code)
	}
	install(t, ts)
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/network", "")
	if code != http.StatusOK || body["installed"] != true || body["links"].(float64) != 8 {
		t.Errorf("post-install summary: %d %v", code, body)
	}
}

func TestQueryAvailability(t *testing.T) {
	ts := newTestServer(t)
	install(t, ts)
	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/query", `{"src":0,"dst":4,"demandMbps":2}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, body)
	}
	if body["feasible"] != true {
		t.Errorf("feasible = %v", body["feasible"])
	}
	bw := body["bandwidthMbps"].(float64)
	if bw < 4.9 || bw > 4.92 {
		t.Errorf("bandwidth = %v, want ~54/11", bw)
	}
	if body["wouldAdmit"] != true {
		t.Errorf("wouldAdmit = %v", body["wouldAdmit"])
	}
	ests := body["estimates"].(map[string]interface{})
	if len(ests) != 5 {
		t.Errorf("estimates = %v", ests)
	}
	// Explicit path form.
	code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/query", `{"path":[0,1,2]}`)
	if code != http.StatusOK || body["feasible"] != true {
		t.Errorf("explicit path query: %d %v", code, body)
	}
}

func TestFlowAdmissionAndTeardown(t *testing.T) {
	ts := newTestServer(t)
	install(t, ts)

	// Two 2 Mbps flows fit on the 4.909 Mbps chain; a third does not.
	var ids []int
	for i := 0; i < 2; i++ {
		code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/flows", `{"src":0,"dst":4,"demandMbps":2}`)
		if code != http.StatusCreated || body["admitted"] != true {
			t.Fatalf("flow %d: %d %v", i, code, body)
		}
		flow := body["flow"].(map[string]interface{})
		ids = append(ids, int(flow["id"].(float64)))
	}
	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/flows", `{"src":0,"dst":4,"demandMbps":2}`)
	if code != http.StatusOK || body["admitted"] != false {
		t.Fatalf("third flow should be rejected: %d %v", code, body)
	}
	if body["reason"] == "" {
		t.Error("rejection without reason")
	}

	// Listing shows both admitted flows.
	code, list := doJSONArray(t, http.MethodGet, ts.URL+"/v1/flows")
	if code != http.StatusOK || len(list) != 2 {
		t.Fatalf("list: %d %v", code, list)
	}

	// Teardown frees the bandwidth: the third flow now fits.
	code, _ = doJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/flows/%d", ts.URL, ids[0]), "")
	if code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/flows", `{"src":0,"dst":4,"demandMbps":2}`)
	if code != http.StatusCreated || body["admitted"] != true {
		t.Errorf("after teardown the flow should fit: %d %v", code, body)
	}
}

func TestFlowByIDErrors(t *testing.T) {
	ts := newTestServer(t)
	install(t, ts)
	code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/flows/99", "")
	if code != http.StatusNotFound {
		t.Errorf("missing flow: %d, want 404", code)
	}
	code, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/flows/abc", "")
	if code != http.StatusBadRequest {
		t.Errorf("bad id: %d, want 400", code)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	install(t, ts)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{http.MethodPost, "/v1/query", `{not json`, http.StatusBadRequest},
		{http.MethodPost, "/v1/query", `{"unknown":1}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/query", `{}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/query", `{"src":0,"dst":4,"metric":"bogus"}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/flows", `{"src":0,"dst":4,"demandMbps":0}`, http.StatusBadRequest},
		{http.MethodPut, "/v1/network", `{"nodes":[]}`, http.StatusBadRequest},
		{http.MethodDelete, "/v1/network", ``, http.StatusMethodNotAllowed},
		{http.MethodDelete, "/v1/flows", ``, http.StatusMethodNotAllowed},
		{http.MethodPut, "/v1/query", `{}`, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		code, _ := doJSON(t, tc.method, ts.URL+tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s %s: %d, want %d", tc.method, tc.path, code, tc.want)
		}
	}
}

func TestNetworkReplaceDropsFlows(t *testing.T) {
	ts := newTestServer(t)
	install(t, ts)
	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/flows", `{"src":0,"dst":4,"demandMbps":1}`)
	if code != http.StatusCreated || body["admitted"] != true {
		t.Fatalf("admit: %d %v", code, body)
	}
	install(t, ts) // replace
	code, list := doJSONArray(t, http.MethodGet, ts.URL+"/v1/flows")
	if code != http.StatusOK || len(list) != 0 {
		t.Errorf("flows after replace: %d %v", code, list)
	}
}

// TestConcurrentAdmissions hammers the server with parallel admission
// requests: the final admitted set must still be schedulable (never
// over-admitted), proving decisions serialize correctly.
func TestConcurrentAdmissions(t *testing.T) {
	ts := newTestServer(t)
	install(t, ts)
	const workers = 8
	var wg sync.WaitGroup
	admitted := make([]bool, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/flows",
				bytes.NewBufferString(`{"src":0,"dst":4,"demandMbps":2}`))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var body map[string]interface{}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Error(err)
				return
			}
			admitted[i] = body["admitted"] == true
		}(i)
	}
	wg.Wait()
	count := 0
	for _, ok := range admitted {
		if ok {
			count++
		}
	}
	// The 4.909 Mbps chain fits exactly two 2 Mbps flows no matter the
	// interleaving.
	if count != 2 {
		t.Errorf("admitted %d concurrent flows, want exactly 2", count)
	}
}

func TestScheduleEndpoint(t *testing.T) {
	ts := newTestServer(t)
	install(t, ts)
	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/flows", `{"src":0,"dst":4,"demandMbps":2}`)
	if code != http.StatusCreated || body["admitted"] != true {
		t.Fatalf("admit: %d %v", code, body)
	}
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/schedule", "")
	if code != http.StatusOK {
		t.Fatalf("schedule: %d %v", code, body)
	}
	total := body["totalShare"].(float64)
	if total <= 0 || total > 1 {
		t.Errorf("totalShare = %v", total)
	}
	slots := body["schedule"].([]interface{})
	if len(slots) == 0 {
		t.Error("no slots in the schedule")
	}
	first := slots[0].(map[string]interface{})
	if _, ok := first["couples"]; !ok {
		t.Errorf("slot missing couples: %v", first)
	}
}

func TestFairshareEndpoint(t *testing.T) {
	ts := newTestServer(t)
	install(t, ts)
	// Empty fairshare before any admission.
	code, list := doJSONArray(t, http.MethodGet, ts.URL+"/v1/fairshare")
	if code != http.StatusOK || len(list) != 0 {
		t.Fatalf("empty fairshare: %d %v", code, list)
	}
	for i := 0; i < 2; i++ {
		code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/flows", `{"src":0,"dst":4,"demandMbps":2}`)
		if code != http.StatusCreated || body["admitted"] != true {
			t.Fatalf("admit %d: %d %v", i, code, body)
		}
	}
	code, list = doJSONArray(t, http.MethodGet, ts.URL+"/v1/fairshare")
	if code != http.StatusOK || len(list) != 2 {
		t.Fatalf("fairshare: %d %v", code, list)
	}
	for _, e := range list {
		share := e["fairShareMbps"].(float64)
		// Two identical flows on the 54/11 chain: 54/22 ~ 2.4545 each.
		if share < 2.40 || share > 2.51 {
			t.Errorf("fair share = %v, want ~2.4545", share)
		}
	}
}
