package scenario

import (
	"testing"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

func TestScenarioIRelations(t *testing.T) {
	s := NewScenarioI(54)
	if s.Rate != 54 {
		t.Errorf("Rate = %v", s.Rate)
	}
	// L1 and L2 are mutually clear.
	if !conflict.Feasible(s.Model, []conflict.Couple{{Link: s.L1, Rate: 54}, {Link: s.L2, Rate: 54}}) {
		t.Error("L1+L2 should be feasible")
	}
	// L3 conflicts with both.
	for _, other := range []topology.LinkID{s.L1, s.L2} {
		if conflict.Feasible(s.Model, []conflict.Couple{
			{Link: s.L3, Rate: 54},
			{Link: other, Rate: 54},
		}) {
			t.Errorf("L3+L%d should be infeasible", other+1)
		}
	}
}

func TestScenarioIIRelations(t *testing.T) {
	s := NewScenarioII()
	if len(s.Path) != 4 || s.Path[0] != s.L1 || s.Path[3] != s.L4 {
		t.Errorf("Path = %v", s.Path)
	}
	if got := s.Links(); len(got) != 4 {
		t.Errorf("Links = %v", got)
	}
	// Every link supports exactly {54, 36} alone, descending.
	for _, l := range s.Links() {
		rates := s.Model.Rates(l)
		if len(rates) != 2 || rates[0] != 54 || rates[1] != 36 {
			t.Errorf("link %d rates = %v, want [54 36]", l, rates)
		}
	}
	// The defining asymmetry: (L1,36)+(L4,*) feasible, (L1,54)+(L4,*) not.
	for _, r4 := range []radio.Rate{36, 54} {
		if !conflict.Feasible(s.Model, []conflict.Couple{
			{Link: s.L1, Rate: 36}, {Link: s.L4, Rate: r4},
		}) {
			t.Errorf("(L1,36)+(L4,%v) should be feasible", r4)
		}
		if conflict.Feasible(s.Model, []conflict.Couple{
			{Link: s.L1, Rate: 54}, {Link: s.L4, Rate: r4},
		}) {
			t.Errorf("(L1,54)+(L4,%v) should be infeasible", r4)
		}
	}
	// Triads {L1,L2,L3} and {L2,L3,L4} conflict pairwise at all rates.
	pairs := [][2]topology.LinkID{
		{s.L1, s.L2}, {s.L1, s.L3}, {s.L2, s.L3}, {s.L2, s.L4}, {s.L3, s.L4},
	}
	for _, p := range pairs {
		for _, ra := range []radio.Rate{36, 54} {
			for _, rb := range []radio.Rate{36, 54} {
				if !s.Model.HasConflict(p[0], ra, p[1], rb) {
					t.Errorf("links %d,%d should conflict at (%v,%v)", p[0], p[1], ra, rb)
				}
			}
		}
	}
}
