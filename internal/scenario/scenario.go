// Package scenario provides the paper's two worked topologies (Fig. 1)
// as reusable fixtures, encoded exactly as the text states them with the
// Table conflict model. Link L_k of the paper maps to LinkID k-1.
package scenario

import (
	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// ScenarioI is the three-link topology of Fig. 1 (left) used by the
// paper's introduction: L1 and L2 do not interfere with (or hear) each
// other, while L3 interferes with both. Background traffic occupies time
// share Lambda on each of L1 and L2; the new one-hop flow runs over L3.
type ScenarioI struct {
	Model *conflict.Table
	// L1, L2, L3 are the paper's links (IDs 0, 1, 2).
	L1, L2, L3 topology.LinkID
	// Rate is the single channel rate every link supports.
	Rate radio.Rate
}

// NewScenarioI builds the Scenario I fixture with the given single
// channel rate (the introduction's example is rate-agnostic; 54 Mbps is
// a convenient concrete choice).
func NewScenarioI(rate radio.Rate) *ScenarioI {
	t := conflict.NewTable()
	s := &ScenarioI{Model: t, L1: 0, L2: 1, L3: 2, Rate: rate}
	t.SetRates(s.L1, rate)
	t.SetRates(s.L2, rate)
	t.SetRates(s.L3, rate)
	// L3 conflicts with both L1 and L2; L1 and L2 are mutually clear.
	mustAdd(t.AddConflictAllRates(s.L3, s.L1))
	mustAdd(t.AddConflictAllRates(s.L3, s.L2))
	return s
}

// ScenarioII is the four-link chain of Fig. 1 (right), the paper's
// counterexample to the clique constraint (Sec. 3.1 and 5.1): every link
// supports 36 and 54 Mbps alone; any two of {L1,L2,L3} interfere at all
// rates, as do any two of {L2,L3,L4}; L1 at 54 Mbps interferes with L4
// at any rate, but L1 at 36 Mbps does not.
type ScenarioII struct {
	Model *conflict.Table
	// L1..L4 are the paper's chain links (IDs 0..3).
	L1, L2, L3, L4 topology.LinkID
	// Path is the 4-hop flow path L1 -> L2 -> L3 -> L4.
	Path topology.Path
}

// NewScenarioII builds the Scenario II fixture.
func NewScenarioII() *ScenarioII {
	t := conflict.NewTable()
	s := &ScenarioII{Model: t, L1: 0, L2: 1, L3: 2, L4: 3}
	for _, l := range []topology.LinkID{s.L1, s.L2, s.L3, s.L4} {
		t.SetRates(l, 36, 54)
	}
	// Any two of links 1,2,3 interfere with each other whichever rates
	// they use; the same for links 2,3,4.
	mustAdd(t.AddConflictAllRates(s.L1, s.L2))
	mustAdd(t.AddConflictAllRates(s.L1, s.L3))
	mustAdd(t.AddConflictAllRates(s.L2, s.L3))
	mustAdd(t.AddConflictAllRates(s.L2, s.L4))
	mustAdd(t.AddConflictAllRates(s.L3, s.L4))
	// L1 at 54 interferes with L4 at any rate; L1 at 36 does not.
	mustAdd(t.AddConflict(s.L1, 54, s.L4, 36))
	mustAdd(t.AddConflict(s.L1, 54, s.L4, 54))
	s.Path = topology.Path{s.L1, s.L2, s.L3, s.L4}
	return s
}

// Links returns the chain links in path order.
func (s *ScenarioII) Links() []topology.LinkID {
	return []topology.LinkID{s.L1, s.L2, s.L3, s.L4}
}

func mustAdd(err error) {
	if err != nil {
		// The fixtures above only add conflicts between distinct links
		// with declared rates; an error means the package is broken.
		panic(err)
	}
}
