// Package dv emulates the distributed side of the paper's Sec. 4: QoS
// routes computed by message passing alone. Every node keeps a
// distance-vector table of its best known cost to each destination
// under a pluggable additive QoS weight (hop count, e2eTD, or
// average-e2eD built from carrier-sensed idleness) and advertises it to
// its neighbors in synchronous rounds — a deterministic emulation of
// DSDV-style routing that needs no global topology knowledge.
//
// The engine converges to exactly the routes a centralized Dijkstra
// would pick (same weights), in at most NumNodes-1 rounds; the tests
// assert both. Message counts are tracked so experiments can report the
// protocol cost of each metric.
package dv

import (
	"fmt"
	"math"
	"sort"

	"abw/internal/graph"
	"abw/internal/topology"
)

// entry is one row of a node's routing table.
type entry struct {
	cost float64
	via  topology.LinkID // first hop link
}

// Engine is a synchronous distance-vector computation over a network.
type Engine struct {
	net    *topology.Network
	weight graph.Weight
	// tables[n][d] is node n's best known route to destination d.
	tables []map[topology.NodeID]entry
	// messages counts neighbor advertisements sent so far.
	messages int
	rounds   int
}

// New builds an engine with every node knowing only itself.
func New(net *topology.Network, weight graph.Weight) (*Engine, error) {
	if net == nil {
		return nil, fmt.Errorf("dv: nil network")
	}
	if weight == nil {
		return nil, fmt.Errorf("dv: nil weight")
	}
	e := &Engine{
		net:    net,
		weight: weight,
		tables: make([]map[topology.NodeID]entry, net.NumNodes()),
	}
	for i := range e.tables {
		e.tables[i] = map[topology.NodeID]entry{
			topology.NodeID(i): {cost: 0, via: -1},
		}
	}
	return e, nil
}

// Round performs one synchronous exchange: every node advertises its
// full table to every out-neighbor, and receivers relax. It returns the
// number of table entries that improved.
func (e *Engine) Round() (int, error) {
	type update struct {
		at   topology.NodeID
		dest topology.NodeID
		ent  entry
	}
	var updates []update
	// A node's advertisement travels over its IN-links: the neighbor
	// that can transmit TO this node learns it can reach this node's
	// destinations through that link... Routing direction: to route
	// from u over link u->v, u needs v's table. So v advertises to u
	// along every link u->v.
	for v := 0; v < e.net.NumNodes(); v++ {
		for _, lid := range e.net.InLinks(topology.NodeID(v)) {
			link, err := e.net.Link(lid)
			if err != nil {
				return 0, fmt.Errorf("dv: %w", err)
			}
			w := e.weight(link)
			e.messages++
			if math.IsInf(w, 1) || math.IsNaN(w) {
				continue // link unusable under this metric
			}
			u := link.Tx
			for dest, ent := range e.tables[v] {
				if dest == u {
					continue
				}
				cand := entry{cost: w + ent.cost, via: lid}
				cur, ok := e.tables[u][dest]
				if !ok || cand.cost < cur.cost-1e-12 {
					updates = append(updates, update{at: u, dest: dest, ent: cand})
				}
			}
		}
	}
	// Apply synchronously, keeping the best candidate per (node, dest).
	// The candidates were collected in map-iteration order; sort them so
	// equal-cost ties break toward the lowest link id every run instead
	// of whichever entry the map yielded first.
	sort.Slice(updates, func(i, j int) bool {
		a, b := updates[i], updates[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.dest != b.dest {
			return a.dest < b.dest
		}
		if a.ent.cost != b.ent.cost {
			return a.ent.cost < b.ent.cost
		}
		return a.ent.via < b.ent.via
	})
	improved := 0
	for _, up := range updates {
		cur, ok := e.tables[up.at][up.dest]
		if !ok || up.ent.cost < cur.cost-1e-12 {
			e.tables[up.at][up.dest] = up.ent
			improved++
		}
	}
	e.rounds++
	return improved, nil
}

// RunToConvergence rounds until no table changes, failing after
// maxRounds (0 means NumNodes rounds, the Bellman-Ford bound).
func (e *Engine) RunToConvergence(maxRounds int) (int, error) {
	if maxRounds <= 0 {
		maxRounds = e.net.NumNodes()
	}
	for r := 1; r <= maxRounds; r++ {
		changed, err := e.Round()
		if err != nil {
			return r, err
		}
		if changed == 0 {
			return r, nil
		}
	}
	return maxRounds, fmt.Errorf("dv: no convergence within %d rounds", maxRounds)
}

// Rounds returns how many rounds have executed.
func (e *Engine) Rounds() int { return e.rounds }

// Messages returns how many neighbor advertisements have been sent.
func (e *Engine) Messages() int { return e.messages }

// Cost returns src's best known cost to dst.
func (e *Engine) Cost(src, dst topology.NodeID) (float64, bool) {
	if int(src) < 0 || int(src) >= len(e.tables) {
		return 0, false
	}
	ent, ok := e.tables[src][dst]
	if !ok {
		return 0, false
	}
	return ent.cost, true
}

// Route follows next-hop pointers from src to dst. It fails when no
// route is known or a forwarding loop is detected (which cannot happen
// after convergence on a static topology).
func (e *Engine) Route(src, dst topology.NodeID) (topology.Path, error) {
	if int(src) < 0 || int(src) >= len(e.tables) || int(dst) < 0 || int(dst) >= len(e.tables) {
		return nil, fmt.Errorf("dv: node out of range (src=%d dst=%d)", src, dst)
	}
	if src == dst {
		return nil, fmt.Errorf("dv: src equals dst (%d)", src)
	}
	var path topology.Path
	at := src
	for steps := 0; at != dst; steps++ {
		if steps > e.net.NumNodes() {
			return nil, fmt.Errorf("dv: forwarding loop from %d to %d", src, dst)
		}
		ent, ok := e.tables[at][dst]
		if !ok || ent.via < 0 {
			return nil, fmt.Errorf("dv: node %d has no route to %d", at, dst)
		}
		link, err := e.net.Link(ent.via)
		if err != nil {
			return nil, fmt.Errorf("dv: %w", err)
		}
		path = append(path, ent.via)
		at = link.Rx
	}
	return path, nil
}
