package dv

import (
	"math"
	"math/rand"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/graph"
	"abw/internal/radio"
	"abw/internal/routing"
	"abw/internal/topology"
)

func gridNet(t *testing.T) *topology.Network {
	t.Helper()
	net, err := topology.New(radio.NewProfile80211a(), geom.GridPoints(9, 3, 80))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConvergesWithinBellmanFordBound(t *testing.T) {
	net := gridNet(t)
	e, err := New(net, graph.HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := e.RunToConvergence(0)
	if err != nil {
		t.Fatal(err)
	}
	if rounds > net.NumNodes() {
		t.Errorf("converged in %d rounds, bound is %d", rounds, net.NumNodes())
	}
	if e.Messages() == 0 {
		t.Error("no messages counted")
	}
}

func TestMatchesCentralizedDijkstra(t *testing.T) {
	net := gridNet(t)
	weights := map[string]graph.Weight{
		"hop count": graph.HopWeight,
		"e2eTD": func(l topology.Link) float64 {
			return 1 / float64(l.MaxRate)
		},
	}
	for name, w := range weights {
		t.Run(name, func(t *testing.T) {
			e, err := New(net, w)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.RunToConvergence(0); err != nil {
				t.Fatal(err)
			}
			for src := 0; src < net.NumNodes(); src++ {
				for dst := 0; dst < net.NumNodes(); dst++ {
					if src == dst {
						continue
					}
					s, d := topology.NodeID(src), topology.NodeID(dst)
					_, want, err := graph.ShortestPath(net, s, d, w)
					if err != nil {
						if _, ok := e.Cost(s, d); ok {
							t.Errorf("%d->%d: dv has a route but Dijkstra does not", src, dst)
						}
						continue
					}
					got, ok := e.Cost(s, d)
					if !ok {
						t.Errorf("%d->%d: dv missing route (Dijkstra cost %g)", src, dst, want)
						continue
					}
					if math.Abs(got-want) > 1e-9 {
						t.Errorf("%d->%d: dv cost %g != Dijkstra %g", src, dst, got, want)
					}
					// The forwarded path must realize the advertised cost.
					path, err := e.Route(s, d)
					if err != nil {
						t.Errorf("%d->%d: Route: %v", src, dst, err)
						continue
					}
					pw, err := graph.PathWeight(net, path, w)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(pw-got) > 1e-9 {
						t.Errorf("%d->%d: path weight %g != advertised %g", src, dst, pw, got)
					}
				}
			}
		})
	}
}

func TestAvgE2EDWeightsThroughDV(t *testing.T) {
	// The paper's average-e2eD metric distributed: same routes as the
	// centralized router.
	net := gridNet(t)
	m := conflict.NewPhysical(net)
	idle := make([]float64, net.NumNodes())
	rng := rand.New(rand.NewSource(8))
	for i := range idle {
		idle[i] = 0.2 + 0.8*rng.Float64()
	}
	w, err := routing.Weight(m, routing.MetricAvgE2ED, idle)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(net, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToConvergence(0); err != nil {
		t.Fatal(err)
	}
	centralized, wantCost, err := graph.ShortestPath(net, 0, 8, w)
	if err != nil {
		t.Fatal(err)
	}
	gotCost, ok := e.Cost(0, 8)
	if !ok || math.Abs(gotCost-wantCost) > 1e-9 {
		t.Errorf("dv cost = (%g,%v), centralized %g", gotCost, ok, wantCost)
	}
	path, err := e.Route(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := graph.PathWeight(net, path, w)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := graph.PathWeight(net, centralized, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pw-cw) > 1e-9 {
		t.Errorf("dv path weight %g != centralized %g", pw, cw)
	}
}

func TestDisconnectedPairsHaveNoRoute(t *testing.T) {
	net, err := topology.New(radio.NewProfile80211a(), []geom.Point{
		{X: 0}, {X: 50}, {X: 1000}, {X: 1050},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(net, graph.HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToConvergence(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Cost(0, 3); ok {
		t.Error("disconnected pair should have no cost")
	}
	if _, err := e.Route(0, 3); err == nil {
		t.Error("disconnected pair should have no route")
	}
	// Connected pair within the island works.
	if _, err := e.Route(0, 1); err != nil {
		t.Errorf("intra-island route failed: %v", err)
	}
}

func TestValidation(t *testing.T) {
	net := gridNet(t)
	if _, err := New(nil, graph.HopWeight); err == nil {
		t.Error("nil network: expected error")
	}
	if _, err := New(net, nil); err == nil {
		t.Error("nil weight: expected error")
	}
	e, err := New(net, graph.HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Route(0, 0); err == nil {
		t.Error("src==dst: expected error")
	}
	if _, err := e.Route(0, 99); err == nil {
		t.Error("out of range: expected error")
	}
	// Before any rounds, only self-routes exist.
	if _, ok := e.Cost(0, 8); ok {
		t.Error("pre-convergence cross-node cost should be unknown")
	}
	if c, ok := e.Cost(3, 3); !ok || c != 0 {
		t.Error("self cost should be 0")
	}
}

func TestConvergenceFailureBound(t *testing.T) {
	net := gridNet(t)
	e, err := New(net, graph.HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	// One round is not enough for a 3x3 grid diameter.
	if _, err := e.RunToConvergence(1); err == nil {
		t.Error("1-round budget should fail to converge")
	}
}

func TestInfiniteWeightLinksExcluded(t *testing.T) {
	net := gridNet(t)
	// Exclude every link touching node 4 (the center).
	w := func(l topology.Link) float64 {
		if l.Tx == 4 || l.Rx == 4 {
			return math.Inf(1)
		}
		return 1
	}
	e, err := New(net, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToConvergence(0); err != nil {
		t.Fatal(err)
	}
	path, err := e.Route(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := net.PathNodes(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if n == 4 {
			t.Errorf("route crosses the excluded center: %v", nodes)
		}
	}
	if _, ok := e.Cost(4, 0); ok {
		t.Error("isolated center should reach nobody")
	}
}

// TestRandomMeshMatchesDijkstra fuzzes convergence on random geometric
// meshes with random idleness-derived weights.
func TestRandomMeshMatchesDijkstra(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net, err := topology.New(radio.NewProfile80211a(),
			geom.UniformPoints(rng, geom.Rect{W: 300, H: 300}, 10))
		if err != nil {
			t.Fatal(err)
		}
		idle := make([]float64, net.NumNodes())
		for i := range idle {
			idle[i] = 0.1 + 0.9*rng.Float64()
		}
		m := conflict.NewPhysical(net)
		w, err := routing.Weight(m, routing.MetricAvgE2ED, idle)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(net, w)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.RunToConvergence(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for src := 0; src < net.NumNodes(); src++ {
			for dst := 0; dst < net.NumNodes(); dst++ {
				if src == dst {
					continue
				}
				s, d := topology.NodeID(src), topology.NodeID(dst)
				_, want, derr := graph.ShortestPath(net, s, d, w)
				got, ok := e.Cost(s, d)
				if derr != nil {
					if ok {
						t.Errorf("seed %d %d->%d: dv found a route Dijkstra did not", seed, src, dst)
					}
					continue
				}
				if !ok || math.Abs(got-want) > 1e-9 {
					t.Errorf("seed %d %d->%d: dv (%.6f,%v) != Dijkstra %.6f", seed, src, dst, got, ok, want)
				}
			}
		}
	}
}
