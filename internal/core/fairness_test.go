package core

import (
	"math"
	"testing"

	"abw/internal/scenario"
	"abw/internal/topology"
)

func TestMaxMinFairScenarioISymmetric(t *testing.T) {
	s := scenario.NewScenarioI(54)
	flows := []Flow{
		{Path: topology.Path{s.L1}},
		{Path: topology.Path{s.L2}},
		{Path: topology.Path{s.L3}},
	}
	alloc, sched, err := MaxMinFair(s.Model, flows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// L1 and L2 overlap; L3 conflicts with both: the fair point is 27
	// each (half the channel to the {L1,L2} side, half to L3).
	for j, a := range alloc {
		if math.Abs(a-27) > 1e-6 {
			t.Errorf("flow %d allocation = %.4f, want 27", j, a)
		}
	}
	if err := sched.Validate(s.Model); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	demand := map[topology.LinkID]float64{s.L1: alloc[0], s.L2: alloc[1], s.L3: alloc[2]}
	if !sched.Delivers(demand, 1e-6) {
		t.Error("schedule does not deliver the allocations")
	}
}

func TestMaxMinFairWithDemandCap(t *testing.T) {
	s := scenario.NewScenarioI(54)
	flows := []Flow{
		{Path: topology.Path{s.L1}, Demand: 10}, // capped
		{Path: topology.Path{s.L2}},             // uncapped
		{Path: topology.Path{s.L3}},             // uncapped
	}
	alloc, _, err := MaxMinFair(s.Model, flows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc[0]-10) > 1e-6 {
		t.Errorf("capped flow allocation = %.4f, want 10", alloc[0])
	}
	// L2 rides alongside L1; both L2 and L3 still fair-share to 27.
	if math.Abs(alloc[1]-27) > 1e-6 || math.Abs(alloc[2]-27) > 1e-6 {
		t.Errorf("uncapped allocations = %.4f, %.4f, want 27 each", alloc[1], alloc[2])
	}
}

func TestMaxMinFairScenarioIISingleFlow(t *testing.T) {
	s := scenario.NewScenarioII()
	alloc, sched, err := MaxMinFair(s.Model, []Flow{{Path: s.Path}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc[0]-16.2) > 1e-6 {
		t.Errorf("single-flow max-min = %.4f, want the capacity 16.2", alloc[0])
	}
	if err := sched.Validate(s.Model); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestMaxMinFairScenarioIITwinFlows(t *testing.T) {
	s := scenario.NewScenarioII()
	alloc, _, err := MaxMinFair(s.Model, []Flow{{Path: s.Path}, {Path: s.Path}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j, a := range alloc {
		if math.Abs(a-8.1) > 1e-6 {
			t.Errorf("twin flow %d allocation = %.4f, want 8.1", j, a)
		}
	}
}

func TestMaxMinFairAsymmetricBottlenecks(t *testing.T) {
	// Flow A crosses the contested L3; flows B and C use the mutually
	// compatible L1 and L2. Max-min should NOT starve B and C down to
	// A's bottleneck: after A and the common contention freeze, B and C
	// keep growing.
	s := scenario.NewScenarioI(54)
	flows := []Flow{
		{Path: topology.Path{s.L3}, Demand: 5}, // modest demand on the contested link
		{Path: topology.Path{s.L1}},
		{Path: topology.Path{s.L2}},
	}
	alloc, _, err := MaxMinFair(s.Model, flows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc[0]-5) > 1e-6 {
		t.Errorf("capped contested flow = %.4f, want 5", alloc[0])
	}
	// Remaining share for L1/L2 side: 1 - 5/54 of the period at 54.
	want := (1 - 5.0/54) * 54
	if math.Abs(alloc[1]-want) > 1e-6 || math.Abs(alloc[2]-want) > 1e-6 {
		t.Errorf("side flows = %.4f, %.4f, want %.4f", alloc[1], alloc[2], want)
	}
}

func TestMaxMinFairValidation(t *testing.T) {
	s := scenario.NewScenarioI(54)
	if _, _, err := MaxMinFair(s.Model, nil, Options{}); err == nil {
		t.Error("no flows: expected error")
	}
	if _, _, err := MaxMinFair(s.Model, []Flow{{Path: nil}}, Options{}); err == nil {
		t.Error("empty path: expected error")
	}
}
