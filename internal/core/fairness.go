package core

import (
	"context"
	"fmt"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/lp"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// MaxMinFair allocates end-to-end throughput to the given flows
// max-min fairly over the exact feasibility polytope (Eq. 4):
// progressive filling raises every flow's allocation together,
// freezing flows as they hit their bottleneck (or their Demand, when
// positive — pass Demand 0 for an uncapped flow). It returns the
// per-flow allocations in input order and a schedule delivering them.
//
// Max-min fairness over independent sets is the resource-allocation
// question of the paper's reference [11], answered here with the
// paper's own rate-coupled machinery.
func MaxMinFair(m conflict.Model, flows []Flow, opts Options) ([]float64, schedule.Schedule, error) {
	return MaxMinFairContext(context.Background(), m, flows, opts)
}

// MaxMinFairContext is MaxMinFair under a context: enumeration and
// every progressive-filling LP poll ctx; see AvailableBandwidthContext.
func MaxMinFairContext(ctx context.Context, m conflict.Model, flows []Flow, opts Options) ([]float64, schedule.Schedule, error) {
	if len(flows) == 0 {
		return nil, schedule.Schedule{}, fmt.Errorf("core: no flows")
	}
	if err := validateFlows(flows); err != nil {
		return nil, schedule.Schedule{}, err
	}
	paths := make([]topology.Path, 0, len(flows))
	for _, f := range flows {
		paths = append(paths, f.Path)
	}
	universe := topology.LinkUnion(paths...)
	sets, err := opts.enumerate(ctx, m, universe)
	if err != nil {
		return nil, schedule.Schedule{}, fmt.Errorf("core: enumerating independent sets: %w", err)
	}

	alloc := make([]float64, len(flows))
	frozen := make([]bool, len(flows))
	remaining := len(flows)

	for round := 0; remaining > 0 && round <= len(flows); round++ {
		theta, _, err := solveFill(ctx, flows, universe, sets, alloc, frozen, -1)
		if err != nil {
			return nil, schedule.Schedule{}, err
		}
		// Cap active flows at their demands; demanded flows freeze when
		// they reach it.
		capped := theta
		for j := range flows {
			if !frozen[j] && flows[j].Demand > 0 && flows[j].Demand < capped {
				capped = flows[j].Demand
			}
		}
		for j := range flows {
			if !frozen[j] {
				alloc[j] = capped
			}
		}
		if capped < theta {
			for j := range flows {
				if !frozen[j] && flows[j].Demand > 0 && flows[j].Demand <= capped+1e-9 {
					frozen[j] = true
					remaining--
				}
			}
			continue
		}
		// Freeze the bottlenecked flows: those whose allocation cannot
		// exceed theta while everyone else keeps at least theirs.
		froze := 0
		for j := range flows {
			if frozen[j] {
				continue
			}
			best, _, err := solveFill(ctx, flows, universe, sets, alloc, frozen, j)
			if err != nil {
				return nil, schedule.Schedule{}, err
			}
			if best <= theta+1e-7 {
				frozen[j] = true
				remaining--
				froze++
			}
		}
		if froze == 0 && remaining > 0 {
			// Numerical stall: freeze everything at theta.
			for j := range flows {
				if !frozen[j] {
					frozen[j] = true
					remaining--
				}
			}
		}
	}

	// Final schedule delivering the allocations.
	final := make([]Flow, len(flows))
	for j, f := range flows {
		final[j] = Flow{Path: f.Path, Demand: alloc[j]}
	}
	ok, sched, err := FeasibleDemandsContext(ctx, m, final, opts)
	if err != nil {
		return nil, schedule.Schedule{}, err
	}
	if !ok {
		return nil, schedule.Schedule{}, fmt.Errorf("core: max-min allocation not schedulable (internal error)")
	}
	return alloc, sched, nil
}

// solveFill solves one progressive-filling LP. With boost < 0 it
// maximizes the common allocation theta of all unfrozen flows (frozen
// flows keep alloc[j]). With boost = j it maximizes flow j's allocation
// while every other unfrozen flow keeps at least alloc (the freeze
// test).
func solveFill(
	ctx context.Context,
	flows []Flow,
	universe []topology.LinkID,
	sets []indepset.Set,
	alloc []float64,
	frozen []bool,
	boost int,
) (float64, *lp.Solution, error) {
	prob := lp.NewProblem(lp.Maximize)
	prob.Reserve(len(sets)+1, len(universe)+1)
	lambdas := addLambdaVars(prob, sets, 0)
	shareRow := make(map[lp.Var]float64, len(sets))
	for _, v := range lambdas {
		shareRow[v] = 1
	}
	obj := prob.AddVar("objective", 1)
	if len(shareRow) > 0 {
		if err := prob.AddOwnedConstraint("total-share", shareRow, lp.LE, 1); err != nil {
			return 0, nil, fmt.Errorf("core: %w", err)
		}
	}
	// Per-link coverage: sum lambda R >= sum over flows of its
	// per-occurrence allocation.
	rows := lambdaRows(universe, sets, lambdas)
	for li, link := range universe {
		row := rows[li]
		rhs := 0.0
		objCoef := 0.0
		for j, f := range flows {
			occ := 0
			for _, l := range f.Path {
				if l == link {
					occ++
				}
			}
			if occ == 0 {
				continue
			}
			switch {
			case frozen[j] || (boost >= 0 && j != boost):
				rhs += float64(occ) * alloc[j]
			default:
				objCoef += float64(occ)
			}
		}
		if objCoef > 0 {
			row[obj] = -objCoef
		}
		if len(row) == 0 && rhs <= 0 {
			continue
		}
		if err := prob.AddOwnedConstraint(linkConsName(link), row, lp.GE, rhs); err != nil {
			return 0, nil, fmt.Errorf("core: %w", err)
		}
	}
	sol, err := prob.SolveContext(ctx)
	if err != nil {
		return 0, nil, fmt.Errorf("core: solving filling LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return 0, sol, fmt.Errorf("core: filling LP %v", sol.Status)
	}
	return sol.Objective, sol, nil
}
